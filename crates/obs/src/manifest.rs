//! Run manifests: the reproducibility record of one experiment run.
//!
//! A manifest answers "what exactly produced this output?" — seeds,
//! scenario parameters, code version, how long the run took in both
//! wall-clock and simulated time, and what every link saw. It is plain
//! JSON so plotting scripts and humans read it without this crate.

use std::io;
use std::path::{Path, PathBuf};

use crate::json::{array_of_raw, ObjectWriter};

/// Per-link counter snapshot as embedded in a [`RunManifest`].
///
/// This is the *observability-side* shape; `abw-netsim` converts its
/// internal `LinkCounters` into this, keeping the dependency direction
/// netsim → obs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkSnapshot {
    /// Link identifier (index or name).
    pub link: String,
    /// Configured capacity in bits per second.
    pub capacity_bps: u64,
    /// Packets forwarded onto the wire.
    pub forwarded_pkts: u64,
    /// Bytes forwarded onto the wire.
    pub forwarded_bytes: u64,
    /// Packets dropped at the tail of a full queue.
    pub dropped_pkts: u64,
    /// Bytes dropped at the tail of a full queue.
    pub dropped_bytes: u64,
    /// Packets lost to injected impairments (fault injection, not
    /// queue overflow).
    pub impaired_pkts: u64,
    /// Bytes lost to injected impairments.
    pub impaired_bytes: u64,
    /// Peak observed queue depth in packets.
    pub peak_queue_pkts: u64,
    /// Optional pre-serialized JSON summary of the queue-depth
    /// histogram (see `LogLinearHistogram::summary_json`).
    pub queue_depth_summary: Option<String>,
}

impl LinkSnapshot {
    /// Accumulates `other` into this snapshot: counters sum, the peak
    /// depth is the max, capacity keeps the larger value, and the
    /// queue-depth summary is kept only when this snapshot lacks one
    /// (histogram summaries cannot be merged after serialization).
    pub fn merge_from(&mut self, other: &LinkSnapshot) {
        self.capacity_bps = self.capacity_bps.max(other.capacity_bps);
        self.forwarded_pkts = self.forwarded_pkts.saturating_add(other.forwarded_pkts);
        self.forwarded_bytes = self.forwarded_bytes.saturating_add(other.forwarded_bytes);
        self.dropped_pkts = self.dropped_pkts.saturating_add(other.dropped_pkts);
        self.dropped_bytes = self.dropped_bytes.saturating_add(other.dropped_bytes);
        self.impaired_pkts = self.impaired_pkts.saturating_add(other.impaired_pkts);
        self.impaired_bytes = self.impaired_bytes.saturating_add(other.impaired_bytes);
        self.peak_queue_pkts = self.peak_queue_pkts.max(other.peak_queue_pkts);
        if self.queue_depth_summary.is_none() {
            self.queue_depth_summary = other.queue_depth_summary.clone();
        }
    }

    fn to_json(&self) -> String {
        let mut out = String::new();
        let mut w = ObjectWriter::new(&mut out);
        w.str("link", &self.link)
            .u64("capacity_bps", self.capacity_bps)
            .u64("forwarded_pkts", self.forwarded_pkts)
            .u64("forwarded_bytes", self.forwarded_bytes)
            .u64("dropped_pkts", self.dropped_pkts)
            .u64("dropped_bytes", self.dropped_bytes)
            .u64("impaired_pkts", self.impaired_pkts)
            .u64("impaired_bytes", self.impaired_bytes)
            .u64("peak_queue_pkts", self.peak_queue_pkts);
        if let Some(ref summary) = self.queue_depth_summary {
            w.raw("queue_depth", summary);
        }
        w.finish();
        out
    }
}

/// The manifest of one run: everything needed to reproduce it plus the
/// headline outcome counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunManifest {
    /// Run name (usually the binary name, e.g. `fig1`).
    pub name: String,
    /// Code version (`git describe`-style when available).
    pub version: String,
    /// RNG seeds used, in the order they were consumed.
    pub seeds: Vec<u64>,
    /// Scenario parameters, as `(key, value-as-JSON)` pairs. Values are
    /// pre-serialized so callers control their formatting.
    pub params: Vec<(String, String)>,
    /// Total simulated time across all simulations in the run.
    pub sim_time_ns: u64,
    /// Wall-clock duration of the run in seconds. (Excluded from any
    /// byte-identity guarantees — it varies run to run by nature.)
    pub wall_time_secs: f64,
    /// Simulator-global counters, as `(name, value)` pairs.
    pub counters: Vec<(String, u64)>,
    /// Per-link snapshots.
    pub links: Vec<LinkSnapshot>,
    /// Free-form extra entries, `(key, value-as-JSON)`.
    pub extra: Vec<(String, String)>,
}

impl RunManifest {
    /// A manifest for `name` with the version auto-detected.
    pub fn new(name: impl Into<String>) -> Self {
        RunManifest {
            name: name.into(),
            version: detect_version(),
            ..RunManifest::default()
        }
    }

    /// Records a seed (order matters; call in consumption order).
    pub fn push_seed(&mut self, seed: u64) -> &mut Self {
        self.seeds.push(seed);
        self
    }

    /// Records a scenario parameter with a string value.
    pub fn param_str(&mut self, key: &str, value: &str) -> &mut Self {
        let mut json = String::new();
        crate::json::push_str_escaped(&mut json, value);
        self.params.push((key.to_string(), json));
        self
    }

    /// Records a scenario parameter with a numeric value.
    pub fn param_f64(&mut self, key: &str, value: f64) -> &mut Self {
        let mut json = String::new();
        crate::json::push_f64(&mut json, value);
        self.params.push((key.to_string(), json));
        self
    }

    /// Records a scenario parameter with an integer value.
    pub fn param_u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.params.push((key.to_string(), value.to_string()));
        self
    }

    /// Records a scenario parameter with a boolean value (JSON
    /// `true`/`false` — the fuzz harness records whether the
    /// `ABW_CHECK` invariants were live this way, so a manifest can
    /// never pass a check-free run off as a checked one).
    pub fn param_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.params.push((
            key.to_string(),
            if value { "true" } else { "false" }.to_string(),
        ));
        self
    }

    /// Records a named counter value.
    pub fn counter(&mut self, name: &str, value: u64) -> &mut Self {
        self.counters.push((name.to_string(), value));
        self
    }

    /// Adds `value` into the named counter, merging with an existing
    /// entry — the accumulation path for runs spanning several
    /// simulations.
    pub fn add_counter(&mut self, name: &str, value: u64) -> &mut Self {
        match self.counters.iter_mut().find(|(k, _)| k == name) {
            Some(entry) => entry.1 = entry.1.saturating_add(value),
            None => self.counters.push((name.to_string(), value)),
        }
        self
    }

    /// Folds a per-link snapshot in, merging with an existing entry of
    /// the same name — so a run spanning many simulators reports totals
    /// per link index instead of an unbounded snapshot list.
    pub fn fold_link(&mut self, snap: LinkSnapshot) -> &mut Self {
        match self.links.iter_mut().find(|l| l.link == snap.link) {
            Some(existing) => existing.merge_from(&snap),
            None => self.links.push(snap),
        }
        self
    }

    /// Absorbs another manifest's accumulated simulation state: seeds
    /// append, simulated time and counters add, links fold. Name,
    /// version, params and wall-clock time of `self` are untouched.
    pub fn absorb(&mut self, other: RunManifest) -> &mut Self {
        self.seeds.extend(other.seeds);
        self.sim_time_ns = self.sim_time_ns.saturating_add(other.sim_time_ns);
        for (name, value) in other.counters {
            self.add_counter(&name, value);
        }
        for snap in other.links {
            self.fold_link(snap);
        }
        self.extra.extend(other.extra);
        self
    }

    /// Serializes the manifest as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let mut w = ObjectWriter::new(&mut out);
        w.str("name", &self.name).str("version", &self.version);
        w.raw(
            "seeds",
            &array_of_raw(self.seeds.iter().map(|s| s.to_string())),
        );
        {
            let mut params = String::new();
            let mut pw = ObjectWriter::new(&mut params);
            for (k, v) in &self.params {
                pw.raw(k, v);
            }
            pw.finish();
            w.raw("params", &params);
        }
        w.u64("sim_time_ns", self.sim_time_ns)
            .f64("wall_time_secs", self.wall_time_secs);
        {
            let mut counters = String::new();
            let mut cw = ObjectWriter::new(&mut counters);
            for (k, v) in &self.counters {
                cw.u64(k, *v);
            }
            cw.finish();
            w.raw("counters", &counters);
        }
        w.raw(
            "links",
            &array_of_raw(self.links.iter().map(|l| l.to_json())),
        );
        for (k, v) in &self.extra {
            w.raw(k, v);
        }
        w.finish();
        out
    }

    /// Writes `<dir>/<name>.manifest.json`, creating `dir` as needed.
    /// Returns the path written.
    pub fn write_to<P: AsRef<Path>>(&self, dir: P) -> io::Result<PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.manifest.json", self.name));
        let mut json = self.to_json();
        json.push('\n');
        std::fs::write(&path, json)?;
        Ok(path)
    }
}

/// Best-effort code version: `git describe --always --dirty` when a git
/// checkout and binary are available, else this crate's package
/// version.
pub fn detect_version() -> String {
    let described = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty());
    described.unwrap_or_else(|| format!("abw-obs-{}", env!("CARGO_PKG_VERSION")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trips_expected_shape() {
        let mut m = RunManifest {
            name: "fig1".into(),
            version: "v1-test".into(),
            ..RunManifest::default()
        };
        m.push_seed(7)
            .push_seed(8)
            .param_u64("hops", 3)
            .param_f64("capacity_mbps", 100.0)
            .param_str("tool", "pathload")
            .param_bool("checked", true)
            .counter("injected", 10)
            .counter("delivered", 9);
        m.sim_time_ns = 1_000_000_000;
        m.wall_time_secs = 0.25;
        m.links.push(LinkSnapshot {
            link: "0".into(),
            capacity_bps: 100_000_000,
            forwarded_pkts: 9,
            forwarded_bytes: 9000,
            dropped_pkts: 1,
            dropped_bytes: 1000,
            impaired_pkts: 2,
            impaired_bytes: 2000,
            peak_queue_pkts: 4,
            queue_depth_summary: None,
        });
        let json = m.to_json();
        assert!(json.starts_with("{\"name\":\"fig1\",\"version\":\"v1-test\""));
        assert!(json.contains("\"seeds\":[7,8]"));
        assert!(json.contains("\"hops\":3"));
        assert!(json.contains("\"capacity_mbps\":100"));
        assert!(json.contains("\"tool\":\"pathload\""));
        assert!(json.contains("\"checked\":true"));
        assert!(json.contains("\"counters\":{\"injected\":10,\"delivered\":9}"));
        assert!(json.contains("\"forwarded_pkts\":9"));
        assert!(json.contains("\"impaired_pkts\":2"));
        assert!(json.ends_with('}'));
    }

    #[test]
    fn link_snapshot_embeds_histogram_summary() {
        let snap = LinkSnapshot {
            link: "tight".into(),
            queue_depth_summary: Some("{\"count\":3}".into()),
            ..LinkSnapshot::default()
        };
        assert!(snap.to_json().contains("\"queue_depth\":{\"count\":3}"));
    }

    #[test]
    fn detect_version_is_nonempty() {
        assert!(!detect_version().is_empty());
    }

    #[test]
    fn write_to_creates_dir_and_file() {
        let dir = std::env::temp_dir().join("abw-obs-manifest-test");
        let _ = std::fs::remove_dir_all(&dir);
        let m = RunManifest {
            name: "t".into(),
            version: "v".into(),
            ..RunManifest::default()
        };
        let path = m.write_to(&dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with("}\n"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
