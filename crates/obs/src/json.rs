//! Minimal deterministic JSON emission (no serde — the build is
//! offline).
//!
//! Floats use Rust's shortest-round-trip `Display`, which is fully
//! deterministic, so a trace written twice from the same seeds is
//! byte-identical. Non-finite floats become `null` (JSON has no
//! NaN/inf).

use std::fmt::Write;

/// Appends a JSON string literal (with escaping) to `out`.
pub fn push_str_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON number for `v`; non-finite values become `null`.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
        // bare integers like `3` are valid JSON numbers; keep them as-is
    } else {
        out.push_str("null");
    }
}

/// An object writer that tracks comma placement.
pub struct ObjectWriter<'a> {
    out: &'a mut String,
    first: bool,
}

impl<'a> ObjectWriter<'a> {
    /// Opens `{` on `out`.
    pub fn new(out: &'a mut String) -> Self {
        out.push('{');
        ObjectWriter { out, first: true }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        push_str_escaped(self.out, key);
        self.out.push(':');
    }

    /// Writes `"key":"value"`.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        push_str_escaped(self.out, value);
        self
    }

    /// Writes `"key":value` for an unsigned integer.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.out, "{value}");
        self
    }

    /// Writes `"key":value` for a signed integer.
    pub fn i64(&mut self, key: &str, value: i64) -> &mut Self {
        self.key(key);
        let _ = write!(self.out, "{value}");
        self
    }

    /// Writes `"key":value` for a float (`null` when non-finite).
    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        push_f64(self.out, value);
        self
    }

    /// Writes `"key":true|false`.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.out.push_str(if value { "true" } else { "false" });
        self
    }

    /// Writes `"key":` followed by raw, pre-serialized JSON.
    pub fn raw(&mut self, key: &str, json: &str) -> &mut Self {
        self.key(key);
        self.out.push_str(json);
        self
    }

    /// Closes the object with `}`.
    pub fn finish(self) {
        self.out.push('}');
    }
}

/// Serializes a list of pre-serialized JSON values as an array.
pub fn array_of_raw<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        let mut s = String::new();
        push_str_escaped(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn object_layout() {
        let mut out = String::new();
        let mut w = ObjectWriter::new(&mut out);
        w.str("k", "v").u64("n", 3).f64("x", 1.5).bool("b", true);
        w.f64("nan", f64::NAN);
        w.finish();
        assert_eq!(out, r#"{"k":"v","n":3,"x":1.5,"b":true,"nan":null}"#);
    }

    #[test]
    fn float_formatting_is_stable() {
        let mut a = String::new();
        let mut b = String::new();
        push_f64(&mut a, 0.1 + 0.2);
        push_f64(&mut b, 0.1 + 0.2);
        assert_eq!(a, b);
        assert_eq!(a, "0.30000000000000004");
    }
}
