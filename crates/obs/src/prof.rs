//! Performance observability: hot-path cost counters and hierarchical
//! span profiling.
//!
//! Two complementary instruments, both zero-dependency and both safe to
//! leave compiled into the hot path:
//!
//! * **Cost counters** ([`Cost`], [`count`], [`snapshot`]) — monotonic
//!   tallies of *work done*: events popped off the simulator queue,
//!   packets simulated, link-queue operations, RNG draws, estimator
//!   steps, heap allocations. They are wall-clock-free, which is what
//!   makes them legal inside `core`/`netsim` under lint rule D1 — the
//!   simulation may count its own work, it may not read real time.
//!   Counts accumulate in plain thread-local cells (no atomics on the
//!   hot path) and are folded into process-wide totals by
//!   [`flush_thread`] / [`snapshot`].
//! * **Spans** ([`span`], [`SpanGuard`], [`Profile`]) — RAII scoped
//!   timers forming a tree (a thread-local span stack). The clock is
//!   *injected* by the harness via [`enable`]: until then every guard
//!   is inert and costs one relaxed atomic load. Because only
//!   `exec`/`bench` ever call [`enable`] (passing a wall-clock
//!   function), wall time stays confined to the crates D1 allows it
//!   in, while the instrumentation points themselves live anywhere.
//!
//! Per-thread profiles are merged into the process-wide [`Profile`]
//! through the same [`crate::Merge`] machinery the executor uses for
//! recorders and manifests, so a parallel run aggregates to the same
//! tree a serial run produces (identical counts; wall times sum).
//!
//! Neither instrument touches simulation state, RNG streams, or event
//! ordering — golden outputs are byte-identical with profiling on or
//! off.

use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::json::{array_of_raw, ObjectWriter};

// ---------------------------------------------------------------------
// Cost counters
// ---------------------------------------------------------------------

/// A category of hot-path work. Counting is wall-clock-free, so every
/// crate may tally these (D1 only restricts *time* reads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cost {
    /// Events popped off the simulator's event queue.
    EventsPopped = 0,
    /// Packets that entered the simulated path (arrivals handled).
    PacketsSimulated = 1,
    /// Link-queue operations (packet enqueues and dequeues).
    QueueOps = 2,
    /// Random draws consumed by the impairment pipeline.
    RngDraws = 3,
    /// Estimator state-machine steps (`Estimator::next` calls).
    ToolSteps = 4,
    /// Heap allocations (counted only when the `alloc-count` feature's
    /// [`CountingAlloc`] is installed as the global allocator).
    HeapAllocs = 5,
    /// Heap bytes requested (same caveat as [`Cost::HeapAllocs`]).
    HeapBytes = 6,
    /// Eventless windows the calendar event queue skipped in bulk
    /// (cursor jumps of more than one bucket — the "fluid fast-forward"
    /// over provably idle simulated time).
    FfSkips = 7,
    /// Packets that bypassed the event queue entirely through the
    /// simulator's fluid burst path (still counted in
    /// [`Cost::PacketsSimulated`]).
    FluidPackets = 8,
}

/// Number of [`Cost`] categories.
const COSTS: usize = 9;

/// Every category, in display order.
pub const ALL_COSTS: [Cost; COSTS] = [
    Cost::EventsPopped,
    Cost::PacketsSimulated,
    Cost::QueueOps,
    Cost::RngDraws,
    Cost::ToolSteps,
    Cost::HeapAllocs,
    Cost::HeapBytes,
    Cost::FfSkips,
    Cost::FluidPackets,
];

impl Cost {
    /// Stable snake_case name, used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Cost::EventsPopped => "events_popped",
            Cost::PacketsSimulated => "packets_simulated",
            Cost::QueueOps => "queue_ops",
            Cost::RngDraws => "rng_draws",
            Cost::ToolSteps => "tool_steps",
            Cost::HeapAllocs => "heap_allocs",
            Cost::HeapBytes => "heap_bytes",
            Cost::FfSkips => "ff_skips",
            Cost::FluidPackets => "fluid_packets",
        }
    }
}

/// Process-wide totals, fed by [`flush_thread`] (and directly by the
/// counting allocator, which cannot use thread-locals).
static GLOBAL_COSTS: [AtomicU64; COSTS] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

thread_local! {
    /// Per-thread tallies: plain cells, no synchronization on the hot
    /// path. Flushed to [`GLOBAL_COSTS`] by [`flush_thread`].
    static LOCAL_COSTS: [Cell<u64>; COSTS] = const {
        [
            Cell::new(0),
            Cell::new(0),
            Cell::new(0),
            Cell::new(0),
            Cell::new(0),
            Cell::new(0),
            Cell::new(0),
            Cell::new(0),
            Cell::new(0),
        ]
    };
}

/// Tallies one unit of `cost` on the calling thread.
#[inline]
pub fn count(cost: Cost) {
    count_n(cost, 1);
}

/// Tallies `n` units of `cost` on the calling thread.
#[inline]
pub fn count_n(cost: Cost, n: u64) {
    LOCAL_COSTS.with(|cells| {
        let cell = &cells[cost as usize];
        cell.set(cell.get().saturating_add(n));
    });
}

/// Drains the calling thread's cost cells into the process totals.
fn flush_costs() {
    LOCAL_COSTS.with(|cells| {
        for (i, cell) in cells.iter().enumerate() {
            let v = cell.replace(0);
            if v != 0 {
                GLOBAL_COSTS[i].fetch_add(v, Ordering::Relaxed);
            }
        }
    });
}

/// A point-in-time reading of the process-wide cost totals.
///
/// Totals only ever grow; measure a workload by taking a snapshot
/// before and after and calling [`CostSnapshot::delta`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostSnapshot {
    values: [u64; COSTS],
}

impl CostSnapshot {
    /// The total for one category.
    pub fn get(&self, cost: Cost) -> u64 {
        self.values[cost as usize]
    }

    /// Per-category difference `self − earlier` (saturating, so a
    /// mismatched pair degrades to zeros instead of wrapping).
    pub fn delta(&self, earlier: &CostSnapshot) -> CostSnapshot {
        let mut values = [0u64; COSTS];
        for (i, v) in values.iter_mut().enumerate() {
            *v = self.values[i].saturating_sub(earlier.values[i]);
        }
        CostSnapshot { values }
    }

    /// `(name, value)` pairs in [`ALL_COSTS`] order.
    pub fn entries(&self) -> Vec<(&'static str, u64)> {
        ALL_COSTS.iter().map(|&c| (c.name(), self.get(c))).collect()
    }

    /// Serializes as one flat JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let mut w = ObjectWriter::new(&mut out);
        for (name, value) in self.entries() {
            w.u64(name, value);
        }
        w.finish();
        out
    }
}

/// Reads the process-wide cost totals, flushing the calling thread's
/// cells first. (Other threads' unflushed tallies are not visible until
/// they call [`flush_thread`] — the executor does so as each worker
/// retires.)
pub fn snapshot() -> CostSnapshot {
    flush_costs();
    let mut values = [0u64; COSTS];
    for (i, v) in values.iter_mut().enumerate() {
        *v = GLOBAL_COSTS[i].load(Ordering::Relaxed);
    }
    CostSnapshot { values }
}

// ---------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------

/// Whether span timing is live. Off by default: a disabled [`span`]
/// call is one relaxed load and no clock read.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The injected nanosecond clock. Set once by [`enable`]; the profiling
/// module itself never reads time, which is what keeps `abw-obs` (and
/// every instrumented crate) clean under lint rule D1.
static CLOCK: OnceLock<fn() -> u64> = OnceLock::new();

/// Process-wide merged profile, fed by [`flush_thread`].
static GLOBAL_PROFILE: Mutex<Profile> = Mutex::new(Profile { nodes: Vec::new() });

/// Turns span timing on, injecting the nanosecond clock to use. Only
/// `exec`/`bench` call this (with a wall clock); simulation crates just
/// place [`span`] markers, which stay inert until a harness enables
/// them. The first injected clock wins for the process lifetime.
pub fn enable(clock: fn() -> u64) {
    let _ = CLOCK.set(clock);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns span timing back off (guards become inert again; accumulated
/// profiles are kept).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// True when [`enable`] has been called and not since disabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// One node of a [`Profile`] tree.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Node {
    /// Span name (`""` for the root).
    name: String,
    /// Index of the parent node (the root points at itself).
    parent: usize,
    /// Times this span was entered (or externally recorded units).
    count: u64,
    /// Total nanoseconds spent inside, children included.
    total_ns: u64,
    /// Child node indices, in first-seen order.
    children: Vec<usize>,
}

/// A tree of named spans with call counts and inclusive wall time.
///
/// Built implicitly by [`span`] guards on each thread; folded across
/// threads by [`flush_thread`] via [`Profile::merge_from`] (also wired
/// into the workspace-wide [`crate::Merge`] trait). Merging matches
/// children *by name*, so the merged tree is independent of which
/// worker finished first: counts are deterministic, times sum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    /// Arena of nodes; index 0 is the unnamed root (when non-empty).
    nodes: Vec<Node>,
}

impl Default for Profile {
    fn default() -> Self {
        Profile::new()
    }
}

impl Profile {
    /// An empty profile (just the root).
    pub fn new() -> Self {
        Profile {
            nodes: vec![Node {
                name: String::new(),
                parent: 0,
                count: 0,
                total_ns: 0,
                children: Vec::new(),
            }],
        }
    }

    fn ensure_root(&mut self) {
        if self.nodes.is_empty() {
            *self = Profile::new();
        }
    }

    /// Index of `parent`'s child named `name`, creating it if absent.
    fn child_of(&mut self, parent: usize, name: &str) -> usize {
        if let Some(&idx) = self.nodes[parent]
            .children
            .iter()
            .find(|&&c| self.nodes[c].name == name)
        {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(Node {
            name: name.to_string(),
            parent,
            count: 0,
            total_ns: 0,
            children: Vec::new(),
        });
        self.nodes[parent].children.push(idx);
        idx
    }

    /// Adds `count` entries and `total_ns` nanoseconds at the node
    /// addressed by `path` (root-relative), creating nodes as needed —
    /// the direct-construction path for external measurements (e.g. the
    /// executor's per-worker busy/idle totals) and for tests.
    pub fn record_path(&mut self, path: &[&str], count: u64, total_ns: u64) {
        self.ensure_root();
        let mut at = 0usize;
        for name in path {
            at = self.child_of(at, name);
        }
        let node = &mut self.nodes[at];
        node.count = node.count.saturating_add(count);
        node.total_ns = node.total_ns.saturating_add(total_ns);
    }

    /// True when no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// `(count, total_ns)` at `path`, or `None` if the node does not
    /// exist.
    pub fn node_stats(&self, path: &[&str]) -> Option<(u64, u64)> {
        if self.nodes.is_empty() {
            return None;
        }
        let mut at = 0usize;
        for name in path {
            at = *self.nodes[at]
                .children
                .iter()
                .find(|&&c| self.nodes[c].name == *name)?;
        }
        Some((self.nodes[at].count, self.nodes[at].total_ns))
    }

    /// Folds `other` into `self`, matching children by name at every
    /// level: counts and times sum, unseen subtrees are grafted in.
    pub fn merge_from(&mut self, other: &Profile) {
        if other.nodes.is_empty() {
            return;
        }
        self.ensure_root();
        // (self node, other node) pairs still to merge
        let mut work = vec![(0usize, 0usize)];
        while let Some((into, from)) = work.pop() {
            let node = &mut self.nodes[into];
            node.count = node.count.saturating_add(other.nodes[from].count);
            node.total_ns = node.total_ns.saturating_add(other.nodes[from].total_ns);
            for &child in &other.nodes[from].children {
                let name = other.nodes[child].name.clone();
                let self_child = self.child_of(into, &name);
                work.push((self_child, child));
            }
        }
    }

    /// Children of `idx` sorted for reporting: by total time
    /// descending, name as the tie-break.
    fn sorted_children(&self, idx: usize) -> Vec<usize> {
        let mut kids = self.nodes[idx].children.clone();
        kids.sort_by(|&a, &b| {
            self.nodes[b]
                .total_ns
                .cmp(&self.nodes[a].total_ns)
                .then_with(|| self.nodes[a].name.cmp(&self.nodes[b].name))
        });
        kids
    }

    /// Renders the tree as an indented human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("span profile (inclusive wall time; workers merged):\n");
        if self.is_empty() {
            out.push_str("  (no spans recorded)\n");
            return out;
        }
        let root_total: u64 = self.nodes[0]
            .children
            .iter()
            .map(|&c| self.nodes[c].total_ns)
            .sum();
        for &child in &self.sorted_children(0) {
            self.render_node(child, 1, root_total, &mut out);
        }
        out
    }

    fn render_node(&self, idx: usize, depth: usize, parent_total: u64, out: &mut String) {
        let node = &self.nodes[idx];
        let ms = node.total_ns as f64 / 1e6;
        let avg_us = if node.count > 0 {
            node.total_ns as f64 / node.count as f64 / 1e3
        } else {
            0.0
        };
        let pct = if parent_total > 0 {
            100.0 * node.total_ns as f64 / parent_total as f64
        } else {
            0.0
        };
        let label = format!("{}{}", "  ".repeat(depth), node.name);
        out.push_str(&format!(
            "{label:<34} {ms:>10.3} ms {:>9} calls {avg_us:>10.1} us {pct:>5.1}%\n",
            node.count
        ));
        for &child in &self.sorted_children(idx) {
            self.render_node(child, depth + 1, node.total_ns, out);
        }
    }

    /// Serializes the tree as nested JSON objects
    /// (`{"name":…,"count":…,"total_ns":…,"children":[…]}`).
    pub fn to_json(&self) -> String {
        if self.nodes.is_empty() {
            return Profile::new().to_json();
        }
        self.node_json(0)
    }

    fn node_json(&self, idx: usize) -> String {
        let node = &self.nodes[idx];
        let mut out = String::new();
        let mut w = ObjectWriter::new(&mut out);
        w.str("name", if idx == 0 { "root" } else { &node.name })
            .u64("count", node.count)
            .u64("total_ns", node.total_ns);
        if !node.children.is_empty() {
            let kids = self.sorted_children(idx);
            w.raw(
                "children",
                &array_of_raw(kids.iter().map(|&c| self.node_json(c))),
            );
        }
        w.finish();
        out
    }
}

/// Per-thread span stack state.
struct SpanState {
    profile: Profile,
    /// Arena index of the innermost open span (0 = root).
    current: usize,
}

thread_local! {
    static SPANS: RefCell<SpanState> = RefCell::new(SpanState {
        profile: Profile::new(),
        current: 0,
    });
}

/// RAII guard returned by [`span`]; closing it (drop) attributes the
/// elapsed time to the span's node and pops the thread-local stack.
#[must_use = "a span guard times the scope it lives in; dropping it immediately records nothing"]
pub struct SpanGuard {
    start_ns: u64,
    node: usize,
    prev: usize,
    active: bool,
    /// Guards index into thread-local state: keep them on one thread.
    _not_send: PhantomData<*const ()>,
}

/// Opens a span named `name` under the innermost open span of this
/// thread. Inert (near-zero cost) until a harness calls [`enable`].
pub fn span(name: &'static str) -> SpanGuard {
    let inert = SpanGuard {
        start_ns: 0,
        node: 0,
        prev: 0,
        active: false,
        _not_send: PhantomData,
    };
    if !ENABLED.load(Ordering::Relaxed) {
        return inert;
    }
    let Some(clock) = CLOCK.get().copied() else {
        return inert;
    };
    let (node, prev) = SPANS.with(|state| {
        let mut state = state.borrow_mut();
        state.profile.ensure_root();
        let prev = state.current;
        let node = state.profile.child_of(prev, name);
        state.current = node;
        (node, prev)
    });
    SpanGuard {
        start_ns: clock(),
        node,
        prev,
        active: true,
        _not_send: PhantomData,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let end = CLOCK.get().map(|clock| clock()).unwrap_or(self.start_ns);
        let elapsed = end.saturating_sub(self.start_ns);
        SPANS.with(|state| {
            let mut state = state.borrow_mut();
            if let Some(node) = state.profile.nodes.get_mut(self.node) {
                node.count = node.count.saturating_add(1);
                node.total_ns = node.total_ns.saturating_add(elapsed);
            }
            state.current = self.prev;
        });
    }
}

/// Records an externally measured leaf under the innermost open span —
/// how the executor reports per-worker busy/idle time it timed itself
/// (with its own, D1-legal clock). No-op while profiling is disabled.
pub fn record(name: &'static str, count: u64, total_ns: u64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    SPANS.with(|state| {
        let mut state = state.borrow_mut();
        state.profile.ensure_root();
        let current = state.current;
        let node = state.profile.child_of(current, name);
        let node = &mut state.profile.nodes[node];
        node.count = node.count.saturating_add(count);
        node.total_ns = node.total_ns.saturating_add(total_ns);
    });
}

/// Folds the calling thread's profile and cost tallies into the process
/// totals and resets the thread state. The executor calls this as each
/// worker retires; [`snapshot`] / [`profile_snapshot`] call it for the
/// main thread. Open spans (an active [`SpanGuard`]) keep the span part
/// of the flush deferred until they close.
pub fn flush_thread() {
    flush_costs();
    let local = SPANS.with(|state| {
        let mut state = state.borrow_mut();
        if state.current != 0 || state.profile.is_empty() {
            // spans still open: their guards hold arena indices, so the
            // profile must stay in place until they close
            return None;
        }
        Some(std::mem::take(&mut state.profile))
    });
    if let Some(local) = local {
        if let Ok(mut global) = GLOBAL_PROFILE.lock() {
            global.merge_from(&local);
        }
    }
}

/// The process-wide merged profile (flushes the calling thread first).
pub fn profile_snapshot() -> Profile {
    flush_thread();
    GLOBAL_PROFILE.lock().map(|p| p.clone()).unwrap_or_default()
}

/// Takes the process-wide merged profile, leaving it empty — the
/// harness-side reset between workloads.
pub fn take_profile() -> Profile {
    flush_thread();
    GLOBAL_PROFILE
        .lock()
        .map(|mut p| std::mem::take(&mut *p))
        .unwrap_or_default()
}

// ---------------------------------------------------------------------
// Counting allocator (feature-gated; installed only by perf harness
// binaries)
// ---------------------------------------------------------------------

/// A global allocator that tallies [`Cost::HeapAllocs`] /
/// [`Cost::HeapBytes`] while delegating to the system allocator.
///
/// Behind the `alloc-count` feature and installed only by `abw-bench`'s
/// `perf` binary (`#[global_allocator]`); library crates never pay for
/// it. Counts go straight to the process totals — the allocator runs
/// under conditions (thread teardown, TLS init) where thread-locals are
/// off-limits.
#[cfg(feature = "alloc-count")]
pub struct CountingAlloc;

#[cfg(feature = "alloc-count")]
// SAFETY: delegates allocation verbatim to `std::alloc::System`; the
// added atomic counting has no effect on the returned memory.
unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        GLOBAL_COSTS[Cost::HeapAllocs as usize].fetch_add(1, Ordering::Relaxed);
        GLOBAL_COSTS[Cost::HeapBytes as usize].fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { std::alloc::System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        unsafe { std::alloc::System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        GLOBAL_COSTS[Cost::HeapAllocs as usize].fetch_add(1, Ordering::Relaxed);
        let grown = new_size.saturating_sub(layout.size());
        GLOBAL_COSTS[Cost::HeapBytes as usize].fetch_add(grown as u64, Ordering::Relaxed);
        unsafe { std::alloc::System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_counters_flush_into_snapshot_deltas() {
        let before = snapshot();
        count(Cost::EventsPopped);
        count_n(Cost::PacketsSimulated, 41);
        count(Cost::PacketsSimulated);
        let after = snapshot();
        let delta = after.delta(&before);
        assert_eq!(delta.get(Cost::EventsPopped), 1);
        assert_eq!(delta.get(Cost::PacketsSimulated), 42);
        assert_eq!(delta.get(Cost::QueueOps), 0);
        let json = delta.to_json();
        assert!(json.contains("\"events_popped\":1"));
        assert!(json.contains("\"packets_simulated\":42"));
    }

    #[test]
    fn snapshot_entries_cover_every_cost_in_order() {
        let names: Vec<&str> = snapshot().entries().iter().map(|&(n, _)| n).collect();
        assert_eq!(
            names,
            vec![
                "events_popped",
                "packets_simulated",
                "queue_ops",
                "rng_draws",
                "tool_steps",
                "heap_allocs",
                "heap_bytes",
                "ff_skips",
                "fluid_packets",
            ]
        );
    }

    #[test]
    fn span_guard_is_inert_until_enabled() {
        // profiling defaults off; guards must not record anything
        {
            let _g = span("never");
        }
        SPANS.with(|state| {
            let state = state.borrow();
            assert!(state.profile.node_stats(&["never"]).is_none());
        });
    }

    /// Deterministic fake clock: each read advances 100 ns.
    fn fake_clock() -> u64 {
        static TICK: AtomicU64 = AtomicU64::new(0);
        TICK.fetch_add(100, Ordering::Relaxed)
    }

    #[test]
    fn spans_build_a_tree_and_flush_through_the_global() {
        // the one test that exercises the global profile end-to-end
        // (tests run on their own threads, so the local stack is ours)
        enable(fake_clock);
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
            }
            {
                let _inner = span("inner");
            }
            record("measured", 3, 900);
        }
        disable();
        flush_thread();
        let profile = take_profile();
        let (outer_count, outer_ns) = profile.node_stats(&["outer"]).expect("outer span");
        assert_eq!(outer_count, 1);
        assert!(outer_ns >= 200, "outer wraps two inner spans");
        let (inner_count, inner_ns) = profile.node_stats(&["outer", "inner"]).expect("inner");
        assert_eq!(inner_count, 2);
        assert!(inner_ns >= 200, "two inner entries, 100 ns each");
        assert_eq!(
            profile.node_stats(&["outer", "measured"]),
            Some((3, 900)),
            "record() attaches under the open span"
        );
        let report = profile.render();
        assert!(report.contains("outer"));
        assert!(report.contains("  inner") || report.contains("inner"));
    }

    #[test]
    fn profiles_merge_by_name() {
        let mut a = Profile::new();
        a.record_path(&["drive"], 2, 1000);
        a.record_path(&["drive", "pathload"], 2, 800);
        let mut b = Profile::new();
        b.record_path(&["drive"], 1, 500);
        b.record_path(&["drive", "spruce"], 1, 450);
        a.merge_from(&b);
        assert_eq!(a.node_stats(&["drive"]), Some((3, 1500)));
        assert_eq!(a.node_stats(&["drive", "pathload"]), Some((2, 800)));
        assert_eq!(a.node_stats(&["drive", "spruce"]), Some((1, 450)));
    }

    #[test]
    fn merge_is_insensitive_to_worker_order() {
        let mut w0 = Profile::new();
        w0.record_path(&["job", "x"], 1, 10);
        let mut w1 = Profile::new();
        w1.record_path(&["job", "y"], 1, 20);
        let mut forward = Profile::new();
        forward.merge_from(&w0);
        forward.merge_from(&w1);
        let mut backward = Profile::new();
        backward.merge_from(&w1);
        backward.merge_from(&w0);
        assert_eq!(
            forward.node_stats(&["job", "x"]),
            backward.node_stats(&["job", "x"])
        );
        assert_eq!(
            forward.node_stats(&["job", "y"]),
            backward.node_stats(&["job", "y"])
        );
        // rendering sorts children, so the reports agree byte-for-byte
        assert_eq!(forward.render(), backward.render());
    }

    #[test]
    fn empty_profile_renders_placeholder_and_valid_json() {
        let p = Profile::new();
        assert!(p.is_empty());
        assert!(p.render().contains("no spans recorded"));
        assert_eq!(
            p.to_json(),
            "{\"name\":\"root\",\"count\":0,\"total_ns\":0}"
        );
    }

    #[test]
    fn profile_json_nests_children() {
        let mut p = Profile::new();
        p.record_path(&["drive"], 1, 5000);
        p.record_path(&["drive", "tool"], 4, 4000);
        let json = p.to_json();
        assert!(json.contains("\"name\":\"drive\""));
        assert!(json.contains("\"children\":[{\"name\":\"tool\",\"count\":4,\"total_ns\":4000}"));
    }
}
