//! Metric primitives: monotonic counters, gauges, and a fixed-bucket
//! log-linear histogram.
//!
//! The histogram is the workhorse: OWDs, queue depths and pair gaps are
//! all heavy-tailed, spanning 3–6 orders of magnitude, so linear
//! bucketing either loses the head or truncates the tail. Log-linear
//! bucketing (HdrHistogram's scheme) keeps a bounded relative error at
//! every magnitude with a small fixed memory footprint, and two
//! histograms with the same geometry merge by adding counts — which is
//! what per-link aggregation into a run manifest needs.

use crate::json::ObjectWriter;

/// A monotonic counter. Saturates instead of wrapping: a counter that
/// silently restarts at zero corrupts every rate computed from it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&mut self) {
        self.add(1);
    }

    /// Adds `n`, saturating at `u64::MAX`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Adds `other`'s count into this counter (saturating) — counters
    /// from independent workers sum.
    #[inline]
    pub fn merge_from(&mut self, other: &Counter) {
        self.add(other.0);
    }
}

/// A last-value-wins gauge.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Gauge(f64);

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Self {
        Gauge(0.0)
    }

    /// Sets the value.
    #[inline]
    pub fn set(&mut self, v: f64) {
        self.0 = v;
    }

    /// Adds to the value.
    #[inline]
    pub fn add(&mut self, dv: f64) {
        self.0 += dv;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        self.0
    }

    /// Takes `other`'s value — a gauge is last-value-wins, so merging
    /// worker gauges in job-index order leaves the last job's reading,
    /// exactly what a serial run would have ended with.
    #[inline]
    pub fn merge_from(&mut self, other: &Gauge) {
        self.0 = other.0;
    }
}

/// A fixed-bucket log-linear histogram over `u64` values.
///
/// Geometry: starting at `first_bound`, each power-of-two magnitude is
/// split into `sub_buckets` equal linear buckets, over `doublings`
/// magnitudes. Values below `first_bound` land in a dedicated
/// *underflow* bucket, values at or above the top bound in an
/// *overflow* bucket, so no sample is ever silently lost.
///
/// With `sub_buckets = 16` the relative bucket width is ≤ 1/16 ≈ 6%
/// everywhere — plenty for OWD and queue-depth distributions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogLinearHistogram {
    first_bound: u64,
    sub_buckets: u32,
    doublings: u32,
    /// `bounds[i]` is the inclusive lower bound of bucket `i`; buckets
    /// span `[bounds[i], bounds[i+1])`.
    bounds: Vec<u64>,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl LogLinearHistogram {
    /// A histogram covering `[first_bound, first_bound << doublings)`.
    ///
    /// Panics when `first_bound` is 0, `sub_buckets` is 0, `doublings`
    /// is 0, or the top bound would overflow `u64`.
    pub fn new(first_bound: u64, sub_buckets: u32, doublings: u32) -> Self {
        assert!(first_bound > 0, "first bound must be positive");
        assert!(sub_buckets > 0, "need at least one sub-bucket");
        assert!(doublings > 0, "need at least one doubling");
        assert!(
            (64 - first_bound.leading_zeros()) + doublings <= 64,
            "histogram top bound overflows u64"
        );
        let mut bounds = Vec::with_capacity((sub_buckets * doublings) as usize + 1);
        for m in 0..doublings {
            let lo = first_bound << m;
            let width = lo; // the magnitude spans [lo, 2*lo)
            for k in 0..sub_buckets {
                bounds.push(lo + width * k as u64 / sub_buckets as u64);
            }
        }
        bounds.push(first_bound << doublings);
        // integer division can duplicate bounds when sub_buckets >
        // first_bound; deduplicate so buckets are strictly increasing
        bounds.dedup();
        let buckets = bounds.len() - 1;
        LogLinearHistogram {
            first_bound,
            sub_buckets,
            doublings,
            bounds,
            counts: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Geometry suited to nanosecond latencies: 1 us first bound, 16
    /// sub-buckets, 30 doublings (covers 1 us .. ~18 minutes).
    pub fn for_latency_ns() -> Self {
        LogLinearHistogram::new(1_000, 16, 30)
    }

    /// Geometry suited to queue depths in packets or kilobytes: first
    /// bound 1, 8 sub-buckets, 24 doublings.
    pub fn for_depth() -> Self {
        LogLinearHistogram::new(1, 8, 24)
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.total = self.total.saturating_add(n);
        self.sum = self.sum.saturating_add(value as u128 * n as u128);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if value < self.first_bound {
            self.underflow += n;
        } else if value >= *self.bounds.last().expect("non-empty bounds") {
            self.overflow += n;
        } else {
            let idx = match self.bounds.binary_search(&value) {
                Ok(i) => i,
                Err(i) => i - 1,
            };
            self.counts[idx] += n;
        }
    }

    /// Total recorded samples (including under/overflow).
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Samples below the first bound.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the top bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Smallest recorded sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest recorded sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Exact mean of the recorded samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum as f64 / self.total as f64)
    }

    /// The `(lower, upper, count)` triples of the regular buckets.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.bounds
            .windows(2)
            .zip(&self.counts)
            .map(|(w, &c)| (w[0], w[1], c))
    }

    /// Approximate quantile: the upper bound of the bucket containing
    /// the `q`-quantile sample (exact values for underflow: the first
    /// bound; for overflow: the recorded max). `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * (self.total - 1) as f64).round() as u64;
        let mut seen = self.underflow;
        if rank < seen {
            return Some(self.first_bound);
        }
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if rank < seen {
                return Some(self.bounds[i + 1]);
            }
        }
        Some(self.max)
    }

    /// Adds `other`'s counts into `self`.
    ///
    /// Panics when the two histograms have different geometry — merging
    /// mismatched buckets would silently misassign mass.
    pub fn merge(&mut self, other: &LogLinearHistogram) {
        assert_eq!(
            (self.first_bound, self.sub_buckets, self.doublings),
            (other.first_bound, other.sub_buckets, other.doublings),
            "cannot merge histograms with different geometry"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.total = self.total.saturating_add(other.total);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Compact JSON summary (count, mean, min/max, p50/p90/p99,
    /// under/overflow) for embedding in manifests.
    pub fn summary_json(&self) -> String {
        let mut out = String::new();
        let mut w = ObjectWriter::new(&mut out);
        w.u64("count", self.total)
            .u64("underflow", self.underflow)
            .u64("overflow", self.overflow);
        match self.mean() {
            Some(m) => w.f64("mean", m),
            None => w.raw("mean", "null"),
        };
        match (self.min(), self.max()) {
            (Some(lo), Some(hi)) => w.u64("min", lo).u64("max", hi),
            _ => w.raw("min", "null").raw("max", "null"),
        };
        for (name, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
            match self.quantile(q) {
                Some(v) => w.u64(name, v),
                None => w.raw(name, "null"),
            };
        }
        w.finish();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let mut c = Counter::new();
        c.add(u64::MAX - 1);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
        c.inc();
        c.add(12345);
        assert_eq!(c.get(), u64::MAX, "counter must saturate, not wrap");
    }

    #[test]
    fn gauge_set_add() {
        let mut g = Gauge::new();
        g.set(2.5);
        g.add(-1.0);
        assert_eq!(g.get(), 1.5);
    }

    #[test]
    fn bucket_boundaries_are_log_linear() {
        let h = LogLinearHistogram::new(16, 4, 2);
        // magnitude 0: [16,32) in 4 linear buckets of 4
        // magnitude 1: [32,64) in 4 linear buckets of 8
        let bounds: Vec<(u64, u64)> = h.buckets().map(|(lo, hi, _)| (lo, hi)).collect();
        assert_eq!(
            bounds,
            vec![
                (16, 20),
                (20, 24),
                (24, 28),
                (28, 32),
                (32, 40),
                (40, 48),
                (48, 56),
                (56, 64),
            ]
        );
    }

    #[test]
    fn values_land_in_the_right_bucket() {
        let mut h = LogLinearHistogram::new(16, 4, 2);
        h.record(16); // first bucket, inclusive lower bound
        h.record(19); // still first bucket
        h.record(20); // second bucket lower bound
        h.record(63); // last bucket
        let counts: Vec<u64> = h.buckets().map(|(_, _, c)| c).collect();
        assert_eq!(counts, vec![2, 1, 0, 0, 0, 0, 0, 1]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn underflow_and_overflow_buckets() {
        let mut h = LogLinearHistogram::new(16, 4, 2);
        h.record(0);
        h.record(15); // below 16 -> underflow
        h.record(64); // top bound is exclusive -> overflow
        h.record(u64::MAX);
        assert_eq!(h.underflow(), 2);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
    }

    #[test]
    fn merge_adds_counts_and_extremes() {
        let mut a = LogLinearHistogram::new(16, 4, 2);
        let mut b = LogLinearHistogram::new(16, 4, 2);
        a.record(17);
        a.record(2); // underflow
        b.record(17);
        b.record(100); // overflow
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.underflow(), 1);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.min(), Some(2));
        assert_eq!(a.max(), Some(100));
        let first = a.buckets().next().unwrap();
        assert_eq!(first.2, 2, "17 recorded twice across the merge");
    }

    #[test]
    #[should_panic(expected = "different geometry")]
    fn merge_rejects_mismatched_geometry() {
        let mut a = LogLinearHistogram::new(16, 4, 2);
        let b = LogLinearHistogram::new(16, 8, 2);
        a.merge(&b);
    }

    #[test]
    fn quantiles_are_monotone_and_bracketing() {
        let mut h = LogLinearHistogram::for_latency_ns();
        for v in [1_000u64, 10_000, 100_000, 1_000_000, 10_000_000] {
            for _ in 0..100 {
                h.record(v);
            }
        }
        let p50 = h.quantile(0.5).unwrap();
        let p90 = h.quantile(0.9).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 <= p90 && p90 <= p99);
        // p50 sits in the 100_000 ns bucket: upper bound within 1/16
        assert!(
            (100_000..=107_000).contains(&p50),
            "p50 = {p50} should bracket 100 us"
        );
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LogLinearHistogram::for_depth();
        h.record_n(10, 3);
        h.record(0); // underflow still contributes to the exact mean
        assert_eq!(h.mean(), Some(30.0 / 4.0));
    }

    #[test]
    fn dedup_keeps_buckets_strictly_increasing() {
        // sub_buckets > first_bound forces duplicate integer bounds
        let h = LogLinearHistogram::new(1, 8, 4);
        let mut prev = 0u64;
        for (lo, hi, _) in h.buckets() {
            assert!(lo < hi, "empty bucket [{lo},{hi})");
            assert!(lo >= prev);
            prev = hi;
        }
    }

    #[test]
    fn quantiles_on_empty_histogram_are_none() {
        let h = LogLinearHistogram::for_latency_ns();
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.quantile(1.0), None);
        let s = h.summary_json();
        assert!(s.contains("\"count\":0"));
        assert!(s.contains("\"mean\":null"));
        assert!(s.contains("\"p50\":null"));
        assert!(s.contains("\"p99\":null"));
    }

    #[test]
    fn quantiles_in_the_overflow_bucket_report_the_recorded_max() {
        let mut h = LogLinearHistogram::new(16, 4, 2); // top bound 64
        h.record(17);
        h.record_n(1_000, 8); // all mass beyond the top bound
        h.record(5_000);
        // p50 and up land in overflow: the exact recorded max is the
        // only honest answer the histogram can give there
        assert_eq!(h.quantile(0.5), Some(5_000));
        assert_eq!(h.quantile(0.99), Some(5_000));
        // below the overflow mass the regular buckets still answer
        assert_eq!(h.quantile(0.0), Some(20), "17 sits in [16,20)");
        let s = h.summary_json();
        assert!(s.contains("\"overflow\":9"));
        assert!(s.contains("\"p99\":5000"));
    }

    #[test]
    #[should_panic(expected = "different geometry")]
    fn merge_rejects_mismatched_first_bound_and_doublings() {
        // same sub-bucket count; differing bound/doublings must still
        // panic deterministically rather than misassign mass
        let mut a = LogLinearHistogram::new(16, 4, 2);
        let b = LogLinearHistogram::new(32, 4, 3);
        a.merge(&b);
    }

    #[test]
    fn summary_json_shape() {
        let mut h = LogLinearHistogram::new(16, 4, 2);
        h.record(20);
        let s = h.summary_json();
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert!(s.contains("\"count\":1"));
        assert!(s.contains("\"p50\":"));
    }
}
