//! Deterministic merging of per-worker observability state.
//!
//! The parallel executor (`abw-exec`) gives every worker its own
//! recorder, metric set and manifest fragment so the hot path never
//! contends on a shared sink. At join time the fragments are folded back
//! together **in job-index order** — the one ordering that makes a
//! parallel run indistinguishable from a serial one. [`Merge`] is the
//! contract every foldable type implements:
//!
//! * counters **sum** (commutative, but still folded in order),
//! * histograms merge **bucket-wise** (geometry-checked),
//! * gauges take the **last** value by job index (what a serial run
//!   would have ended with),
//! * event buffers **append** in job order,
//! * link snapshots and manifests use their existing accumulation
//!   rules.

use crate::manifest::{LinkSnapshot, RunManifest};
use crate::metrics::{Counter, Gauge, LogLinearHistogram};
use crate::prof::Profile;
use crate::record::MemoryRecorder;

/// Fold another instance of the same observable into `self`.
///
/// Callers merge fragments in **job-index order**; implementations whose
/// semantics are order-sensitive (gauges, event buffers) rely on that.
pub trait Merge {
    /// Accumulates `other` into `self`.
    fn merge_from(&mut self, other: &Self);
}

impl Merge for Counter {
    fn merge_from(&mut self, other: &Self) {
        Counter::merge_from(self, other);
    }
}

impl Merge for Gauge {
    fn merge_from(&mut self, other: &Self) {
        Gauge::merge_from(self, other);
    }
}

impl Merge for LogLinearHistogram {
    fn merge_from(&mut self, other: &Self) {
        self.merge(other);
    }
}

impl Merge for MemoryRecorder {
    fn merge_from(&mut self, other: &Self) {
        MemoryRecorder::merge_from(self, other);
    }
}

impl Merge for LinkSnapshot {
    fn merge_from(&mut self, other: &Self) {
        LinkSnapshot::merge_from(self, other);
    }
}

impl Merge for RunManifest {
    fn merge_from(&mut self, other: &Self) {
        self.absorb(other.clone());
    }
}

impl Merge for Profile {
    fn merge_from(&mut self, other: &Self) {
        Profile::merge_from(self, other);
    }
}

/// Folds `fragments` into `base` in index order — the canonical join
/// loop of the executor, exposed for direct use and tests.
pub fn merge_in_order<T: Merge>(base: &mut T, fragments: &[T]) {
    for fragment in fragments {
        base.merge_from(fragment);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Value;
    use crate::record::Recorder as _;

    #[test]
    fn counters_sum() {
        let mut a = Counter::new();
        a.add(3);
        let mut b = Counter::new();
        b.add(4);
        Merge::merge_from(&mut a, &b);
        assert_eq!(a.get(), 7);
    }

    #[test]
    fn counters_saturate_across_merge() {
        let mut a = Counter::new();
        a.add(u64::MAX - 1);
        let mut b = Counter::new();
        b.add(10);
        Merge::merge_from(&mut a, &b);
        assert_eq!(a.get(), u64::MAX);
    }

    #[test]
    fn gauges_take_last_by_job_index() {
        let mut worker0 = Gauge::new();
        worker0.set(1.0);
        let mut worker1 = Gauge::new();
        worker1.set(2.0);
        let mut worker2 = Gauge::new();
        worker2.set(3.0);
        let mut merged = Gauge::new();
        merge_in_order(&mut merged, &[worker0, worker1, worker2]);
        assert_eq!(merged.get(), 3.0, "last job's reading wins");
    }

    #[test]
    fn histograms_merge_bucket_wise() {
        let mut a = LogLinearHistogram::new(16, 4, 2);
        let mut b = LogLinearHistogram::new(16, 4, 2);
        a.record(17);
        b.record(17);
        b.record(40);
        Merge::merge_from(&mut a, &b);
        let counts: Vec<u64> = a.buckets().map(|(_, _, c)| c).collect();
        assert_eq!(counts[0], 2, "both 17s in the first bucket");
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn memory_recorders_merged_in_job_order_equal_the_serial_recorder() {
        // "serial": one recorder sees the jobs back-to-back
        let mut serial = MemoryRecorder::new();
        // "parallel": each worker records its own job
        let mut workers: Vec<MemoryRecorder> = Vec::new();
        for job in 0..4u64 {
            let mut w = MemoryRecorder::new();
            for step in 0..3u64 {
                let fields = [("job", Value::U64(job)), ("step", Value::U64(step))];
                serial.instant(job * 10 + step, "job.step", &fields);
                w.instant(job * 10 + step, "job.step", &fields);
            }
            workers.push(w);
        }
        let mut merged = MemoryRecorder::new();
        merge_in_order(&mut merged, &workers);
        assert_eq!(merged.events(), serial.events());
    }

    #[test]
    fn profiles_fold_span_trees_by_name() {
        let mut worker0 = Profile::new();
        worker0.record_path(&["exec.job"], 2, 100);
        worker0.record_path(&["exec.job", "pathload"], 2, 80);
        let mut worker1 = Profile::new();
        worker1.record_path(&["exec.job"], 1, 50);
        worker1.record_path(&["exec.job", "spruce"], 1, 40);
        let mut merged = Profile::new();
        merge_in_order(&mut merged, &[worker0, worker1]);
        assert_eq!(merged.node_stats(&["exec.job"]), Some((3, 150)));
        assert_eq!(merged.node_stats(&["exec.job", "pathload"]), Some((2, 80)));
        assert_eq!(merged.node_stats(&["exec.job", "spruce"]), Some((1, 40)));
    }

    #[test]
    fn manifests_fold_counters_and_links() {
        let mut base = RunManifest::default();
        base.add_counter("injected", 5);
        let mut frag = RunManifest::default();
        frag.add_counter("injected", 7);
        frag.fold_link(LinkSnapshot {
            link: "0".into(),
            forwarded_pkts: 3,
            ..LinkSnapshot::default()
        });
        Merge::merge_from(&mut base, &frag);
        assert_eq!(base.counters, vec![("injected".to_string(), 12)]);
        assert_eq!(base.links.len(), 1);
        assert_eq!(base.links[0].forwarded_pkts, 3);
    }
}
