//! Process-global default recorder.
//!
//! Experiment binaries install a recorder once (from `ABW_TRACE`), and
//! every `Simulator` created afterwards picks it up automatically —
//! no need to thread a recorder handle through every experiment
//! function. The global is opt-in: until [`set_global`] runs,
//! [`global`] returns `None` and nothing anywhere pays for tracing.

use std::cell::RefCell;
use std::sync::{Arc, Mutex};

use crate::event::OwnedEvent;
use crate::manifest::RunManifest;
use crate::record::{MemoryRecorder, Recorder, SharedRecorder};

static GLOBAL: Mutex<Option<SharedRecorder>> = Mutex::new(None);
static MANIFEST: Mutex<Option<RunManifest>> = Mutex::new(None);

/// Per-thread capture: while active, this thread's recorder lookups and
/// manifest folds are redirected into thread-local buffers instead of
/// the process-wide sinks. The parallel executor installs one around
/// every job so workers never contend on (or interleave within) the
/// shared trace, then replays the buffers in job-index order at join
/// time.
struct ThreadCapture {
    /// Buffered events (`None` when the job runs untraced).
    events: Option<Arc<Mutex<MemoryRecorder>>>,
    /// Manifest fragment (`None` when no manifest capture is active).
    manifest: Option<RunManifest>,
}

thread_local! {
    static THREAD_CAPTURE: RefCell<Option<ThreadCapture>> = const { RefCell::new(None) };
}

/// What a thread capture collected, returned by [`take_thread_capture`].
#[derive(Debug, Default)]
pub struct CapturedJob {
    /// Events recorded while the capture was active, in emission order.
    pub events: Vec<OwnedEvent>,
    /// Manifest fragment accumulated while the capture was active.
    pub manifest: Option<RunManifest>,
}

/// Starts redirecting this thread's [`global`] recorder lookups and
/// [`with_manifest`] folds into thread-local buffers. Replaces any
/// previous capture on this thread.
///
/// `capture_events` buffers events for later replay; `capture_manifest`
/// accumulates a manifest fragment. Passing `false` for a channel makes
/// that channel a no-op for the duration (the usual choice when the
/// corresponding process-global sink is not installed).
pub fn begin_thread_capture(capture_events: bool, capture_manifest: bool) {
    let capture = ThreadCapture {
        events: capture_events.then(|| Arc::new(Mutex::new(MemoryRecorder::new()))),
        manifest: capture_manifest.then(RunManifest::default),
    };
    THREAD_CAPTURE.with(|slot| *slot.borrow_mut() = Some(capture));
}

/// Ends this thread's capture and returns what it collected (`None`
/// when no capture was active).
pub fn take_thread_capture() -> Option<CapturedJob> {
    let capture = THREAD_CAPTURE.with(|slot| slot.borrow_mut().take())?;
    let events = match capture.events {
        Some(buffer) => buffer
            .lock()
            .map(|mut recorder| recorder.take_events())
            .unwrap_or_default(),
        None => Vec::new(),
    };
    Some(CapturedJob {
        events,
        manifest: capture.manifest,
    })
}

/// True when a thread capture is active on the calling thread.
pub fn thread_capture_active() -> bool {
    THREAD_CAPTURE.with(|slot| slot.borrow().is_some())
}

/// True when a process-global manifest capture is active
/// (regardless of any thread capture).
pub fn manifest_capture_active() -> bool {
    MANIFEST
        .lock()
        .map(|guard| guard.is_some())
        .unwrap_or(false)
}

/// True when manifest folds from the calling thread have somewhere to
/// go: a thread capture collecting manifests, or (when no capture is
/// active on this thread) the process-global accumulator. The hook
/// simulators use to decide whether keeping extra summary state (e.g.
/// queue-depth histograms) will ever be observed.
pub fn manifest_sink_active() -> bool {
    let in_capture = THREAD_CAPTURE.with(|slot| {
        slot.borrow()
            .as_ref()
            .map(|capture| capture.manifest.is_some())
    });
    match in_capture {
        // a capture is active: the global is shadowed, so only the
        // capture's own manifest channel counts
        Some(collecting) => collecting,
        None => manifest_capture_active(),
    }
}

/// Replays captured events into the process-global recorder, in order.
/// A no-op when no global recorder is installed.
pub fn replay_into_global(events: &[OwnedEvent]) {
    if events.is_empty() {
        return;
    }
    if let Some(shared) = process_global() {
        shared.with(|recorder| {
            for event in events {
                event.replay_into(recorder);
            }
        });
    }
}

/// Installs `recorder` as the process-global default, returning the
/// shared handle. Replaces any previous global.
pub fn set_global<R: Recorder + Send + 'static>(recorder: R) -> SharedRecorder {
    let shared = SharedRecorder::new(recorder);
    *GLOBAL.lock().expect("global recorder mutex poisoned") = Some(shared.clone());
    shared
}

/// The recorder new simulators should adopt: the calling thread's
/// capture buffer when one is active (and tracing), else the process
/// global, if one was installed.
pub fn global() -> Option<SharedRecorder> {
    let captured = THREAD_CAPTURE.with(|slot| {
        slot.borrow()
            .as_ref()
            .and_then(|capture| capture.events.clone())
    });
    if let Some(buffer) = captured {
        return Some(SharedRecorder::new(buffer));
    }
    process_global()
}

/// The process-global recorder, bypassing any thread capture — the
/// replay destination at executor join time.
fn process_global() -> Option<SharedRecorder> {
    GLOBAL
        .lock()
        .expect("global recorder mutex poisoned")
        .clone()
}

/// Removes the global recorder (flushing it first). Returns the handle
/// that was installed, if any.
pub fn clear_global() -> Option<SharedRecorder> {
    let mut prev = GLOBAL
        .lock()
        .expect("global recorder mutex poisoned")
        .take();
    if let Some(ref mut r) = prev {
        Recorder::flush(r);
    }
    prev
}

/// Starts capturing simulation totals into a process-global manifest
/// accumulator. While active, every `abw-netsim` simulator folds its
/// counters and link snapshots in when it is dropped — experiment code
/// needs no manifest plumbing. Replaces any previous accumulator.
pub fn begin_manifest_capture() {
    *MANIFEST.lock().expect("global manifest mutex poisoned") = Some(RunManifest::default());
}

/// Runs `f` against the active manifest accumulator — the calling
/// thread's capture fragment when one is collecting manifests, else the
/// process-global accumulator. A no-op when neither is active. Never
/// panics (drop-path safe): a poisoned mutex skips the fold instead of
/// aborting.
pub fn with_manifest<F: FnOnce(&mut RunManifest)>(f: F) {
    let mut f = Some(f);
    let handled = THREAD_CAPTURE.with(|slot| {
        let mut slot = slot.borrow_mut();
        match slot.as_mut() {
            // a capture is active: route manifest folds into its
            // fragment, or swallow them when it is not collecting —
            // a captured job must never write through to the global.
            Some(capture) => {
                if let Some(fragment) = capture.manifest.as_mut() {
                    (f.take().expect("closure consumed once"))(fragment);
                }
                true
            }
            None => false,
        }
    });
    if handled {
        return;
    }
    if let Ok(mut guard) = MANIFEST.lock() {
        if let Some(m) = guard.as_mut() {
            if let Some(f) = f.take() {
                f(m);
            }
        }
    }
}

/// Ends the capture and returns the accumulated totals, if a capture
/// was active.
pub fn take_manifest() -> Option<RunManifest> {
    MANIFEST
        .lock()
        .expect("global manifest mutex poisoned")
        .take()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::MemoryRecorder;

    #[test]
    fn global_lifecycle() {
        // single test exercising install/fetch/clear to avoid
        // cross-test interference on the shared global
        let _ = clear_global(); // start clean
        let handle = set_global(MemoryRecorder::new());
        let fetched = global().expect("recorder was installed");
        let mut f = fetched;
        f.instant(1, "g.test", &[]);
        handle.with(|r| r.flush());
        let cleared = clear_global().expect("still installed");
        assert!(global().is_none());
        // the event went into the same underlying sink
        cleared.with(|r| {
            let _ = r; // dyn Recorder: can't downcast; presence is enough
        });
    }

    #[test]
    fn thread_capture_redirects_events_and_manifest() {
        assert!(!thread_capture_active());
        begin_thread_capture(true, true);
        assert!(thread_capture_active());
        let mut recorder = global().expect("capture provides a recorder");
        recorder.instant(5, "job.event", &[]);
        with_manifest(|m| {
            m.add_counter("pkts", 2);
            m.sim_time_ns += 9;
        });
        let captured = take_thread_capture().expect("capture was active");
        assert!(!thread_capture_active());
        assert_eq!(captured.events.len(), 1);
        assert_eq!(captured.events[0].kind, "job.event");
        assert_eq!(captured.events[0].t_ns, 5);
        let fragment = captured.manifest.expect("manifest fragment collected");
        assert_eq!(fragment.counters, vec![("pkts".to_string(), 2)]);
        assert_eq!(fragment.sim_time_ns, 9);
        assert!(take_thread_capture().is_none());
    }

    #[test]
    fn manifest_only_capture_swallows_events_channel() {
        begin_thread_capture(false, true);
        // not tracing: no thread recorder, and (in this test) no global
        with_manifest(|m| {
            m.add_counter("x", 1);
        });
        let captured = take_thread_capture().expect("capture was active");
        assert!(captured.events.is_empty());
        assert_eq!(
            captured.manifest.expect("fragment").counters,
            vec![("x".to_string(), 1)]
        );
    }

    #[test]
    fn manifest_capture_lifecycle() {
        let _ = take_manifest(); // start clean
        with_manifest(|_| panic!("no capture active, closure must not run"));
        begin_manifest_capture();
        with_manifest(|m| {
            m.add_counter("pkts", 3);
            m.sim_time_ns += 10;
        });
        with_manifest(|m| {
            m.add_counter("pkts", 4);
        });
        let acc = take_manifest().expect("capture was active");
        assert_eq!(acc.counters, vec![("pkts".to_string(), 7)]);
        assert_eq!(acc.sim_time_ns, 10);
        assert!(take_manifest().is_none());
    }
}
