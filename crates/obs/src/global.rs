//! Process-global default recorder.
//!
//! Experiment binaries install a recorder once (from `ABW_TRACE`), and
//! every `Simulator` created afterwards picks it up automatically —
//! no need to thread a recorder handle through every experiment
//! function. The global is opt-in: until [`set_global`] runs,
//! [`global`] returns `None` and nothing anywhere pays for tracing.

use std::sync::Mutex;

use crate::manifest::RunManifest;
use crate::record::{Recorder, SharedRecorder};

static GLOBAL: Mutex<Option<SharedRecorder>> = Mutex::new(None);
static MANIFEST: Mutex<Option<RunManifest>> = Mutex::new(None);

/// Installs `recorder` as the process-global default, returning the
/// shared handle. Replaces any previous global.
pub fn set_global<R: Recorder + Send + 'static>(recorder: R) -> SharedRecorder {
    let shared = SharedRecorder::new(recorder);
    *GLOBAL.lock().expect("global recorder mutex poisoned") = Some(shared.clone());
    shared
}

/// The current global recorder, if one was installed.
pub fn global() -> Option<SharedRecorder> {
    GLOBAL
        .lock()
        .expect("global recorder mutex poisoned")
        .clone()
}

/// Removes the global recorder (flushing it first). Returns the handle
/// that was installed, if any.
pub fn clear_global() -> Option<SharedRecorder> {
    let mut prev = GLOBAL
        .lock()
        .expect("global recorder mutex poisoned")
        .take();
    if let Some(ref mut r) = prev {
        Recorder::flush(r);
    }
    prev
}

/// Starts capturing simulation totals into a process-global manifest
/// accumulator. While active, every `abw-netsim` simulator folds its
/// counters and link snapshots in when it is dropped — experiment code
/// needs no manifest plumbing. Replaces any previous accumulator.
pub fn begin_manifest_capture() {
    *MANIFEST.lock().expect("global manifest mutex poisoned") = Some(RunManifest::default());
}

/// Runs `f` against the global manifest accumulator; a no-op when no
/// capture is active. Never panics (drop-path safe): a poisoned mutex
/// skips the fold instead of aborting.
pub fn with_manifest<F: FnOnce(&mut RunManifest)>(f: F) {
    if let Ok(mut guard) = MANIFEST.lock() {
        if let Some(m) = guard.as_mut() {
            f(m);
        }
    }
}

/// Ends the capture and returns the accumulated totals, if a capture
/// was active.
pub fn take_manifest() -> Option<RunManifest> {
    MANIFEST
        .lock()
        .expect("global manifest mutex poisoned")
        .take()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::MemoryRecorder;

    #[test]
    fn global_lifecycle() {
        // single test exercising install/fetch/clear to avoid
        // cross-test interference on the shared global
        let _ = clear_global(); // start clean
        let handle = set_global(MemoryRecorder::new());
        let fetched = global().expect("recorder was installed");
        let mut f = fetched;
        f.instant(1, "g.test", &[]);
        handle.with(|r| r.flush());
        let cleared = clear_global().expect("still installed");
        assert!(global().is_none());
        // the event went into the same underlying sink
        cleared.with(|r| {
            let _ = r; // dyn Recorder: can't downcast; presence is enough
        });
    }

    #[test]
    fn manifest_capture_lifecycle() {
        let _ = take_manifest(); // start clean
        with_manifest(|_| panic!("no capture active, closure must not run"));
        begin_manifest_capture();
        with_manifest(|m| {
            m.add_counter("pkts", 3);
            m.sim_time_ns += 10;
        });
        with_manifest(|m| {
            m.add_counter("pkts", 4);
        });
        let acc = take_manifest().expect("capture was active");
        assert_eq!(acc.counters, vec![("pkts".to_string(), 7)]);
        assert_eq!(acc.sim_time_ns, 10);
        assert!(take_manifest().is_none());
    }
}
