//! Events: the unit of tracing.
//!
//! An [`Event`] is a borrowed view — a timestamp, a static kind, a
//! phase, and a slice of key/value fields — so emitting one allocates
//! nothing. Sinks that buffer (e.g. `MemoryRecorder`) convert to
//! [`OwnedEvent`].

use std::fmt;

/// A field value. Borrowed strings keep the emit path allocation-free.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value<'a> {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String slice.
    Str(&'a str),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for Value<'_> {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value<'_> {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value<'_> {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value<'_> {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value<'_> {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl<'a> From<&'a str> for Value<'a> {
    fn from(v: &'a str) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value<'_> {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// One named field of an event.
///
/// The key is borrowed (not `&'static`) so buffered [`OwnedEvent`]s can
/// be replayed through the same [`crate::Recorder::record`] path that
/// live emission uses — the byte-identity guarantee of deferred traces
/// rests on both paths sharing one formatter.
pub type Field<'a> = (&'a str, Value<'a>);

/// Span phase of an event (Chrome-trace-style semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A point event.
    Instant,
    /// The opening edge of a span.
    Begin,
    /// The closing edge of a span.
    End,
}

impl Phase {
    /// The single-letter JSON encoding (`i`/`B`/`E`).
    pub fn code(self) -> &'static str {
        match self {
            Phase::Instant => "i",
            Phase::Begin => "B",
            Phase::End => "E",
        }
    }
}

/// A borrowed event, as passed to [`crate::Recorder::record`].
#[derive(Debug, Clone, Copy)]
pub struct Event<'a> {
    /// Timestamp in simulated nanoseconds.
    pub t_ns: u64,
    /// Event kind, dot-namespaced (`link.enqueue`, `pathload.fleet`, …).
    /// Producers pass `&'static` literals; replayed events borrow from
    /// their [`OwnedEvent`].
    pub kind: &'a str,
    /// Span phase.
    pub phase: Phase,
    /// Key/value payload.
    pub fields: &'a [Field<'a>],
}

/// An owned copy of an [`Event`], as buffered by `MemoryRecorder`.
#[derive(Debug, Clone, PartialEq)]
pub struct OwnedEvent {
    /// Timestamp in simulated nanoseconds.
    pub t_ns: u64,
    /// Event kind.
    pub kind: String,
    /// Span phase.
    pub phase: Phase,
    /// Key/value payload (values with owned strings).
    pub fields: Vec<(String, OwnedValue)>,
}

/// Owned counterpart of [`Value`].
#[derive(Debug, Clone, PartialEq)]
pub enum OwnedValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl OwnedValue {
    /// The value as `u64`, when it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            OwnedValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            OwnedValue::F64(v) => Some(*v),
            OwnedValue::U64(v) => Some(*v as f64),
            OwnedValue::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string slice, when it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            OwnedValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<Value<'_>> for OwnedValue {
    fn from(v: Value<'_>) -> Self {
        match v {
            Value::U64(x) => OwnedValue::U64(x),
            Value::I64(x) => OwnedValue::I64(x),
            Value::F64(x) => OwnedValue::F64(x),
            Value::Str(s) => OwnedValue::Str(s.to_string()),
            Value::Bool(b) => OwnedValue::Bool(b),
        }
    }
}

impl OwnedValue {
    /// A borrowed [`Value`] view of this value.
    pub fn as_value(&self) -> Value<'_> {
        match self {
            OwnedValue::U64(v) => Value::U64(*v),
            OwnedValue::I64(v) => Value::I64(*v),
            OwnedValue::F64(v) => Value::F64(*v),
            OwnedValue::Str(s) => Value::Str(s),
            OwnedValue::Bool(b) => Value::Bool(*b),
        }
    }
}

impl OwnedEvent {
    /// Copies a borrowed event.
    pub fn from_event(ev: &Event<'_>) -> Self {
        OwnedEvent {
            t_ns: ev.t_ns,
            kind: ev.kind.to_string(),
            phase: ev.phase,
            fields: ev
                .fields
                .iter()
                .map(|(k, v)| (k.to_string(), OwnedValue::from(*v)))
                .collect(),
        }
    }

    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&OwnedValue> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Re-records this event into `recorder` through the ordinary
    /// [`crate::Recorder::record`] path, so a buffered-then-replayed
    /// trace is byte-identical to a live one.
    pub fn replay_into<R: crate::Recorder + ?Sized>(&self, recorder: &mut R) {
        let fields: Vec<Field<'_>> = self
            .fields
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_value()))
            .collect();
        recorder.record(&Event {
            t_ns: self.t_ns,
            kind: &self.kind,
            phase: self.phase,
            fields: &fields,
        });
    }
}

impl fmt::Display for OwnedEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} ns] {} ({})",
            self.t_ns,
            self.kind,
            self.phase.code()
        )?;
        for (k, v) in &self.fields {
            match v {
                OwnedValue::U64(x) => write!(f, " {k}={x}")?,
                OwnedValue::I64(x) => write!(f, " {k}={x}")?,
                OwnedValue::F64(x) => write!(f, " {k}={x}")?,
                OwnedValue::Str(s) => write!(f, " {k}={s}")?,
                OwnedValue::Bool(b) => write!(f, " {k}={b}")?,
            }
        }
        Ok(())
    }
}
