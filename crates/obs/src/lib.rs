//! # abw-obs
//!
//! Zero-external-dependency observability layer for the `abwe`
//! workspace. Every figure in Jain & Dovrolis (IMC 2004) is an argument
//! about *internal* dynamics — queue build-up during a probing stream,
//! OWD trends inside a train, convergence of an iterative search — and
//! this crate is how those dynamics become observable without a
//! debugger:
//!
//! * [`Recorder`] — span/event sink trait. [`NullRecorder`] is the
//!   zero-cost default (the simulator holds *no* recorder unless one is
//!   installed, so the off path is a single branch);
//!   [`JsonlRecorder`] streams one JSON object per event;
//!   [`MemoryRecorder`] buffers events for in-process analysis;
//!   [`SharedRecorder`] fans multiple simulators into one sink.
//! * [`metrics`] — monotonic [`metrics::Counter`]s,
//!   [`metrics::Gauge`]s, and a fixed-bucket log-linear
//!   [`metrics::LogLinearHistogram`] sized for OWD / queue-depth / gap
//!   distributions.
//! * [`manifest::RunManifest`] — seeds, scenario parameters, a
//!   git-describe-style version, wall-clock and simulated-time totals,
//!   and per-link counter snapshots, serialized as JSON so any run is
//!   reproducible from its artifact alone.
//! * [`global`] — an opt-in process-wide default recorder, the hook the
//!   `ABW_TRACE` environment plumbing in `abw-bench` uses, plus the
//!   per-thread capture layer the parallel executor (`abw-exec`) wraps
//!   around every job so traces stay byte-identical across worker
//!   counts.
//! * [`merge`] — the deterministic join-order folding of per-worker
//!   recorders, metrics and manifest fragments.
//! * [`prof`] — performance observability: wall-clock-free hot-path
//!   cost counters (legal everywhere under lint rule D1) and
//!   hierarchical span timers whose clock is injected by the harness,
//!   so real-time reads stay confined to `exec`/`bench`.
//!
//! The environment this workspace builds in is offline, so everything
//! here is hand-rolled on `std` only (no `tracing`, no `metrics`, no
//! `serde`), matching the repo's dependency policy.

pub mod event;
pub mod global;
pub mod json;
pub mod manifest;
pub mod merge;
pub mod metrics;
pub mod prof;
pub mod record;

pub use event::{Event, Field, OwnedEvent, OwnedValue, Phase, Value};
pub use manifest::{LinkSnapshot, RunManifest};
pub use merge::Merge;
pub use metrics::{Counter, Gauge, LogLinearHistogram};
pub use prof::{Cost, Profile, SpanGuard};
pub use record::{JsonlRecorder, MemoryRecorder, NullRecorder, Recorder, SharedRecorder};
