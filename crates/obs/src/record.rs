//! Recorder sinks: where events go.

use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::event::{Event, Field, OwnedEvent, Phase, Value};
use crate::json::{push_f64, push_str_escaped};

/// An event sink with span/event semantics.
///
/// The hot path is [`Recorder::record`]; `span_begin`/`span_end` are
/// sugar that tags the phase. Implementations must preserve event order
/// — traces are replayable logs, not samples.
pub trait Recorder {
    /// Consumes one event.
    fn record(&mut self, event: &Event<'_>);

    /// Flushes buffered output (no-op for unbuffered sinks).
    fn flush(&mut self) {}

    /// Records the opening edge of a span named `kind`.
    fn span_begin(&mut self, t_ns: u64, kind: &'static str, fields: &[Field<'_>]) {
        self.record(&Event {
            t_ns,
            kind,
            phase: Phase::Begin,
            fields,
        });
    }

    /// Records the closing edge of a span named `kind`.
    fn span_end(&mut self, t_ns: u64, kind: &'static str, fields: &[Field<'_>]) {
        self.record(&Event {
            t_ns,
            kind,
            phase: Phase::End,
            fields,
        });
    }

    /// Records a point event.
    fn instant(&mut self, t_ns: u64, kind: &'static str, fields: &[Field<'_>]) {
        self.record(&Event {
            t_ns,
            kind,
            phase: Phase::Instant,
            fields,
        });
    }
}

/// Discards everything. The instrumented code never pays for
/// formatting: producers build an [`Event`] from already-computed
/// values, and this sink drops it behind one virtual call.
///
/// (The truly zero-cost default is installing *no* recorder at all —
/// the simulator's record path is then a single `is-some` branch; this
/// type exists for generic code that needs a `Recorder` value.)
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline(always)]
    fn record(&mut self, _event: &Event<'_>) {}
}

/// Buffers owned copies of every event, for in-process analysis and
/// tests.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    events: Vec<OwnedEvent>,
}

impl MemoryRecorder {
    /// An empty buffer.
    pub fn new() -> Self {
        MemoryRecorder::default()
    }

    /// All recorded events, in order.
    pub fn events(&self) -> &[OwnedEvent] {
        &self.events
    }

    /// The events of one kind, in order.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a OwnedEvent> + 'a {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drops all buffered events.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Takes the buffered events out, leaving the recorder empty.
    pub fn take_events(&mut self) -> Vec<OwnedEvent> {
        std::mem::take(&mut self.events)
    }

    /// Appends `other`'s events after this recorder's own — the
    /// deterministic join-order merge used when per-worker recorders are
    /// folded back together by job index.
    pub fn merge_from(&mut self, other: &MemoryRecorder) {
        self.events.extend(other.events.iter().cloned());
    }

    /// Replays every buffered event into `recorder`, in order.
    pub fn replay_into<R: Recorder + ?Sized>(&self, recorder: &mut R) {
        for event in &self.events {
            event.replay_into(recorder);
        }
    }
}

impl Recorder for MemoryRecorder {
    fn record(&mut self, event: &Event<'_>) {
        self.events.push(OwnedEvent::from_event(event));
    }
}

/// Streams events as JSON Lines: one `{"t":…,"ev":…,"ph":…,…}` object
/// per line. With fixed seeds the byte stream is identical across runs.
pub struct JsonlRecorder<W: Write> {
    out: W,
    line: String,
    /// I/O errors observed while writing (sticky; checked by `flush`).
    error: Option<io::Error>,
}

impl JsonlRecorder<BufWriter<std::fs::File>> {
    /// Creates (truncates) `path` and streams events into it.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlRecorder::new(BufWriter::new(file)))
    }
}

impl<W: Write> JsonlRecorder<W> {
    /// Wraps an arbitrary writer.
    pub fn new(out: W) -> Self {
        JsonlRecorder {
            out,
            line: String::with_capacity(256),
            error: None,
        }
    }

    /// The first I/O error hit while writing, if any.
    pub fn io_error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Borrows the inner writer (e.g. to inspect an in-memory buffer).
    pub fn writer(&self) -> &W {
        &self.out
    }

    /// Unwraps the inner writer (flushing first).
    pub fn into_inner(mut self) -> W {
        let _ = self.out.flush();
        self.out
    }

    fn format_line(line: &mut String, event: &Event<'_>) {
        use std::fmt::Write as _;
        line.clear();
        let _ = write!(line, "{{\"t\":{},\"ev\":", event.t_ns);
        push_str_escaped(line, event.kind);
        let _ = write!(line, ",\"ph\":\"{}\"", event.phase.code());
        for (key, value) in event.fields {
            line.push(',');
            push_str_escaped(line, key);
            line.push(':');
            match value {
                Value::U64(v) => {
                    let _ = write!(line, "{v}");
                }
                Value::I64(v) => {
                    let _ = write!(line, "{v}");
                }
                Value::F64(v) => push_f64(line, *v),
                Value::Str(s) => push_str_escaped(line, s),
                Value::Bool(b) => line.push_str(if *b { "true" } else { "false" }),
            }
        }
        line.push_str("}\n");
    }
}

impl<W: Write> Recorder for JsonlRecorder<W> {
    fn record(&mut self, event: &Event<'_>) {
        if self.error.is_some() {
            return;
        }
        Self::format_line(&mut self.line, event);
        if let Err(e) = self.out.write_all(self.line.as_bytes()) {
            self.error = Some(e);
        }
    }

    fn flush(&mut self) {
        if let Err(e) = self.out.flush() {
            self.error.get_or_insert(e);
        }
    }
}

/// `Arc<Mutex<R>>` is a recorder too: the typed counterpart of
/// [`SharedRecorder`], letting a test keep a handle to a concrete sink
/// (e.g. a `MemoryRecorder`) after handing a clone to a producer.
impl<R: Recorder> Recorder for Arc<Mutex<R>> {
    fn record(&mut self, event: &Event<'_>) {
        self.lock().expect("recorder mutex poisoned").record(event);
    }

    fn flush(&mut self) {
        self.lock().expect("recorder mutex poisoned").flush();
    }
}

/// A cloneable handle fanning events from multiple producers (e.g.
/// every `Simulator` an experiment creates) into one shared sink, in
/// arrival order.
#[derive(Clone)]
pub struct SharedRecorder {
    inner: Arc<Mutex<dyn Recorder + Send>>,
}

impl SharedRecorder {
    /// Wraps `sink` for shared use.
    pub fn new<R: Recorder + Send + 'static>(sink: R) -> Self {
        SharedRecorder {
            inner: Arc::new(Mutex::new(sink)),
        }
    }

    /// Runs `f` against the underlying sink.
    pub fn with<T>(&self, f: impl FnOnce(&mut dyn Recorder) -> T) -> T {
        let mut guard = self.inner.lock().expect("recorder mutex poisoned");
        f(&mut *guard)
    }
}

impl Recorder for SharedRecorder {
    fn record(&mut self, event: &Event<'_>) {
        self.inner
            .lock()
            .expect("recorder mutex poisoned")
            .record(event);
    }

    fn flush(&mut self) {
        self.inner.lock().expect("recorder mutex poisoned").flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_event<'a>(fields: &'a [Field<'a>]) -> Event<'a> {
        Event {
            t_ns: 42,
            kind: "test.kind",
            phase: Phase::Instant,
            fields,
        }
    }

    #[test]
    fn memory_recorder_buffers_in_order() {
        let mut r = MemoryRecorder::new();
        r.instant(1, "a", &[("x", Value::U64(1))]);
        r.span_begin(2, "b", &[]);
        r.span_end(3, "b", &[]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.events()[0].kind, "a");
        assert_eq!(r.events()[1].phase, Phase::Begin);
        assert_eq!(r.events()[2].phase, Phase::End);
        assert_eq!(r.of_kind("b").count(), 2);
        assert_eq!(r.events()[0].field("x").and_then(|v| v.as_u64()), Some(1));
    }

    #[test]
    fn jsonl_lines_are_valid_and_ordered() {
        let mut r = JsonlRecorder::new(Vec::new());
        r.record(&sample_event(&[
            ("n", Value::U64(7)),
            ("rate", Value::F64(2.5)),
            ("name", Value::Str("x\"y")),
            ("ok", Value::Bool(true)),
        ]));
        r.instant(43, "second", &[]);
        let bytes = r.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            r#"{"t":42,"ev":"test.kind","ph":"i","n":7,"rate":2.5,"name":"x\"y","ok":true}"#
        );
        assert_eq!(lines[1], r#"{"t":43,"ev":"second","ph":"i"}"#);
    }

    #[test]
    fn shared_recorder_fans_into_one_sink() {
        use std::sync::atomic::{AtomicU64, Ordering};

        struct CountingSink(Arc<AtomicU64>);
        impl Recorder for CountingSink {
            fn record(&mut self, _event: &Event<'_>) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }

        let hits = Arc::new(AtomicU64::new(0));
        let shared = SharedRecorder::new(CountingSink(hits.clone()));
        let mut a = shared.clone();
        let mut b = shared.clone();
        a.instant(1, "from.a", &[]);
        b.instant(2, "from.b", &[]);
        shared.with(|r| r.flush());
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn buffered_replay_is_byte_identical_to_live_emission() {
        let fields = [
            ("n", Value::U64(7)),
            ("rate", Value::F64(2.515e6)),
            ("name", Value::Str("tool \"x\"")),
            ("ok", Value::Bool(false)),
        ];
        // live: straight into a JSONL sink
        let mut live = JsonlRecorder::new(Vec::new());
        live.record(&sample_event(&fields));
        live.span_begin(43, "span.k", &[("neg", Value::I64(-3))]);
        // deferred: buffer in memory, replay later
        let mut buffer = MemoryRecorder::new();
        buffer.record(&sample_event(&fields));
        buffer.span_begin(43, "span.k", &[("neg", Value::I64(-3))]);
        let mut replayed = JsonlRecorder::new(Vec::new());
        buffer.replay_into(&mut replayed);
        assert_eq!(live.into_inner(), replayed.into_inner());
    }

    #[test]
    fn memory_recorder_merge_appends_in_order() {
        let mut a = MemoryRecorder::new();
        a.instant(1, "first", &[]);
        let mut b = MemoryRecorder::new();
        b.instant(2, "second", &[]);
        a.merge_from(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.events()[1].kind, "second");
        let taken = a.take_events();
        assert_eq!(taken.len(), 2);
        assert!(a.is_empty());
    }

    #[test]
    fn null_recorder_discards() {
        let mut r = NullRecorder;
        r.instant(0, "anything", &[("k", Value::Bool(false))]);
        r.flush();
    }
}
