//! Convergence tracing demo: runs three estimators (Pathload, TOPP,
//! IGI/PTR) on the paper's canonical single-hop scenario with a
//! [`MemoryRecorder`] installed, then rebuilds each tool's per-iteration
//! convergence history from the recorded events.
//!
//! This is the in-process counterpart of `ABW_TRACE=run.jsonl`: the same
//! events that stream to a JSONL file can be consumed directly as typed
//! [`OwnedEvent`]s. The tools are instantiated by name through the
//! registry and driven by the session driver, which emits each tool's
//! buffered decision events at the same simulation instant the old
//! blocking implementations did.
//!
//! Usage: `cargo run --release --example trace_run`

use std::sync::{Arc, Mutex};

use abw_bench::{f, Format, Table};
use abw_core::scenario::{Scenario, SingleHopConfig};
use abw_core::tools::registry::{self, ToolConfig};
use abw_core::tools::Verdict;
use abw_netsim::SimDuration;
use abw_obs::{MemoryRecorder, OwnedEvent, OwnedValue};

/// A fresh canonical single-hop scenario (50 Mb/s link, 25 Mb/s Poisson
/// cross traffic) with a shared in-memory recorder installed.
fn traced_scenario(seed: u64) -> (Scenario, Arc<Mutex<MemoryRecorder>>) {
    let mut s = Scenario::single_hop(&SingleHopConfig {
        seed,
        ..SingleHopConfig::default()
    });
    s.warm_up(SimDuration::from_millis(500));
    let mem = Arc::new(Mutex::new(MemoryRecorder::new()));
    s.sim.set_recorder(Box::new(Arc::clone(&mem)));
    (s, mem)
}

/// Runs one registry tool (quick settings) against a traced scenario.
fn traced_run(name: &str, seed: u64) -> (Verdict, Arc<Mutex<MemoryRecorder>>) {
    let (mut s, mem) = traced_scenario(seed);
    let entry = registry::find(name).expect("registered tool");
    let mut tool = entry.build(&ToolConfig::quick());
    let mut session = s.session();
    let verdict = session.drive(&mut s.sim, tool.as_mut());
    (verdict, mem)
}

fn fu(ev: &OwnedEvent, name: &str) -> u64 {
    ev.field(name).and_then(|v| v.as_u64()).unwrap_or(0)
}

fn ff(ev: &OwnedEvent, name: &str) -> f64 {
    ev.field(name).and_then(|v| v.as_f64()).unwrap_or(f64::NAN)
}

fn fs<'a>(ev: &'a OwnedEvent, name: &str) -> &'a str {
    ev.field(name).and_then(|v| v.as_str()).unwrap_or("?")
}

fn main() {
    println!("Canonical single hop: 50 Mb/s capacity, 25 Mb/s cross traffic");
    println!("(true avail-bw 25 Mb/s). Convergence replayed from trace events.\n");

    // -- Pathload: binary search over the rate interval --------------
    let (verdict, mem) = traced_run("pathload", 7);
    let mut table = Table::new(vec!["fleet", "rate_mbps", "verdict", "lo_mbps", "hi_mbps"]);
    let mem = mem.lock().unwrap();
    for ev in mem.of_kind("pathload.fleet") {
        table.row(vec![
            fu(ev, "iter").to_string(),
            f(ff(ev, "rate_bps") / 1e6, 2),
            fs(ev, "verdict").to_string(),
            f(ff(ev, "lo_bps") / 1e6, 2),
            f(ff(ev, "hi_bps") / 1e6, 2),
        ]);
    }
    println!("Pathload — grey-region binary search, one row per fleet:");
    table.print(Format::Text);
    let (lo, hi) = verdict.range_bps().expect("pathload reports a range");
    println!(
        "reported range: [{}, {}] Mb/s\n",
        f(lo / 1e6, 2),
        f(hi / 1e6, 2),
    );
    drop(mem);

    // -- TOPP: rate sweep looking for the turning point --------------
    let (verdict, mem) = traced_run("topp", 7);
    let mut table = Table::new(vec!["round", "ri_mbps", "ro_mbps", "ri/ro"]);
    let mem = mem.lock().unwrap();
    for ev in mem.of_kind("topp.round") {
        table.row(vec![
            fu(ev, "iter").to_string(),
            f(ff(ev, "ri_bps") / 1e6, 2),
            f(ff(ev, "ro_bps") / 1e6, 2),
            f(ff(ev, "ratio"), 3),
        ]);
    }
    println!("TOPP — offered vs measured rate, one row per probing round:");
    table.print(Format::Text);
    println!("estimate: {} Mb/s\n", f(verdict.avail_bps() / 1e6, 2));
    drop(mem);

    // -- IGI/PTR: gap equalisation ------------------------------------
    let (verdict, mem) = traced_run("igi", 7);
    let mut table = Table::new(vec!["train", "rate_mbps", "igi_mbps", "ptr_mbps", "turned"]);
    let mem = mem.lock().unwrap();
    for ev in mem.of_kind("igi.train") {
        table.row(vec![
            fu(ev, "iter").to_string(),
            f(ff(ev, "rate_bps") / 1e6, 2),
            f(ff(ev, "igi_bps") / 1e6, 2),
            f(ff(ev, "ptr_bps") / 1e6, 2),
            match ev.field("turned") {
                Some(OwnedValue::Bool(b)) => b.to_string(),
                _ => "?".to_string(),
            },
        ]);
    }
    println!("IGI/PTR — gap convergence, one row per probing train:");
    table.print(Format::Text);
    println!("IGI estimate: {} Mb/s", f(verdict.avail_bps() / 1e6, 2));
}
