//! The pinned performance-record format behind `BENCH_*.json`.
//!
//! The `perf` binary measures a fixed workload matrix and writes one
//! `BENCH_<n>.json` per PR; this module owns the record schema, its
//! (de)serialization, validity checks, and the regression comparison
//! against an earlier file. The schema is deliberately flat and
//! append-only so files from different PRs stay diffable:
//!
//! ```json
//! [
//! {"bench":"netsim_microloop","metric":"packets_per_sec","value":1.5e6,"unit":"/s","jobs":1,"git":"v0-12-gabc1234"},
//! ...
//! ]
//! ```
//!
//! One record per line inside a JSON array. Units ending in `/s` are
//! throughputs (higher is better); every other unit (`ms`, `bytes`,
//! `count`, …) is a cost (lower is better). [`compare`] uses that
//! direction convention to flag >10 % regressions.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use abw_obs::json::ObjectWriter;

/// One measured data point of the perf harness.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Workload name (`netsim_microloop`, `shootout_quick`, …).
    pub bench: String,
    /// Metric within the workload (`packets_per_sec`, `wall_ms`, …).
    pub metric: String,
    /// The measured value.
    // lint: allow(units) -- unit carried by the adjacent `unit` field
    pub value: f64,
    /// Unit string; `…/s` marks a throughput, anything else a cost.
    pub unit: String,
    /// Worker count the workload ran under (1 = serial).
    pub jobs: u64,
    /// Repo version at measurement time (`git describe` or fallback).
    pub git: String,
}

impl BenchRecord {
    /// Serializes to one canonical JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let mut w = ObjectWriter::new(&mut out);
        w.str("bench", &self.bench)
            .str("metric", &self.metric)
            .f64("value", self.value)
            .str("unit", &self.unit)
            .u64("jobs", self.jobs)
            .str("git", &self.git);
        w.finish();
        out
    }

    /// Parses one record line. The format is self-controlled (always
    /// written by [`BenchRecord::to_json`]), so this is a field
    /// extractor, not a general JSON parser; unknown keys are ignored
    /// for forward compatibility.
    pub fn parse(line: &str) -> Option<BenchRecord> {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') || !line.ends_with('}') {
            return None;
        }
        Some(BenchRecord {
            bench: extract_str(line, "bench")?,
            metric: extract_str(line, "metric")?,
            value: extract_num(line, "value")?,
            unit: extract_str(line, "unit")?,
            jobs: extract_num(line, "jobs")? as u64,
            git: extract_str(line, "git")?,
        })
    }

    /// True when this record's unit marks a throughput, i.e. higher
    /// values are better and a *drop* is a regression.
    pub fn higher_is_better(&self) -> bool {
        self.unit.ends_with("/s")
    }
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let rest = field_value(line, key)?;
    let rest = rest.strip_prefix('"')?;
    // keys and values we write never contain escaped quotes, but stay
    // honest about them anyway
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            _ => out.push(c),
        }
    }
    None
}

fn extract_num(line: &str, key: &str) -> Option<f64> {
    let rest = field_value(line, key)?;
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn field_value<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)?;
    Some(line[at + needle.len()..].trim_start())
}

/// Serializes records as the canonical one-record-per-line JSON array.
pub fn render_file(records: &[BenchRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&r.to_json());
        if i + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Parses a full `BENCH_*.json` file body.
pub fn parse_file(body: &str) -> Vec<BenchRecord> {
    body.lines().filter_map(BenchRecord::parse).collect()
}

/// Checks every record is usable: finite positive value, non-empty
/// names. Returns human-readable problems (empty = valid).
pub fn validate(records: &[BenchRecord]) -> Vec<String> {
    let mut problems = Vec::new();
    if records.is_empty() {
        problems.push("no records".to_string());
    }
    for r in records {
        let id = format!("{}/{} jobs={}", r.bench, r.metric, r.jobs);
        if r.bench.is_empty() || r.metric.is_empty() || r.unit.is_empty() {
            problems.push(format!("{id}: empty bench/metric/unit"));
        }
        if !r.value.is_finite() || r.value <= 0.0 {
            problems.push(format!("{id}: value {} not finite-positive", r.value));
        }
    }
    problems
}

/// One metric that moved by more than the comparison threshold.
#[derive(Debug, Clone)]
pub struct Delta {
    /// `bench/metric jobs=n` identifier.
    pub id: String,
    /// Previous value.
    // lint: allow(units) -- unit carried by the adjacent `unit` field
    pub old: f64,
    /// Current value.
    // lint: allow(units) -- unit carried by the adjacent `unit` field
    pub new: f64,
    /// Signed relative change, `new/old - 1`.
    // lint: allow(units) -- signed relative change, dimensionless
    pub change: f64,
    /// True when the change is in the bad direction for the unit.
    pub regression: bool,
}

/// Compares `new` against `old` records matched on
/// `(bench, metric, jobs)` and returns every metric whose relative
/// change exceeds `threshold` (e.g. `0.10` = 10 %). Direction-aware:
/// throughputs (`…/s`) regress downward, costs regress upward.
/// Metrics present on only one side are skipped — the matrix is
/// allowed to grow between PRs.
pub fn compare(old: &[BenchRecord], new: &[BenchRecord], threshold: f64) -> Vec<Delta> {
    let mut deltas = Vec::new();
    for n in new {
        let Some(o) = old
            .iter()
            .find(|o| o.bench == n.bench && o.metric == n.metric && o.jobs == n.jobs)
        else {
            continue;
        };
        if o.value <= 0.0 {
            continue;
        }
        let change = n.value / o.value - 1.0;
        if change.abs() <= threshold {
            continue;
        }
        let regression = if n.higher_is_better() {
            change < 0.0
        } else {
            change > 0.0
        };
        deltas.push(Delta {
            id: format!("{}/{} jobs={}", n.bench, n.metric, n.jobs),
            old: o.value,
            new: n.value,
            change,
            regression,
        });
    }
    deltas
}

/// Renders a comparison report; regressions are tagged so CI can grep.
pub fn render_deltas(deltas: &[Delta]) -> String {
    if deltas.is_empty() {
        return "no metric moved by more than the threshold\n".to_string();
    }
    let mut out = String::new();
    for d in deltas {
        let tag = if d.regression {
            "REGRESSION"
        } else {
            "improved"
        };
        let _ = writeln!(
            out,
            "{tag:<10} {id:<44} {old:>14.3} -> {new:>14.3} ({change:+.1}%)",
            id = d.id,
            old = d.old,
            new = d.new,
            change = d.change * 100.0,
        );
    }
    out
}

/// Finds the most recent `BENCH_<n>.json` in `dir`, excluding
/// `exclude` (the file the current run is about to write). "Most
/// recent" means the highest `<n>` — PR numbers are monotonic.
pub fn previous_bench_file(dir: &Path, exclude: &Path) -> Option<PathBuf> {
    let index_of = |path: &Path| -> Option<u64> {
        path.file_name()?
            .to_str()?
            .strip_prefix("BENCH_")?
            .strip_suffix(".json")?
            .parse()
            .ok()
    };
    // `read_dir` yields `./BENCH_n.json` while the caller may hold a
    // bare `BENCH_n.json`; canonicalize so the exclusion matches
    let exclude = exclude
        .canonicalize()
        .unwrap_or_else(|_| exclude.to_path_buf());
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in std::fs::read_dir(dir).ok()? {
        let Ok(entry) = entry else { continue };
        let path = entry.path();
        if path.canonicalize().unwrap_or_else(|_| path.clone()) == exclude {
            continue;
        }
        let Some(n) = index_of(&path) else { continue };
        if best.as_ref().is_none_or(|(b, _)| n > *b) {
            best = Some((n, path));
        }
    }
    best.map(|(_, p)| p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(bench: &str, metric: &str, value: f64, unit: &str, jobs: u64) -> BenchRecord {
        BenchRecord {
            bench: bench.to_string(),
            metric: metric.to_string(),
            value,
            unit: unit.to_string(),
            jobs,
            git: "v0-test".to_string(),
        }
    }

    #[test]
    fn records_round_trip_through_the_file_format() {
        let records = vec![
            rec("netsim_microloop", "packets_per_sec", 1.5e6, "/s", 1),
            rec("shootout_quick", "wall_ms", 1234.5, "ms", 4),
        ];
        let body = render_file(&records);
        assert!(body.starts_with("[\n"), "{body}");
        assert!(body.ends_with("]\n"), "{body}");
        assert_eq!(parse_file(&body), records);
    }

    #[test]
    fn parse_ignores_array_brackets_and_unknown_keys() {
        assert!(BenchRecord::parse("[").is_none());
        assert!(BenchRecord::parse("]").is_none());
        let line =
            r#"{"bench":"b","metric":"m","value":2,"unit":"ms","jobs":1,"git":"g","extra":true},"#;
        let r = BenchRecord::parse(line).expect("parses with unknown key");
        assert_eq!(r.bench, "b");
        assert!((r.value - 2.0).abs() < 1e-12);
    }

    #[test]
    fn validate_flags_nonpositive_and_nonfinite_values() {
        let good = vec![rec("a", "m", 1.0, "ms", 1)];
        assert!(validate(&good).is_empty());
        let bad = vec![
            rec("a", "m", 0.0, "ms", 1),
            rec("a", "n", f64::NAN, "ms", 1),
        ];
        let problems = validate(&bad);
        assert_eq!(problems.len(), 2, "{problems:?}");
        assert!(validate(&[]).iter().any(|p| p.contains("no records")));
    }

    #[test]
    fn compare_is_direction_aware() {
        let old = vec![
            rec("sim", "packets_per_sec", 1000.0, "/s", 1),
            rec("run", "wall_ms", 100.0, "ms", 1),
        ];
        // throughput down 20% = regression; wall time down 20% = improvement
        let new = vec![
            rec("sim", "packets_per_sec", 800.0, "/s", 1),
            rec("run", "wall_ms", 80.0, "ms", 1),
        ];
        let deltas = compare(&old, &new, 0.10);
        assert_eq!(deltas.len(), 2);
        assert!(deltas[0].regression, "throughput drop must regress");
        assert!(!deltas[1].regression, "cost drop is an improvement");
        let report = render_deltas(&deltas);
        assert!(report.contains("REGRESSION"), "{report}");
        assert!(report.contains("improved"), "{report}");
    }

    #[test]
    fn compare_skips_small_moves_and_unmatched_metrics() {
        let old = vec![rec("sim", "packets_per_sec", 1000.0, "/s", 1)];
        let new = vec![
            rec("sim", "packets_per_sec", 950.0, "/s", 1), // -5%: under threshold
            rec("sim", "events_per_sec", 10.0, "/s", 1),   // new metric: skipped
        ];
        assert!(compare(&old, &new, 0.10).is_empty());
    }

    #[test]
    fn previous_bench_file_picks_the_highest_index() {
        let dir = std::env::temp_dir().join(format!("abw-perf-prev-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for n in [2, 6, 10] {
            std::fs::write(dir.join(format!("BENCH_{n}.json")), "[\n]\n").unwrap();
        }
        std::fs::write(dir.join("BENCH_x.json"), "junk").unwrap();
        let exclude = dir.join("BENCH_10.json");
        let prev = previous_bench_file(&dir, &exclude).expect("found");
        assert!(prev.ends_with("BENCH_6.json"), "{}", prev.display());
        std::fs::remove_dir_all(&dir).ok();
    }
}
