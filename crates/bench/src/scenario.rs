//! `--scenario <file>` support: run a declarative `.scn` spec instead
//! of a binary's built-in experiment.
//!
//! Every experiment binary calls [`maybe_run_scenario`] first thing in
//! `main`; when the flag is present the spec is loaded, validated and
//! driven through the tool registry, and the binary's own experiment
//! never runs. The dedicated `scenario` binary accepts the file as a
//! positional argument as well.
//!
//! Parse errors print the `file:line:col:` diagnostic from
//! [`abw_core::scenario::dsl::ScenarioSpec::parse`] and exit with
//! status 2, like `abw-lint` does for its findings.

use std::path::{Path, PathBuf};

use abw_core::scenario::dsl::{run_spec, ScenarioSpec, SpecOutcome};
use abw_exec::Executor;

use crate::{f, format_from_args, Format, Session, Table};

/// The `--scenario <file>` argument, when present.
pub fn scenario_arg() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--scenario")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

/// Loads and parses a spec file; the error is the rendered
/// `file:line:col:` diagnostic (or the I/O error).
pub fn load_spec(path: &Path) -> Result<ScenarioSpec, String> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
    ScenarioSpec::parse(&src, &path.display().to_string()).map_err(|e| e.to_string())
}

/// The outcome table: one row per `(tool, seed, round)` verdict.
pub fn outcome_table(outcomes: &[SpecOutcome]) -> Table {
    let mut t = Table::new(vec![
        "tool",
        "seed",
        "round",
        "est_mbps",
        "lo_mbps",
        "hi_mbps",
        "packets",
        "elapsed_s",
    ]);
    for o in outcomes {
        let (lo, hi) = match o.verdict.range_bps() {
            Some((lo, hi)) => (f(lo / 1e6, 2), f(hi / 1e6, 2)),
            None => ("-".to_string(), "-".to_string()),
        };
        t.row(vec![
            o.tool.to_string(),
            o.seed.to_string(),
            o.round.to_string(),
            f(o.verdict.avail_bps() / 1e6, 2),
            lo,
            hi,
            o.verdict.probe_packets().to_string(),
            f(o.verdict.elapsed_secs(), 3),
        ]);
    }
    t
}

/// Runs a spec file end to end under its own [`Session`], printing the
/// outcome table in the requested format. `bin` names the binary the
/// run was launched from (recorded in the manifest).
pub fn run_scenario_file(bin: &str, path: &Path) {
    let spec = match load_spec(path) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let format = format_from_args();
    let mut session = Session::start("scenario");
    session
        .manifest()
        .param_str("bin", bin)
        .param_str("spec", &path.display().to_string())
        .param_str("scenario", &spec.name)
        .param_u64("hops", spec.hops.len() as u64)
        .param_u64("rounds", u64::from(spec.rounds))
        .param_bool("quick", spec.quick)
        .param_f64("narrow_capacity_bps", spec.narrow_capacity_bps())
        .param_f64("tight_capacity_bps", spec.tight_capacity_bps());
    for &seed in &spec.seeds {
        session.manifest().push_seed(seed);
    }

    let outcomes = run_spec(&spec, &Executor::from_env());
    session
        .manifest()
        .counter("scenario.outcomes", outcomes.len() as u64);

    if format == Format::Text {
        let tools: Vec<&str> = spec.tool_entries().iter().map(|entry| entry.name).collect();
        println!(
            "Scenario `{}`: {} hop(s), narrow {} Mb/s, tight {} Mb/s, \
             configured avail {} Mb/s",
            spec.name,
            spec.hops.len(),
            f(spec.narrow_capacity_bps() / 1e6, 2),
            f(spec.tight_capacity_bps() / 1e6, 2),
            f(
                spec.hops
                    .iter()
                    .map(|h| h.avail_bps())
                    .fold(f64::INFINITY, f64::min)
                    / 1e6,
                2
            ),
        );
        println!(
            "{} seed(s) x {} tool(s) x {} round(s)\n",
            spec.seeds.len(),
            tools.len(),
            spec.rounds
        );
    }
    outcome_table(&outcomes).print(format);
    session.finish();
}

/// The early-exit hook for experiment binaries: when `--scenario
/// <file>` is on the command line, runs that spec and returns `true`
/// (the caller returns immediately, skipping its built-in experiment).
pub fn maybe_run_scenario(bin: &str) -> bool {
    let Some(path) = scenario_arg() else {
        return false;
    };
    run_scenario_file(bin, &path);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use abw_core::tools::{Estimate, Verdict};

    #[test]
    fn outcome_table_renders_points_and_ranges() {
        let outcomes = vec![SpecOutcome {
            tool: "spruce",
            seed: 11,
            round: 0,
            verdict: Verdict::Point(Estimate {
                avail_bps: 25e6,
                samples: abw_stats::Running::new().summary(),
                probe_packets: 200,
                elapsed_secs: 1.5,
            }),
        }];
        let csv = outcome_table(&outcomes).render(Format::Csv);
        assert_eq!(
            csv,
            "tool,seed,round,est_mbps,lo_mbps,hi_mbps,packets,elapsed_s\n\
             spruce,11,0,25.00,-,-,200,1.500\n"
        );
    }

    #[test]
    fn load_spec_reports_missing_file() {
        let err = load_spec(Path::new("/nonexistent/x.scn")).unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
    }
}
