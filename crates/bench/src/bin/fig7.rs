//! **Figure 7** — bulk TCP throughput vs the receiver advertised window
//! under three cross-traffic types, against a 15 Mb/s avail-bw path
//! (Pitfall 10: avail-bw ≠ bulk TCP throughput).
//!
//! Usage: `fig7 [--csv] [--quick]`

use abw_bench::{f, format_from_args, Format, Session, Table};
use abw_core::experiments::tcp_throughput::{self, TcpThroughputConfig};

fn main() {
    if abw_bench::scenario::maybe_run_scenario("fig7") {
        return;
    }
    let mut session = Session::start("fig7");
    let format = format_from_args();
    let quick = std::env::args().any(|a| a == "--quick");
    session
        .manifest()
        .param_str("mode", if quick { "quick" } else { "full" });
    let config = if quick {
        TcpThroughputConfig::quick()
    } else {
        TcpThroughputConfig::default()
    };
    let result = tcp_throughput::run(&config);

    if format == Format::Text {
        println!(
            "Figure 7: bulk TCP goodput vs receiver window; capacity {} Mb/s, \
             nominal cross load {} Mb/s, avail-bw {} Mb/s\n",
            config.capacity_bps / 1e6,
            config.cross_rate_bps / 1e6,
            f(result.avail_mbps, 0),
        );
    }
    let mut header = vec!["Wr_packets".to_string()];
    header.extend(result.curves.iter().map(|c| format!("{:?}_Mbps", c.cross)));
    let mut t = Table::new(header);
    for (i, &(wr, _)) in result.curves[0].points.iter().enumerate() {
        let mut cells = vec![wr.to_string()];
        for c in &result.curves {
            cells.push(f(c.points[i].1, 2));
        }
        t.row(cells);
    }
    t.print(format);

    if format == Format::Text {
        println!(
            "\navail-bw reference line: {} Mb/s",
            f(result.avail_mbps, 1)
        );
        for c in &result.curves {
            println!(
                "{:?}: saturates at {} Mb/s ({})",
                c.cross,
                f(c.saturated_mbps(), 2),
                if c.saturated_mbps() > result.avail_mbps {
                    "ABOVE the avail-bw"
                } else {
                    "below the avail-bw"
                }
            );
        }
        println!(
            "\nPaper shape: small windows always under-utilise; at large \
             windows the gap between TCP throughput and avail-bw is positive \
             or negative depending on the cross traffic's congestion \
             responsiveness — so bulk TCP throughput must not be used to \
             validate avail-bw estimates."
        );
    }
    session.finish();
}
