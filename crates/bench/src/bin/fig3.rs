//! **Figure 3** — mean `Ro/Ri` vs `Ri` for CBR, Poisson and Pareto
//! ON-OFF cross traffic on the 50/25 Mb/s link (Pitfall 6: cross-traffic
//! burstiness causes underestimation).
//!
//! Usage: `fig3 [--csv] [--quick]`

use abw_bench::{f, format_from_args, Format, Session, Table};
use abw_core::experiments::burstiness::{self, BurstinessConfig};

fn main() {
    if abw_bench::scenario::maybe_run_scenario("fig3") {
        return;
    }
    let mut session = Session::start("fig3");
    let format = format_from_args();
    let quick = std::env::args().any(|a| a == "--quick");
    session
        .manifest()
        .param_str("mode", if quick { "quick" } else { "full" });
    let config = if quick {
        BurstinessConfig::quick()
    } else {
        BurstinessConfig::default()
    };
    let result = burstiness::run(&config);

    if format == Format::Text {
        println!(
            "Figure 3: mean Ro/Ri over {} streams per point; avail-bw = 25 Mb/s\n",
            config.streams_per_point
        );
    }
    let mut header = vec!["Ri_Mbps".to_string()];
    header.extend(result.curves.iter().map(|c| format!("{:?}", c.model)));
    let mut t = Table::new(header);
    for (i, &(ri, _)) in result.curves[0].points.iter().enumerate() {
        let mut cells = vec![f(ri, 0)];
        for c in &result.curves {
            cells.push(f(c.points[i].1, 4));
        }
        t.row(cells);
    }
    t.print(format);

    if format == Format::Text {
        println!();
        for c in &result.curves {
            match c.first_rate_below(0.99) {
                Some(rate) => println!(
                    "{:?}: Ro/Ri first drops below 0.99 at Ri = {} Mb/s",
                    c.model, rate
                ),
                None => println!("{:?}: Ro/Ri never drops below 0.99", c.model),
            }
        }
        println!(
            "\nPaper shape: CBR stays at Ro/Ri = 1 until Ri > A; Poisson and \
             Pareto ON-OFF dip below 1 well before Ri reaches the avail-bw, \
             Pareto earlier and deeper — thresholds on Ro/Ri are \
             cross-traffic-dependent."
        );
    }
    session.finish();
}
