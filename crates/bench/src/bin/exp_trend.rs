//! Ablation — PCT/PDT threshold operating points: detection rate vs
//! false positives vs abstention for three threshold settings on bursty
//! cross traffic.
//!
//! Usage: `exp_trend [--csv] [--quick]`

use abw_bench::{f, format_from_args, Format, Session, Table};
use abw_core::experiments::trend_thresholds::{self, TrendThresholdsConfig};

fn main() {
    if abw_bench::scenario::maybe_run_scenario("exp_trend") {
        return;
    }
    let mut session = Session::start("exp_trend");
    let format = format_from_args();
    let quick = std::env::args().any(|a| a == "--quick");
    session
        .manifest()
        .param_str("mode", if quick { "quick" } else { "full" });
    let config = if quick {
        TrendThresholdsConfig::quick()
    } else {
        TrendThresholdsConfig::default()
    };
    let result = trend_thresholds::run(&config);

    if format == Format::Text {
        println!(
            "Trend-threshold ablation: {} streams per rate, Pareto ON-OFF cross \
             traffic; rates {} (below A) and {} Mb/s (above A)\n",
            config.streams,
            config.rate_below_bps / 1e6,
            config.rate_above_bps / 1e6,
        );
    }
    let mut t = Table::new(vec!["setting", "detection", "false_positive", "ambiguous"]);
    for p in &result.points {
        t.row(vec![
            p.name.to_string(),
            f(p.detection, 3),
            f(p.false_positive, 3),
            f(p.ambiguous, 3),
        ]);
    }
    t.print(format);

    if format == Format::Text {
        println!(
            "\nLower thresholds detect overload sooner but misread bursts as \
             trends; higher thresholds abstain more (costing probing fleets). \
             Pathload's published 0.66/0.54 + 0.55/0.45 sit between the \
             extremes."
        );
    }
    session.finish();
}
