//! Ablation — train length under a fixed packet budget (Fallacy 4,
//! continued): per-sample quantisation noise vs sample count.
//!
//! Usage: `exp_trains [--csv] [--quick]`

use abw_bench::{f, format_from_args, Format, Session, Table};
use abw_core::experiments::train_length::{self, TrainLengthConfig};

fn main() {
    if abw_bench::scenario::maybe_run_scenario("exp_trains") {
        return;
    }
    let mut session = Session::start("exp_trains");
    let format = format_from_args();
    let quick = std::env::args().any(|a| a == "--quick");
    session
        .manifest()
        .param_str("mode", if quick { "quick" } else { "full" });
    let config = if quick {
        TrainLengthConfig::quick()
    } else {
        TrainLengthConfig::default()
    };
    let result = train_length::run(&config);

    if format == Format::Text {
        println!(
            "Train-length ablation: {}-packet budget per estimate, {} B cross \
             packets, probing at {} Mb/s (A = 25 Mb/s)\n",
            config.packet_budget,
            config.cross_size,
            config.rate_bps / 1e6,
        );
    }
    let mut t = Table::new(vec![
        "train_len",
        "samples/estimate",
        "mean_abs_error",
        "per_sample_sd_Mbps",
    ]);
    for r in &result.rows {
        t.row(vec![
            r.train_length.to_string(),
            r.samples_per_estimate.to_string(),
            format!("{}%", f(r.mean_abs_error * 100.0, 1)),
            f(r.per_sample_sd_mbps, 1),
        ]);
    }
    t.print(format);

    if format == Format::Text {
        println!(
            "\nUnder a fixed budget, longer trains trade sample count for \
             much lower per-sample quantisation noise — the reason the \
             train-based tools (IGI/PTR, Pathload) resist coarse cross \
             traffic that defeats packet pairs (Table 1)."
        );
    }
    session.finish();
}
