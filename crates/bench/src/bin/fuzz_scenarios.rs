//! The scenario fuzzer: random valid specs driven through armed
//! `ABW_CHECK` invariants and tool-level sanity checks, failures shrunk
//! to minimal committed-format reproducer specs.
//!
//! Usage: `fuzz_scenarios [--seed S] [--count N] [--jobs J]
//!                        [--repro-dir DIR] [--shrink-budget B]
//!                        [--max-scenario-ms MS] [--quick] [--csv]`
//!
//! `--quick` pins the CI smoke configuration: seed `0xF522`, 25
//! scenarios, a 30 s simulated-time budget per `(tool, seed)` cell.
//! Exits non-zero when any scenario fails a check; shrunk reproducers
//! are written to `--repro-dir` (default `target/fuzz-repros`) so CI
//! can upload them as artifacts.
//!
//! `--max-scenario-ms` bounds each cell's *simulated* probing time: a
//! cell still running at the deadline is counted as a timeout, not a
//! failure (the 99 %-utilisation multi-hop palette corners legitimately
//! probe for minutes). The budget is mixed into the report fingerprint,
//! so bounded and unbounded runs never compare equal by accident.
//!
//! The run is bit-reproducible: same `--seed` and `--count` produce the
//! same specs, the same verdicts and the same report fingerprint for
//! any `--jobs` value or `ABW_JOBS` setting.

use std::path::PathBuf;

use abw_bench::{format_from_args, Format, Session, Table};
use abw_core::scenario::fuzz::{self, FuzzConfig};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn main() {
    let mut session = Session::start("fuzz_scenarios");
    let format = format_from_args();
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");

    let mut config = FuzzConfig::new(if quick { 0xF522 } else { 1 }, if quick { 25 } else { 50 });
    if quick {
        // keep the CI smoke leg bounded: no single palette corner may
        // eat the whole job's wall clock
        config.max_scenario_ms = Some(30_000);
    }
    if let Some(ms) = arg_value(&args, "--max-scenario-ms").and_then(|s| s.parse().ok()) {
        config.max_scenario_ms = Some(ms);
    }
    if let Some(seed) = arg_value(&args, "--seed").and_then(|s| parse_seed(&s)) {
        config.seed = seed;
    }
    if let Some(count) = arg_value(&args, "--count").and_then(|s| s.parse().ok()) {
        config.count = count;
    }
    if let Some(jobs) = arg_value(&args, "--jobs").and_then(|s| s.parse().ok()) {
        config.jobs = jobs;
    }
    if let Some(budget) = arg_value(&args, "--shrink-budget").and_then(|s| s.parse().ok()) {
        config.shrink_budget = budget;
    }
    config.repro_dir = Some(
        arg_value(&args, "--repro-dir")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("target/fuzz-repros")),
    );

    session
        .manifest()
        .param_str("mode", if quick { "quick" } else { "full" })
        .param_u64("seed", config.seed)
        .param_u64("count", u64::from(config.count))
        .param_u64("jobs", config.jobs as u64)
        .param_u64("shrink_budget", u64::from(config.shrink_budget))
        .param_u64("max_scenario_ms", config.max_scenario_ms.unwrap_or(0));

    // a failing scenario panics (by design: armed invariants report by
    // panicking) up to shrink_budget times while shrinking — silence
    // the default hook's per-panic backtrace spam for the run
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = fuzz::run(&config);
    std::panic::set_hook(default_hook);

    session
        .manifest()
        .param_bool("invariants_active", report.invariants_active)
        .param_str("fingerprint", &format!("{:016x}", report.fingerprint))
        .counter("fuzz.scenarios", u64::from(report.scenarios))
        .counter("fuzz.outcomes", report.outcomes)
        .counter("fuzz.timeouts", report.timeouts)
        .counter("fuzz.failures", report.failures.len() as u64);

    if !report.invariants_active {
        eprintln!(
            "warning: ABW_CHECK invariants are compiled out of this build \
             (release profile) — rerun with a debug build for full checking"
        );
    }

    if format == Format::Text {
        println!(
            "Scenario fuzz: seed 0x{:X}, {} scenarios, {} verdicts checked \
             ({} cell(s) timed out), fingerprint {:016x}, invariants {}",
            report.seed,
            report.scenarios,
            report.outcomes,
            report.timeouts,
            report.fingerprint,
            if report.invariants_active {
                "active"
            } else {
                "COMPILED OUT"
            },
        );
        println!();
    }

    let mut table = Table::new(vec!["scenario", "status", "detail"]);
    if report.failures.is_empty() {
        table.row(vec![
            format!("{} specs", report.scenarios),
            "ok".to_string(),
            "all checks passed".to_string(),
        ]);
    }
    for failure in &report.failures {
        let repro = failure
            .repro_path
            .as_ref()
            .map(|p| format!(" (repro: {})", p.display()))
            .unwrap_or_default();
        table.row(vec![
            failure.spec.name.clone(),
            "FAIL".to_string(),
            format!(
                "{} [shrunk to {} hop(s)/{} tool(s) in {} evals]{}",
                failure.message,
                failure.shrunk.hops.len(),
                failure.shrunk.tools.len().max(1),
                failure.shrink_evals,
                repro,
            ),
        ]);
    }
    table.print(format);

    let failed = !report.failures.is_empty();
    session.finish();
    if failed {
        std::process::exit(1);
    }
}
