//! Runs every figure/table experiment in sequence (quick mode by
//! default; pass `--full` for the paper-scale parameters).
//!
//! Usage: `all [--full]`

use std::process::Command;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let bins = [
        "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "table1", "exp_faster",
        "exp_capacity", "exp_trend", "exp_trains", "shootout",
    ];
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("exe directory");
    for bin in bins {
        println!("==============================================================");
        println!("== {bin}");
        println!("==============================================================");
        let mut cmd = Command::new(dir.join(bin));
        if !full {
            cmd.arg("--quick");
        }
        let status = cmd.status().unwrap_or_else(|e| {
            panic!("failed to launch {bin}: {e} (build the workspace first)")
        });
        assert!(status.success(), "{bin} exited with {status}");
        println!();
    }
}
