//! Runs every figure/table experiment in sequence (quick mode by
//! default; pass `--full` for the paper-scale parameters).
//!
//! Children inherit `ABW_MANIFEST` unchanged (each writes its own
//! `<name>.manifest.json`), but a shared `ABW_TRACE` path would be
//! truncated by every child in turn — so when it is set, each child
//! gets its own `<stem>-<bin>.jsonl` variant instead.
//!
//! Usage: `all [--full]`

use std::path::{Path, PathBuf};
use std::process::Command;

/// `traces/run.jsonl` + `fig1` → `traces/run-fig1.jsonl`.
fn per_child_trace(base: &Path, bin: &str) -> PathBuf {
    let stem = base
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "trace".to_string());
    let ext = base
        .extension()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "jsonl".to_string());
    base.with_file_name(format!("{stem}-{bin}.{ext}"))
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let trace_base = std::env::var_os("ABW_TRACE").map(PathBuf::from);
    let bins = [
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "table1",
        "exp_faster",
        "exp_capacity",
        "exp_trend",
        "exp_trains",
        "shootout",
    ];
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("exe directory");
    for bin in bins {
        println!("==============================================================");
        println!("== {bin}");
        println!("==============================================================");
        let mut cmd = Command::new(dir.join(bin));
        if !full {
            cmd.arg("--quick");
        }
        if let Some(base) = &trace_base {
            cmd.env("ABW_TRACE", per_child_trace(base, bin));
        }
        let status = cmd
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e} (build the workspace first)"));
        assert!(status.success(), "{bin} exited with {status}");
        println!();
    }
}
