//! Runs every figure/table experiment (quick mode by default; pass
//! `--full` for the paper-scale parameters).
//!
//! The children are independent processes, so they fan out across the
//! `abw-exec` worker pool (`ABW_JOBS`, defaulting to all cores); their
//! output is captured and printed in submission order, so the combined
//! report reads identically at any worker count. When the parent runs
//! children concurrently, each child is pinned to `ABW_JOBS=1` — the
//! parallelism budget is spent once, between processes, not squared.
//!
//! Children inherit `ABW_MANIFEST` unchanged (each writes its own
//! `<name>.manifest.json`), but a shared `ABW_TRACE` path would be
//! truncated by every child in turn — so when it is set, each child
//! gets its own `<stem>-<bin>.jsonl` variant instead.
//!
//! Usage: `all [--full]`

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::Command;

use abw_exec::Executor;

/// `traces/run.jsonl` + `fig1` → `traces/run-fig1.jsonl`.
fn per_child_trace(base: &Path, bin: &str) -> PathBuf {
    let stem = base
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "trace".to_string());
    let ext = base
        .extension()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "jsonl".to_string());
    base.with_file_name(format!("{stem}-{bin}.{ext}"))
}

fn main() {
    if abw_bench::scenario::maybe_run_scenario("all") {
        return;
    }
    let full = std::env::args().any(|a| a == "--full");
    let trace_base = std::env::var_os("ABW_TRACE").map(PathBuf::from);
    let bins = [
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "table1",
        "exp_faster",
        "exp_capacity",
        "exp_trend",
        "exp_trains",
        "shootout",
    ];
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("exe directory");
    let exec = Executor::from_env();
    let concurrent = exec.workers() > 1;
    let jobs: Vec<_> = bins
        .iter()
        .map(|&bin| {
            let dir = dir.to_path_buf();
            let trace_base = trace_base.clone();
            move || {
                let mut cmd = Command::new(dir.join(bin));
                if !full {
                    cmd.arg("--quick");
                }
                if concurrent {
                    cmd.env("ABW_JOBS", "1");
                }
                if let Some(base) = &trace_base {
                    cmd.env("ABW_TRACE", per_child_trace(base, bin));
                }
                let output = cmd.output().unwrap_or_else(|e| {
                    panic!("failed to launch {bin}: {e} (build the workspace first)")
                });
                (bin, output)
            }
        })
        .collect();

    for (bin, output) in exec.run(jobs) {
        println!("==============================================================");
        println!("== {bin}");
        println!("==============================================================");
        std::io::stdout()
            .write_all(&output.stdout)
            .expect("write child stdout");
        std::io::stderr()
            .write_all(&output.stderr)
            .expect("write child stderr");
        assert!(
            output.status.success(),
            "{bin} exited with {}",
            output.status
        );
        println!();
    }
}
