//! Pitfall 5 — estimating the tight-link capacity with end-to-end
//! capacity tools: a 100 Mb/s narrow link in front of a loaded OC-3
//! tight link (no figure in the paper; the table quantifies the
//! argument).
//!
//! Usage: `exp_capacity [--csv] [--quick]`

use abw_bench::{f, format_from_args, Format, Session, Table};
use abw_core::experiments::tight_vs_narrow::{self, TightVsNarrowConfig};

fn main() {
    if abw_bench::scenario::maybe_run_scenario("exp_capacity") {
        return;
    }
    let mut session = Session::start("exp_capacity");
    let format = format_from_args();
    let quick = std::env::args().any(|a| a == "--quick");
    session
        .manifest()
        .param_str("mode", if quick { "quick" } else { "full" });
    let config = if quick {
        TightVsNarrowConfig::quick()
    } else {
        TightVsNarrowConfig::default()
    };
    let result = tight_vs_narrow::run(&config);

    if format == Format::Text {
        println!(
            "Pitfall 5: narrow 100 Mb/s (idle) -> tight OC-3 155.52 Mb/s \
             carrying {} Mb/s\n",
            config.oc3_cross_bps / 1e6
        );
    }
    let mut t = Table::new(vec!["quantity", "Mbps"]);
    t.row(vec![
        "true tight capacity Ct".to_string(),
        f(result.true_ct_mbps, 2),
    ]);
    t.row(vec![
        "true narrow capacity Cn".to_string(),
        f(result.true_cn_mbps, 2),
    ]);
    t.row(vec![
        "true path avail-bw".to_string(),
        f(result.true_avail_mbps, 2),
    ]);
    t.row(vec![
        "capacity tool estimate".to_string(),
        f(result.measured_capacity_mbps, 2),
    ]);
    t.row(vec![
        "direct probing with Cn".to_string(),
        f(result.avail_with_cn_mbps, 2),
    ]);
    t.row(vec![
        "direct probing with Ct".to_string(),
        f(result.avail_with_true_ct_mbps, 2),
    ]);
    t.print(format);

    if format == Format::Text {
        println!(
            "\nPaper shape: dispersion-based capacity estimation reports the \
             narrow link (or less), never the tight link's capacity; feeding \
             that value into the Equation 9 inversion biases the avail-bw \
             estimate, while the true Ct recovers it."
        );
    }
    session.finish();
}
