//! **Figure 1** — CDF of the relative error of the 20-sample Poisson
//! sample mean of the avail-bw, at averaging timescales 1/10/100 ms
//! (Pitfall 1: ignoring the variability of the avail-bw process).
//!
//! Usage: `fig1 [--csv] [--quick]`

use abw_bench::{f, format_from_args, Format, Session, Table};
use abw_core::experiments::variability::{self, VariabilityConfig};

fn main() {
    if abw_bench::scenario::maybe_run_scenario("fig1") {
        return;
    }
    let mut session = Session::start("fig1");
    let format = format_from_args();
    let quick = std::env::args().any(|a| a == "--quick");
    session
        .manifest()
        .param_str("mode", if quick { "quick" } else { "full" });
    let config = if quick {
        VariabilityConfig::quick()
    } else {
        VariabilityConfig::default()
    };
    let result = variability::run(&config);

    if format == Format::Text {
        println!(
            "Figure 1: relative error of the {}-sample Poisson mean (trace mean {} Mb/s)\n",
            config.samples_per_trial,
            f(result.trace_mean_mbps, 1),
        );
    }

    // the CDF curves, on a fixed grid of error values
    let mut curve = Table::new(
        vec!["rel_error".to_string()]
            .into_iter()
            .chain(
                result
                    .curves
                    .iter()
                    .map(|c| format!("cdf_tau_{}ms", c.tau_ms)),
            )
            .collect::<Vec<_>>(),
    );
    let grid: Vec<f64> = (-25..=25).map(|i| i as f64 / 100.0).collect();
    for x in grid {
        let mut cells = vec![f(x, 2)];
        for c in &result.curves {
            cells.push(f(c.error_cdf.cdf(x), 3));
        }
        curve.row(cells);
    }
    curve.print(format);

    if format == Format::Text {
        println!();
        let mut summary = Table::new(vec![
            "tau_ms",
            "pop_sd_Mbps",
            "P(|err|>5%)",
            "err_p5",
            "err_p95",
        ]);
        for c in &result.curves {
            summary.row(vec![
                c.tau_ms.to_string(),
                f(c.population_sd_mbps, 2),
                f(c.frac_above_5pct, 3),
                f(c.error_cdf.quantile(0.05).unwrap_or(f64::NAN), 3),
                f(c.error_cdf.quantile(0.95).unwrap_or(f64::NAN), 3),
            ]);
        }
        summary.print(format);
        println!(
            "\nPaper shape: the error CDF widens as tau shrinks; at tau = 1 ms, \
             20 samples routinely miss by more than 5%."
        );
    }
    session.finish();
}
