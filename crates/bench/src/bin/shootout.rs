//! The §4 comparison: every tool under identical reproducible
//! conditions (same scenario, same seeds), reporting estimate, bias,
//! spread, overhead and latency side by side.
//!
//! Usage: `shootout [--csv] [--quick] [--cross cbr|poisson|pareto]`

use abw_bench::reports::shootout_table;
use abw_bench::{format_from_args, Format, Session};
use abw_core::experiments::shootout::{self, ShootoutConfig};
use abw_core::scenario::CrossKind;

fn main() {
    if abw_bench::scenario::maybe_run_scenario("shootout") {
        return;
    }
    let mut session = Session::start("shootout");
    let format = format_from_args();
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    session
        .manifest()
        .param_str("mode", if quick { "quick" } else { "full" });
    let cross = match args
        .iter()
        .position(|a| a == "--cross")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        Some("cbr") => CrossKind::Cbr,
        Some("pareto") => CrossKind::ParetoOnOff,
        _ => CrossKind::Poisson,
    };
    let config = ShootoutConfig {
        cross,
        ..if quick {
            ShootoutConfig::quick()
        } else {
            ShootoutConfig::default()
        }
    };
    let result = shootout::run(&config);

    if format == Format::Text {
        println!(
            "Tool shootout: {:?} cross traffic, {} seeds, truth A = {} Mb/s\n",
            config.cross,
            config.seeds.len(),
            result.truth_mbps,
        );
    }
    shootout_table(&result).print(format);

    if format == Format::Text {
        println!(
            "\nThe overhead column spans orders of magnitude and the tools \
             report different things (sample mean, range midpoint, turning \
             point) at different averaging timescales — the paper's warning \
             is that a naive accuracy ranking of this table would be \
             meaningless without holding those knobs fixed."
        );
    }
    session.finish();
}
