//! The §4 comparison: every tool under identical reproducible
//! conditions (same scenario, same seeds), reporting estimate, bias,
//! spread, overhead and latency side by side.
//!
//! Usage: `shootout [--csv] [--quick] [--cross cbr|poisson|pareto]`

use abw_bench::{f, format_from_args, Format, Session, Table};
use abw_core::experiments::shootout::{self, ShootoutConfig};
use abw_core::scenario::CrossKind;

fn main() {
    let mut session = Session::start("shootout");
    let format = format_from_args();
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    session
        .manifest()
        .param_str("mode", if quick { "quick" } else { "full" });
    let cross = match args
        .iter()
        .position(|a| a == "--cross")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        Some("cbr") => CrossKind::Cbr,
        Some("pareto") => CrossKind::ParetoOnOff,
        _ => CrossKind::Poisson,
    };
    let config = ShootoutConfig {
        cross,
        ..if quick {
            ShootoutConfig::quick()
        } else {
            ShootoutConfig::default()
        }
    };
    let result = shootout::run(&config);

    if format == Format::Text {
        println!(
            "Tool shootout: {:?} cross traffic, {} seeds, truth A = {} Mb/s\n",
            config.cross,
            config.seeds.len(),
            result.truth_mbps,
        );
    }
    let mut t = Table::new(vec![
        "tool",
        "mean_Mbps",
        "bias_Mbps",
        "sd_Mbps",
        "packets",
        "latency_s",
    ]);
    for r in &result.rows {
        t.row(vec![
            r.tool.to_string(),
            f(r.mean_mbps, 2),
            f(r.bias_mbps, 2),
            f(r.sd_mbps, 2),
            f(r.mean_packets, 0),
            f(r.mean_latency_secs, 2),
        ]);
    }
    t.print(format);

    if format == Format::Text {
        println!(
            "\nThe overhead column spans orders of magnitude and the tools \
             report different things (sample mean, range midpoint, turning \
             point) at different averaging timescales — the paper's warning \
             is that a naive accuracy ranking of this table would be \
             meaningless without holding those knobs fixed."
        );
    }
    session.finish();
}
