//! **Figure 2** — the probing stream duration controls the averaging
//! timescale: sample vs population standard deviation of the avail-bw at
//! stream durations 25–200 ms (Pitfall 2).
//!
//! Usage: `fig2 [--csv] [--quick]`

use abw_bench::{f, format_from_args, Format, Session, Table};
use abw_core::experiments::timescale_knob::{self, TimescaleConfig};

fn main() {
    if abw_bench::scenario::maybe_run_scenario("fig2") {
        return;
    }
    let mut session = Session::start("fig2");
    let format = format_from_args();
    let quick = std::env::args().any(|a| a == "--quick");
    session
        .manifest()
        .param_str("mode", if quick { "quick" } else { "full" });
    let config = if quick {
        TimescaleConfig::quick()
    } else {
        TimescaleConfig::default()
    };
    let result = timescale_knob::run(&config);

    if format == Format::Text {
        println!(
            "Figure 2: direct probing on the 50/25 Mb/s Poisson link, Ri = {} Mb/s, \
             {} streams per duration\n",
            config.input_rate_bps / 1e6,
            config.streams,
        );
    }
    let mut t = Table::new(vec![
        "duration_ms",
        "sample_sd_Mbps",
        "population_sd_Mbps",
        "sample_mean_Mbps",
    ]);
    for row in &result.rows {
        t.row(vec![
            row.duration_ms.to_string(),
            f(row.sample_sd_mbps, 2),
            f(row.population_sd_mbps, 2),
            f(row.sample_mean_mbps, 2),
        ]);
    }
    t.print(format);
    if format == Format::Text {
        println!(
            "\nPaper shape: the two standard deviations nearly coincide and both \
             fall as the stream (= averaging window) lengthens — the probing \
             duration is the timescale knob, not an implementation detail."
        );
    }
    session.finish();
}
