//! Fallacy 3 — "faster estimation is better": the latency-accuracy
//! trade-off of stream count × stream duration (no figure in the paper;
//! the sweep quantifies the argument).
//!
//! Usage: `exp_faster [--csv] [--quick]`

use abw_bench::{f, format_from_args, Format, Session, Table};
use abw_core::experiments::latency_accuracy::{self, LatencyAccuracyConfig};

fn main() {
    if abw_bench::scenario::maybe_run_scenario("exp_faster") {
        return;
    }
    let mut session = Session::start("exp_faster");
    let format = format_from_args();
    let quick = std::env::args().any(|a| a == "--quick");
    session
        .manifest()
        .param_str("mode", if quick { "quick" } else { "full" });
    let config = if quick {
        LatencyAccuracyConfig::quick()
    } else {
        LatencyAccuracyConfig::default()
    };
    let result = latency_accuracy::run(&config);

    if format == Format::Text {
        println!(
            "Fallacy 3: latency vs accuracy of direct probing on the 50/25 \
             Poisson link ({} repetitions per cell)\n",
            config.repetitions
        );
    }
    let mut t = Table::new(vec![
        "streams",
        "duration_ms",
        "latency_secs",
        "mean_abs_error",
        "estimate_sd_Mbps",
    ]);
    for c in &result.cells {
        t.row(vec![
            c.streams.to_string(),
            c.duration_ms.to_string(),
            f(c.latency_secs, 3),
            format!("{}%", f(c.mean_abs_error * 100.0, 1)),
            f(c.estimate_sd_mbps, 2),
        ]);
    }
    t.print(format);

    if format == Format::Text {
        println!(
            "\nPaper shape: shorter/fewer streams cut latency but inflate the \
             estimate variance (shorter streams also shrink the averaging \
             timescale, which raises Var[A_tau]); stream count and duration \
             are accuracy/overhead knobs, not implementation details — \
             comparisons between tools must hold them fixed."
        );
    }
    session.finish();
}
