//! **Figure 4** — mean `Ro/Ri` vs `Ri` for paths of 1, 3 and 5 tight
//! links with one-hop persistent Poisson cross traffic (Pitfall 7:
//! multiple bottlenecks cause underestimation).
//!
//! Usage: `fig4 [--csv] [--quick]`

use abw_bench::{f, format_from_args, Format, Session, Table};
use abw_core::experiments::multi_bottleneck::{self, MultiBottleneckConfig};

fn main() {
    if abw_bench::scenario::maybe_run_scenario("fig4") {
        return;
    }
    let mut session = Session::start("fig4");
    let format = format_from_args();
    let quick = std::env::args().any(|a| a == "--quick");
    session
        .manifest()
        .param_str("mode", if quick { "quick" } else { "full" });
    let config = if quick {
        MultiBottleneckConfig::quick()
    } else {
        MultiBottleneckConfig::default()
    };
    let result = multi_bottleneck::run(&config);

    if format == Format::Text {
        println!(
            "Figure 4: mean Ro/Ri over {} streams per point; every hop is a \
             50/25 Mb/s Poisson tight link\n",
            config.streams_per_point
        );
    }
    let mut header = vec!["Ri_Mbps".to_string()];
    header.extend(
        result
            .curves
            .iter()
            .map(|c| format!("tight_links_{}", c.tight_links)),
    );
    let mut t = Table::new(header);
    for (i, &(ri, _)) in result.curves[0].points.iter().enumerate() {
        let mut cells = vec![f(ri, 0)];
        for c in &result.curves {
            cells.push(f(c.points[i].1, 4));
        }
        t.row(cells);
    }
    t.print(format);

    if format == Format::Text {
        println!();
        for c in &result.curves {
            if let Some(r) = c.ratio_at(25.0) {
                println!(
                    "{} tight links: Ro/Ri at Ri = A is {}",
                    c.tight_links,
                    f(r, 4)
                );
            }
        }
        println!(
            "\nPaper shape: at Ri = A the ratio falls as the number of tight \
             links grows — each extra bottleneck adds its own interaction with \
             cross traffic."
        );
    }
    session.finish();
}
