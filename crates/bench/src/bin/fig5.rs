//! **Figure 5** — one-way delays of two 160-packet probing streams on
//! bursty cross traffic (Fallacy 8: increasing OWDs ≢ `Ro < Ri`).
//!
//! The lower stream has `Ro < Ri` although `Ri < A` (a trailing burst);
//! trend analysis of the same OWDs correctly reports "no trend".
//!
//! Usage: `fig5 [--csv] [--quick]`

use abw_bench::{f, format_from_args, Format, Session, Table};
use abw_core::experiments::owd_vs_rate::{self, OwdVsRateConfig};

fn main() {
    if abw_bench::scenario::maybe_run_scenario("fig5") {
        return;
    }
    let mut session = Session::start("fig5");
    let format = format_from_args();
    let quick = std::env::args().any(|a| a == "--quick");
    session
        .manifest()
        .param_str("mode", if quick { "quick" } else { "full" });
    let config = if quick {
        OwdVsRateConfig::quick()
    } else {
        OwdVsRateConfig::default()
    };
    let result = owd_vs_rate::run(&config);

    let below = result
        .series_below_misleading
        .as_ref()
        .unwrap_or(&result.series_below);

    if format == Format::Text {
        println!(
            "Figure 5: relative OWDs of two {}-packet streams\n",
            config.packets_per_stream
        );
        println!(
            "stream A: Ri = {} Mb/s (> A)  Ro = {} Mb/s  trend = {:?}",
            f(result.series_above.ri_mbps, 1),
            f(result.series_above.ro_mbps, 1),
            result.series_above.trend,
        );
        println!(
            "stream B: Ri = {} Mb/s (< A)  Ro = {} Mb/s  trend = {:?}{}\n",
            f(below.ri_mbps, 1),
            f(below.ro_mbps, 1),
            below.trend,
            if result.series_below_misleading.is_some() {
                "   <-- Ro < Ri despite Ri < A"
            } else {
                ""
            },
        );
    }

    let mut t = Table::new(vec!["packet", "owd_above_ms", "owd_below_ms"]);
    for (i, (a, b)) in result.series_above.owds.iter().zip(&below.owds).enumerate() {
        t.row(vec![i.to_string(), f(a * 1e3, 3), f(b * 1e3, 3)]);
    }
    t.print(format);

    if format == Format::Text {
        println!(
            "\nInference error rates over {} streams per rate:",
            config.streams
        );
        let mut s = Table::new(vec![
            "Ri_Mbps",
            "truly_above",
            "rate_rule_says_above",
            "trend_says_above",
            "trend_ambiguous",
        ]);
        for st in &result.stats {
            s.row(vec![
                f(st.ri_mbps, 0),
                st.truly_above.to_string(),
                f(st.rate_rule_says_above, 3),
                f(st.trend_says_above, 3),
                f(st.trend_ambiguous, 3),
            ]);
        }
        s.print(format);
        println!(
            "\nPaper shape: below the avail-bw the Ro/Ri rule fires false \
             positives on cross-traffic bursts, while OWD trend analysis stays \
             correct — the OWD series carries more information than one ratio."
        );
    }
    session.finish();
}
