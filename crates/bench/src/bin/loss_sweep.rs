//! Estimate bias and convergence cost under injected packet loss:
//! every registry tool × i.i.d. loss rate ∈ {0, 0.1%, 1%, 5%} on the
//! single-hop scenario, with the per-tool truth corrected for the
//! cross traffic the impairment itself thins away.
//!
//! Usage: `loss_sweep [--csv] [--quick]`

use abw_bench::reports::loss_sweep_table;
use abw_bench::{format_from_args, Format, Session};
use abw_core::experiments::loss_sweep::{self, LossSweepConfig};

fn main() {
    if abw_bench::scenario::maybe_run_scenario("loss_sweep") {
        return;
    }
    let mut session = Session::start("loss_sweep");
    let format = format_from_args();
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let config = if quick {
        LossSweepConfig::quick()
    } else {
        LossSweepConfig::default()
    };
    session
        .manifest()
        .param_str("mode", if quick { "quick" } else { "full" })
        .param_str(
            "loss_rates",
            &config
                .loss_rates
                .iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
                .join(","),
        );

    let result = loss_sweep::run(&config);

    if format == Format::Text {
        println!(
            "Loss sweep: {:?} cross traffic, {} seed(s) per cell, \
             i.i.d. ingress loss on the single hop\n",
            config.cross,
            config.seeds.len(),
        );
    }
    loss_sweep_table(&result).print(format);

    if format == Format::Text {
        println!(
            "\nLoss thins the cross traffic too, so the truth column rises \
             with the loss rate; bias is measured against that corrected \
             truth. Tools that resend whole streams on a gap pay in the \
             packets and latency columns instead of the bias column."
        );
    }
    session.finish();
}
