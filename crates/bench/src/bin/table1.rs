//! **Table 1** — relative error of packet-pair probing vs the cross
//! traffic packet size `Lc` and the sample count `k` (Fallacy 4: packet
//! pairs are as good as packet trains).
//!
//! Usage: `table1 [--csv] [--quick]`

use abw_bench::reports::table1_table;
use abw_bench::{format_from_args, Format, Session};
use abw_core::experiments::pairs_vs_trains::{self, PairsVsTrainsConfig};

fn main() {
    if abw_bench::scenario::maybe_run_scenario("table1") {
        return;
    }
    let mut session = Session::start("table1");
    let format = format_from_args();
    let quick = std::env::args().any(|a| a == "--quick");
    session
        .manifest()
        .param_str("mode", if quick { "quick" } else { "full" });
    let config = if quick {
        PairsVsTrainsConfig::quick()
    } else {
        PairsVsTrainsConfig::default()
    };
    let result = pairs_vs_trains::run(&config);

    if format == Format::Text {
        println!(
            "Table 1: mean |relative error| of the k-sample packet-pair mean; \
             probing packets {} B at {} Mb/s, avail-bw 25 Mb/s\n",
            config.probe_size,
            config.pair_rate_bps / 1e6,
        );
    }
    table1_table(&result).print(format);

    if format == Format::Text {
        println!(
            "\nPaper shape (Table 1): ~0% error for 40 B cross packets at any \
             k; tens of percent at k = 10 for 1500 B cross packets, decaying \
             roughly as 1/sqrt(k) — pair accuracy depends on the cross \
             traffic's packet-size granularity, trains average it out."
        );
    }
    session.finish();
}
