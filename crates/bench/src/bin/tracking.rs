//! Tracking a time-varying avail-bw: the cross source steps the single
//! hop 25 → 10 → 40 Mb/s while registry tools keep re-estimating over
//! one long-lived session, and the table reports how quickly each tool's
//! estimate followed the step.
//!
//! Usage: `tracking [--csv] [--quick] [--tools name,name,...]`

use abw_bench::reports::tracking_table;
use abw_bench::{f, format_from_args, Format, Session};
use abw_core::experiments::tracking::{self, TrackingConfig};
use abw_core::tools::registry;

fn main() {
    if abw_bench::scenario::maybe_run_scenario("tracking") {
        return;
    }
    let mut session = Session::start("tracking");
    let format = format_from_args();
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut config = if quick {
        TrackingConfig::quick()
    } else {
        TrackingConfig::default()
    };
    if let Some(list) = args
        .iter()
        .position(|a| a == "--tools")
        .and_then(|i| args.get(i + 1))
    {
        config.tools = list
            .split(',')
            .map(|name| {
                registry::find(name)
                    .unwrap_or_else(|| panic!("`{name}` is not a registered tool"))
                    .name
            })
            .collect();
    }
    session
        .manifest()
        .param_str("mode", if quick { "quick" } else { "full" })
        .param_str("tools", &config.tools.join(","));

    let result = tracking::run(&config);

    if format == Format::Text {
        let steps: Vec<String> = config.steps_bps.iter().map(|&b| f(b / 1e6, 0)).collect();
        println!(
            "Avail-bw tracking: steps {} Mb/s, {} rounds per step, \
             one session per tool (no simulator rebuild)\n",
            steps.join(" -> "),
            config.rounds_per_step,
        );
    }
    tracking_table(&result).print(format);

    if format == Format::Text {
        println!(
            "\nA `-` lag means no estimate of that phase landed within \
             {}% of the new truth — the avail-bw moved faster than the \
             tool's measurement latency, the paper's core argument for \
             treating A_tau(t) as a process rather than a number.",
            (TrackingConfig::default().in_band_fraction * 100.0) as u32
        );
    }
    session.finish();
}
