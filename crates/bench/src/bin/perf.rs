//! The pinned performance harness: measures a fixed workload matrix
//! and writes `BENCH_<n>.json` (see [`abw_bench::perf`] for the record
//! schema).
//!
//! Workloads:
//!
//! * `netsim_microloop` — the single-hop Poisson scenario run for a
//!   fixed span of simulated time with no probing: raw simulator
//!   throughput in packets/s and events/s of wall time;
//! * `shootout_quick` — the quick tool shootout, wall time at
//!   `jobs = 1` and `jobs = max`, plus heap traffic of both legs
//!   (this binary installs the counting allocator; the parallel leg
//!   records the summed traffic of every worker);
//! * `loss_sweep_quick` — the quick loss sweep, wall time at both
//!   worker counts (skipped under `--quick`);
//! * `tool_cost` — one quick drive per registry tool: probe packets
//!   sent and simulator events consumed per estimate.
//!
//! Usage: `perf [--quick] [--out PATH] [--compare] [--allow-dirty]
//! [--check PATH]`
//!
//! * `--quick`    CI-sized run: shorter micro-loop, no loss sweep;
//! * `--out`      output path (default `BENCH_6.json`);
//! * `--compare`  diff against the previous `BENCH_<n>.json` next to
//!   the output file and flag >10 % regressions (direction-aware);
//! * `--allow-dirty`  record from an uncommitted tree anyway; the
//!   `git` field keeps the `-dirty` suffix so the provenance is on
//!   the record. Without it the harness refuses: a committed baseline
//!   must be reproducible from its recorded revision;
//! * `--check`    validate an existing file instead of measuring:
//!   schema parses, every value finite and positive, ≥ 8 records;
//! * `--diff OLD NEW`  compare two existing `BENCH_*.json` files
//! * `--accept B/M`    (with `--diff`, repeatable) report but do not
//!   fail on regressions of metric `bench/metric` — the CI record of an
//!   intended tradeoff (e.g. memory spent for throughput)
//!   (direction-aware, same >10 % threshold as `--compare`) and exit
//!   non-zero when any metric regressed — the CI gate between the two
//!   committed baselines, which is deterministic because both were
//!   recorded on the same machine from clean trees.
//!
//! Set `ABW_PROF=1` to also get the span-tree report on stderr.

use std::path::PathBuf;
use std::time::Instant;

use abw_bench::{perf, Session};
use abw_core::experiments::{loss_sweep, shootout};
use abw_core::scenario::{Scenario, SingleHopConfig};
use abw_core::tools::registry::{self, ToolConfig};
use abw_exec::{available_workers, Executor};
use abw_netsim::{SimDuration, SimTime};
use abw_obs::prof::{self, Cost};

#[global_allocator]
static ALLOC: prof::CountingAlloc = prof::CountingAlloc;

/// Regressions larger than this fraction are flagged by `--compare`.
const REGRESSION_THRESHOLD: f64 = 0.10;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--check") {
        let path = args.get(i + 1).map(PathBuf::from).unwrap_or_else(|| {
            eprintln!("--check needs a file argument");
            std::process::exit(2);
        });
        std::process::exit(check(&path));
    }
    if let Some(i) = args.iter().position(|a| a == "--diff") {
        let (Some(old), Some(new)) = (args.get(i + 1), args.get(i + 2)) else {
            eprintln!("--diff needs OLD and NEW file arguments");
            std::process::exit(2);
        };
        // `--accept bench/metric` (repeatable): regressions of that
        // metric are reported but do not fail the gate — the record of
        // an intended tradeoff lives in the CI invocation, not in a
        // silently weakened comparison.
        let accepted: Vec<&str> = args
            .iter()
            .enumerate()
            .filter(|(_, a)| *a == "--accept")
            .filter_map(|(j, _)| args.get(j + 1).map(String::as_str))
            .collect();
        std::process::exit(diff(&PathBuf::from(old), &PathBuf::from(new), &accepted));
    }

    let quick = args.iter().any(|a| a == "--quick");
    let compare = args.iter().any(|a| a == "--compare");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_6.json"));

    let mut session = Session::start("perf");
    session
        .manifest()
        .param_str("mode", if quick { "quick" } else { "full" });

    let git = abw_obs::manifest::detect_version();
    if git.ends_with("-dirty") && !args.iter().any(|a| a == "--allow-dirty") {
        eprintln!(
            "refusing to record a baseline from a dirty tree ({git}): \
             commit first, or pass --allow-dirty to keep the -dirty \
             provenance on every record"
        );
        std::process::exit(2);
    }
    let max_jobs = available_workers() as u64;
    let mut records: Vec<perf::BenchRecord> = Vec::new();
    let push = |records: &mut Vec<perf::BenchRecord>,
                bench: &str,
                metric: &str,
                value: f64,
                unit: &str,
                jobs: u64| {
        records.push(perf::BenchRecord {
            bench: bench.to_string(),
            metric: metric.to_string(),
            value,
            unit: unit.to_string(),
            jobs,
            git: git.clone(),
        });
    };

    // -- netsim micro-loop: simulator throughput with no probing ------
    // ~25 Mb/s of 1500 B Poisson cross = ~2.1k packets per simulated
    // second. The run is deterministic (same seed, same packet count
    // every trial), so only the wall-time denominator is noisy; best-of
    // over a few trials discards scheduler interference on a shared
    // runner, approximating the machine's true uncontended throughput.
    let sim_secs = if quick { 20.0 } else { 120.0 };
    let trials = if quick { 3 } else { 5 };
    let mut wall = f64::INFINITY;
    let mut d = prof::snapshot().delta(&prof::snapshot());
    for _ in 0..trials {
        let mut scenario = Scenario::single_hop(&SingleHopConfig {
            seed: 7,
            ..SingleHopConfig::default()
        });
        let before = prof::snapshot();
        let started = Instant::now();
        scenario
            .sim
            .run_until(SimTime::from_nanos((sim_secs * 1e9) as u64));
        let trial_wall = started.elapsed().as_secs_f64();
        let trial_d = prof::snapshot().delta(&before);
        drop(scenario);
        if trial_wall < wall {
            wall = trial_wall;
            d = trial_d;
        }
    }
    if wall > 0.0 {
        push(
            &mut records,
            "netsim_microloop",
            "packets_per_sec",
            d.get(Cost::PacketsSimulated) as f64 / wall,
            "/s",
            1,
        );
        push(
            &mut records,
            "netsim_microloop",
            "events_per_sec",
            d.get(Cost::EventsPopped) as f64 / wall,
            "/s",
            1,
        );
    }
    eprintln!(
        "netsim_microloop: {} packets, {} events in {:.3}s (best of {trials})",
        d.get(Cost::PacketsSimulated),
        d.get(Cost::EventsPopped),
        wall,
    );

    // -- quick shootout wall time, serial and parallel ----------------
    let shootout_config = shootout::ShootoutConfig::quick();
    for jobs in jobs_legs(max_jobs) {
        let before = prof::snapshot();
        let started = Instant::now();
        let result = shootout::run_with(&shootout_config, &Executor::new(jobs as usize));
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        let d = prof::snapshot().delta(&before);
        push(
            &mut records,
            "shootout_quick",
            "wall_ms",
            wall_ms,
            "ms",
            jobs,
        );
        // Heap traffic on both legs: the counting allocator totals are
        // process-global, so the parallel leg's delta is the summed
        // traffic of every worker — the same simulations run on either
        // leg, and a worker pool that inflated allocation (per-thread
        // buffers regrowing, results copied instead of moved) should
        // fail the gate just like the serial leg would.
        push(
            &mut records,
            "shootout_quick",
            "heap_allocs",
            d.get(Cost::HeapAllocs) as f64,
            "count",
            jobs,
        );
        push(
            &mut records,
            "shootout_quick",
            "heap_bytes",
            d.get(Cost::HeapBytes) as f64,
            "bytes",
            jobs,
        );
        eprintln!(
            "shootout_quick jobs={jobs}: {:.0} ms, {} rows",
            wall_ms,
            result.rows.len(),
        );
    }

    // -- quick loss sweep wall time (full mode only) ------------------
    if !quick {
        let sweep_config = loss_sweep::LossSweepConfig::quick();
        for jobs in jobs_legs(max_jobs) {
            let started = Instant::now();
            let result = loss_sweep::run_with(&sweep_config, &Executor::new(jobs as usize));
            let wall_ms = started.elapsed().as_secs_f64() * 1e3;
            push(
                &mut records,
                "loss_sweep_quick",
                "wall_ms",
                wall_ms,
                "ms",
                jobs,
            );
            eprintln!(
                "loss_sweep_quick jobs={jobs}: {:.0} ms, {} cells",
                wall_ms,
                result.rows.len(),
            );
        }
    }

    // -- per-tool probe-packet and event cost -------------------------
    let tool_config = ToolConfig::quick();
    for entry in registry::all() {
        let mut s = Scenario::single_hop(&SingleHopConfig {
            seed: 11,
            ..SingleHopConfig::default()
        });
        s.warm_up(SimDuration::from_millis(500));
        let mut tool = entry.build(&tool_config);
        let mut probe_session = s.session();
        let before = prof::snapshot();
        let verdict = probe_session.drive(&mut s.sim, tool.as_mut());
        let d = prof::snapshot().delta(&before);
        push(
            &mut records,
            &format!("tool_{}", entry.name),
            "probe_packets",
            verdict.probe_packets() as f64,
            "count",
            1,
        );
        push(
            &mut records,
            &format!("tool_{}", entry.name),
            "events",
            d.get(Cost::EventsPopped) as f64,
            "count",
            1,
        );
    }

    // -- write, validate, compare -------------------------------------
    let problems = perf::validate(&records);
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("invalid record: {p}");
        }
        std::process::exit(1);
    }
    let body = perf::render_file(&records);
    if let Err(e) = std::fs::write(&out, &body) {
        eprintln!("cannot write {}: {e}", out.display());
        std::process::exit(1);
    }
    println!(
        "wrote {} records ({} workloads) to {}",
        records.len(),
        {
            let mut benches: Vec<&str> = records.iter().map(|r| r.bench.as_str()).collect();
            benches.dedup();
            benches.len()
        },
        out.display(),
    );

    if compare {
        let dir = out.parent().filter(|p| !p.as_os_str().is_empty());
        let previous = dir
            .map(PathBuf::from)
            .or_else(|| Some(PathBuf::from(".")))
            .and_then(|d| perf::previous_bench_file(&d, &out));
        match previous {
            Some(prev) => {
                let old_body = std::fs::read_to_string(&prev).unwrap_or_default();
                let old = perf::parse_file(&old_body);
                println!(
                    "comparison against {} ({} records, threshold {:.0}%):",
                    prev.display(),
                    old.len(),
                    REGRESSION_THRESHOLD * 100.0,
                );
                print!(
                    "{}",
                    perf::render_deltas(&perf::compare(&old, &records, REGRESSION_THRESHOLD))
                );
            }
            None => println!("no previous BENCH_*.json to compare against"),
        }
    }

    session.finish();
}

/// The worker counts to measure: always serial, plus the machine
/// maximum. The parallel leg uses at least two workers so the
/// scheduling path (thread spawn, work distribution, result replay)
/// is measured even on a single-core machine.
fn jobs_legs(max_jobs: u64) -> Vec<u64> {
    vec![1, max_jobs.max(2)]
}

/// `--diff`: direction-aware comparison of two committed baselines.
/// Regressions whose `bench/metric` id is listed in `accepted` are
/// downgraded to a visible `accepted` tag instead of failing the gate;
/// exit 1 when anything moved >10 % in the bad direction.
fn diff(old_path: &PathBuf, new_path: &PathBuf, accepted: &[&str]) -> i32 {
    let read = |p: &PathBuf| -> Vec<perf::BenchRecord> {
        match std::fs::read_to_string(p) {
            Ok(b) => perf::parse_file(&b),
            Err(e) => {
                eprintln!("cannot read {}: {e}", p.display());
                std::process::exit(2);
            }
        }
    };
    let old = read(old_path);
    let new = read(new_path);
    println!(
        "{} ({} records) vs {} ({} records), threshold {:.0}%:",
        old_path.display(),
        old.len(),
        new_path.display(),
        new.len(),
        REGRESSION_THRESHOLD * 100.0,
    );
    let deltas = perf::compare(&old, &new, REGRESSION_THRESHOLD);
    if deltas.is_empty() {
        println!("no metric moved by more than the threshold");
        return 0;
    }
    let mut failed = false;
    for d in &deltas {
        // the Delta id is "bench/metric jobs=n"; acceptance is per
        // metric, across both jobs legs
        let metric_id = d.id.split(' ').next().unwrap_or(&d.id);
        let tag = if d.regression && accepted.contains(&metric_id) {
            "accepted"
        } else if d.regression {
            failed = true;
            "REGRESSION"
        } else {
            "improved"
        };
        println!(
            "{tag:<10} {id:<44} {old:>14.3} -> {new:>14.3} ({change:+.1}%)",
            id = d.id,
            old = d.old,
            new = d.new,
            change = d.change * 100.0,
        );
    }
    if failed {
        eprintln!("regression gate failed");
        1
    } else {
        0
    }
}

/// `--check`: validates an existing `BENCH_*.json` for CI.
fn check(path: &PathBuf) -> i32 {
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read {}: {e}", path.display());
            return 1;
        }
    };
    let records = perf::parse_file(&body);
    let mut problems = perf::validate(&records);
    if records.len() < 8 {
        problems.push(format!("only {} records, expected >= 8", records.len()));
    }
    if problems.is_empty() {
        println!("{}: {} records, all valid", path.display(), records.len());
        0
    } else {
        for p in &problems {
            eprintln!("{}: {p}", path.display());
        }
        1
    }
}
