//! **Figure 6** — the avail-bw sample path at tau = 10 ms on the
//! synthetic NLANR-substitute trace, with Pathload's variation range
//! (Fallacy 9: iterative probing converges to a range, not a point).
//!
//! Usage: `fig6 [--csv] [--quick]`

use abw_bench::{f, format_from_args, Format, Session, Table};
use abw_core::experiments::variation_range::{self, VariationRangeConfig};

fn main() {
    if abw_bench::scenario::maybe_run_scenario("fig6") {
        return;
    }
    let mut session = Session::start("fig6");
    let format = format_from_args();
    let quick = std::env::args().any(|a| a == "--quick");
    session
        .manifest()
        .param_str("mode", if quick { "quick" } else { "full" });
    let config = if quick {
        VariationRangeConfig::quick()
    } else {
        VariationRangeConfig::default()
    };
    let result = variation_range::run(&config);

    if format == Format::Text {
        println!(
            "Figure 6: A_tau(t) sample path, tau = {} ms, OC-3 substitute trace\n",
            config.tau_ns / 1_000_000
        );
    }
    let mut t = Table::new(vec!["t_secs", "avail_bw_Mbps"]);
    // decimate for the text table; --csv gets every point
    let stride = if format == Format::Text { 20 } else { 1 };
    for (i, &(ts, a)) in result.sample_path.iter().enumerate() {
        if i % stride == 0 {
            t.row(vec![f(ts, 2), f(a, 1)]);
        }
    }
    t.print(format);

    if format == Format::Text {
        println!("\nmean avail-bw:        {} Mb/s", f(result.mean_mbps, 1));
        println!(
            "true variation range:  {} .. {} Mb/s  (5th..95th percentile of A_10ms)",
            f(result.true_range_mbps.0, 1),
            f(result.true_range_mbps.1, 1),
        );
        println!(
            "Pathload range:        {} .. {} Mb/s  (R_L .. R_H)",
            f(result.pathload_range_mbps.0, 1),
            f(result.pathload_range_mbps.1, 1),
        );
        println!(
            "\nPaper shape: the 10 ms sample path swings over tens of Mb/s \
             (60–110 on the NLANR trace); iterative probing brackets that \
             variation — the Pathload range is not a confidence interval for \
             the mean."
        );
    }
    session.finish();
}
