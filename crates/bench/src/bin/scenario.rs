//! Runs a declarative `.scn` scenario spec through the tool registry.
//!
//! Usage: `scenario <file.scn> [--csv]`
//! (also accepts the flag form `scenario --scenario <file.scn>`)
//!
//! See `tests/golden/scenarios/` for committed example specs and the
//! README's "Describing scenarios" section for the grammar.

use abw_bench::scenario::{run_scenario_file, scenario_arg};

fn main() {
    let path = scenario_arg().or_else(|| {
        std::env::args()
            .skip(1)
            .find(|a| !a.starts_with("--"))
            .map(std::path::PathBuf::from)
    });
    let Some(path) = path else {
        eprintln!("usage: scenario <file.scn> [--csv]");
        std::process::exit(2);
    };
    run_scenario_file("scenario", &path);
}
