//! # abw-bench
//!
//! The experiment harness: one binary per figure/table of the paper
//! (`fig1` … `fig7`, `table1`, `exp_faster`, `exp_capacity`, and the
//! `all` runner), plus Criterion benches for the simulator and the
//! estimation kernels.
//!
//! Binaries print the same rows/series the paper reports, as aligned
//! text tables; pass `--csv` to any binary to get comma-separated output
//! instead (for plotting).
//!
//! ## Observability
//!
//! Every binary opens a [`Session`], which reads two environment
//! variables:
//!
//! * `ABW_TRACE=path.jsonl` — installs a process-global JSONL recorder;
//!   every simulator the run creates streams its events there
//!   (byte-identical across runs with the same seeds);
//! * `ABW_MANIFEST=dir` — writes `dir/<name>.manifest.json` describing
//!   the run (version, parameters, wall-clock time) when the session
//!   finishes;
//! * `ABW_PROF=1` — enables span profiling: when the session finishes,
//!   a merged span tree (inclusive wall time across all workers) and
//!   the hot-path cost counters are printed to stderr.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Instant;

use abw_obs::{JsonlRecorder, RunManifest};

pub mod perf;
pub mod reports;
pub mod scenario;

/// Monotonic nanoseconds since the first call, for
/// [`abw_obs::prof::enable`]. Lives here (not in `abw-obs`) because the
/// observability crate is wall-clock-free by lint rule D1; the harness
/// is where time is allowed to exist.
pub fn prof_clock_nanos() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// True when `ABW_PROF` asks for profiling (set and not `0`/empty).
fn prof_requested() -> bool {
    std::env::var("ABW_PROF").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// One experiment-binary run: wires `ABW_TRACE` / `ABW_MANIFEST` into
/// the observability layer and owns the run's [`RunManifest`].
///
/// Call [`Session::start`] first thing in `main` and
/// [`Session::finish`] last; everything in between is optional.
pub struct Session {
    manifest: RunManifest,
    manifest_dir: Option<PathBuf>,
    tracing: bool,
    profiling: bool,
    started: Instant,
}

impl Session {
    /// Starts a session for the binary `name`, reading `ABW_TRACE` and
    /// `ABW_MANIFEST` from the environment. Trace-file errors are
    /// reported to stderr and disable tracing rather than aborting the
    /// experiment.
    pub fn start(name: &str) -> Session {
        Session::start_with(
            name,
            std::env::var_os("ABW_TRACE").map(PathBuf::from),
            std::env::var_os("ABW_MANIFEST").map(PathBuf::from),
        )
    }

    /// [`Session::start`] with explicit destinations (testable without
    /// touching the process environment).
    pub fn start_with(
        name: &str,
        trace_path: Option<PathBuf>,
        manifest_dir: Option<PathBuf>,
    ) -> Session {
        let mut tracing = false;
        if let Some(path) = trace_path {
            match JsonlRecorder::create(&path) {
                Ok(recorder) => {
                    abw_obs::global::set_global(recorder);
                    tracing = true;
                }
                Err(e) => eprintln!("ABW_TRACE: cannot create {}: {e}", path.display()),
            }
        }
        if manifest_dir.is_some() {
            // every simulator the run creates folds its totals in on drop
            abw_obs::global::begin_manifest_capture();
        }
        let profiling = prof_requested();
        if profiling {
            abw_obs::prof::enable(prof_clock_nanos);
        }
        let mut manifest = RunManifest::new(name);
        // the worker count the executor will use (ABW_JOBS or the
        // available parallelism) — per-job wall times land in the
        // manifest's exec.run* extras at executor join time
        manifest.param_u64("workers", abw_exec::Executor::from_env().workers() as u64);
        Session {
            manifest,
            manifest_dir,
            tracing,
            profiling,
            started: Instant::now(),
        }
    }

    /// The run manifest, for recording seeds and parameters.
    pub fn manifest(&mut self) -> &mut RunManifest {
        &mut self.manifest
    }

    /// True when `ABW_TRACE` installed a recorder.
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Finishes the session: flushes and uninstalls the global
    /// recorder, absorbs the simulation totals captured while the run
    /// executed, stamps the wall-clock time, and writes the manifest
    /// when `ABW_MANIFEST` was set.
    pub fn finish(mut self) {
        if self.profiling {
            // the main thread's open tally plus every retired worker's
            abw_obs::prof::flush_thread();
            let profile = abw_obs::prof::take_profile();
            eprintln!("{}", profile.render());
            let costs = abw_obs::prof::snapshot();
            eprintln!("hot-path cost counters (process totals):");
            for (name, value) in costs.entries() {
                eprintln!("  {name:<20} {value:>14}");
            }
        }
        if self.tracing {
            abw_obs::global::clear_global();
        }
        if let Some(captured) = abw_obs::global::take_manifest() {
            self.manifest.absorb(captured);
        }
        self.manifest.wall_time_secs = self.started.elapsed().as_secs_f64();
        if let Some(dir) = self.manifest_dir.take() {
            if let Err(e) = self.manifest.write_to(&dir) {
                eprintln!("ABW_MANIFEST: cannot write to {}: {e}", dir.display());
            }
        }
    }
}

/// Output format selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Human-readable aligned columns.
    Text,
    /// Comma-separated values.
    Csv,
}

/// Parses the standard binary arguments (`--csv`).
pub fn format_from_args() -> Format {
    if std::env::args().any(|a| a == "--csv") {
        Format::Csv
    } else {
        Format::Text
    }
}

/// A simple column-aligned table printer.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders in the requested format.
    pub fn render(&self, format: Format) -> String {
        match format {
            Format::Csv => {
                let mut out = String::new();
                let _ = writeln!(out, "{}", self.header.join(","));
                for r in &self.rows {
                    let _ = writeln!(out, "{}", r.join(","));
                }
                out
            }
            Format::Text => {
                let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
                for r in &self.rows {
                    for (w, c) in widths.iter_mut().zip(r) {
                        *w = (*w).max(c.len());
                    }
                }
                let mut out = String::new();
                let fmt_row = |cells: &[String], widths: &[usize]| {
                    cells
                        .iter()
                        .zip(widths)
                        .map(|(c, w)| format!("{c:>w$}"))
                        .collect::<Vec<_>>()
                        .join("  ")
                };
                let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
                let _ = writeln!(
                    out,
                    "{}",
                    widths
                        .iter()
                        .map(|w| "-".repeat(*w))
                        .collect::<Vec<_>>()
                        .join("  ")
                );
                for r in &self.rows {
                    let _ = writeln!(out, "{}", fmt_row(r, &widths));
                }
                out
            }
        }
    }

    /// Prints to stdout.
    pub fn print(&self, format: Format) {
        print!("{}", self.render(format));
    }
}

/// Formats a float with the given precision.
pub fn f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_render_aligns() {
        let mut t = Table::new(vec!["a", "long_column"]);
        t.row(vec!["1", "2"]);
        let s = t.render(Format::Text);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("long_column"));
        assert!(lines[2].ends_with('2'));
    }

    #[test]
    fn csv_render() {
        let mut t = Table::new(vec!["x", "y"]);
        t.row(vec!["1", "2"]);
        assert_eq!(t.render(Format::Csv), "x,y\n1,2\n");
    }

    #[test]
    #[should_panic]
    fn arity_checked() {
        let mut t = Table::new(vec!["x"]);
        t.row(vec!["1", "2"]);
    }

    #[test]
    fn session_captures_sim_totals_on_drop() {
        let dir = std::env::temp_dir().join(format!("abw-session-test-{}", std::process::id()));
        let mut session = Session::start_with("session-test", None, Some(dir.clone()));
        session.manifest().param_str("mode", "test");
        {
            let mut sim = abw_netsim::Simulator::new();
            let _ = sim.add_link(abw_netsim::LinkConfig::new(
                1e6,
                abw_netsim::SimDuration::ZERO,
            ));
            sim.run_until(abw_netsim::SimTime::from_nanos(5));
        } // dropped here → folds into the session's global capture
        session.finish();
        let json = std::fs::read_to_string(dir.join("session-test.manifest.json"))
            .expect("manifest written");
        assert!(json.contains("\"injected\":0"), "{json}");
        assert!(json.contains("\"link\":\"0\""), "{json}");
        assert!(json.contains("\"mode\":\"test\""), "{json}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
