//! # abw-bench
//!
//! The experiment harness: one binary per figure/table of the paper
//! (`fig1` … `fig7`, `table1`, `exp_faster`, `exp_capacity`, and the
//! `all` runner), plus Criterion benches for the simulator and the
//! estimation kernels.
//!
//! Binaries print the same rows/series the paper reports, as aligned
//! text tables; pass `--csv` to any binary to get comma-separated output
//! instead (for plotting).

use std::fmt::Write as _;

/// Output format selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Human-readable aligned columns.
    Text,
    /// Comma-separated values.
    Csv,
}

/// Parses the standard binary arguments (`--csv`).
pub fn format_from_args() -> Format {
    if std::env::args().any(|a| a == "--csv") {
        Format::Csv
    } else {
        Format::Text
    }
}

/// A simple column-aligned table printer.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders in the requested format.
    pub fn render(&self, format: Format) -> String {
        match format {
            Format::Csv => {
                let mut out = String::new();
                let _ = writeln!(out, "{}", self.header.join(","));
                for r in &self.rows {
                    let _ = writeln!(out, "{}", r.join(","));
                }
                out
            }
            Format::Text => {
                let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
                for r in &self.rows {
                    for (w, c) in widths.iter_mut().zip(r) {
                        *w = (*w).max(c.len());
                    }
                }
                let mut out = String::new();
                let fmt_row = |cells: &[String], widths: &[usize]| {
                    cells
                        .iter()
                        .zip(widths)
                        .map(|(c, w)| format!("{c:>w$}"))
                        .collect::<Vec<_>>()
                        .join("  ")
                };
                let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
                let _ = writeln!(
                    out,
                    "{}",
                    widths
                        .iter()
                        .map(|w| "-".repeat(*w))
                        .collect::<Vec<_>>()
                        .join("  ")
                );
                for r in &self.rows {
                    let _ = writeln!(out, "{}", fmt_row(r, &widths));
                }
                out
            }
        }
    }

    /// Prints to stdout.
    pub fn print(&self, format: Format) {
        print!("{}", self.render(format));
    }
}

/// Formats a float with the given precision.
pub fn f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_render_aligns() {
        let mut t = Table::new(vec!["a", "long_column"]);
        t.row(vec!["1", "2"]);
        let s = t.render(Format::Text);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("long_column"));
        assert!(lines[2].ends_with('2'));
    }

    #[test]
    fn csv_render() {
        let mut t = Table::new(vec!["x", "y"]);
        t.row(vec!["1", "2"]);
        assert_eq!(t.render(Format::Csv), "x,y\n1,2\n");
    }

    #[test]
    #[should_panic]
    fn arity_checked() {
        let mut t = Table::new(vec!["x"]);
        t.row(vec!["1", "2"]);
    }
}
