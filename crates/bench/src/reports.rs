//! Shared table renderers for the experiment binaries.
//!
//! The binaries and the golden regression tests must agree on every
//! formatting decision (column order, rounding, units), so the
//! result-to-[`Table`] conversion lives here rather than in each
//! binary's `main`.

use abw_core::experiments::loss_sweep::LossSweepResult;
use abw_core::experiments::pairs_vs_trains::PairsVsTrainsResult;
use abw_core::experiments::shootout::ShootoutResult;
use abw_core::experiments::tracking::TrackingResult;

use crate::{f, Table};

/// The shootout table: one row per tool, with mean/bias/spread in Mb/s,
/// probing overhead in packets, and latency in seconds.
pub fn shootout_table(result: &ShootoutResult) -> Table {
    let mut t = Table::new(vec![
        "tool",
        "mean_Mbps",
        "bias_Mbps",
        "sd_Mbps",
        "packets",
        "latency_s",
    ]);
    for r in &result.rows {
        t.row(vec![
            r.tool.to_string(),
            f(r.mean_mbps, 2),
            f(r.bias_mbps, 2),
            f(r.sd_mbps, 2),
            f(r.mean_packets, 0),
            f(r.mean_latency_secs, 2),
        ]);
    }
    t
}

/// The loss-sweep table: one row per (tool, injected loss rate), with
/// the per-tool truth, mean/bias/spread in Mb/s, probing overhead in
/// packets, and latency in seconds.
pub fn loss_sweep_table(result: &LossSweepResult) -> Table {
    let mut t = Table::new(vec![
        "tool",
        "loss_pct",
        "truth_Mbps",
        "mean_Mbps",
        "bias_Mbps",
        "sd_Mbps",
        "packets",
        "latency_s",
    ]);
    for r in &result.rows {
        t.row(vec![
            r.tool.to_string(),
            f(r.loss * 100.0, 1),
            f(r.truth_mbps, 2),
            f(r.mean_mbps, 2),
            f(r.bias_mbps, 2),
            f(r.sd_mbps, 2),
            f(r.mean_packets, 0),
            f(r.mean_latency_secs, 2),
        ]);
    }
    t
}

/// The tracking table: one row per (tool, avail-bw step), with the lag
/// until the first in-band estimate and the tool's overall mean absolute
/// tracking error in Mb/s.
pub fn tracking_table(result: &TrackingResult) -> Table {
    let mut t = Table::new(vec![
        "tool",
        "step_Mbps",
        "step_at_s",
        "lag_s",
        "mean_abs_err_Mbps",
    ]);
    for track in &result.tracks {
        for step in &track.steps {
            t.row(vec![
                track.tool.to_string(),
                f(step.truth_bps / 1e6, 0),
                f(step.t_secs, 2),
                step.lag_secs.map_or_else(|| "-".to_string(), |l| f(l, 2)),
                f(track.mean_abs_error_mbps, 2),
            ]);
        }
    }
    t
}

/// The Table 1 table: one row per cross packet size `Lc`, the relative
/// error of the `k`-sample mean per sample count, and the per-sample
/// standard deviation.
pub fn table1_table(result: &PairsVsTrainsResult) -> Table {
    let ks: Vec<usize> = result.rows[0].errors.iter().map(|&(k, _)| k).collect();
    let mut header = vec!["Lc_bytes".to_string()];
    header.extend(ks.iter().map(|k| format!("k={k}")));
    header.push("per_sample_sd_Mbps".to_string());
    let mut t = Table::new(header);
    for row in &result.rows {
        let mut cells = vec![row.cross_size.to_string()];
        for &(_, err) in &row.errors {
            cells.push(format!("{}%", f(err * 100.0, 1)));
        }
        cells.push(f(row.sample_sd_mbps, 1));
        t.row(cells);
    }
    t
}
