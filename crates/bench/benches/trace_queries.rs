//! Criterion benches for the avail-bw trace substrate: building the
//! process index and querying `A_tau(t)` at several timescales.

use abw_trace::{AvailBw, SyntheticTrace, SyntheticTraceConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn quick_trace() -> SyntheticTrace {
    SyntheticTrace::generate(&SyntheticTraceConfig {
        duration: abw_netsim::SimDuration::from_secs(10),
        warmup: abw_netsim::SimDuration::from_secs(1),
        ..SyntheticTraceConfig::default()
    })
}

fn bench_trace(c: &mut Criterion) {
    let trace = quick_trace();
    let process: &AvailBw = &trace.process;
    let (h0, h1) = process.horizon();

    let mut g = c.benchmark_group("trace");

    g.bench_function("avail_query_10ms", |b| {
        let mut t = h0;
        b.iter(|| {
            let a = process.avail_at(t, 10_000_000);
            t += 1_000_000;
            if t + 10_000_000 > h1 {
                t = h0;
            }
            black_box(a)
        })
    });

    g.bench_function("population_1ms_full_horizon", |b| {
        b.iter(|| black_box(process.population(1_000_000).variance()))
    });

    g.bench_function("sample_path_10ms", |b| {
        b.iter(|| black_box(process.sample_path(10_000_000, 10_000_000).len()))
    });

    g.sample_size(10);
    g.bench_function("generate_10s_trace", |b| {
        b.iter(|| black_box(quick_trace().packets))
    });

    g.finish();
}

criterion_group!(benches, bench_trace);
criterion_main!(benches);
