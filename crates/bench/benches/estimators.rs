//! Criterion benches for the estimation tools: cost of one estimate per
//! technique on the canonical 50/25 Mb/s Poisson link. These quantify
//! the latency/overhead side of Fallacy 3's trade-off.

use abw_core::scenario::{CrossKind, Scenario, SingleHopConfig};
use abw_core::tools::direct::{DirectConfig, DirectProber};
use abw_core::tools::igi::{Igi, IgiConfig};
use abw_core::tools::pathchirp::{Pathchirp, PathchirpConfig};
use abw_core::tools::pathload::{Pathload, PathloadConfig};
use abw_core::tools::spruce::{Spruce, SpruceConfig};
use abw_core::tools::topp::{Topp, ToppConfig};
use abw_netsim::SimDuration;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn scenario() -> Scenario {
    let mut s = Scenario::single_hop(&SingleHopConfig {
        cross: CrossKind::Poisson,
        ..SingleHopConfig::default()
    });
    s.warm_up(SimDuration::from_millis(300));
    s
}

fn bench_estimators(c: &mut Criterion) {
    let mut g = c.benchmark_group("estimators");
    g.sample_size(10);

    g.bench_function("direct_10x100ms", |b| {
        b.iter(|| {
            let mut s = scenario();
            let mut r = s.runner();
            let est = DirectProber::new(DirectConfig {
                streams: 10,
                ..DirectConfig::canonical()
            })
            .run(&mut s.sim, &mut r);
            black_box(est.avail_bps)
        })
    });

    g.bench_function("spruce_100_pairs", |b| {
        b.iter(|| {
            let mut s = scenario();
            let mut r = s.runner();
            let est = Spruce::new(SpruceConfig::new(50e6)).run(&mut s.sim, &mut r);
            black_box(est.avail_bps)
        })
    });

    g.bench_function("topp_sweep", |b| {
        b.iter(|| {
            let mut s = scenario();
            let mut r = s.runner();
            r.stream_gap = SimDuration::from_millis(5);
            let rep = Topp::new(ToppConfig {
                streams_per_rate: 3,
                step_bps: 3e6,
                ..ToppConfig::default()
            })
            .run(&mut s.sim, &mut r);
            black_box(rep.avail_bps)
        })
    });

    g.bench_function("pathload_quick", |b| {
        b.iter(|| {
            let mut s = scenario();
            let rep = Pathload::new(PathloadConfig::quick()).run(&mut s);
            black_box(rep.range_bps)
        })
    });

    g.bench_function("pathchirp_30_chirps", |b| {
        b.iter(|| {
            let mut s = scenario();
            let mut r = s.runner();
            let est = Pathchirp::new(PathchirpConfig::default()).run(&mut s.sim, &mut r);
            black_box(est.avail_bps)
        })
    });

    g.bench_function("igi_ptr", |b| {
        b.iter(|| {
            let mut s = scenario();
            let mut r = s.runner();
            let rep = Igi::new(IgiConfig::default()).run(&mut s.sim, &mut r);
            black_box((rep.igi_bps, rep.ptr_bps))
        })
    });

    g.finish();
}

criterion_group!(benches, bench_estimators);
criterion_main!(benches);
