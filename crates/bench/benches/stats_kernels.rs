//! Criterion benches for the statistics kernels on measurement-sized
//! inputs: OWD trend tests (per-stream hot path of Pathload), ECDF
//! construction, and Hurst estimation.

use abw_stats::ecdf::Ecdf;
use abw_stats::hurst::variance_time_hurst;
use abw_stats::trend::TrendAnalyzer;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn owd_series(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 0.02 + 1e-5 * i as f64 + ((i as u64 * 2654435761) % 97) as f64 * 1e-6)
        .collect()
}

fn bench_stats(c: &mut Criterion) {
    let mut g = c.benchmark_group("stats");

    let owds = owd_series(100);
    let analyzer = TrendAnalyzer::default();
    g.bench_function("trend_classify_100_owds", |b| {
        b.iter(|| black_box(analyzer.classify(black_box(&owds))))
    });

    let samples: Vec<f64> = (0..10_000)
        .map(|i| ((i as u64 * 2654435761) % 100_000) as f64)
        .collect();
    g.bench_function("ecdf_build_10k", |b| {
        b.iter(|| black_box(Ecdf::new(samples.clone()).len()))
    });

    let ecdf = Ecdf::new(samples.clone());
    g.bench_function("ecdf_query", |b| {
        b.iter(|| black_box(ecdf.cdf(black_box(50_000.0))))
    });

    let series: Vec<f64> = (0..(1 << 14))
        .map(|i| ((i as u64 * 0x9E3779B97F4A7C15) >> 40) as f64)
        .collect();
    g.bench_function("hurst_variance_time_16k", |b| {
        b.iter(|| black_box(variance_time_hurst(&series, &[1, 2, 4, 8, 16, 32, 64])))
    });

    g.finish();
}

criterion_group!(benches, bench_stats);
criterion_main!(benches);
