//! Criterion benches for the discrete-event simulator core: event
//! throughput under cross-traffic load and multi-hop forwarding.

use abw_netsim::{CountingSink, FlowId, LinkConfig, SimDuration, SimTime, Simulator};
use abw_traffic::{PoissonProcess, SizeDist, SourceAgent};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// One simulated second of a single 50 Mb/s link at 50% Poisson load.
fn single_hop_second() -> u64 {
    let mut sim = Simulator::new();
    let link = sim.add_link(LinkConfig::new(50e6, SimDuration::from_millis(1)));
    let path = sim.add_path(vec![link]);
    let sink = sim.add_agent(Box::new(CountingSink::new()));
    sim.add_agent(Box::new(SourceAgent::new(
        Box::new(PoissonProcess::new(25e6, SizeDist::Constant(1500), 7)),
        path,
        sink,
        FlowId(1),
    )));
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
    sim.counters().delivered
}

/// One simulated second across a 5-hop path with per-hop cross traffic.
fn five_hop_second() -> u64 {
    let mut sim = Simulator::new();
    let links: Vec<_> = (0..5)
        .map(|_| sim.add_link(LinkConfig::new(50e6, SimDuration::from_millis(1))))
        .collect();
    let through = sim.add_path(links.clone());
    let sink = sim.add_agent(Box::new(CountingSink::new()));
    for (i, &l) in links.iter().enumerate() {
        let p = sim.add_path(vec![l]);
        let s = sim.add_agent(Box::new(CountingSink::new()));
        sim.add_agent(Box::new(SourceAgent::new(
            Box::new(PoissonProcess::new(
                25e6,
                SizeDist::Constant(1500),
                10 + i as u64,
            )),
            p,
            s,
            FlowId(i as u32),
        )));
    }
    sim.add_agent(Box::new(SourceAgent::new(
        Box::new(PoissonProcess::new(5e6, SizeDist::Constant(1500), 99)),
        through,
        sink,
        FlowId(100),
    )));
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
    sim.counters().delivered
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(20);
    g.bench_function("single_hop_1s_poisson_50pct", |b| {
        b.iter(|| black_box(single_hop_second()))
    });
    g.bench_function("five_hop_1s_poisson_50pct_per_hop", |b| {
        b.iter(|| black_box(five_hop_second()))
    });
    g.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
