pub fn estimate() -> u64 {
    0
}
