pub struct Entry {
    pub module: &'static str,
}

pub static TOOLS: &[Entry] = &[
    Entry { module: "alpha" },
    Entry { module: "ghost" },
];
