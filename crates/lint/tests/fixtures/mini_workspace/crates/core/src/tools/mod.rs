pub mod alpha;
pub mod beta;
pub mod registry;

// sanctioned: mod.rs is the except entry on the deny edge
use abw_netsim::Simulator;

pub fn wire(_sim: &mut Simulator) {}
