use abw_netsim::Simulator;

pub fn probe(_sim: &mut Simulator) -> u64 {
    1
}
