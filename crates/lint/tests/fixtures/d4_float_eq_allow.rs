// D4 allow: total_cmp for ordering, epsilon for closeness, and a marked
// exact-zero guard.

pub fn sorted(mut xs: Vec<f64>) -> Vec<f64> {
    xs.sort_by(f64::total_cmp);
    xs
}

pub fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}

pub fn safe_div(num: f64, den: f64) -> Option<f64> {
    // exact-zero guard against division by zero; lint: allow(float_eq)
    if den == 0.0 {
        return None;
    }
    Some(num / den)
}
