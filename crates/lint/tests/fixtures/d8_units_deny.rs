//! D8 deny fixture — every flavour of unit-hygiene violation: a float
//! field with no unit suffix, a deny-alias spelling, and arithmetic
//! mixing two different scales.

pub struct Estimate {
    pub throughput: f64,
    pub delay_msec: f64,
}

pub fn deadline_passed(gap_ms: f64, timeout_us: f64) -> bool {
    gap_ms > timeout_us
}
