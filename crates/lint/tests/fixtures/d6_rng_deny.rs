// D6 deny: ambient entropy makes runs unreproducible.

pub fn jitter() -> f64 {
    let mut rng = thread_rng();
    rand::random::<f64>() + rng.next_u64() as f64
}
