//! L1 deny fixture — a measurement tool reaching for the simulator.
//! Linted as though it were `crates/core/src/tools/fake.rs`, which the
//! `tools-no-simulator` deny edge covers.

use abw_netsim::Simulator;

pub fn probe(_sim: &mut Simulator) -> u64 {
    1
}
