// D5 deny: writing to stdout/stderr from a library crate.
// Linted as if it lived in `crates/core/src/`.

pub fn report(estimate_bps: f64) {
    println!("estimate: {estimate_bps}");
    eprintln!("warning: low confidence");
}
