//! D8 allow fixture — suffixed names, a sanctioned legacy name, and
//! arithmetic that respects (or legitimately combines) scales.

pub struct Estimate {
    pub rate_bps: f64,
    // lint: allow(units) -- legacy CSV column name, frozen by goldens
    pub throughput: f64,
    pub count: u64,
}

pub fn deadline_passed(gap_ms: f64, timeout_ms: f64) -> bool {
    gap_ms > timeout_ms
}

pub fn bits_in_window(rate_bps: f64, window_s: f64) -> f64 {
    // multiplication combines dimensions on purpose — never flagged
    rate_bps * window_s
}
