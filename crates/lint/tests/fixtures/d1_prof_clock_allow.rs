// D1 allow: how the profiling module actually tells time — through a
// clock function injected by the harness (`abw-bench`), which is the
// layer where wall-clock reads are legal. No ambient reads here.

pub static CLOCK: std::sync::OnceLock<fn() -> u64> = std::sync::OnceLock::new();

pub fn span_start_ns() -> u64 {
    CLOCK.get().map_or(0, |clock| clock())
}
