// D2 allow: ordered map by construction, plus one marked exception
// whose iteration order provably never reaches output.

use std::collections::BTreeMap;
use std::collections::HashMap; // lint: allow(hash_iter)

pub struct PerStream {
    by_id: BTreeMap<u32, Vec<f64>>,
    // membership-only; never iterated
    // lint: allow(hash_iter)
    seen: HashMap<u64, ()>,
}
