// D1 allow: simulation code on the virtual clock; the one deliberate
// wall-clock read carries the escape-hatch marker.

pub fn now_virtual(sim: &Simulator) -> SimTime {
    sim.now()
}

pub fn profiling_probe() -> std::time::Instant {
    Instant::now() // lint: allow(wall_clock)
}
