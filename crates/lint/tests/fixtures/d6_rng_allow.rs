// D6 allow: every RNG is derived from a scenario seed, so a run is a
// pure function of its seeds.

use rand::{rngs::StdRng, RngExt, SeedableRng};

pub fn jitter(seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.random::<f64>()
}
