// D2 deny: HashMap in a result-producing crate.
// Linted as if it lived in `crates/core/src/`.

use std::collections::HashMap;

pub struct PerStream {
    by_id: HashMap<u32, Vec<f64>>,
}
