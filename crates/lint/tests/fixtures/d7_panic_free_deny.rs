//! D7 deny fixture — panic-capable operations reachable from a hot
//! path. Linted as though it were `crates/netsim/src/link.rs`, where
//! `Link::*` is a `[[panic_free.scope]]` entry.

pub struct Link {
    queue: Vec<u64>,
}

impl Link {
    pub fn enqueue(&mut self, pkt: u64) {
        self.queue.push(pkt);
        let first = self.queue.first().unwrap();
        let _narrow = *first as u32;
        helper(&self.queue);
    }
}

// not itself in scope, but reachable from Link::enqueue — the closure
// makes it hot, so the index panics below must fire
fn helper(q: &[u64]) -> u64 {
    q[0] + q[q.len() - 1]
}
