// D1 deny: an ambient wall-clock read inside simulation code.
// Linted as if it lived in `crates/netsim/src/`.

pub fn stamp() -> std::time::Instant {
    let started = Instant::now();
    let _ = SystemTime::now();
    started
}
