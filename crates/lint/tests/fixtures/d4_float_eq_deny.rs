// D4 deny: exact float equality in result logic.

pub fn at_rate(points: &[(f64, f64)], mbps: f64) -> Option<f64> {
    points.iter().find(|p| p.1 == 20.0).map(|p| p.1)
}

pub fn is_different(x: f64) -> bool {
    x != 1.5e6
}
