// D3 deny: ad-hoc thread outside the executor crate.
// Linted as if it lived in `crates/core/src/`.

pub fn fan_out() {
    let handle = std::thread::spawn(|| 42);
    let _ = handle.join();
}
