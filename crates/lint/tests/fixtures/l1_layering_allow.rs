//! L1 allow fixture — the same import, sanctioned by a marker that
//! records why this one site may cross the layer boundary.

// lint: allow(layering) -- wiring fixture: constructs the sim it hands out
use abw_netsim::Simulator;

pub fn probe(_sim: &mut Simulator) -> u64 {
    1
}
