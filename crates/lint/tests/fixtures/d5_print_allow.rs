// D5 allow: the library emits structured events through abw-obs and
// returns data; only bench binaries print.

pub fn report(sim: &mut Simulator, estimate_bps: f64) -> f64 {
    sim.emit("tool.estimate", &[("bps", (estimate_bps as u64).into())]);
    estimate_bps
}
