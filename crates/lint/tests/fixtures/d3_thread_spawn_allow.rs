// D3 allow: parallelism flows through the executor, which preserves
// submission order and capture-merges observability state.

pub fn fan_out(jobs: Vec<Job>) -> Vec<Out> {
    let pool = abw_exec::Executor::from_env();
    pool.run(jobs)
}
