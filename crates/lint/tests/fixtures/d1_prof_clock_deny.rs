// D1 deny: the profiling module reading the wall clock directly.
// Linted as if it lived in `crates/obs/src/` — the observability crate
// is wall-clock-free; spans must use the injected clock function.

pub fn span_start_ns() -> u64 {
    let started = Instant::now();
    let _ = SystemTime::now();
    started.elapsed().as_nanos() as u64
}
