//! D7 allow fixture — the same shapes, either annotated with a proven
//! invariant or genuinely unreachable from the hot set.

pub struct Link {
    queue: Vec<u64>,
}

impl Link {
    pub fn enqueue(&mut self, pkt: u64) {
        self.queue.push(pkt);
        // lint: allow(panic_free) -- queue is non-empty: pushed above
        let _first = self.queue.first().unwrap();
        if let Some(last) = self.queue.last() {
            let _wide = *last as u64;
        }
    }
}

// never called from a Link method: cold, so the panic is out of scope
fn offline_report(q: &[u64]) -> u64 {
    q[0]
}
