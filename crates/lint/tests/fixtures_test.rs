//! Fixture-driven rule tests plus the workspace-clean gate.
//!
//! Each rule has one deny and one allow fixture under
//! `tests/fixtures/`. Deny fixtures must produce at least one finding of
//! exactly the expected rule, both through the library API and through
//! the real `abw-lint` binary (which must exit non-zero). Allow fixtures
//! must lint clean. The architecture rules (D7/D8/L1) lint their
//! fixtures *as though they lived at a path* the embedded `lint.toml`
//! scopes cover. Finally, the actual workspace must lint clean with
//! every rule armed — the tree stays warning-free by construction.

use std::path::{Path, PathBuf};
use std::process::Command;

use abw_lint::config::LintConfig;
use abw_lint::{lint_source, lint_source_configured, lint_workspace, FileContext, Rule};

/// `(fixture stem, rule, context the fixture pretends to live in)`.
fn cases() -> Vec<(&'static str, Rule, FileContext)> {
    vec![
        ("d1_wall_clock", Rule::WallClock, FileContext::lib("netsim")),
        ("d1_prof_clock", Rule::WallClock, FileContext::lib("obs")),
        ("d2_hash_iter", Rule::HashIter, FileContext::lib("core")),
        (
            "d3_thread_spawn",
            Rule::ThreadSpawn,
            FileContext::lib("core"),
        ),
        ("d4_float_eq", Rule::FloatEq, FileContext::lib("stats")),
        ("d5_print", Rule::Print, FileContext::lib("core")),
        ("d6_rng", Rule::Rng, FileContext::lib("traffic")),
    ]
}

/// `(fixture stem, rule, context, path the fixture pretends to live
/// at)` for the config-driven architecture rules.
fn arch_cases() -> Vec<(&'static str, Rule, FileContext, &'static str)> {
    vec![
        (
            "d7_panic_free",
            Rule::PanicFree,
            FileContext::lib("netsim"),
            "crates/netsim/src/link.rs",
        ),
        (
            "d8_units",
            Rule::Units,
            FileContext::lib("core"),
            "crates/core/src/estimate.rs",
        ),
        (
            "l1_layering",
            Rule::Layering,
            FileContext::lib("core"),
            "crates/core/src/tools/fake.rs",
        ),
    ]
}

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn read_fixture(name: &str) -> String {
    let path = fixture_path(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
}

#[test]
fn deny_fixtures_fire_their_rule() {
    for (stem, rule, ctx) in cases() {
        let source = read_fixture(&format!("{stem}_deny.rs"));
        let findings = lint_source(&ctx, &source);
        assert!(
            !findings.is_empty(),
            "{stem}_deny.rs: expected at least one {rule} finding"
        );
        for f in &findings {
            assert_eq!(
                f.rule, rule,
                "{stem}_deny.rs: unexpected rule {} at {}:{}",
                f.rule, f.line, f.col
            );
        }
    }
}

#[test]
fn allow_fixtures_lint_clean() {
    for (stem, _rule, ctx) in cases() {
        let source = read_fixture(&format!("{stem}_allow.rs"));
        let findings = lint_source(&ctx, &source);
        assert!(
            findings.is_empty(),
            "{stem}_allow.rs: unexpected findings: {findings:?}"
        );
    }
}

#[test]
fn arch_deny_fixtures_fire_their_rule() {
    let config = LintConfig::embedded();
    for (stem, rule, ctx, rel) in arch_cases() {
        let source = read_fixture(&format!("{stem}_deny.rs"));
        let findings = lint_source_configured(&ctx, Path::new(rel), &source, &config);
        assert!(
            !findings.is_empty(),
            "{stem}_deny.rs: expected at least one {rule} finding"
        );
        for f in &findings {
            assert_eq!(
                f.rule, rule,
                "{stem}_deny.rs: unexpected rule {} at {}:{}",
                f.rule, f.line, f.col
            );
        }
    }
}

#[test]
fn arch_allow_fixtures_lint_clean() {
    let config = LintConfig::embedded();
    for (stem, _rule, ctx, rel) in arch_cases() {
        let source = read_fixture(&format!("{stem}_allow.rs"));
        let findings = lint_source_configured(&ctx, Path::new(rel), &source, &config);
        assert!(
            findings.is_empty(),
            "{stem}_allow.rs: unexpected findings: {findings:?}"
        );
    }
}

#[test]
fn layering_except_entries_are_exempt() {
    // the deny fixture's import is legal from the sanctioned wiring
    // site named in the edge's `except` list
    let config = LintConfig::embedded();
    let source = read_fixture("l1_layering_deny.rs");
    let findings = lint_source_configured(
        &FileContext::lib("core"),
        Path::new("crates/core/src/tools/mod.rs"),
        &source,
        &config,
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn binary_exits_nonzero_on_deny_fixtures_with_rule_id() {
    for (stem, rule, ctx) in cases() {
        let out = Command::new(env!("CARGO_BIN_EXE_abw-lint"))
            .arg("--file")
            .arg(fixture_path(&format!("{stem}_deny.rs")))
            .arg(&ctx.crate_name)
            .arg("lib")
            .output()
            .expect("spawn abw-lint");
        assert!(
            !out.status.success(),
            "{stem}_deny.rs: binary must exit non-zero"
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains(rule.id()),
            "{stem}_deny.rs: output must name {}:\n{stdout}",
            rule.id()
        );
    }
}

#[test]
fn binary_exits_zero_on_allow_fixtures() {
    for (stem, _rule, ctx) in cases() {
        let out = Command::new(env!("CARGO_BIN_EXE_abw-lint"))
            .arg("--file")
            .arg(fixture_path(&format!("{stem}_allow.rs")))
            .arg(&ctx.crate_name)
            .arg("lib")
            .output()
            .expect("spawn abw-lint");
        assert!(
            out.status.success(),
            "{stem}_allow.rs: binary must exit zero, got:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

#[test]
fn real_workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root two levels up");
    let reports = lint_workspace(root).expect("walk workspace");
    assert!(
        reports.is_empty(),
        "workspace must lint clean; findings:\n{}",
        reports
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
