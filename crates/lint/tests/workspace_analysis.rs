//! Workspace-level contract tests: the committed crate-graph snapshot,
//! the CLI exit-code contract (0 clean / 1 findings / 2 tool error),
//! the machine-readable formats, the baseline workflow, and `--fix`.
//!
//! The end-to-end cases run the real `abw-lint` binary against the
//! mini-workspace fixture (`tests/fixtures/mini_workspace/`), whose
//! on-disk `lint.toml` declares one forbidden layering edge and a D9
//! registry pairing with one missing and one stale entry.

use std::path::{Path, PathBuf};
use std::process::Command;

use abw_lint::config::LintConfig;
use abw_lint::output;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root two levels up")
}

fn mini_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/mini_workspace")
}

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_abw-lint"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("abw_lint_ws_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn copy_tree(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let dst = to.join(entry.file_name());
        if entry.path().is_dir() {
            copy_tree(&entry.path(), &dst);
        } else {
            std::fs::copy(entry.path(), &dst).unwrap();
        }
    }
}

#[test]
fn import_graph_snapshot_is_current() {
    let analysis =
        abw_lint::analyze_workspace(repo_root(), &LintConfig::embedded()).expect("walk workspace");
    let snap_path = repo_root().join("crates/lint/tests/import_graph.snap");
    let committed = std::fs::read_to_string(&snap_path).expect("read committed snapshot");
    assert_eq!(
        analysis.graph, committed,
        "the crate import graph drifted from the committed snapshot; \
         regenerate with `cargo run -p abw-lint -- --write-graph` and \
         review the new edges"
    );
}

#[test]
fn mini_workspace_fires_layering_and_registry() {
    let out = bin().arg(mini_root()).output().expect("spawn abw-lint");
    assert_eq!(out.status.code(), Some(1), "findings must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("L1(layering)"), "missing L1:\n{stdout}");
    assert!(
        stdout.contains("beta.rs:1"),
        "L1 anchors at the import:\n{stdout}"
    );
    assert!(stdout.contains("D9(registry)"), "missing D9:\n{stdout}");
    assert!(
        stdout.contains("`beta.rs`"),
        "beta.rs is unregistered:\n{stdout}"
    );
    assert!(
        stdout.contains("ghost"),
        "ghost is a stale entry:\n{stdout}"
    );
    // mod.rs imports the simulator too, but it is the except entry
    assert!(
        !stdout.contains("mod.rs:"),
        "except entry must stay clean:\n{stdout}"
    );
}

#[test]
fn malformed_config_exits_2() {
    let dir = temp_dir("bad_config");
    std::fs::write(dir.join("lint.toml"), "[layering\nsnapshot = oops").unwrap();
    let out = bin().arg(&dir).output().expect("spawn abw-lint");
    assert_eq!(
        out.status.code(),
        Some(2),
        "config errors must exit 2, not pass as clean"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("lint.toml"),
        "error names the config file:\n{stderr}"
    );
}

#[test]
fn list_rules_names_every_rule() {
    let out = bin().arg("--list-rules").output().expect("spawn abw-lint");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for id in ["D1", "D2", "D3", "D4", "D5", "D6", "D7", "D8", "D9", "L1"] {
        assert!(
            stdout.contains(id),
            "--list-rules must name {id}:\n{stdout}"
        );
    }
    for name in ["panic_free", "units", "registry", "layering"] {
        assert!(
            stdout.contains(name),
            "--list-rules must name {name}:\n{stdout}"
        );
    }
}

#[test]
fn json_output_round_trips_and_validates() {
    let dir = temp_dir("json");
    let json_path = dir.join("lint.json");
    let out = bin()
        .arg(mini_root())
        .args(["--format", "json", "--out"])
        .arg(&json_path)
        .output()
        .expect("spawn abw-lint");
    assert_eq!(
        out.status.code(),
        Some(1),
        "findings still exit 1 with --out"
    );

    let entries = output::parse_flat(&std::fs::read_to_string(&json_path).unwrap())
        .expect("own JSON output must parse under the flat schema");
    assert_eq!(entries.len(), 3, "{entries:?}");
    assert!(entries.iter().any(|e| e.rule == "L1"));
    assert_eq!(entries.iter().filter(|e| e.rule == "D9").count(), 2);
    for e in &entries {
        assert!(!e.file.is_empty() && e.line > 0 && e.col > 0, "{e:?}");
    }

    let out = bin()
        .arg("--validate-json")
        .arg(&json_path)
        .output()
        .expect("spawn abw-lint");
    assert_eq!(
        out.status.code(),
        Some(0),
        "--validate-json accepts our own output"
    );

    std::fs::write(dir.join("broken.json"), "[{\"rule\": \"D1\"}]").unwrap();
    let out = bin()
        .arg("--validate-json")
        .arg(dir.join("broken.json"))
        .output()
        .expect("spawn abw-lint");
    assert_eq!(out.status.code(), Some(2), "schema violations exit 2");
}

#[test]
fn sarif_output_carries_results_and_rule_metadata() {
    let out = bin()
        .arg(mini_root())
        .args(["--format", "sarif"])
        .output()
        .expect("spawn abw-lint");
    assert_eq!(out.status.code(), Some(1));
    let sarif = String::from_utf8_lossy(&out.stdout);
    assert!(sarif.contains("\"version\": \"2.1.0\""));
    assert!(sarif.contains("\"ruleId\": \"L1\""));
    assert!(sarif.contains("\"ruleId\": \"D9\""));
    assert!(sarif.contains("beta.rs"));
    assert!(sarif.contains("\"startLine\": 1"));
}

#[test]
fn baseline_suppresses_known_findings_and_flags_stale_entries() {
    let dir = temp_dir("baseline");
    let baseline = dir.join("lint-baseline.json");

    let out = bin()
        .arg(mini_root())
        .arg("--write-baseline")
        .arg(&baseline)
        .output()
        .expect("spawn abw-lint");
    assert_eq!(
        out.status.code(),
        Some(0),
        "--write-baseline always exits 0"
    );

    // every current finding is in the baseline → clean
    let out = bin()
        .arg(mini_root())
        .arg("--baseline")
        .arg(&baseline)
        .output()
        .expect("spawn abw-lint");
    assert_eq!(
        out.status.code(),
        Some(0),
        "baselined findings are suppressed:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );

    // an entry that no longer fires is stale: --baseline-check fails
    let stale = dir.join("stale.json");
    std::fs::write(
        &stale,
        "[{\"rule\": \"D1\", \"file\": \"crates/nope.rs\", \"msg\": \"Instant::now\"}]",
    )
    .unwrap();
    let out = bin()
        .arg(mini_root())
        .arg("--baseline")
        .arg(&stale)
        .arg("--baseline-check")
        .output()
        .expect("spawn abw-lint");
    assert_eq!(
        out.status.code(),
        Some(1),
        "stale baseline entries must fail the gate"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("stale baseline entry"), "{stderr}");
}

#[test]
fn fix_annotates_findings_until_the_tree_is_clean() {
    let dir = temp_dir("fix");
    copy_tree(&mini_root(), &dir);

    let out = bin()
        .arg(&dir)
        .args(["--fix", "--reason", "fixture: sanctioned for the fix test"])
        .output()
        .expect("spawn abw-lint");
    assert_eq!(
        out.status.code(),
        Some(0),
        "--fix exits 0 after writing:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let beta = std::fs::read_to_string(dir.join("crates/core/src/tools/beta.rs")).unwrap();
    assert!(
        beta.contains("// lint: allow(layering) -- fixture: sanctioned for the fix test"),
        "marker carries the reason:\n{beta}"
    );

    let out = bin().arg(&dir).output().expect("spawn abw-lint");
    assert_eq!(
        out.status.code(),
        Some(0),
        "annotated tree lints clean:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn fix_without_reason_is_rejected() {
    let out = bin()
        .arg(mini_root())
        .arg("--fix")
        .output()
        .expect("spawn abw-lint");
    assert_eq!(
        out.status.code(),
        Some(2),
        "--fix without --reason is a usage error"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--reason"), "{stderr}");
}
