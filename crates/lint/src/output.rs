//! Machine-readable output: flat JSON, SARIF 2.1.0, and the baseline
//! file format — plus the minimal JSON reader the baseline needs.
//!
//! The linter stays zero-dependency, so both the writer and the reader
//! are hand-rolled here. The flat schema is the contract CI scripts
//! parse:
//!
//! ```json
//! [{"rule": "D7", "file": "crates/netsim/src/sim.rs",
//!   "line": 41, "col": 9, "msg": "`.unwrap()`", "hint": "…"}]
//! ```
//!
//! A baseline file is the same array; matching ignores `line`/`col`
//! (edits shift lines — a baseline pinned to line numbers would rot on
//! every unrelated change) and keys on `(rule, file, msg)`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::rules::Rule;
use crate::Report;

/// One entry of the flat schema, as read back from JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatFinding {
    /// Rule id, e.g. `D7`.
    pub rule: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line (0 when absent in a baseline).
    pub line: u32,
    /// 1-based column (0 when absent in a baseline).
    pub col: u32,
    /// The offending snippet.
    pub msg: String,
}

impl FlatFinding {
    /// The identity used for baseline subtraction: everything except
    /// position.
    pub fn key(&self) -> (String, String, String) {
        (self.rule.clone(), self.file.clone(), self.msg.clone())
    }
}

/// A report's identity in baseline terms.
pub fn report_key(r: &Report) -> (String, String, String) {
    (
        r.finding.rule.id().to_string(),
        r.file.display().to_string(),
        r.finding.snippet.clone(),
    )
}

/// Renders reports as the flat JSON array.
pub fn to_json(reports: &[Report]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in reports.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"rule\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \"msg\": {}, \"hint\": {}}}",
            json_str(r.finding.rule.id()),
            json_str(&r.file.display().to_string()),
            r.finding.line,
            r.finding.col,
            json_str(&r.finding.snippet),
            json_str(&r.finding.full_hint()),
        );
        out.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

/// Renders reports as minimal SARIF 2.1.0 — one run, one driver, one
/// result per finding, rule metadata for every rule that fired.
pub fn to_sarif(reports: &[Report]) -> String {
    // rule metadata, deduped and ordered by id
    let mut rules: BTreeMap<&str, Rule> = BTreeMap::new();
    for r in reports {
        rules.insert(r.finding.rule.id(), r.finding.rule);
    }
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [{\n");
    out.push_str("    \"tool\": {\"driver\": {\"name\": \"abw-lint\", \"rules\": [\n");
    for (i, (id, rule)) in rules.iter().enumerate() {
        let _ = write!(
            out,
            "      {{\"id\": {}, \"name\": {}, \"shortDescription\": {{\"text\": {}}}}}",
            json_str(id),
            json_str(rule.name()),
            json_str(rule.hint()),
        );
        out.push_str(if i + 1 < rules.len() { ",\n" } else { "\n" });
    }
    out.push_str("    ]}},\n");
    out.push_str("    \"results\": [\n");
    for (i, r) in reports.iter().enumerate() {
        let _ = write!(
            out,
            "      {{\"ruleId\": {}, \"level\": \"error\", \"message\": {{\"text\": {}}}, \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \
             \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}]}}",
            json_str(r.finding.rule.id()),
            json_str(&format!(
                "`{}` — {}",
                r.finding.snippet,
                r.finding.full_hint()
            )),
            json_str(&r.file.display().to_string()),
            r.finding.line,
            r.finding.col,
        );
        out.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    out.push_str("    ]\n  }]\n}\n");
    out
}

/// JSON string literal with escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses a flat-schema JSON array (a baseline file, or the linter's
/// own `--format json` output fed back for validation). Unknown keys
/// are ignored; `rule`, `file` and `msg` are required per entry.
pub fn parse_flat(source: &str) -> Result<Vec<FlatFinding>, String> {
    let mut p = JsonParser {
        bytes: source.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    let JsonValue::Array(items) = value else {
        return Err("expected a top-level JSON array".into());
    };
    let mut out = Vec::new();
    for (i, item) in items.into_iter().enumerate() {
        let JsonValue::Object(map) = item else {
            return Err(format!("entry {i}: expected an object"));
        };
        let get_str = |key: &str| -> Result<String, String> {
            match map.get(key) {
                Some(JsonValue::String(s)) => Ok(s.clone()),
                Some(_) => Err(format!("entry {i}: `{key}` must be a string")),
                None => Err(format!("entry {i}: missing required key `{key}`")),
            }
        };
        let get_num = |key: &str| -> Result<u32, String> {
            match map.get(key) {
                Some(JsonValue::Number(n)) => Ok(*n as u32),
                Some(_) => Err(format!("entry {i}: `{key}` must be a number")),
                None => Ok(0),
            }
        };
        out.push(FlatFinding {
            rule: get_str("rule")?,
            file: get_str("file")?,
            line: get_num("line")?,
            col: get_num("col")?,
            msg: get_str("msg")?,
        });
    }
    Ok(out)
}

enum JsonValue {
    String(String),
    Number(f64),
    Bool(#[allow(dead_code)] bool),
    Null,
    Array(Vec<JsonValue>),
    Object(BTreeMap<String, JsonValue>),
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Number)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("invalid \\u escape")?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err("invalid escape".into()),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one whole UTF-8 character
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Finding, Rule};
    use std::path::PathBuf;

    fn sample() -> Vec<Report> {
        vec![
            Report {
                file: PathBuf::from("crates/netsim/src/sim.rs"),
                finding: Finding {
                    rule: Rule::PanicFree,
                    line: 41,
                    col: 9,
                    snippet: "`.unwrap()`".into(),
                    note: Some("in hot path Simulator::run_until".into()),
                },
            },
            Report {
                file: PathBuf::from("crates/stats/src/running.rs"),
                finding: Finding {
                    rule: Rule::Units,
                    line: 7,
                    col: 5,
                    snippet: "rate \"quoted\"".into(),
                    note: None,
                },
            },
        ]
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let reports = sample();
        let json = to_json(&reports);
        let parsed = parse_flat(&json).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].rule, "D7");
        assert_eq!(parsed[0].file, "crates/netsim/src/sim.rs");
        assert_eq!(parsed[0].line, 41);
        assert_eq!(parsed[1].msg, "rate \"quoted\"");
        assert_eq!(parsed[1].key(), report_key(&reports[1]));
    }

    #[test]
    fn empty_report_list_is_an_empty_array() {
        let parsed = parse_flat(&to_json(&[])).unwrap();
        assert!(parsed.is_empty());
    }

    #[test]
    fn sarif_contains_rule_metadata_and_locations() {
        let sarif = to_sarif(&sample());
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"id\": \"D7\""));
        assert!(sarif.contains("\"name\": \"panic_free\""));
        assert!(sarif.contains("\"startLine\": 41"));
        assert!(sarif.contains("crates/stats/src/running.rs"));
    }

    #[test]
    fn malformed_json_is_rejected_with_context() {
        assert!(parse_flat("{\"not\": \"an array\"}").is_err());
        assert!(
            parse_flat("[{\"rule\": \"D1\"}]").is_err(),
            "missing file/msg"
        );
        assert!(parse_flat("[1, 2]").is_err());
        assert!(parse_flat("[] trailing").is_err());
    }

    #[test]
    fn baseline_matching_ignores_position() {
        let baseline = parse_flat(
            "[{\"rule\": \"D7\", \"file\": \"crates/netsim/src/sim.rs\", \"msg\": \"`.unwrap()`\"}]",
        )
        .unwrap();
        assert_eq!(baseline[0].line, 0);
        assert_eq!(baseline[0].key(), report_key(&sample()[0]));
    }
}
