//! A lightweight item-level parser on top of the lexer.
//!
//! The D1–D6 rules are token-shaped, but the architecture rules added
//! with the workspace-aware analyzer need *structure*: which `use`
//! paths a file imports (the import-graph pass), which `fn` body a
//! token sits in and under which `impl` (D7 panic-freedom scopes), and
//! where names are *declared* as opposed to mentioned (D8 unit
//! hygiene). This module recovers exactly that much structure — items
//! with spans — and nothing more. It is not a Rust parser: expressions
//! stay token runs, types are skipped by bracket matching, and
//! malformed input degrades to fewer recognised items rather than
//! errors (the right failure mode for a linter that must never block a
//! build on its own confusion).
//!
//! What it recovers:
//!
//! * **`use` imports**, with brace trees expanded (`use a::{b, c::d}`
//!   becomes `a::b` and `a::c::d`), `as` renames resolved to the
//!   original path, and each leaf carrying the `use` keyword's span.
//! * **Functions**, with their impl-qualified name (`Link::push`, or a
//!   bare `helper`), parameter names, body token range, and the simple
//!   names of everything the body calls (`foo(…)`, `.foo(…)`,
//!   `Type::foo(…)`) — enough for the intra-file reachability closure
//!   D7 uses to follow `run_until` into its helpers.
//! * **Declaration sites** for D8: `fn` names, parameters, `let`
//!   bindings, `struct` fields, `const`/`static` items.
//! * **Test scopes**: any item under a `#[cfg(test)] mod` is marked so
//!   production-only rules can skip it.

use crate::lexer::{Token, TokenKind};

/// One expanded `use` import.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseImport {
    /// The full path, `::`-joined, brace trees expanded and `as`
    /// renames dropped (the *source* path is what layering cares
    /// about). Leading `::` and `self::` prefixes are stripped.
    pub path: String,
    /// 1-based line of the `use` keyword.
    pub line: u32,
    /// 1-based column of the `use` keyword.
    pub col: u32,
    /// True when the import sits inside a `#[cfg(test)]` module.
    pub in_test: bool,
}

/// A function item with its body span.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The simple name (`run_until`).
    pub name: String,
    /// Impl-qualified name: `Simulator::run_until` inside
    /// `impl Simulator` (or `impl Trait for Simulator`), else the
    /// simple name.
    pub qual: String,
    /// Token-index range `[start, end)` of the body (the tokens between
    /// the braces, braces excluded). Empty for bodiless trait methods.
    pub body: (usize, usize),
    /// Simple names of calls made anywhere in the body.
    pub calls: Vec<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// True when declared under a `#[cfg(test)]` module.
    pub in_test: bool,
}

/// What kind of declaration a [`Decl`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeclKind {
    /// A `fn` name.
    Fn,
    /// A function parameter.
    Param,
    /// A `let` binding.
    Let,
    /// A `struct` field.
    Field,
    /// A `const` or `static` item.
    Const,
}

/// One name-introduction site (for D8 unit hygiene).
#[derive(Debug, Clone)]
pub struct Decl {
    /// The declared identifier.
    pub name: String,
    /// What introduced it.
    pub kind: DeclKind,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// True when declared under a `#[cfg(test)]` module.
    pub in_test: bool,
    /// The head identifier of the declared type, when syntactically
    /// evident (`f64`, `Vec`, `Option`); `None` for inferred `let`s,
    /// fn names, and anything the item parser does not resolve.
    pub ty: Option<String>,
}

/// Everything the item parser recovered from one file.
#[derive(Debug, Default)]
pub struct FileModel {
    /// Expanded `use` imports, in source order.
    pub uses: Vec<UseImport>,
    /// Function items, in source order.
    pub fns: Vec<FnItem>,
    /// Declaration sites, in source order.
    pub decls: Vec<Decl>,
    /// Token-index ranges `[start, end)` covered by `#[cfg(test)]`
    /// modules.
    pub test_ranges: Vec<(usize, usize)>,
}

impl FileModel {
    /// The functions whose body token range contains `tok_idx`.
    /// Innermost last (nested fns report both).
    pub fn enclosing_fns(&self, tok_idx: usize) -> Vec<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body.0 <= tok_idx && tok_idx < f.body.1)
            .collect()
    }

    /// True when `tok_idx` sits inside a `#[cfg(test)]` module body.
    pub fn in_test_region(&self, tok_idx: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(s, e)| s <= tok_idx && tok_idx < e)
    }
}

/// What one `{` opened, tracked on a stack so item context follows
/// brace structure.
#[derive(Debug, Clone)]
enum Scope {
    /// `mod name {` — carries whether the mod is `#[cfg(test)]` and
    /// the token index of its opening `{`.
    Mod { test: bool, start: usize },
    /// `impl Type {` / `impl Trait for Type {` — carries the type name.
    Impl { type_name: String },
    /// `struct Name {` — field declarations live directly inside.
    Struct,
    /// `fn name(…) {` — carries the index into `FileModel::fns`.
    Fn { fn_idx: usize },
    /// Any other brace: blocks, match arms, struct literals, closures.
    Block,
}

/// Parses `tokens` (as produced by [`crate::lexer::tokenize`]) into a
/// [`FileModel`]. Comments are ignored for structure; token indices in
/// the model refer to positions in the *input* slice, so they line up
/// with the indices rule passes use.
pub fn parse(tokens: &[Token]) -> FileModel {
    Parser {
        tokens,
        model: FileModel::default(),
        scopes: Vec::new(),
        open_fns: Vec::new(),
    }
    .run()
}

struct Parser<'t> {
    tokens: &'t [Token],
    model: FileModel,
    scopes: Vec<Scope>,
    /// Indices into `model.fns` whose body is still open (innermost
    /// last); calls found anywhere inside attribute to all of them.
    open_fns: Vec<usize>,
}

impl<'t> Parser<'t> {
    /// The next non-comment token index at or after `i`.
    fn skip_comments(&self, mut i: usize) -> usize {
        while i < self.tokens.len() && self.tokens[i].kind == TokenKind::Comment {
            i += 1;
        }
        i
    }

    /// The previous non-comment token index before `i`, if any.
    fn prev_code(&self, i: usize) -> Option<usize> {
        (0..i)
            .rev()
            .find(|&j| self.tokens[j].kind != TokenKind::Comment)
    }

    fn is_ident(&self, i: usize, text: &str) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text == text)
    }

    fn is_punct(&self, i: usize, text: &str) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text == text)
    }

    fn in_test(&self) -> bool {
        self.scopes
            .iter()
            .any(|s| matches!(s, Scope::Mod { test: true, .. }))
    }

    fn current_impl(&self) -> Option<&str> {
        self.scopes.iter().rev().find_map(|s| match s {
            Scope::Impl { type_name } => Some(type_name.as_str()),
            _ => None,
        })
    }

    fn in_struct(&self) -> bool {
        matches!(self.scopes.last(), Some(Scope::Struct))
    }

    fn in_fn_body(&self) -> bool {
        !self.open_fns.is_empty()
    }

    fn run(mut self) -> FileModel {
        let mut i = 0usize;
        while i < self.tokens.len() {
            i = self.skip_comments(i);
            if i >= self.tokens.len() {
                break;
            }
            let t = &self.tokens[i];
            match (t.kind, t.text.as_str()) {
                (TokenKind::Ident, "use") => i = self.parse_use(i),
                (TokenKind::Ident, "mod") => i = self.parse_mod(i),
                (TokenKind::Ident, "impl") => i = self.parse_impl(i),
                (TokenKind::Ident, "struct") => i = self.parse_struct(i),
                (TokenKind::Ident, "fn") => i = self.parse_fn(i),
                (TokenKind::Ident, "let") if self.in_fn_body() => i = self.parse_let(i),
                (TokenKind::Ident, "const" | "static") => i = self.parse_const(i),
                (TokenKind::Ident, _) if self.in_struct() => i = self.parse_field(i),
                (TokenKind::Ident, name) if self.in_fn_body() => {
                    // call-site harvesting: `name(`, `.name(`, `T::name(`
                    let next = self.skip_comments(i + 1);
                    if self.is_punct(next, "(") && !is_keyword(name) {
                        let owned = name.to_string();
                        for &f in &self.open_fns {
                            if !self.model.fns[f].calls.contains(&owned) {
                                self.model.fns[f].calls.push(owned.clone());
                            }
                        }
                    }
                    i += 1;
                }
                (TokenKind::Punct, "{") => {
                    self.scopes.push(Scope::Block);
                    i += 1;
                }
                (TokenKind::Punct, "}") => {
                    self.close_brace(i);
                    i += 1;
                }
                _ => i += 1,
            }
        }
        // unterminated scopes (malformed input): close them at EOF so
        // body ranges stay bounded
        let eof = self.tokens.len();
        while !self.scopes.is_empty() {
            self.close_brace(eof);
        }
        self.model
    }

    /// Closes the innermost scope at the `}` (or EOF) token index
    /// `close_idx`, patching fn body ends and test-mod ranges.
    fn close_brace(&mut self, close_idx: usize) {
        match self.scopes.pop() {
            Some(Scope::Fn { fn_idx }) => {
                self.model.fns[fn_idx].body.1 = close_idx;
                if let Some(pos) = self.open_fns.iter().rposition(|&f| f == fn_idx) {
                    self.open_fns.remove(pos);
                }
            }
            Some(Scope::Mod { test: true, start }) => {
                self.model.test_ranges.push((start, close_idx));
            }
            _ => {}
        }
    }

    /// `use path::to::{a, b::c} ;` — expand and record each leaf.
    fn parse_use(&mut self, start: usize) -> usize {
        let (line, col) = (self.tokens[start].line, self.tokens[start].col);
        // guard: `use` as a path segment (`mem::use`? impossible) or a
        // macro field is not an import; require statement position
        // (previous code token is none, `;`, `{`, `}`) or `pub`.
        if let Some(p) = self.prev_code(start) {
            let pt = &self.tokens[p];
            let ok = matches!(pt.text.as_str(), ";" | "{" | "}" | "]") || pt.text == "pub";
            if !ok {
                return start + 1;
            }
        }
        let in_test = self.in_test();
        let mut i = self.skip_comments(start + 1);
        let mut prefix: Vec<String> = Vec::new();
        let mut stack: Vec<usize> = Vec::new(); // prefix lengths at `{`
        let mut current: Vec<String> = Vec::new();
        let flush = |current: &mut Vec<String>, prefix: &[String], model: &mut FileModel| {
            if !current.is_empty() {
                let mut full: Vec<String> = prefix.to_vec();
                full.append(current);
                let path = full.join("::");
                let path = path
                    .trim_start_matches("::")
                    .trim_start_matches("self::")
                    .to_string();
                if !path.is_empty() {
                    model.uses.push(UseImport {
                        path,
                        line,
                        col,
                        in_test,
                    });
                }
            }
        };
        while i < self.tokens.len() {
            i = self.skip_comments(i);
            let Some(t) = self.tokens.get(i) else { break };
            match (t.kind, t.text.as_str()) {
                (TokenKind::Punct, ";") => {
                    flush(&mut current, &prefix, &mut self.model);
                    return i + 1;
                }
                (TokenKind::Punct, "{") => {
                    stack.push(prefix.len());
                    prefix.append(&mut current);
                    i += 1;
                }
                (TokenKind::Punct, "}") => {
                    flush(&mut current, &prefix, &mut self.model);
                    if let Some(len) = stack.pop() {
                        prefix.truncate(len);
                    }
                    i += 1;
                }
                (TokenKind::Punct, ",") => {
                    flush(&mut current, &prefix, &mut self.model);
                    i += 1;
                }
                (TokenKind::Ident, "as") => {
                    // skip the rename; the source path is already in
                    // `current`
                    i = self.skip_comments(i + 1) + 1;
                }
                (TokenKind::Ident, _) | (TokenKind::Punct, "*") => {
                    current.push(t.text.clone());
                    i += 1;
                }
                (TokenKind::Punct, "::") => {
                    i += 1;
                }
                _ => i += 1, // attributes, stray tokens: skip
            }
        }
        flush(&mut current, &prefix, &mut self.model);
        i
    }

    /// `mod name;` or `mod name { … }`, detecting `#[cfg(test)]`.
    fn parse_mod(&mut self, start: usize) -> usize {
        // `mod` must be item-position: previous code token ends a
        // statement or is a visibility/attribute closer
        let name_i = self.skip_comments(start + 1);
        if !self
            .tokens
            .get(name_i)
            .is_some_and(|t| t.kind == TokenKind::Ident)
        {
            return start + 1;
        }
        let after = self.skip_comments(name_i + 1);
        if self.is_punct(after, "{") {
            let test = self.mod_is_cfg_test(start) || self.in_test();
            self.scopes.push(Scope::Mod { test, start: after });
            return after + 1;
        }
        // `mod name;` — nothing to track
        start + 1
    }

    /// Looks backwards from the `mod` keyword for a `#[cfg(test)]`
    /// attribute (allowing `pub` and other attributes in between).
    fn mod_is_cfg_test(&self, mod_idx: usize) -> bool {
        // scan back over `pub`, `]`-closed attributes; accept when an
        // attribute containing `cfg ( test` is found
        let mut i = mod_idx;
        while let Some(p) = self.prev_code(i) {
            let t = &self.tokens[p];
            match t.text.as_str() {
                "pub" => i = p,
                ")" => {
                    // `pub(crate)` — skip to the matching `(` and the `pub`
                    let mut depth = 1;
                    let mut j = p;
                    while depth > 0 {
                        let Some(q) = self.prev_code(j) else {
                            return false;
                        };
                        match self.tokens[q].text.as_str() {
                            ")" => depth += 1,
                            "(" => depth -= 1,
                            _ => {}
                        }
                        j = q;
                    }
                    i = j;
                }
                "]" => {
                    // attribute: collect its tokens back to the `#`
                    let mut j = p;
                    let mut texts: Vec<&str> = Vec::new();
                    loop {
                        let Some(q) = self.prev_code(j) else {
                            return false;
                        };
                        if self.tokens[q].text == "#" {
                            j = q;
                            break;
                        }
                        texts.push(self.tokens[q].text.as_str());
                        j = q;
                        if texts.len() > 64 {
                            return false;
                        }
                    }
                    texts.reverse();
                    if texts.windows(2).any(|w| w[0] == "cfg" && w[1] == "(")
                        && texts.contains(&"test")
                    {
                        return true;
                    }
                    // another attribute (#[allow(...)] etc.): keep
                    // scanning before its `#`
                    i = j;
                }
                _ => return false,
            }
        }
        false
    }

    /// `impl [<…>] Type {` / `impl [<…>] Trait for Type {`.
    fn parse_impl(&mut self, start: usize) -> usize {
        let mut i = self.skip_comments(start + 1);
        let mut depth_angle = 0i32;
        let mut after_for: Option<String> = None;
        let mut first_type: Option<String> = None;
        let mut saw_for = false;
        while i < self.tokens.len() {
            i = self.skip_comments(i);
            let Some(t) = self.tokens.get(i) else { break };
            match (t.kind, t.text.as_str()) {
                (TokenKind::Punct, "{") if depth_angle == 0 => {
                    let type_name = after_for.or(first_type).unwrap_or_else(|| "?".to_string());
                    self.scopes.push(Scope::Impl { type_name });
                    return i + 1;
                }
                (TokenKind::Punct, ";") => return i + 1, // `impl Trait for T;`? bail
                (TokenKind::Punct, "<") => {
                    depth_angle += 1;
                    i += 1;
                }
                (TokenKind::Punct, ">") => {
                    depth_angle -= 1;
                    i += 1;
                }
                // the lexer fuses `>>` into one shift token; in type
                // position (`Vec<Vec<T>>`) it closes two generic scopes
                (TokenKind::Punct, ">>") => {
                    depth_angle -= 2;
                    i += 1;
                }
                (TokenKind::Ident, "for") if depth_angle == 0 => {
                    saw_for = true;
                    i += 1;
                }
                (TokenKind::Ident, "where") if depth_angle == 0 => {
                    // the where clause adds nothing to the type name
                    i += 1;
                }
                (TokenKind::Ident, name) if depth_angle == 0 => {
                    // remember the *last* path segment seen on each side
                    // of `for` (handles `impl fmt::Display for Rule`)
                    if saw_for {
                        if !is_keyword(name) {
                            after_for = Some(name.to_string());
                        }
                    } else if !is_keyword(name) {
                        first_type = Some(name.to_string());
                    }
                    i += 1;
                }
                _ => i += 1,
            }
        }
        i
    }

    /// `struct Name { fields }` (unit/tuple structs add no field decls).
    fn parse_struct(&mut self, start: usize) -> usize {
        let mut i = self.skip_comments(start + 1);
        // struct name
        if let Some(t) = self.tokens.get(i) {
            if t.kind == TokenKind::Ident {
                i = self.skip_comments(i + 1);
            }
        }
        // generics
        let mut depth_angle = 0i32;
        while i < self.tokens.len() {
            i = self.skip_comments(i);
            let Some(t) = self.tokens.get(i) else { break };
            match t.text.as_str() {
                "<" => {
                    depth_angle += 1;
                    i += 1;
                }
                ">" => {
                    depth_angle -= 1;
                    i += 1;
                }
                // fused shift token closing two generic scopes
                ">>" => {
                    depth_angle -= 2;
                    i += 1;
                }
                "{" if depth_angle == 0 => {
                    self.scopes.push(Scope::Struct);
                    return i + 1;
                }
                // tuple struct `struct Foo(…);` or unit `struct Foo;`
                "(" | ";" if depth_angle == 0 => return i + 1,
                "where" => {
                    i += 1;
                }
                _ => i += 1,
            }
        }
        i
    }

    /// A field inside a `struct { … }` body: `[pub] name : Type ,`.
    fn parse_field(&mut self, start: usize) -> usize {
        let t = &self.tokens[start];
        if t.text == "pub" {
            return start + 1;
        }
        let next = self.skip_comments(start + 1);
        if self.is_punct(next, ":") {
            let ty = self.type_head(next + 1);
            self.model.decls.push(Decl {
                name: t.text.clone(),
                kind: DeclKind::Field,
                line: t.line,
                col: t.col,
                in_test: self.in_test(),
                ty,
            });
            // skip the type up to `,` or the closing `}` (bracket-aware)
            let mut i = next + 1;
            let mut depth = 0i32;
            while i < self.tokens.len() {
                let tt = &self.tokens[i];
                match tt.text.as_str() {
                    "<" | "(" | "[" => depth += 1,
                    ">" | ")" | "]" => depth -= 1,
                    // fused shift token: `Option<Box<T>>` closes twice.
                    // Without this the field swallowed the rest of the
                    // file and silently disabled D7/D8 on every item
                    // after the struct.
                    ">>" => depth -= 2,
                    "," if depth <= 0 => return i + 1,
                    "}" if depth <= 0 => return i, // let the loop close the scope
                    _ => {}
                }
                i += 1;
            }
            return i;
        }
        start + 1
    }

    /// `fn name ( params ) [-> T] { body }`.
    fn parse_fn(&mut self, start: usize) -> usize {
        let name_i = self.skip_comments(start + 1);
        let Some(name_t) = self.tokens.get(name_i) else {
            return start + 1;
        };
        if name_t.kind != TokenKind::Ident {
            return start + 1;
        }
        let name = name_t.text.clone();
        let qual = match self.current_impl() {
            Some(ty) => format!("{ty}::{name}"),
            None => name.clone(),
        };
        let in_test = self.in_test();
        let (fn_line, fn_col) = (self.tokens[start].line, self.tokens[start].col);
        self.model.decls.push(Decl {
            name: name.clone(),
            kind: DeclKind::Fn,
            line: name_t.line,
            col: name_t.col,
            in_test,
            ty: None,
        });

        // find the parameter list `(`, skipping generics
        let mut i = self.skip_comments(name_i + 1);
        let mut depth_angle = 0i32;
        while i < self.tokens.len() {
            let t = &self.tokens[i];
            match t.text.as_str() {
                "<" => depth_angle += 1,
                ">" => depth_angle -= 1,
                ">>" => depth_angle -= 2, // fused shift token in generics
                "(" if depth_angle == 0 => break,
                ";" => return i + 1, // malformed / macro fragment
                _ => {}
            }
            i += 1;
        }
        // parameters: idents followed by `:` at paren depth 1
        let mut depth_paren = 0i32;
        while i < self.tokens.len() {
            let t = &self.tokens[i];
            match t.text.as_str() {
                "(" => depth_paren += 1,
                ")" => {
                    depth_paren -= 1;
                    if depth_paren == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {
                    if depth_paren == 1
                        && t.kind == TokenKind::Ident
                        && t.text != "self"
                        && t.text != "mut"
                        && self.is_punct(self.skip_comments(i + 1), ":")
                    {
                        // only names in pattern position: preceded by `(`,
                        // `,` or `mut`
                        if let Some(p) = self.prev_code(i) {
                            if matches!(self.tokens[p].text.as_str(), "(" | "," | "mut") {
                                let colon = self.skip_comments(i + 1);
                                let ty = self.type_head(colon + 1);
                                self.model.decls.push(Decl {
                                    name: t.text.clone(),
                                    kind: DeclKind::Param,
                                    line: t.line,
                                    col: t.col,
                                    in_test,
                                    ty,
                                });
                            }
                        }
                    }
                }
            }
            i += 1;
        }
        // skip the return type / where clause to the body `{` or a `;`
        let mut depth = 0i32;
        while i < self.tokens.len() {
            let t = &self.tokens[i];
            match t.text.as_str() {
                "<" | "(" | "[" => depth += 1,
                ">" | ")" | "]" => depth -= 1,
                ">>" => depth -= 2, // fused shift token: `-> Vec<Vec<T>>`
                ";" if depth <= 0 => return i + 1, // bodiless trait method
                "{" if depth <= 0 => {
                    let fn_idx = self.model.fns.len();
                    self.model.fns.push(FnItem {
                        name,
                        qual,
                        body: (i + 1, usize::MAX), // end patched on close
                        calls: Vec::new(),
                        line: fn_line,
                        col: fn_col,
                        in_test,
                    });
                    self.scopes.push(Scope::Fn { fn_idx });
                    self.open_fns.push(fn_idx);
                    return i + 1;
                }
                _ => {}
            }
            i += 1;
        }
        i
    }

    /// `let [mut] name …` inside a fn body.
    fn parse_let(&mut self, start: usize) -> usize {
        let mut i = self.skip_comments(start + 1);
        if self.is_ident(i, "mut") {
            i = self.skip_comments(i + 1);
        }
        if let Some(t) = self.tokens.get(i) {
            if t.kind == TokenKind::Ident && t.text != "_" {
                // `let Some(x)` / `let (a, b)` destructuring is skipped:
                // only a bare ident directly after `let [mut]` counts,
                // and only when not immediately followed by `(`/`{`/`::`
                let after = self.skip_comments(i + 1);
                let is_pattern_ctor = self.is_punct(after, "(")
                    || self.is_punct(after, "{")
                    || self.is_punct(after, "::");
                if !is_pattern_ctor {
                    let ty = if self.is_punct(after, ":") {
                        self.type_head(after + 1)
                    } else {
                        None
                    };
                    self.model.decls.push(Decl {
                        name: t.text.clone(),
                        kind: DeclKind::Let,
                        line: t.line,
                        col: t.col,
                        in_test: self.in_test(),
                        ty,
                    });
                }
            }
        }
        start + 1
    }

    /// `const NAME: T = …;` / `static NAME: T = …;`.
    fn parse_const(&mut self, start: usize) -> usize {
        let mut i = self.skip_comments(start + 1);
        if self.is_ident(i, "mut") {
            i = self.skip_comments(i + 1);
        }
        if let Some(t) = self.tokens.get(i) {
            // `const fn` — let the fn branch handle it next iteration
            if t.kind == TokenKind::Ident && t.text != "fn" && t.text != "_" {
                let colon = self.skip_comments(i + 1);
                let ty = if self.is_punct(colon, ":") {
                    self.type_head(colon + 1)
                } else {
                    None
                };
                self.model.decls.push(Decl {
                    name: t.text.clone(),
                    kind: DeclKind::Const,
                    line: t.line,
                    col: t.col,
                    in_test: self.in_test(),
                    ty,
                });
                return i + 1;
            }
        }
        start + 1
    }

    /// The head identifier of a type starting at token `i`, skipping
    /// reference/mutability/lifetime prefixes (`&`, `mut`, `'a`).
    fn type_head(&self, mut i: usize) -> Option<String> {
        for _ in 0..6 {
            i = self.skip_comments(i);
            let t = self.tokens.get(i)?;
            match t.kind {
                TokenKind::Ident if t.text == "mut" || t.text == "dyn" || t.text == "impl" => {
                    i += 1;
                }
                TokenKind::Ident => return Some(t.text.clone()),
                TokenKind::Lifetime => i += 1,
                TokenKind::Punct if t.text == "&" || t.text == "&&" => i += 1,
                _ => return None,
            }
        }
        None
    }
}

/// Keywords that look like call sites (`if (…)`, `while (…)`) or are
/// otherwise never function names.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "loop"
            | "else"
            | "fn"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "in"
            | "as"
            | "use"
            | "pub"
            | "impl"
            | "struct"
            | "enum"
            | "trait"
            | "mod"
            | "const"
            | "static"
            | "where"
            | "unsafe"
            | "dyn"
            | "box"
            | "Some"
            | "None"
            | "Ok"
            | "Err"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn model(src: &str) -> FileModel {
        parse(&tokenize(src))
    }

    #[test]
    fn use_trees_expand() {
        let m = model(
            "use std::collections::{BTreeMap, btree_map::Entry};\n\
             use abw_netsim::SimDuration;\n\
             pub use crate::tools::registry as reg;\n",
        );
        let paths: Vec<&str> = m.uses.iter().map(|u| u.path.as_str()).collect();
        assert_eq!(
            paths,
            [
                "std::collections::BTreeMap",
                "std::collections::btree_map::Entry",
                "abw_netsim::SimDuration",
                "crate::tools::registry",
            ]
        );
        assert_eq!(m.uses[0].line, 1);
        assert_eq!(m.uses[2].line, 2);
        assert_eq!(m.uses[3].line, 3);
    }

    #[test]
    fn fns_get_impl_qualified_names_and_bodies() {
        let m = model(
            "impl Link {\n\
               fn push(&mut self, p: Packet) { self.enqueue(p); }\n\
             }\n\
             impl fmt::Display for Rule {\n\
               fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { write(f) }\n\
             }\n\
             fn helper(x: u64) -> u64 { x }\n",
        );
        let quals: Vec<&str> = m.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, ["Link::push", "Rule::fmt", "helper"]);
        assert!(m.fns[0].calls.contains(&"enqueue".to_string()));
    }

    #[test]
    fn calls_are_harvested_transitively_visible() {
        let m = model(
            "fn outer() { inner(); x.method(); Type::assoc(); }\n\
             fn inner() {}\n",
        );
        let outer = &m.fns[0];
        assert!(outer.calls.contains(&"inner".to_string()));
        assert!(outer.calls.contains(&"method".to_string()));
        assert!(outer.calls.contains(&"assoc".to_string()));
    }

    #[test]
    fn decls_cover_fields_params_lets_consts() {
        let m = model(
            "const WARMUP_MS: u64 = 5;\n\
             struct S { rate_bps: f64, pub count: u32 }\n\
             fn f(gap_us: f64) { let total_bytes = 0; let Some(x) = opt else { return }; }\n",
        );
        let names: Vec<(&str, DeclKind)> =
            m.decls.iter().map(|d| (d.name.as_str(), d.kind)).collect();
        assert!(names.contains(&("WARMUP_MS", DeclKind::Const)));
        assert!(names.contains(&("rate_bps", DeclKind::Field)));
        assert!(names.contains(&("count", DeclKind::Field)));
        assert!(names.contains(&("gap_us", DeclKind::Param)));
        assert!(names.contains(&("total_bytes", DeclKind::Let)));
        assert!(names.contains(&("f", DeclKind::Fn)));
        // the destructured `Some(x)` is not a Let decl
        assert!(!names.contains(&("Some", DeclKind::Let)));
    }

    #[test]
    fn cfg_test_mods_mark_items() {
        let m = model(
            "fn prod() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
               use super::*;\n\
               fn helper_test() { prod(); }\n\
             }\n",
        );
        assert!(!m.fns[0].in_test);
        assert!(m.fns[1].in_test, "fn under #[cfg(test)] mod must be test");
        assert!(m.uses[0].in_test);
    }

    #[test]
    fn enclosing_fn_lookup_spans_nested_braces() {
        let src = "fn a() { if x { y.unwrap(); } }\nfn b() {}\n";
        let toks = tokenize(src);
        let m = parse(&toks);
        let unwrap_idx = toks
            .iter()
            .position(|t| t.text == "unwrap")
            .expect("unwrap token");
        let encl = m.enclosing_fns(unwrap_idx);
        assert_eq!(encl.len(), 1);
        assert_eq!(encl[0].name, "a");
    }

    #[test]
    fn fn_bodies_end_at_their_closing_brace() {
        let src = "fn a() { x(); }\nfn b() { y.unwrap(); }\n";
        let toks = tokenize(src);
        let m = parse(&toks);
        let unwrap_idx = toks.iter().position(|t| t.text == "unwrap").unwrap();
        let encl = m.enclosing_fns(unwrap_idx);
        assert_eq!(encl.len(), 1, "a's body must not swallow b's tokens");
        assert_eq!(encl[0].name, "b");
    }

    #[test]
    fn test_regions_cover_cfg_test_mod_tokens() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests { fn t() { q(); } }\n";
        let toks = tokenize(src);
        let m = parse(&toks);
        let q_idx = toks.iter().position(|t| t.text == "q").unwrap();
        let prod_idx = toks.iter().position(|t| t.text == "prod").unwrap();
        assert!(m.in_test_region(q_idx));
        assert!(!m.in_test_region(prod_idx));
    }

    #[test]
    fn struct_literal_in_fn_is_not_field_decls() {
        let m = model("fn f() { let s = Foo { rate_mbps: 1.0 }; }");
        assert!(m
            .decls
            .iter()
            .all(|d| !(d.name == "rate_mbps" && d.kind == DeclKind::Field)));
    }

    #[test]
    fn trait_fn_without_body_has_no_open_range() {
        let m = model("trait T { fn next(&mut self) -> u32; }\nfn real() {}");
        // the bodiless `next` must not swallow `real`
        assert!(m.fns.iter().any(|f| f.name == "real"));
        assert!(!m.fns.iter().any(|f| f.name == "next"));
    }
}
