//! The determinism & invariant rules (D1–D6) and the engine that runs
//! them over a token stream.
//!
//! Each rule is a token-shaped pattern plus a *scope*: the set of crates
//! or file classes it applies to. Scopes encode the workspace's layering
//! contract — e.g. wall-clock reads are the executor's and the bench
//! harness's business, never the simulation's. Deliberate exceptions are
//! annotated in the source with an escape-hatch comment:
//!
//! ```text
//! // lint: allow(float_eq)            — allows this line and the next
//! let exact = x == 0.0;              //   (or the marker's own line)
//! ```
//!
//! Multiple rules can be allowed at once: `// lint: allow(hash_iter, rng)`.

use std::fmt;

use crate::lexer::{Token, TokenKind};

/// A lint rule. The `D*` ids match DESIGN.md §10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// D1: no ambient wall-clock reads outside `exec`/`bench`.
    WallClock,
    /// D2: no `HashMap`/`HashSet` in result-producing crates.
    HashIter,
    /// D3: no `thread::spawn` outside `exec`.
    ThreadSpawn,
    /// D4: no `==`/`!=` against floating-point values.
    FloatEq,
    /// D5: no `println!`/`eprintln!` in library crates.
    Print,
    /// D6: no unseeded / ambient RNG construction.
    Rng,
    /// D7: no panic paths (`unwrap`, `expect`, indexing, narrowing
    /// `as`) inside configured hot scopes.
    PanicFree,
    /// D8: numeric names carry a unit suffix; no mixed-unit arithmetic.
    Units,
    /// D9: every tool module statically present in the registry.
    Registry,
    /// L1: no import edge that violates the declared layering contract.
    Layering,
}

/// All rules, in report order.
pub const ALL_RULES: [Rule; 10] = [
    Rule::WallClock,
    Rule::HashIter,
    Rule::ThreadSpawn,
    Rule::FloatEq,
    Rule::Print,
    Rule::Rng,
    Rule::PanicFree,
    Rule::Units,
    Rule::Registry,
    Rule::Layering,
];

impl Rule {
    /// Short id, `D1`…`D6`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::WallClock => "D1",
            Rule::HashIter => "D2",
            Rule::ThreadSpawn => "D3",
            Rule::FloatEq => "D4",
            Rule::Print => "D5",
            Rule::Rng => "D6",
            Rule::PanicFree => "D7",
            Rule::Units => "D8",
            Rule::Registry => "D9",
            Rule::Layering => "L1",
        }
    }

    /// The name used in `lint: allow(...)` markers.
    pub fn name(self) -> &'static str {
        match self {
            Rule::WallClock => "wall_clock",
            Rule::HashIter => "hash_iter",
            Rule::ThreadSpawn => "thread_spawn",
            Rule::FloatEq => "float_eq",
            Rule::Print => "print",
            Rule::Rng => "rng",
            Rule::PanicFree => "panic_free",
            Rule::Units => "units",
            Rule::Registry => "registry",
            Rule::Layering => "layering",
        }
    }

    /// Parses a marker name back into a rule.
    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }

    /// One-line fix hint attached to every finding.
    pub fn hint(self) -> &'static str {
        match self {
            Rule::WallClock => {
                "simulation code must use the virtual clock (netsim::time::SimTime); \
                 wall-clock reads belong in crates/exec or crates/bench"
            }
            Rule::HashIter => {
                "HashMap/HashSet iteration order is nondeterministic and can leak into \
                 results; use BTreeMap/BTreeSet or add `// lint: allow(hash_iter)` \
                 after proving no iteration feeds output"
            }
            Rule::ThreadSpawn => {
                "all parallelism flows through abw_exec::Executor so results stay in \
                 submission order; do not spawn threads elsewhere"
            }
            Rule::FloatEq => {
                "exact float equality is order/rounding fragile; use f64::total_cmp, an \
                 epsilon comparison, or add `// lint: allow(float_eq)` for deliberate \
                 exact-zero guards"
            }
            Rule::Print => {
                "library crates must not write to stdout/stderr; emit through abw-obs \
                 or return data for the bench binaries to print"
            }
            Rule::Rng => {
                "ambient entropy makes runs unreproducible; derive every RNG from a \
                 scenario seed via StdRng::seed_from_u64"
            }
            Rule::PanicFree => {
                "this body is reachable from a hot scope declared in lint.toml; a panic \
                 here kills a simulation mid-event — return an error, saturate, or add \
                 `// lint: allow(panic_free) -- <why it cannot fire>`"
            }
            Rule::Units => {
                "numeric names carry a unit suffix (_bps _ns _us _ms _s _pkts _bytes \
                 _frac) so Mb/s-vs-B/s bugs are visible at the call site; rename or \
                 add `// lint: allow(units)`"
            }
            Rule::Registry => {
                "every module under core/src/tools must have a `module: \"<stem>\"` \
                 entry in tools::registry so scenario specs can name it"
            }
            Rule::Layering => {
                "this import violates a [[layering.deny]] edge in lint.toml; route \
                 through the sanctioned layer or amend the contract in review"
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.id(), self.name())
    }
}

/// How a file participates in the workspace, decided from its path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileContext {
    /// Crate directory name under `crates/` (`"core"`, `"netsim"`, …);
    /// empty string for the root `abwe` facade crate.
    pub crate_name: String,
    /// Coarse target kind.
    pub class: FileClass,
}

/// Coarse target kind of a source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library source (`src/**` except `src/bin` and `src/main.rs`).
    Lib,
    /// Binary-adjacent source: `src/bin/**`, `src/main.rs`,
    /// `examples/**`, `benches/**`.
    Bin,
    /// Integration tests (`tests/**`).
    Test,
}

impl FileContext {
    /// Context for a library file of the given crate.
    pub fn lib(crate_name: &str) -> Self {
        FileContext {
            crate_name: crate_name.to_string(),
            class: FileClass::Lib,
        }
    }

    /// Context for a binary/example file of the given crate.
    pub fn bin(crate_name: &str) -> Self {
        FileContext {
            crate_name: crate_name.to_string(),
            class: FileClass::Bin,
        }
    }

    /// Context for an integration-test file of the given crate.
    pub fn test(crate_name: &str) -> Self {
        FileContext {
            crate_name: crate_name.to_string(),
            class: FileClass::Test,
        }
    }

    /// Whether `rule` is enforced for files in this context.
    pub fn enforces(&self, rule: Rule) -> bool {
        let c = self.crate_name.as_str();
        match rule {
            // exec owns wall time (job timing); bench reports wall time
            Rule::WallClock => !matches!(c, "exec" | "bench"),
            // the crates whose outputs feed results, CSV, and traces
            Rule::HashIter => matches!(c, "core" | "netsim" | "traffic" | "stats"),
            Rule::ThreadSpawn => c != "exec",
            Rule::FloatEq => true,
            // bench's lib exists to serve its binaries; binaries and
            // tests may print freely
            Rule::Print => self.class == FileClass::Lib && c != "bench",
            Rule::Rng => true,
            // hot scopes are library code by construction; D8 names are
            // a library-API contract, not a test-local one
            Rule::PanicFree => self.class == FileClass::Lib,
            Rule::Units => self.class == FileClass::Lib,
            // workspace-level passes; scope is decided by lint.toml
            // (registry paths, deny-edge globs), not the file class
            Rule::Registry => true,
            Rule::Layering => self.class != FileClass::Test,
        }
    }
}

impl Rule {
    /// One-line scope description for `--list-rules`.
    pub fn scope(self) -> &'static str {
        match self {
            Rule::WallClock => "all crates except exec, bench",
            Rule::HashIter => "core, netsim, traffic, stats",
            Rule::ThreadSpawn => "all crates except exec",
            Rule::FloatEq => "everywhere",
            Rule::Print => "library code except bench",
            Rule::Rng => "everywhere",
            Rule::PanicFree => "lint.toml [[panic_free.scope]] hot paths",
            Rule::Units => "library code (declaration sites)",
            Rule::Registry => "lint.toml [registry] paths",
            Rule::Layering => "lint.toml [[layering.deny]] edges, non-test",
        }
    }
}

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// The offending token run, reassembled.
    pub snippet: String,
    /// Extra context appended to the rule hint (e.g. the violated
    /// layering edge's configured reason).
    pub note: Option<String>,
}

impl Finding {
    /// The full hint: the rule's static hint plus the per-finding note.
    pub fn full_hint(&self) -> String {
        match &self.note {
            Some(note) => format!("{} [{}]", self.rule.hint(), note),
            None => self.rule.hint().to_string(),
        }
    }
}

/// Lines on which given rules are explicitly allowed.
#[derive(Debug, Default)]
pub struct Allows {
    /// `(line, rule)` pairs; a marker covers its own line and the next.
    entries: Vec<(u32, Rule)>,
}

impl Allows {
    pub fn from_tokens(tokens: &[Token]) -> Self {
        let mut allows = Allows::default();
        for t in tokens {
            if t.kind != TokenKind::Comment {
                continue;
            }
            let Some(idx) = t.text.find("lint: allow(") else {
                continue;
            };
            let rest = &t.text[idx + "lint: allow(".len()..];
            let Some(close) = rest.find(')') else {
                continue;
            };
            for name in rest[..close].split(',') {
                if let Some(rule) = Rule::from_name(name.trim()) {
                    allows.entries.push((t.line, rule));
                }
            }
        }
        allows
    }

    /// True when `rule` is allowed on `line` (marker on the same line or
    /// the line above).
    pub fn covers(&self, line: u32, rule: Rule) -> bool {
        self.entries
            .iter()
            .any(|&(l, r)| r == rule && (l == line || l + 1 == line))
    }
}

/// Runs every applicable rule over `tokens`, honouring allow markers.
pub fn check(ctx: &FileContext, tokens: &[Token]) -> Vec<Finding> {
    let allows = Allows::from_tokens(tokens);
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .collect();
    let mut findings = Vec::new();
    let mut push = |rule: Rule, tok: &Token, snippet: String| {
        if ctx.enforces(rule) && !allows.covers(tok.line, rule) {
            findings.push(Finding {
                rule,
                line: tok.line,
                col: tok.col,
                snippet,
                note: None,
            });
        }
    };

    for (i, t) in code.iter().enumerate() {
        match t.kind {
            TokenKind::Ident => {
                let next_is =
                    |k: usize, text: &str| code.get(i + k).is_some_and(|n| n.text == text);
                // D1: Instant::now / SystemTime::now
                if (t.text == "Instant" || t.text == "SystemTime")
                    && next_is(1, "::")
                    && next_is(2, "now")
                {
                    push(Rule::WallClock, t, format!("{}::now", t.text));
                }
                // D2: any HashMap/HashSet mention (import or use site)
                if t.text == "HashMap" || t.text == "HashSet" {
                    push(Rule::HashIter, t, t.text.clone());
                }
                // D3: thread::spawn
                if t.text == "thread" && next_is(1, "::") && next_is(2, "spawn") {
                    push(Rule::ThreadSpawn, t, "thread::spawn".to_string());
                }
                // D5: print family macros
                if matches!(t.text.as_str(), "println" | "eprintln" | "print" | "eprint")
                    && next_is(1, "!")
                {
                    push(Rule::Print, t, format!("{}!", t.text));
                }
                // D6: ambient entropy constructors
                if matches!(
                    t.text.as_str(),
                    "thread_rng" | "from_entropy" | "from_os_rng" | "OsRng" | "ThreadRng"
                ) {
                    push(Rule::Rng, t, t.text.clone());
                }
                // D6: the `rand::random()` free function
                if t.text == "rand" && next_is(1, "::") && next_is(2, "random") {
                    push(Rule::Rng, t, "rand::random".to_string());
                }
            }
            TokenKind::Punct if t.text == "==" || t.text == "!=" => {
                // D4: float literal on either side of ==/!=
                let prev_float = i > 0 && code[i - 1].kind == TokenKind::Float;
                let next_float = code.get(i + 1).is_some_and(|n| n.kind == TokenKind::Float);
                // also catch `== f64::NAN`-style named float constants
                let next_named_float = code.get(i + 1).is_some_and(|n| {
                    (n.text == "f64" || n.text == "f32")
                        && code.get(i + 2).is_some_and(|c| c.text == "::")
                });
                if prev_float || next_float || next_named_float {
                    let lhs = if i > 0 { code[i - 1].text.as_str() } else { "" };
                    let rhs = code.get(i + 1).map_or("", |n| n.text.as_str());
                    push(Rule::FloatEq, t, format!("{lhs} {} {rhs}", t.text));
                }
            }
            _ => {}
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn run(ctx: FileContext, src: &str) -> Vec<Finding> {
        check(&ctx, &tokenize(src))
    }

    #[test]
    fn wall_clock_denied_in_netsim_allowed_in_exec() {
        let src = "let t = Instant::now();";
        assert_eq!(run(FileContext::lib("netsim"), src).len(), 1);
        assert_eq!(
            run(FileContext::lib("netsim"), src)[0].rule,
            Rule::WallClock
        );
        assert!(run(FileContext::lib("exec"), src).is_empty());
        assert!(run(FileContext::lib("bench"), src).is_empty());
    }

    #[test]
    fn hash_map_only_in_result_crates() {
        let src = "use std::collections::HashMap;";
        assert_eq!(run(FileContext::lib("core"), src).len(), 1);
        assert!(run(FileContext::lib("tcp"), src).is_empty());
        let marked = "use std::collections::HashMap; // lint: allow(hash_iter)";
        assert!(run(FileContext::lib("core"), marked).is_empty());
    }

    #[test]
    fn float_eq_with_marker_above() {
        let src = "if x == 0.0 { return; }";
        assert_eq!(run(FileContext::lib("stats"), src).len(), 1);
        let marked = "// exact-zero guard: lint: allow(float_eq)\nif x == 0.0 { return; }";
        assert!(run(FileContext::lib("stats"), marked).is_empty());
    }

    #[test]
    fn tuple_index_comparison_is_not_float_eq() {
        // integer == integer, even though it reads like a decimal
        let src = "if pair.0 == pair.1 {}";
        assert!(run(FileContext::lib("stats"), src).is_empty());
    }

    #[test]
    fn print_scoped_to_library_class() {
        let src = r#"println!("hi");"#;
        assert_eq!(run(FileContext::lib("core"), src).len(), 1);
        assert!(run(FileContext::bin("core"), src).is_empty());
        assert!(run(FileContext::test("core"), src).is_empty());
        assert!(run(FileContext::lib("bench"), src).is_empty());
    }

    #[test]
    fn patterns_in_strings_and_comments_do_not_fire() {
        let src = r#"
            // HashMap and Instant::now in a comment
            let s = "thread_rng() println!";
        "#;
        assert!(run(FileContext::lib("core"), src).is_empty());
    }

    #[test]
    fn rng_entropy_denied_everywhere() {
        for ctx in [
            FileContext::lib("traffic"),
            FileContext::bin("bench"),
            FileContext::test(""),
        ] {
            assert_eq!(run(ctx, "let mut r = thread_rng();").len(), 1);
        }
    }

    #[test]
    fn allow_marker_names_multiple_rules() {
        let src = "let m: HashMap<u32, f64> = HashMap::new(); // lint: allow(hash_iter, float_eq)";
        assert!(run(FileContext::lib("netsim"), src).is_empty());
    }
}
