//! D7 — panic-freedom in declared hot scopes.
//!
//! A panic inside `Simulator::run_until` kills a simulation mid-event;
//! inside `Link::push` it corrupts an in-flight transfer; inside an
//! `Estimator::next` body it takes down the whole experiment cell. The
//! `[[panic_free.scope]]` entries in `lint.toml` name those regions
//! (file glob + impl-qualified fn globs), and this pass flags every
//! potential panic site inside them:
//!
//! * `.unwrap()` / `.expect(…)`
//! * the explicit panic macros `panic!` / `unreachable!` / `todo!` /
//!   `unimplemented!` (`assert!` and `debug_assert!` are exempt —
//!   asserts are the sanctioned invariant mechanism and debug asserts
//!   vanish in release)
//! * indexing `expr[…]` (slice/array/map panic on miss), except the
//!   full-range `[..]` which cannot fail
//! * narrowing integer casts `as u8|u16|u32|i8|i16|i32`, which
//!   silently truncate instead of panicking — the same
//!   wrong-number-no-error class the paper's fallacies describe
//!
//! Reachability closes over same-file calls: a helper called from a
//! hot fn is hot too, because the panic still unwinds through the hot
//! path. Cross-file closure is deliberately out of scope — the
//! config's fn globs name the entry points per file instead.

use crate::config::{glob_match, HotScope};
use crate::lexer::{Token, TokenKind};
use crate::parser::FileModel;
use crate::rules::{Allows, Finding, Rule};

/// Runs D7 for one file. `rel` is the workspace-relative path with
/// `/` separators; returns findings inside hot fn bodies only.
pub fn check(
    rel: &str,
    tokens: &[Token],
    model: &FileModel,
    scopes: &[HotScope],
    allows: &Allows,
) -> Vec<Finding> {
    let patterns: Vec<&str> = scopes
        .iter()
        .filter(|s| glob_match(&s.file, rel))
        .flat_map(|s| s.fns.iter().map(String::as_str))
        .collect();
    if patterns.is_empty() {
        return Vec::new();
    }

    // seed: non-test fns whose qualified name matches a scope pattern
    let mut hot = vec![false; model.fns.len()];
    for (i, f) in model.fns.iter().enumerate() {
        if !f.in_test && patterns.iter().any(|p| glob_match(p, &f.qual)) {
            hot[i] = true;
        }
    }
    // closure over same-file calls (by simple name)
    loop {
        let mut grew = false;
        for i in 0..model.fns.len() {
            if !hot[i] {
                continue;
            }
            let calls = model.fns[i].calls.clone();
            for (j, g) in model.fns.iter().enumerate() {
                if !hot[j] && !g.in_test && calls.iter().any(|c| c == &g.name) {
                    hot[j] = true;
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }

    let mut findings = Vec::new();
    for (i, f) in model.fns.iter().enumerate() {
        if !hot[i] {
            continue;
        }
        scan_body(tokens, f.body, &f.qual, allows, &mut findings);
    }
    findings.sort_by_key(|f| (f.line, f.col));
    findings.dedup_by(|a, b| a.line == b.line && a.col == b.col);
    findings
}

fn scan_body(
    tokens: &[Token],
    body: (usize, usize),
    qual: &str,
    allows: &Allows,
    findings: &mut Vec<Finding>,
) {
    let end = body.1.min(tokens.len());
    let mut push = |tok: &Token, snippet: String| {
        if !allows.covers(tok.line, Rule::PanicFree) {
            findings.push(Finding {
                rule: Rule::PanicFree,
                line: tok.line,
                col: tok.col,
                snippet,
                note: Some(format!("in hot path {qual}")),
            });
        }
    };
    for i in body.0..end {
        let t = &tokens[i];
        if t.kind == TokenKind::Comment {
            continue;
        }
        let prev = prev_code(tokens, i);
        let next = next_code(tokens, i + 1);
        match t.kind {
            TokenKind::Ident => match t.text.as_str() {
                "unwrap" | "expect" => {
                    let after_dot = prev.is_some_and(|p| {
                        tokens[p].kind == TokenKind::Punct && tokens[p].text == "."
                    });
                    let called = next.is_some_and(|n| {
                        tokens[n].kind == TokenKind::Punct && tokens[n].text == "("
                    });
                    if after_dot && called {
                        push(t, format!(".{}(…)", t.text));
                    }
                }
                "panic" | "unreachable" | "todo" | "unimplemented" => {
                    let is_macro = next.is_some_and(|n| {
                        tokens[n].kind == TokenKind::Punct && tokens[n].text == "!"
                    });
                    if is_macro {
                        push(t, format!("{}!", t.text));
                    }
                }
                "as" => {
                    if let Some(n) = next {
                        if tokens[n].kind == TokenKind::Ident
                            && matches!(
                                tokens[n].text.as_str(),
                                "u8" | "u16" | "u32" | "i8" | "i16" | "i32"
                            )
                        {
                            push(t, format!("as {}", tokens[n].text));
                        }
                    }
                }
                _ => {}
            },
            TokenKind::Punct if t.text == "[" => {
                // indexing: `ident[…]`, `)[…]`, `][…]` — not `#[attr]`,
                // not macro `vec![…]`, not an array literal after `=`/
                // `(`/`,`, and not the infallible full-range `[..]`
                let indexes_expr = prev.is_some_and(|p| {
                    let pt = &tokens[p];
                    pt.kind == TokenKind::Ident
                        && !matches!(
                            pt.text.as_str(),
                            "mut" | "in" | "return" | "as" | "else" | "match"
                        )
                        || (pt.kind == TokenKind::Punct && (pt.text == ")" || pt.text == "]"))
                });
                let full_range = next.is_some_and(|n| {
                    tokens[n].kind == TokenKind::Punct
                        && tokens[n].text == ".."
                        && next_code(tokens, n + 1).is_some_and(|m| tokens[m].text == "]")
                });
                let macro_bang = prev.is_some_and(|p| {
                    prev_code(tokens, p).is_some_and(|q| {
                        tokens[q].kind == TokenKind::Punct && tokens[q].text == "!"
                    })
                });
                if indexes_expr && !full_range && !macro_bang {
                    let base = prev.map_or(String::new(), |p| tokens[p].text.clone());
                    push(t, format!("{base}[…]"));
                }
            }
            _ => {}
        }
    }
}

fn prev_code(tokens: &[Token], i: usize) -> Option<usize> {
    (0..i).rev().find(|&j| tokens[j].kind != TokenKind::Comment)
}

fn next_code(tokens: &[Token], mut i: usize) -> Option<usize> {
    while i < tokens.len() {
        if tokens[i].kind != TokenKind::Comment {
            return Some(i);
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HotScope;
    use crate::lexer::tokenize;
    use crate::parser::parse;

    fn run(rel: &str, src: &str, scopes: &[HotScope]) -> Vec<Finding> {
        let toks = tokenize(src);
        let model = parse(&toks);
        let allows = Allows::from_tokens(&toks);
        check(rel, &toks, &model, scopes, &allows)
    }

    fn sim_scope() -> Vec<HotScope> {
        vec![HotScope {
            file: "crates/netsim/src/sim.rs".into(),
            fns: vec!["Simulator::run_until".into()],
        }]
    }

    #[test]
    fn unwrap_in_hot_fn_fires() {
        let src = "impl Simulator {\n\
                     pub fn run_until(&mut self) { self.events.pop().unwrap(); }\n\
                   }\n";
        let hits = run("crates/netsim/src/sim.rs", src, &sim_scope());
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, Rule::PanicFree);
        assert!(hits[0]
            .note
            .as_deref()
            .unwrap()
            .contains("Simulator::run_until"));
    }

    #[test]
    fn cold_fns_and_other_files_are_exempt() {
        let src = "impl Simulator {\n\
                     pub fn debug_dump(&self) { self.events.last().unwrap(); }\n\
                   }\n";
        assert!(run("crates/netsim/src/sim.rs", src, &sim_scope()).is_empty());
        let hot_src = "impl Simulator { pub fn run_until(&mut self) { x.unwrap(); } }";
        assert!(run("crates/netsim/src/other.rs", hot_src, &sim_scope()).is_empty());
    }

    #[test]
    fn closure_follows_same_file_calls() {
        let src = "impl Simulator {\n\
                     pub fn run_until(&mut self) { self.dispatch(); }\n\
                     fn dispatch(&mut self) { self.agents[0].take().expect(\"x\"); }\n\
                   }\n";
        let hits = run("crates/netsim/src/sim.rs", src, &sim_scope());
        // indexing + expect, both inside the transitively-hot helper
        assert_eq!(hits.len(), 2, "{hits:?}");
    }

    #[test]
    fn allow_marker_with_reason_silences() {
        let src = "impl Simulator {\n\
                     pub fn run_until(&mut self) {\n\
                       // lint: allow(panic_free) -- heap invariant: peeked above\n\
                       self.events.pop().unwrap();\n\
                     }\n\
                   }\n";
        assert!(run("crates/netsim/src/sim.rs", src, &sim_scope()).is_empty());
    }

    #[test]
    fn narrowing_casts_and_panic_macros_fire_but_not_widening() {
        let src = "impl Simulator {\n\
                     pub fn run_until(&mut self) {\n\
                       let a = x as u32;\n\
                       let b = x as u64;\n\
                       if bad { panic!(\"boom\") }\n\
                     }\n\
                   }\n";
        let hits = run("crates/netsim/src/sim.rs", src, &sim_scope());
        let snippets: Vec<&str> = hits.iter().map(|h| h.snippet.as_str()).collect();
        assert!(snippets.contains(&"as u32"));
        assert!(snippets.contains(&"panic!"));
        assert!(!snippets.contains(&"as u64"));
    }

    #[test]
    fn full_range_slice_and_attributes_do_not_fire() {
        let src = "impl Simulator {\n\
                     pub fn run_until(&mut self) {\n\
                       let s = &buf[..];\n\
                       let v = vec![1, 2];\n\
                     }\n\
                   }\n";
        assert!(run("crates/netsim/src/sim.rs", src, &sim_scope()).is_empty());
    }

    #[test]
    fn estimator_next_glob_matches_all_impls() {
        let scopes = vec![HotScope {
            file: "crates/core/src/tools/*.rs".into(),
            fns: vec!["*::next".into()],
        }];
        let src = "impl Estimator for Igi {\n\
                     fn next(&mut self) { self.samples[idx]; }\n\
                   }\n";
        let hits = run("crates/core/src/tools/igi.rs", src, &scopes);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn test_mod_fns_are_never_hot() {
        let src = "#[cfg(test)]\nmod tests {\n\
                     impl Simulator { fn run_until(&mut self) { x.unwrap(); } }\n\
                   }\n";
        assert!(run("crates/netsim/src/sim.rs", src, &sim_scope()).is_empty());
    }
}
