//! The workspace import-graph pass.
//!
//! Two consumers share the per-file import extraction here:
//!
//! * **L1 layering** — every import (a `use` statement or an inline
//!   qualified path like `crate::probe::Session::over(...)`) is matched
//!   against the `[[layering.deny]]` edges in `lint.toml`; a hit is a
//!   finding at the import's `file:line:col`, carrying the edge's
//!   configured reason. Test code (tests/ files and `#[cfg(test)]`
//!   modules) is exempt: the contract governs production structure.
//!
//! * **The crate-graph snapshot** — the same records, collapsed to
//!   crate granularity (`core -> abw_netsim`, `netsim -> rand`, …),
//!   rendered one sorted `from -> to` line per edge. The rendering is
//!   committed at the path named by `[layering].snapshot` and compared
//!   by a test, so any new inter-crate edge shows up as a reviewable
//!   diff instead of an invisible accretion.

use std::path::Path;

use crate::config::{glob_match, path_matches, LayeringConfig};
use crate::lexer::{Token, TokenKind};
use crate::parser::FileModel;
use crate::rules::{Allows, Finding, Rule};

/// One import observed in a file: a `use` path or an inline qualified
/// path expression.
#[derive(Debug, Clone)]
pub struct ImportRecord {
    /// `::`-joined path (`abw_netsim::Simulator`, `std::time::Instant`).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// True when the import sits in test code.
    pub in_test: bool,
}

/// Extracts every import from one file: the model's expanded `use`
/// paths plus maximal inline `ident::ident…` chains in code position.
pub fn file_imports(tokens: &[Token], model: &FileModel) -> Vec<ImportRecord> {
    let mut records: Vec<ImportRecord> = model
        .uses
        .iter()
        .map(|u| ImportRecord {
            path: u.path.clone(),
            line: u.line,
            col: u.col,
            in_test: u.in_test,
        })
        .collect();

    // mask out `use` statement ranges so their paths are not recorded a
    // second time by the inline-chain scan below
    let mut in_use_stmt = vec![false; tokens.len()];
    let mut k = 0usize;
    while k < tokens.len() {
        if tokens[k].kind == TokenKind::Ident && tokens[k].text == "use" {
            while k < tokens.len() {
                in_use_stmt[k] = true;
                if tokens[k].kind == TokenKind::Punct && tokens[k].text == ";" {
                    break;
                }
                k += 1;
            }
        }
        k += 1;
    }

    // inline chains: walk non-comment tokens, stitching ident (:: ident)*
    // runs of length >= 2. Token indices are positions in `tokens`, so
    // the model's test ranges apply directly.
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].kind != TokenKind::Ident || in_use_stmt[i] || is_path_continuation(tokens, i) {
            i += 1;
            continue;
        }
        let start = i;
        let mut segs = vec![tokens[i].text.clone()];
        let mut j = next_code(tokens, i + 1);
        while j + 1 < tokens.len() && tokens[j].kind == TokenKind::Punct && tokens[j].text == "::" {
            let k = next_code(tokens, j + 1);
            if tokens.get(k).is_some_and(|t| t.kind == TokenKind::Ident) {
                segs.push(tokens[k].text.clone());
                j = next_code(tokens, k + 1);
            } else {
                break; // `Vec::<u32>` turbofish or `::*` — stop the chain
            }
        }
        if segs.len() >= 2 && segs[0] != "use" {
            records.push(ImportRecord {
                path: segs.join("::"),
                line: tokens[start].line,
                col: tokens[start].col,
                in_test: model.in_test_region(start),
            });
        }
        i = j.max(i + 1);
    }
    records
}

/// True when the ident at `i` is preceded by `::` (it continues a chain
/// already recorded) or by `.` (it is a method/field name, not a path
/// root).
fn is_path_continuation(tokens: &[Token], i: usize) -> bool {
    (0..i)
        .rev()
        .find(|&j| tokens[j].kind != TokenKind::Comment)
        .is_some_and(|j| {
            tokens[j].kind == TokenKind::Punct && (tokens[j].text == "::" || tokens[j].text == ".")
        })
}

fn next_code(tokens: &[Token], mut i: usize) -> usize {
    while i < tokens.len() && tokens[i].kind == TokenKind::Comment {
        i += 1;
    }
    i
}

/// Runs the L1 layering check for one file against the deny edges.
/// `rel` is the workspace-relative path with `/` separators.
pub fn check_layering(
    rel: &str,
    records: &[ImportRecord],
    layering: &LayeringConfig,
    allows: &Allows,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for edge in &layering.deny {
        if !glob_match(&edge.from, rel) {
            continue;
        }
        if edge.except.iter().any(|e| glob_match(e, rel)) {
            continue;
        }
        for r in records {
            if r.in_test {
                continue;
            }
            if !edge.imports.iter().any(|p| path_matches(p, &r.path)) {
                continue;
            }
            if allows.covers(r.line, Rule::Layering) {
                continue;
            }
            findings.push(Finding {
                rule: Rule::Layering,
                line: r.line,
                col: r.col,
                snippet: r.path.clone(),
                note: Some(edge.reason.clone()),
            });
        }
    }
    findings.sort_by_key(|f| (f.line, f.col));
    findings.dedup_by(|a, b| a.line == b.line && a.col == b.col && a.snippet == b.snippet);
    findings
}

/// The crate a workspace-relative path belongs to, for graph purposes:
/// `crates/<name>/…` → `<name>`, root `src|examples|tests/…` → `abwe`.
pub fn crate_of(rel: &Path) -> Option<String> {
    let parts: Vec<&str> = rel.iter().filter_map(|c| c.to_str()).collect();
    match parts.first().copied() {
        Some("crates") => parts.get(1).map(|s| s.to_string()),
        Some("src") | Some("examples") | Some("tests") | Some("benches") => {
            Some("abwe".to_string())
        }
        _ => None,
    }
}

/// Workspace and vendored crate identifiers that count as graph nodes
/// when they appear as the first segment of an import path.
fn is_tracked_dep(seg: &str) -> bool {
    seg.starts_with("abw_") || matches!(seg, "abwe" | "rand" | "proptest" | "criterion")
}

/// Accumulates crate-level edges from one file's imports into `edges`.
/// Test imports are excluded — the snapshot captures the production
/// graph, where determinism and layering actually matter.
pub fn accumulate_crate_edges(
    rel: &Path,
    records: &[ImportRecord],
    edges: &mut Vec<(String, String)>,
) {
    let Some(from) = crate_of(rel) else { return };
    for r in records {
        if r.in_test {
            continue;
        }
        let Some(first) = r.path.split("::").next() else {
            continue;
        };
        if !is_tracked_dep(first) {
            continue;
        }
        // `abw_lint` inside crates/lint is a self-reference, not an edge
        let self_name = format!("abw_{}", from.replace('-', "_"));
        if first == self_name || (from == "abwe" && first == "abwe") {
            continue;
        }
        let edge = (from.clone(), first.to_string());
        if !edges.contains(&edge) {
            edges.push(edge);
        }
    }
}

/// Renders sorted crate edges in the committed snapshot format.
pub fn render_graph(edges: &[(String, String)]) -> String {
    let mut sorted = edges.to_vec();
    sorted.sort();
    sorted.dedup();
    let mut out = String::from(
        "# Crate import graph — production code only (tests and #[cfg(test)] excluded).\n\
         # Regenerate with: cargo run -p abw-lint -- --write-graph\n",
    );
    for (from, to) in &sorted {
        out.push_str(&format!("{from} -> {to}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config;
    use crate::lexer::tokenize;
    use crate::parser::parse;

    fn imports(src: &str) -> Vec<ImportRecord> {
        let toks = tokenize(src);
        let model = parse(&toks);
        file_imports(&toks, &model)
    }

    #[test]
    fn inline_chains_and_uses_both_surface() {
        let recs = imports(
            "use std::time::Duration;\n\
             fn f() { let s = crate::probe::Session::over(r); }\n",
        );
        let paths: Vec<&str> = recs.iter().map(|r| r.path.as_str()).collect();
        assert!(paths.contains(&"std::time::Duration"));
        assert!(paths.iter().any(|p| p.starts_with("crate::probe::Session")));
    }

    #[test]
    fn method_names_do_not_start_chains() {
        let recs = imports("fn f() { x.probe::<u8>(); }\n");
        assert!(
            recs.iter().all(|r| !r.path.starts_with("probe")),
            "got {recs:?}"
        );
    }

    #[test]
    fn test_mod_imports_are_marked() {
        let recs = imports(
            "#[cfg(test)]\nmod tests { use std::time::Instant;\n\
             fn t() { std::time::Instant::now(); } }\n",
        );
        assert!(!recs.is_empty());
        assert!(recs.iter().all(|r| r.in_test));
    }

    #[test]
    fn layering_edge_fires_with_reason_and_respects_except() {
        let toml = "\
[layering]
snapshot = \"g.snap\"
[[layering.deny]]
from = \"crates/core/src/tools/*\"
import = [\"crate::probe::Session\"]
except = [\"crates/core/src/tools/mod.rs\"]
reason = \"tools never drive the simulator\"
";
        let cfg = config::parse(toml).unwrap();
        let src = "use crate::probe::Session;\n";
        let toks = tokenize(src);
        let model = parse(&toks);
        let recs = file_imports(&toks, &model);
        let allows = Allows::from_tokens(&toks);

        let hits = check_layering(
            "crates/core/src/tools/igi.rs",
            &recs,
            &cfg.layering,
            &allows,
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, Rule::Layering);
        assert_eq!(
            hits[0].note.as_deref(),
            Some("tools never drive the simulator")
        );

        let exempt = check_layering(
            "crates/core/src/tools/mod.rs",
            &recs,
            &cfg.layering,
            &allows,
        );
        assert!(exempt.is_empty());

        let elsewhere = check_layering("crates/netsim/src/sim.rs", &recs, &cfg.layering, &allows);
        assert!(elsewhere.is_empty());
    }

    #[test]
    fn layering_allow_marker_is_honoured() {
        let toml = "\
[[layering.deny]]
from = \"crates/obs/*\"
import = [\"std::time::Instant\"]
reason = \"wall-clock-free\"
";
        let cfg = config::parse(toml).unwrap();
        let src = "use std::time::Instant; // lint: allow(layering) -- doc example\n";
        let toks = tokenize(src);
        let model = parse(&toks);
        let recs = file_imports(&toks, &model);
        let allows = Allows::from_tokens(&toks);
        let hits = check_layering("crates/obs/src/lib.rs", &recs, &cfg.layering, &allows);
        assert!(hits.is_empty());
    }

    #[test]
    fn crate_edges_collapse_and_render_sorted() {
        let mut edges = Vec::new();
        let recs = imports("use abw_netsim::SimDuration;\nuse abw_stats::running::Running;\n");
        accumulate_crate_edges(Path::new("crates/core/src/tools/igi.rs"), &recs, &mut edges);
        accumulate_crate_edges(Path::new("crates/core/src/probe.rs"), &recs, &mut edges);
        let rendered = render_graph(&edges);
        let lines: Vec<&str> = rendered.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(lines, ["core -> abw_netsim", "core -> abw_stats"]);
    }

    #[test]
    fn self_reference_is_not_an_edge() {
        let mut edges = Vec::new();
        let recs = imports("use abw_lint::rules::Rule;\n");
        accumulate_crate_edges(Path::new("crates/lint/src/main.rs"), &recs, &mut edges);
        assert!(edges.is_empty());
    }
}
