//! # abw-lint
//!
//! A zero-dependency, std-only static analyzer for this workspace's
//! determinism and invariant contracts — the rules clippy cannot
//! express because they are *repo policy*, not Rust policy.
//!
//! The paper this repo reproduces is a catalogue of measurement
//! methodology bugs: estimates silently corrupted by timing, ordering
//! and sampling mistakes. The workspace's own headline guarantee —
//! byte-identical experiment output at any `ABW_JOBS` worker count — is
//! exactly the kind of property that regresses from one careless
//! `HashMap` iteration or wall-clock read. `abw-lint` machine-checks
//! those hazards on every build:
//!
//! | id | name           | rule |
//! |----|----------------|------|
//! | D1 | `wall_clock`   | no `Instant::now`/`SystemTime::now` outside `exec`/`bench` |
//! | D2 | `hash_iter`    | no `HashMap`/`HashSet` in `core`/`netsim`/`traffic`/`stats` |
//! | D3 | `thread_spawn` | no `thread::spawn` outside `exec` |
//! | D4 | `float_eq`     | no `==`/`!=` against float literals |
//! | D5 | `print`        | no `println!`/`eprintln!` in library crates |
//! | D6 | `rng`          | no unseeded / ambient RNG construction |
//! | D7 | `panic_free`   | no `unwrap`/`expect`/`panic!`/indexing/narrowing-`as` in the hot scopes `lint.toml` declares |
//! | D8 | `units`        | `f64`/`f32` fields carry a unit suffix (`_bps`, `_s`, …); no deny-alias spellings; no mixed-scale arithmetic |
//! | D9 | `registry`     | every `tools/` module has a registry entry and vice versa, statically |
//! | L1 | `layering`     | no imports along the deny edges `lint.toml` declares (with a committed import-graph snapshot) |
//!
//! D1–D6 are token rules; D7–D9 and L1 read the item-level parse
//! ([`parser`]) and the workspace import graph ([`graph`]), configured
//! by the root `lint.toml` ([`config`]). Deliberate exceptions carry a
//! `// lint: allow(<name>) -- reason` marker on the same line or the
//! line above. Run it with `cargo run -p abw-lint`; exit status `1`
//! means findings, `2` a tool/config error (`--list-rules` prints the
//! armed table, `--format json|sarif` the machine-readable reports —
//! see [`output`]). The runtime counterpart — `ABW_CHECK=1` arming the
//! simulator's invariant checks — lives in `abw-netsim::invariants`
//! and covers the same failure class from the dynamic side.

pub mod config;
pub mod graph;
pub mod lexer;
pub mod output;
pub mod panic_free;
pub mod parser;
pub mod registry_rule;
pub mod rules;
pub mod units;

use std::fmt;
use std::path::{Path, PathBuf};

pub use lexer::{tokenize, Token, TokenKind};
pub use rules::{check, FileClass, FileContext, Finding, Rule, ALL_RULES};

/// A finding located in a file.
#[derive(Debug, Clone)]
pub struct Report {
    /// Path relative to the workspace root.
    pub file: PathBuf,
    /// The violation.
    pub finding: Finding,
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {} `{}`\n    hint: {}",
            self.file.display(),
            self.finding.line,
            self.finding.col,
            self.finding.rule,
            self.finding.snippet,
            self.finding.full_hint()
        )
    }
}

/// Classifies a workspace-relative path into the context its rules run
/// under. Returns `None` for files the linter skips entirely:
/// vendored stand-in crates, build output, lint fixtures, and anything
/// that is not Rust source.
pub fn classify(rel: &Path) -> Option<FileContext> {
    if rel.extension().and_then(|e| e.to_str()) != Some("rs") {
        return None;
    }
    let parts: Vec<&str> = rel.iter().map(|c| c.to_str().unwrap_or_default()).collect();
    match parts.first().copied() {
        // vendored offline stand-ins mirror third-party APIs; not ours
        Some("vendor") | Some("target") | Some(".git") => None,
        Some("crates") => {
            let crate_name = parts.get(1).copied()?;
            // the linter's own test fixtures contain violations on purpose
            if crate_name == "lint"
                && parts.get(2) == Some(&"tests")
                && parts.get(3) == Some(&"fixtures")
            {
                return None;
            }
            Some(classify_targets(crate_name, &parts[2..]))
        }
        // root crate (the `abwe` facade): src/, examples/, tests/
        Some(_) => Some(classify_targets("", &parts)),
        None => None,
    }
}

/// Maps the path inside one crate (`src/...`, `tests/...`, …) to a class.
fn classify_targets(crate_name: &str, inside: &[&str]) -> FileContext {
    let class = match inside.first().copied() {
        Some("src") => {
            if inside.get(1) == Some(&"bin") || inside.get(1) == Some(&"main.rs") {
                FileClass::Bin
            } else {
                FileClass::Lib
            }
        }
        Some("examples") | Some("benches") => FileClass::Bin,
        Some("tests") => FileClass::Test,
        // build scripts and stray files: treat as binary-adjacent
        _ => FileClass::Bin,
    };
    FileContext {
        crate_name: crate_name.to_string(),
        class,
    }
}

/// Lints one source string under an explicit context. Runs the
/// token-shaped rules (D1–D6) only — the architecture passes need a
/// workspace; use [`analyze_workspace`] for those.
pub fn lint_source(ctx: &FileContext, source: &str) -> Vec<Finding> {
    rules::check(ctx, &lexer::tokenize(source))
}

/// Lints one source string with every single-file pass armed under the
/// given config: token rules D1–D6 plus D7 panic-freedom, D8 unit
/// hygiene and L1 layering. `rel` is the path the file claims to live
/// at — D7 hot scopes and L1 `from` globs match against it, so fixture
/// tests can opt a file into a scope by naming it accordingly. D9
/// needs the workspace on disk and does not run here.
pub fn lint_source_configured(
    ctx: &FileContext,
    rel: &Path,
    source: &str,
    config: &config::LintConfig,
) -> Vec<Finding> {
    let tokens = lexer::tokenize(source);
    let model = parser::parse(&tokens);
    let allows = rules::Allows::from_tokens(&tokens);
    let rel_str = rel
        .iter()
        .filter_map(|c| c.to_str())
        .collect::<Vec<_>>()
        .join("/");
    let mut findings = rules::check(ctx, &tokens);
    if ctx.enforces(Rule::PanicFree) {
        findings.extend(panic_free::check(
            &rel_str,
            &tokens,
            &model,
            &config.panic_free,
            &allows,
        ));
    }
    if ctx.enforces(Rule::Units) {
        findings.extend(units::check(&tokens, &model, &config.units, &allows));
    }
    if ctx.enforces(Rule::Layering) {
        let records = graph::file_imports(&tokens, &model);
        findings.extend(graph::check_layering(
            &rel_str,
            &records,
            &config.layering,
            &allows,
        ));
    }
    findings.sort_by_key(|f| (f.line, f.col, f.rule));
    findings
}

/// [`lint_source_configured`] under the embedded workspace contract —
/// the CLI's `--file` mode.
pub fn lint_file(ctx: &FileContext, rel: &Path, source: &str) -> Vec<Finding> {
    lint_source_configured(ctx, rel, source, &config::LintConfig::embedded())
}

/// Everything one multi-pass run over the workspace produces.
pub struct WorkspaceAnalysis {
    /// All findings, sorted by `(file, line, col)`.
    pub reports: Vec<Report>,
    /// The rendered crate import-graph snapshot (see
    /// `graph::render_graph`), for `--write-graph` and the committed
    /// snapshot test.
    pub graph: String,
}

/// Runs every pass — token rules D1–D6, D7 panic-freedom, D8 unit
/// hygiene, the L1 import-graph layering check, and D9 registry
/// exhaustiveness — over every classified `.rs` file under `root`, in
/// path order (the walk itself is deterministic — the linter practices
/// what it preaches).
pub fn analyze_workspace(
    root: &Path,
    config: &config::LintConfig,
) -> std::io::Result<WorkspaceAnalysis> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut reports = Vec::new();
    let mut edges: Vec<(String, String)> = Vec::new();
    for rel in files {
        let Some(ctx) = classify(&rel) else { continue };
        let source = std::fs::read_to_string(root.join(&rel))?;
        let tokens = lexer::tokenize(&source);
        let model = parser::parse(&tokens);
        let allows = rules::Allows::from_tokens(&tokens);
        let rel_str = rel
            .iter()
            .filter_map(|c| c.to_str())
            .collect::<Vec<_>>()
            .join("/");

        let mut findings = rules::check(&ctx, &tokens);
        if ctx.enforces(Rule::PanicFree) {
            findings.extend(panic_free::check(
                &rel_str,
                &tokens,
                &model,
                &config.panic_free,
                &allows,
            ));
        }
        if ctx.enforces(Rule::Units) {
            findings.extend(units::check(&tokens, &model, &config.units, &allows));
        }
        let records = graph::file_imports(&tokens, &model);
        if ctx.enforces(Rule::Layering) {
            findings.extend(graph::check_layering(
                &rel_str,
                &records,
                &config.layering,
                &allows,
            ));
        }
        if ctx.class != FileClass::Test {
            graph::accumulate_crate_edges(&rel, &records, &mut edges);
        }
        for finding in findings {
            reports.push(Report {
                file: rel.clone(),
                finding,
            });
        }
    }
    for finding in registry_rule::check(root, &config.registry)? {
        reports.push(Report {
            file: PathBuf::from(&config.registry.registry_file),
            finding,
        });
    }
    reports.sort_by(|a, b| {
        (&a.file, a.finding.line, a.finding.col, a.finding.rule).cmp(&(
            &b.file,
            b.finding.line,
            b.finding.col,
            b.finding.rule,
        ))
    });
    Ok(WorkspaceAnalysis {
        reports,
        graph: graph::render_graph(&edges),
    })
}

/// Lints every classified `.rs` file under `root` with every rule
/// armed under the embedded `lint.toml`. Kept as the simple entry
/// point for tests; the CLI calls [`analyze_workspace`] directly.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Report>> {
    Ok(analyze_workspace(root, &config::LintConfig::embedded())?.reports)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_str().unwrap_or_default();
        if path.is_dir() {
            // prune the big skip-trees early instead of classifying
            // every file inside them
            if matches!(name, "target" | ".git" | "vendor") {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_crate_layers() {
        let ctx = classify(Path::new("crates/netsim/src/sim.rs")).unwrap();
        assert_eq!(ctx.crate_name, "netsim");
        assert_eq!(ctx.class, FileClass::Lib);

        let ctx = classify(Path::new("crates/bench/src/bin/fig1.rs")).unwrap();
        assert_eq!(ctx.crate_name, "bench");
        assert_eq!(ctx.class, FileClass::Bin);

        let ctx = classify(Path::new("crates/exec/tests/pool.rs")).unwrap();
        assert_eq!(ctx.class, FileClass::Test);

        let ctx = classify(Path::new("tests/determinism.rs")).unwrap();
        assert_eq!(ctx.crate_name, "");
        assert_eq!(ctx.class, FileClass::Test);

        let ctx = classify(Path::new("examples/quickstart.rs")).unwrap();
        assert_eq!(ctx.class, FileClass::Bin);

        let ctx = classify(Path::new("src/lib.rs")).unwrap();
        assert_eq!(ctx.class, FileClass::Lib);
    }

    #[test]
    fn classify_skips() {
        assert!(classify(Path::new("vendor/rand/src/lib.rs")).is_none());
        assert!(classify(Path::new("target/debug/build/foo.rs")).is_none());
        assert!(classify(Path::new("crates/lint/tests/fixtures/d1_deny.rs")).is_none());
        assert!(classify(Path::new("README.md")).is_none());
    }

    #[test]
    fn lint_main_rs_counts_as_binary() {
        let ctx = classify(Path::new("crates/lint/src/main.rs")).unwrap();
        assert_eq!(ctx.class, FileClass::Bin);
        assert!(lint_source(&ctx, r#"println!("findings");"#).is_empty());
    }
}
