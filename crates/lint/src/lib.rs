//! # abw-lint
//!
//! A zero-dependency, std-only static analyzer for this workspace's
//! determinism and invariant contracts — the rules clippy cannot
//! express because they are *repo policy*, not Rust policy.
//!
//! The paper this repo reproduces is a catalogue of measurement
//! methodology bugs: estimates silently corrupted by timing, ordering
//! and sampling mistakes. The workspace's own headline guarantee —
//! byte-identical experiment output at any `ABW_JOBS` worker count — is
//! exactly the kind of property that regresses from one careless
//! `HashMap` iteration or wall-clock read. `abw-lint` machine-checks
//! those hazards on every build:
//!
//! | id | name           | rule |
//! |----|----------------|------|
//! | D1 | `wall_clock`   | no `Instant::now`/`SystemTime::now` outside `exec`/`bench` |
//! | D2 | `hash_iter`    | no `HashMap`/`HashSet` in `core`/`netsim`/`traffic`/`stats` |
//! | D3 | `thread_spawn` | no `thread::spawn` outside `exec` |
//! | D4 | `float_eq`     | no `==`/`!=` against float literals |
//! | D5 | `print`        | no `println!`/`eprintln!` in library crates |
//! | D6 | `rng`          | no unseeded / ambient RNG construction |
//!
//! Deliberate exceptions carry a `// lint: allow(<name>)` marker on the
//! same line or the line above. Run it with `cargo run -p abw-lint`;
//! the exit status is non-zero on any finding. The runtime counterpart
//! — `ABW_CHECK=1` arming the simulator's invariant checks — lives in
//! `abw-netsim::invariants` and covers the same failure class from the
//! dynamic side.

pub mod lexer;
pub mod rules;

use std::fmt;
use std::path::{Path, PathBuf};

pub use lexer::{tokenize, Token, TokenKind};
pub use rules::{check, FileClass, FileContext, Finding, Rule, ALL_RULES};

/// A finding located in a file.
#[derive(Debug, Clone)]
pub struct Report {
    /// Path relative to the workspace root.
    pub file: PathBuf,
    /// The violation.
    pub finding: Finding,
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {} `{}`\n    hint: {}",
            self.file.display(),
            self.finding.line,
            self.finding.col,
            self.finding.rule,
            self.finding.snippet,
            self.finding.rule.hint()
        )
    }
}

/// Classifies a workspace-relative path into the context its rules run
/// under. Returns `None` for files the linter skips entirely:
/// vendored stand-in crates, build output, lint fixtures, and anything
/// that is not Rust source.
pub fn classify(rel: &Path) -> Option<FileContext> {
    if rel.extension().and_then(|e| e.to_str()) != Some("rs") {
        return None;
    }
    let parts: Vec<&str> = rel.iter().map(|c| c.to_str().unwrap_or_default()).collect();
    match parts.first().copied() {
        // vendored offline stand-ins mirror third-party APIs; not ours
        Some("vendor") | Some("target") | Some(".git") => None,
        Some("crates") => {
            let crate_name = parts.get(1).copied()?;
            // the linter's own test fixtures contain violations on purpose
            if crate_name == "lint"
                && parts.get(2) == Some(&"tests")
                && parts.get(3) == Some(&"fixtures")
            {
                return None;
            }
            Some(classify_targets(crate_name, &parts[2..]))
        }
        // root crate (the `abwe` facade): src/, examples/, tests/
        Some(_) => Some(classify_targets("", &parts)),
        None => None,
    }
}

/// Maps the path inside one crate (`src/...`, `tests/...`, …) to a class.
fn classify_targets(crate_name: &str, inside: &[&str]) -> FileContext {
    let class = match inside.first().copied() {
        Some("src") => {
            if inside.get(1) == Some(&"bin") || inside.get(1) == Some(&"main.rs") {
                FileClass::Bin
            } else {
                FileClass::Lib
            }
        }
        Some("examples") | Some("benches") => FileClass::Bin,
        Some("tests") => FileClass::Test,
        // build scripts and stray files: treat as binary-adjacent
        _ => FileClass::Bin,
    };
    FileContext {
        crate_name: crate_name.to_string(),
        class,
    }
}

/// Lints one source string under an explicit context.
pub fn lint_source(ctx: &FileContext, source: &str) -> Vec<Finding> {
    rules::check(ctx, &lexer::tokenize(source))
}

/// Lints every classified `.rs` file under `root`, in path order (the
/// walk itself is deterministic — the linter practices what it
/// preaches). I/O errors on individual files are reported as `Err`.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Report>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut reports = Vec::new();
    for rel in files {
        let Some(ctx) = classify(&rel) else { continue };
        let source = std::fs::read_to_string(root.join(&rel))?;
        for finding in lint_source(&ctx, &source) {
            reports.push(Report {
                file: rel.clone(),
                finding,
            });
        }
    }
    Ok(reports)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_str().unwrap_or_default();
        if path.is_dir() {
            // prune the big skip-trees early instead of classifying
            // every file inside them
            if matches!(name, "target" | ".git" | "vendor") {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_crate_layers() {
        let ctx = classify(Path::new("crates/netsim/src/sim.rs")).unwrap();
        assert_eq!(ctx.crate_name, "netsim");
        assert_eq!(ctx.class, FileClass::Lib);

        let ctx = classify(Path::new("crates/bench/src/bin/fig1.rs")).unwrap();
        assert_eq!(ctx.crate_name, "bench");
        assert_eq!(ctx.class, FileClass::Bin);

        let ctx = classify(Path::new("crates/exec/tests/pool.rs")).unwrap();
        assert_eq!(ctx.class, FileClass::Test);

        let ctx = classify(Path::new("tests/determinism.rs")).unwrap();
        assert_eq!(ctx.crate_name, "");
        assert_eq!(ctx.class, FileClass::Test);

        let ctx = classify(Path::new("examples/quickstart.rs")).unwrap();
        assert_eq!(ctx.class, FileClass::Bin);

        let ctx = classify(Path::new("src/lib.rs")).unwrap();
        assert_eq!(ctx.class, FileClass::Lib);
    }

    #[test]
    fn classify_skips() {
        assert!(classify(Path::new("vendor/rand/src/lib.rs")).is_none());
        assert!(classify(Path::new("target/debug/build/foo.rs")).is_none());
        assert!(classify(Path::new("crates/lint/tests/fixtures/d1_deny.rs")).is_none());
        assert!(classify(Path::new("README.md")).is_none());
    }

    #[test]
    fn lint_main_rs_counts_as_binary() {
        let ctx = classify(Path::new("crates/lint/src/main.rs")).unwrap();
        assert_eq!(ctx.class, FileClass::Bin);
        assert!(lint_source(&ctx, r#"println!("findings");"#).is_empty());
    }
}
