//! D9 — tool-registry exhaustiveness, statically.
//!
//! Every `*.rs` module under `[registry].tools_dir` must have a
//! `module: "<stem>"` entry in the registry source, and every entry
//! must point at a module that exists on disk. This replaces the old
//! runtime `registry_completeness` test that re-scanned the directory
//! on every `cargo test`: the linter sees the same facts at analysis
//! time, fails CI with a `file:line:col` finding, and costs nothing at
//! runtime.

use std::path::Path;

use crate::config::RegistryConfig;
use crate::lexer::{tokenize, TokenKind};
use crate::rules::{Allows, Finding, Rule};

/// Runs D9 against the workspace on disk. Returns findings anchored in
/// the registry file, or an I/O error if the configured paths are
/// unreadable (the caller maps that to exit code 2 — a broken config
/// must not pass as a clean lint).
pub fn check(root: &Path, config: &RegistryConfig) -> std::io::Result<Vec<Finding>> {
    if config.tools_dir.is_empty() || config.registry_file.is_empty() {
        return Ok(Vec::new());
    }
    let mut stems: Vec<String> = Vec::new();
    for entry in std::fs::read_dir(root.join(&config.tools_dir))? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(stem) = name.strip_suffix(".rs") {
            if !config.exclude.iter().any(|e| e == stem) {
                stems.push(stem.to_string());
            }
        }
    }
    stems.sort();

    let source = std::fs::read_to_string(root.join(&config.registry_file))?;
    let tokens = tokenize(&source);
    let allows = Allows::from_tokens(&tokens);

    // `module: "<stem>"` occurrences, with the line of each
    let mut entries: Vec<(String, u32)> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text != "module" {
            continue;
        }
        let rest: Vec<&crate::lexer::Token> = tokens[i + 1..]
            .iter()
            .filter(|t| t.kind != TokenKind::Comment)
            .take(2)
            .collect();
        if let [colon, value] = rest[..] {
            if colon.kind == TokenKind::Punct && colon.text == ":" && value.kind == TokenKind::Str {
                entries.push((str_value(&value.text), value.line));
            }
        }
    }

    let mut findings = Vec::new();
    for stem in &stems {
        // missing-module findings anchor at the top of the registry, so
        // a marker on line 1 is the escape hatch for all of them
        if allows.covers(1, Rule::Registry) {
            break;
        }
        if !entries.iter().any(|(m, _)| m == stem) {
            findings.push(Finding {
                rule: Rule::Registry,
                line: 1,
                col: 1,
                snippet: format!("{stem}.rs"),
                note: Some(format!(
                    "tool module `{stem}` has no `module: \"{stem}\"` entry in {}",
                    config.registry_file
                )),
            });
        }
    }
    for (module, line) in &entries {
        if allows.covers(*line, Rule::Registry) {
            continue;
        }
        if !stems.iter().any(|s| s == module) && !config.exclude.iter().any(|e| e == module) {
            findings.push(Finding {
                rule: Rule::Registry,
                line: *line,
                col: 1,
                snippet: format!("module: \"{module}\""),
                note: Some(format!(
                    "registry entry points at `{module}`, but {}/{module}.rs does not exist",
                    config.tools_dir
                )),
            });
        }
    }
    Ok(findings)
}

/// The contents of a string literal token: the lexer keeps the
/// delimiters (`"igi"`, `r"x"`), so strip prefix letters, hashes and
/// quotes from both ends.
fn str_value(text: &str) -> String {
    text.trim_start_matches(['r', 'b'])
        .trim_matches('#')
        .trim_matches('"')
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(dir: &Path, rel: &str, content: &str) {
        let path = dir.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, content).unwrap();
    }

    fn config() -> RegistryConfig {
        RegistryConfig {
            tools_dir: "tools".into(),
            registry_file: "tools/registry.rs".into(),
            exclude: vec!["mod".into(), "registry".into()],
        }
    }

    #[test]
    fn complete_registry_is_clean() {
        let dir = std::env::temp_dir().join("abw_lint_d9_clean");
        let _ = std::fs::remove_dir_all(&dir);
        write(&dir, "tools/igi.rs", "");
        write(&dir, "tools/mod.rs", "");
        write(
            &dir,
            "tools/registry.rs",
            "pub static TOOLS: &[Entry] = &[Entry { module: \"igi\" }];",
        );
        assert!(check(&dir, &config()).unwrap().is_empty());
    }

    #[test]
    fn missing_and_stale_entries_fire() {
        let dir = std::env::temp_dir().join("abw_lint_d9_dirty");
        let _ = std::fs::remove_dir_all(&dir);
        write(&dir, "tools/igi.rs", "");
        write(&dir, "tools/spruce.rs", "");
        write(
            &dir,
            "tools/registry.rs",
            "pub static TOOLS: &[Entry] = &[\n\
             Entry { module: \"igi\" },\n\
             Entry { module: \"ghost\" },\n\
             ];",
        );
        let findings = check(&dir, &config()).unwrap();
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().any(|f| f.snippet == "spruce.rs"));
        assert!(findings.iter().any(|f| f.snippet.contains("ghost")));
        // the stale entry is anchored at its own line
        let stale = findings
            .iter()
            .find(|f| f.snippet.contains("ghost"))
            .unwrap();
        assert_eq!(stale.line, 3);
    }

    #[test]
    fn unreadable_paths_are_io_errors_not_clean_runs() {
        let dir = std::env::temp_dir().join("abw_lint_d9_absent");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(check(&dir, &config()).is_err());
    }
}
