//! A minimal hand-rolled Rust lexer.
//!
//! `abw-lint`'s rules are token-shaped ("`Instant` `::` `now`", "`==`
//! adjacent to a float literal"), so a full parser would be wasted
//! machinery. What *does* matter is never mis-reading source: a
//! `println!` inside a string literal, a `HashMap` inside a doc comment,
//! or an escape-hatch marker inside a raw string must not confuse the
//! rules. This lexer therefore handles, precisely, the lexical layer:
//!
//! * line comments and (nested) block comments — kept as tokens, so the
//!   rule engine can read `lint: allow(...)` markers out of them,
//! * string, raw-string (any `#` depth), byte-string and char literals,
//! * char-literal vs. lifetime disambiguation (`'a'` vs. `'a`),
//! * numeric literals with underscores, suffixes and exponents,
//! * float vs. tuple-index disambiguation (`0.5` vs. `x.0`),
//! * multi-character operators (`==`, `!=`, `::`, `..=`, `->`, …).
//!
//! Everything is positioned by 1-based line and column so findings are
//! clickable.

/// What a token is, coarsely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Integer literal (including tuple indices).
    Int,
    /// Floating-point literal.
    Float,
    /// String / raw-string / byte-string literal.
    Str,
    /// Character literal.
    Char,
    /// Lifetime (`'a`) or loop label.
    Lifetime,
    /// `//…` or `/*…*/` comment (doc comments included).
    Comment,
    /// Operator or punctuation, possibly multi-character (`==`, `::`).
    Punct,
}

/// One token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Coarse classification.
    pub kind: TokenKind,
    /// The raw text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

/// Tokenizes `source`, returning every token including comments.
///
/// The lexer is lossy only about whitespace. Malformed input (an
/// unterminated string, say) does not panic: the remainder of the file
/// is swallowed into the open token, which is the best a linter can do.
pub fn tokenize(source: &str) -> Vec<Token> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    src: &'a str,
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            src,
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32, col: u32) {
        self.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    /// The previous non-comment token, if any — used for the tuple-index
    /// and lifetime disambiguations.
    fn prev_code_token(&self) -> Option<&Token> {
        self.tokens
            .iter()
            .rev()
            .find(|t| t.kind != TokenKind::Comment)
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek() {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek_at(1) == Some('/') => self.line_comment(line, col),
                '/' if self.peek_at(1) == Some('*') => self.block_comment(line, col),
                '"' => self.string_literal(line, col),
                'r' | 'b' if self.starts_raw_or_byte_string() => self.raw_or_byte_string(line, col),
                '\'' => self.char_or_lifetime(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                c if c == '_' || c.is_alphabetic() => self.ident(line, col),
                _ => self.punct(line, col),
            }
        }
        self.tokens
    }

    fn line_comment(&mut self, line: u32, col: u32) {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.push(TokenKind::Comment, text, line, col);
    }

    fn block_comment(&mut self, line: u32, col: u32) {
        let start = self.pos;
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated; swallow
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.push(TokenKind::Comment, text, line, col);
    }

    fn string_literal(&mut self, line: u32, col: u32) {
        let start = self.pos;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // escaped char, whatever it is
                }
                '"' => break,
                _ => {}
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.push(TokenKind::Str, text, line, col);
    }

    /// True when the cursor sits on `r"`, `r#`, `b"`, `br"`, `br#`, `b'`.
    fn starts_raw_or_byte_string(&self) -> bool {
        matches!(
            (self.peek(), self.peek_at(1), self.peek_at(2)),
            (Some('r'), Some('"' | '#'), _)
                | (Some('b'), Some('"' | '\''), _)
                | (Some('b'), Some('r'), Some('"' | '#'))
        )
    }

    fn raw_or_byte_string(&mut self, line: u32, col: u32) {
        let start = self.pos;
        if self.peek() == Some('b') {
            self.bump();
        }
        if self.peek() == Some('\'') {
            // byte char literal b'x'
            self.bump();
            while let Some(c) = self.bump() {
                match c {
                    '\\' => {
                        self.bump();
                    }
                    '\'' => break,
                    _ => {}
                }
            }
            let text: String = self.chars[start..self.pos].iter().collect();
            self.push(TokenKind::Char, text, line, col);
            return;
        }
        let raw = self.peek() == Some('r');
        if raw {
            self.bump();
        }
        if !raw {
            // plain byte string b"…": same escape rules as a normal string
            self.bump(); // '"'
            while let Some(c) = self.bump() {
                match c {
                    '\\' => {
                        self.bump();
                    }
                    '"' => break,
                    _ => {}
                }
            }
        } else {
            // raw string r##"…"## — count the hashes, then scan for the
            // matching close; no escapes inside
            let mut hashes = 0usize;
            while self.peek() == Some('#') {
                hashes += 1;
                self.bump();
            }
            self.bump(); // opening '"'
            'scan: while let Some(c) = self.bump() {
                if c == '"' {
                    let mut seen = 0usize;
                    while seen < hashes {
                        if self.peek() == Some('#') {
                            self.bump();
                            seen += 1;
                        } else {
                            continue 'scan;
                        }
                    }
                    break;
                }
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.push(TokenKind::Str, text, line, col);
    }

    fn char_or_lifetime(&mut self, line: u32, col: u32) {
        // `'a'` is a char literal; `'a` (no closing quote) is a lifetime.
        // `'\n'` etc. are chars. Disambiguate by looking ahead: a quote
        // right after one char (or an escape) means char literal.
        let start = self.pos;
        let is_char = matches!(
            (self.peek_at(1), self.peek_at(2)),
            (Some('\\'), _) | (Some(_), Some('\''))
        );
        self.bump(); // '\''
        if is_char {
            while let Some(c) = self.bump() {
                match c {
                    '\\' => {
                        self.bump();
                    }
                    '\'' => break,
                    _ => {}
                }
            }
            let text: String = self.chars[start..self.pos].iter().collect();
            self.push(TokenKind::Char, text, line, col);
        } else {
            while let Some(c) = self.peek() {
                if c == '_' || c.is_alphanumeric() {
                    self.bump();
                } else {
                    break;
                }
            }
            let text: String = self.chars[start..self.pos].iter().collect();
            self.push(TokenKind::Lifetime, text, line, col);
        }
    }

    fn number(&mut self, line: u32, col: u32) {
        let start = self.pos;
        // After a `.` token this is a tuple index (`x.0`): lex digits only,
        // so `x.0.1` and `pair.0 == y` stay integers.
        let after_dot = self
            .prev_code_token()
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text == ".");
        let mut is_float = false;

        if self.peek() == Some('0')
            && matches!(self.peek_at(1), Some('x' | 'o' | 'b' | 'X' | 'O' | 'B'))
        {
            // radix literal: 0xff_u32 / 0o77 / 0b1010
            self.bump();
            self.bump();
            while let Some(c) = self.peek() {
                if c == '_' || c.is_ascii_alphanumeric() {
                    self.bump();
                } else {
                    break;
                }
            }
        } else {
            while let Some(c) = self.peek() {
                if c == '_' || c.is_ascii_digit() {
                    self.bump();
                } else {
                    break;
                }
            }
            if !after_dot {
                // fractional part: a `.` followed by a digit (NOT `..` or
                // a method call like `1.max(2)`)
                if self.peek() == Some('.') && self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
                    is_float = true;
                    self.bump(); // '.'
                    while let Some(c) = self.peek() {
                        if c == '_' || c.is_ascii_digit() {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                } else if self.peek() == Some('.')
                    && !matches!(self.peek_at(1), Some('.') | Some('_'))
                    && !self.peek_at(1).is_some_and(|c| c.is_alphabetic())
                {
                    // trailing-dot float `1.`
                    is_float = true;
                    self.bump();
                }
                // exponent: 1e9, 2.5e-3
                if matches!(self.peek(), Some('e' | 'E'))
                    && (self.peek_at(1).is_some_and(|c| c.is_ascii_digit())
                        || (matches!(self.peek_at(1), Some('+' | '-'))
                            && self.peek_at(2).is_some_and(|c| c.is_ascii_digit())))
                {
                    is_float = true;
                    self.bump(); // e
                    if matches!(self.peek(), Some('+' | '-')) {
                        self.bump();
                    }
                    while let Some(c) = self.peek() {
                        if c == '_' || c.is_ascii_digit() {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
            }
            // type suffix: 1.0f64, 3u32 — a float suffix forces Float
            if self.peek().is_some_and(|c| c.is_alphabetic()) {
                let suffix_start = self.pos;
                while let Some(c) = self.peek() {
                    if c == '_' || c.is_alphanumeric() {
                        self.bump();
                    } else {
                        break;
                    }
                }
                let suffix: String = self.chars[suffix_start..self.pos].iter().collect();
                if suffix == "f32" || suffix == "f64" {
                    is_float = true;
                }
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        let kind = if is_float {
            TokenKind::Float
        } else {
            TokenKind::Int
        };
        self.push(kind, text, line, col);
    }

    fn ident(&mut self, line: u32, col: u32) {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == '_' || c.is_alphanumeric() {
                self.bump();
            } else {
                break;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.push(TokenKind::Ident, text, line, col);
    }

    fn punct(&mut self, line: u32, col: u32) {
        // longest-match over the multi-char operators the rules care
        // about; everything else is a single char
        const MULTI: &[&str] = &[
            "..=", "<<=", ">>=", "::", "==", "!=", "<=", ">=", "&&", "||", "..", "->", "=>", "+=",
            "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
        ];
        let rest: String = self.chars[self.pos..(self.pos + 3).min(self.chars.len())]
            .iter()
            .collect();
        for op in MULTI {
            if rest.starts_with(op) {
                for _ in 0..op.chars().count() {
                    self.bump();
                }
                self.push(TokenKind::Punct, (*op).to_string(), line, col);
                return;
            }
        }
        let c = self.bump().expect("punct with no char");
        self.push(TokenKind::Punct, c.to_string(), line, col);
    }
}

// Silence the unused-field warning: `src` documents what we lex and is
// handy under a debugger.
impl std::fmt::Debug for Lexer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Lexer at {}:{} of {} bytes",
            self.line,
            self.col,
            self.src.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let ts = kinds("let x = a::b();");
        let texts: Vec<&str> = ts.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(texts, ["let", "x", "=", "a", "::", "b", "(", ")", ";"]);
        assert_eq!(ts[3].0, TokenKind::Ident);
        assert_eq!(ts[4].0, TokenKind::Punct);
    }

    #[test]
    fn comments_are_tokens_with_lines() {
        let ts = tokenize("// top\nfn f() {} /* mid\nspan */ x");
        assert_eq!(ts[0].kind, TokenKind::Comment);
        assert_eq!(ts[0].line, 1);
        let block = ts.iter().find(|t| t.text.starts_with("/*")).unwrap();
        assert_eq!(block.line, 2);
        // the x after the multi-line block comment is on line 3
        let x = ts.iter().find(|t| t.text == "x").unwrap();
        assert_eq!(x.line, 3);
    }

    #[test]
    fn nested_block_comments() {
        let ts = kinds("/* a /* b */ c */ after");
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[1].1, "after");
    }

    #[test]
    fn strings_hide_their_contents() {
        let ts = kinds(r#"let s = "println!(\"HashMap\")"; x"#);
        assert!(ts
            .iter()
            .all(|(k, t)| *k != TokenKind::Ident || t != "HashMap"));
        assert_eq!(ts.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r####"let s = r##"quote " and "# inside"## ; done"####;
        let ts = kinds(src);
        let s = ts.iter().find(|(k, _)| *k == TokenKind::Str).unwrap();
        assert!(s.1.ends_with(r###""##"###));
        assert_eq!(ts.last().unwrap().1, "done");
    }

    #[test]
    fn char_vs_lifetime() {
        let ts = kinds("let c = 'x'; fn f<'a>(v: &'a str) {} let nl = '\\n';");
        let chars: Vec<_> = ts.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        let lifetimes: Vec<_> = ts
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        assert_eq!(chars.len(), 2);
        assert_eq!(lifetimes.len(), 2);
    }

    #[test]
    fn float_vs_int_vs_tuple_index() {
        let ts = kinds("a.0 == 20.0 && b == 1e9 && c.1.min(0) < 0x1f");
        let floats: Vec<&str> = ts
            .iter()
            .filter(|(k, _)| *k == TokenKind::Float)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(floats, ["20.0", "1e9"]);
        let ints: Vec<&str> = ts
            .iter()
            .filter(|(k, _)| *k == TokenKind::Int)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(ints, ["0", "1", "0", "0x1f"]);
    }

    #[test]
    fn float_suffix_and_range() {
        let ts = kinds("let a = 1f64; for i in 0..10 {} let b = 2.5e-3;");
        let floats: Vec<&str> = ts
            .iter()
            .filter(|(k, _)| *k == TokenKind::Float)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(floats, ["1f64", "2.5e-3"]);
        assert!(ts.iter().any(|(k, t)| *k == TokenKind::Punct && t == ".."));
    }

    #[test]
    fn method_call_on_int_is_not_float() {
        let ts = kinds("1.max(2)");
        assert_eq!(ts[0].0, TokenKind::Int);
        assert_eq!(ts[0].1, "1");
    }

    #[test]
    fn columns_are_one_based_chars() {
        let ts = tokenize("  abc == 1.5");
        assert_eq!((ts[0].line, ts[0].col), (1, 3));
        assert_eq!(ts[1].text, "==");
        assert_eq!(ts[1].col, 7);
    }
}
