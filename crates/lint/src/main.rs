//! `abw-lint` — run the workspace determinism & invariant rules.
//!
//! ```text
//! cargo run -p abw-lint                 # lint the enclosing workspace
//! cargo run -p abw-lint -- <path>       # lint an explicit workspace root
//! cargo run -p abw-lint -- --file <f> [crate] [lib|bin|test]
//!                                       # lint one file under an explicit
//!                                       # context (defaults: core, lib)
//! ```
//!
//! Prints one block per finding (`file:line:col: Dn(name) `snippet``
//! plus a fix hint) and exits non-zero when anything fired.

use std::path::PathBuf;
use std::process::ExitCode;

use abw_lint::{FileClass, FileContext, Report};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reports = if args.first().map(String::as_str) == Some("--file") {
        match lint_single_file(&args[1..]) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("abw-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let root = args
            .first()
            .map(PathBuf::from)
            .unwrap_or_else(workspace_root);
        match abw_lint::lint_workspace(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("abw-lint: cannot walk {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    };
    for report in &reports {
        println!("{report}");
    }
    if reports.is_empty() {
        println!("abw-lint: clean");
        ExitCode::SUCCESS
    } else {
        println!("abw-lint: {} finding(s)", reports.len());
        ExitCode::FAILURE
    }
}

/// `--file <path> [crate] [lib|bin|test]`: lint one file as though it
/// lived in the given crate and target class. This is how the deny
/// fixtures are exercised end-to-end.
fn lint_single_file(args: &[String]) -> Result<Vec<Report>, String> {
    let path = args.first().ok_or("--file requires a path")?;
    let crate_name = args.get(1).map(String::as_str).unwrap_or("core");
    let class = match args.get(2).map(String::as_str).unwrap_or("lib") {
        "lib" => FileClass::Lib,
        "bin" => FileClass::Bin,
        "test" => FileClass::Test,
        other => return Err(format!("unknown class `{other}` (lib|bin|test)")),
    };
    let ctx = FileContext {
        crate_name: crate_name.to_string(),
        class,
    };
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Ok(abw_lint::lint_source(&ctx, &source)
        .into_iter()
        .map(|finding| Report {
            file: PathBuf::from(path),
            finding,
        })
        .collect())
}

/// The workspace root: `$CARGO_MANIFEST_DIR/../..` when run via cargo
/// (this crate lives at `crates/lint`), else the current directory.
fn workspace_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let mut p = PathBuf::from(dir);
            p.pop(); // crates/
            p.pop(); // workspace root
            p
        }
        None => PathBuf::from("."),
    }
}
