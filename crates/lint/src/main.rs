//! `abw-lint` — run the workspace architecture & determinism rules.
//!
//! ```text
//! cargo run -p abw-lint                      # lint the enclosing workspace
//! cargo run -p abw-lint -- <root>            # lint an explicit workspace root
//! cargo run -p abw-lint -- --format json     # flat machine-readable findings
//! cargo run -p abw-lint -- --format sarif --out lint.sarif
//! cargo run -p abw-lint -- --baseline lint-baseline.json --baseline-check
//! cargo run -p abw-lint -- --fix --reason "cold path, bounded input"
//! cargo run -p abw-lint -- --list-rules      # rule table and exit
//! cargo run -p abw-lint -- --write-graph     # refresh the crate-graph snapshot
//! cargo run -p abw-lint -- --file <f> [crate] [lib|bin|test]
//! ```
//!
//! Exit code contract: **0** clean, **1** findings (or a stale
//! baseline under `--baseline-check`), **2** tool error — unreadable
//! paths, malformed `lint.toml`, malformed baseline. CI distinguishes
//! "the code is wrong" from "the linter is broken" by this split.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use abw_lint::config::LintConfig;
use abw_lint::output;
use abw_lint::rules::ALL_RULES;
use abw_lint::{FileClass, FileContext, Report, Rule};

struct Options {
    root: PathBuf,
    format: Format,
    out: Option<PathBuf>,
    baseline: Option<PathBuf>,
    baseline_check: bool,
    write_baseline: Option<PathBuf>,
    fix: bool,
    reason: Option<String>,
    write_graph: bool,
}

#[derive(PartialEq, Clone, Copy)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("abw-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    // modes that bypass the workspace walk entirely
    match args.first().map(String::as_str) {
        Some("--list-rules") => {
            print!("{}", rule_table());
            return Ok(ExitCode::SUCCESS);
        }
        Some("--validate-json") => {
            let path = args.get(1).ok_or("--validate-json requires a path")?;
            let source =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let entries = output::parse_flat(&source).map_err(|e| format!("{path}: {e}"))?;
            println!("abw-lint: {path} is valid ({} finding(s))", entries.len());
            return Ok(ExitCode::SUCCESS);
        }
        Some("--file") => {
            let reports = lint_single_file(&args[1..])?;
            for r in &reports {
                println!("{r}");
            }
            return Ok(if reports.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            });
        }
        _ => {}
    }

    let opts = parse_options(args)?;
    let config = load_config(&opts.root)?;
    let analysis = abw_lint::analyze_workspace(&opts.root, &config)
        .map_err(|e| format!("cannot walk {}: {e}", opts.root.display()))?;

    if opts.write_graph {
        let snap = opts.root.join(&config.layering.snapshot);
        std::fs::write(&snap, &analysis.graph)
            .map_err(|e| format!("cannot write {}: {e}", snap.display()))?;
        println!("abw-lint: wrote {}", snap.display());
        return Ok(ExitCode::SUCCESS);
    }

    if let Some(path) = &opts.write_baseline {
        std::fs::write(path, output::to_json(&analysis.reports))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!(
            "abw-lint: wrote {} ({} finding(s))",
            path.display(),
            analysis.reports.len()
        );
        return Ok(ExitCode::SUCCESS);
    }

    // baseline subtraction: a finding present in the baseline is
    // suppressed; a baseline entry that no longer fires is *stale* and
    // fails `--baseline-check` so the file shrinks monotonically.
    let mut reports = analysis.reports;
    let mut stale: Vec<output::FlatFinding> = Vec::new();
    if let Some(path) = &opts.baseline {
        let source = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let baseline =
            output::parse_flat(&source).map_err(|e| format!("{}: {e}", path.display()))?;
        let keys: BTreeSet<_> = baseline.iter().map(|b| b.key()).collect();
        let live: BTreeSet<_> = reports.iter().map(output::report_key).collect();
        stale = baseline
            .into_iter()
            .filter(|b| !live.contains(&b.key()))
            .collect();
        reports.retain(|r| !keys.contains(&output::report_key(r)));
    }

    if opts.fix {
        let reason = opts
            .reason
            .as_deref()
            .ok_or("--fix requires --reason \"<why this is allowed>\"")?;
        let fixed = apply_fixes(&opts.root, &reports, reason)?;
        println!("abw-lint: fixed/annotated {fixed} site(s); re-run to verify");
        return Ok(ExitCode::SUCCESS);
    }

    let rendered = match opts.format {
        Format::Text => {
            let mut s = String::new();
            for r in &reports {
                s.push_str(&format!("{r}\n"));
            }
            if reports.is_empty() {
                s.push_str("abw-lint: clean\n");
            } else {
                s.push_str(&format!("abw-lint: {} finding(s)\n", reports.len()));
            }
            s
        }
        Format::Json => output::to_json(&reports),
        Format::Sarif => output::to_sarif(&reports),
    };
    match &opts.out {
        Some(path) => std::fs::write(path, &rendered)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?,
        None => print!("{rendered}"),
    }

    if opts.baseline_check && !stale.is_empty() {
        for s in &stale {
            eprintln!(
                "abw-lint: stale baseline entry: {} {} `{}` no longer fires — \
                 remove it from the baseline",
                s.rule, s.file, s.msg
            );
        }
        return Ok(ExitCode::FAILURE);
    }
    Ok(if reports.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: workspace_root(),
        format: Format::Text,
        out: None,
        baseline: None,
        baseline_check: false,
        write_baseline: None,
        fix: false,
        reason: None,
        write_graph: false,
    };
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                opts.format = match value(&mut i, "--format")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format `{other}` (text|json|sarif)")),
                };
            }
            "--out" => opts.out = Some(PathBuf::from(value(&mut i, "--out")?)),
            "--baseline" => opts.baseline = Some(PathBuf::from(value(&mut i, "--baseline")?)),
            "--baseline-check" => opts.baseline_check = true,
            "--write-baseline" => {
                opts.write_baseline = Some(PathBuf::from(value(&mut i, "--write-baseline")?));
            }
            "--fix" => opts.fix = true,
            "--reason" => opts.reason = Some(value(&mut i, "--reason")?),
            "--write-graph" => opts.write_graph = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            path => opts.root = PathBuf::from(path),
        }
        i += 1;
    }
    if opts.baseline_check && opts.baseline.is_none() {
        return Err("--baseline-check requires --baseline <file>".into());
    }
    Ok(opts)
}

/// The active contract: an on-disk `lint.toml` under the lint root
/// wins; otherwise the copy compiled into the binary.
fn load_config(root: &Path) -> Result<LintConfig, String> {
    let path = root.join("lint.toml");
    match std::fs::read_to_string(&path) {
        Ok(source) => abw_lint::config::parse(&source).map_err(|e| e.to_string()),
        Err(_) => Ok(LintConfig::embedded()),
    }
}

/// `--fix`: mechanical rewrites where one exists (D2's `HashMap` →
/// `BTreeMap` keeps iteration deterministic with the same API),
/// `// lint: allow(<rule>) -- <reason>` markers everywhere else.
/// Edits are applied bottom-up per file so line numbers stay valid.
fn apply_fixes(root: &Path, reports: &[Report], reason: &str) -> Result<usize, String> {
    let mut by_file: Vec<(&PathBuf, Vec<&Report>)> = Vec::new();
    for r in reports {
        match by_file.iter_mut().find(|(f, _)| *f == &r.file) {
            Some((_, v)) => v.push(r),
            None => by_file.push((&r.file, vec![r])),
        }
    }
    let mut fixed = 0;
    for (rel, file_reports) in by_file {
        let path = root.join(rel);
        let source = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let mut lines: Vec<String> = source.lines().map(String::from).collect();
        // bottom-up, one marker per (line, rule)
        let mut sites: Vec<(u32, Rule)> = file_reports
            .iter()
            .map(|r| (r.finding.line, r.finding.rule))
            .collect();
        sites.sort();
        sites.dedup();
        for &(line, rule) in sites.iter().rev() {
            let idx = line as usize - 1;
            if idx >= lines.len() {
                continue;
            }
            if rule == Rule::HashIter {
                lines[idx] = lines[idx]
                    .replace("HashMap", "BTreeMap")
                    .replace("HashSet", "BTreeSet");
            } else {
                let indent: String = lines[idx]
                    .chars()
                    .take_while(|c| c.is_whitespace())
                    .collect();
                lines.insert(
                    idx,
                    format!("{indent}// lint: allow({}) -- {reason}", rule.name()),
                );
            }
            fixed += 1;
        }
        let mut rewritten = lines.join("\n");
        if source.ends_with('\n') {
            rewritten.push('\n');
        }
        std::fs::write(&path, rewritten)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    Ok(fixed)
}

/// `--list-rules`: the full rule table, one row per rule.
fn rule_table() -> String {
    let mut out = String::from("id  name          scope\n");
    out.push_str("--  ----          -----\n");
    for rule in ALL_RULES {
        out.push_str(&format!(
            "{:<3} {:<13} {}\n      {}\n",
            rule.id(),
            rule.name(),
            rule.scope(),
            rule.hint()
        ));
    }
    out
}

/// `--file <path> [crate] [lib|bin|test]`: lint one file as though it
/// lived in the given crate and target class. This is how the deny
/// fixtures are exercised end-to-end. Runs the token rules plus the
/// single-file architecture passes (D7/D8 under the embedded config).
fn lint_single_file(args: &[String]) -> Result<Vec<Report>, String> {
    let path = args.first().ok_or("--file requires a path")?;
    let crate_name = args.get(1).map(String::as_str).unwrap_or("core");
    let class = match args.get(2).map(String::as_str).unwrap_or("lib") {
        "lib" => FileClass::Lib,
        "bin" => FileClass::Bin,
        "test" => FileClass::Test,
        other => return Err(format!("unknown class `{other}` (lib|bin|test)")),
    };
    let ctx = FileContext {
        crate_name: crate_name.to_string(),
        class,
    };
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Ok(abw_lint::lint_file(&ctx, Path::new(path), &source)
        .into_iter()
        .map(|finding| Report {
            file: PathBuf::from(path),
            finding,
        })
        .collect())
}

/// The workspace root: `$CARGO_MANIFEST_DIR/../..` when run via cargo
/// (this crate lives at `crates/lint`), else the current directory.
fn workspace_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let mut p = PathBuf::from(dir);
            p.pop(); // crates/
            p.pop(); // workspace root
            p
        }
        None => PathBuf::from("."),
    }
}
