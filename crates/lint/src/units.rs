//! D8 — unit hygiene.
//!
//! The paper's fallacy catalogue is full of wrong-by-a-unit bugs:
//! Mb/s where B/s was meant, milliseconds compared against
//! microseconds, a fraction fed where a percentage was expected. The
//! workspace convention is that a numeric name *carries its unit as a
//! suffix* (`rate_bps`, `gap_us`, `warmup_ms`) so the unit is visible
//! at every use site. This pass enforces three things, vocabulary
//! supplied by `[units]` in `lint.toml`:
//!
//! 1. **Deny aliases** — suffixes that look like units but are the
//!    wrong spelling (`_sec`, `_kbps`, `_pkt`) are flagged on every
//!    declaration, with the canonical replacement in the finding.
//! 2. **Missing suffix** — an `f64`/`f32` struct field whose name has
//!    no unit suffix and is not in the `dimensionless` allowlist is
//!    flagged: floats in this codebase are physical quantities.
//! 3. **Mixed-unit arithmetic** — `a_ms + b_us`, `x_bps < y_mbps`:
//!    two unit-suffixed names joined by `+ - == != < > <= >=` with
//!    *different scales* is exactly the bug class the suffixes exist
//!    to surface. Multiplication and division are exempt (they
//!    legitimately combine dimensions).

use crate::config::UnitsConfig;
use crate::lexer::{Token, TokenKind};
use crate::parser::{DeclKind, FileModel};
use crate::rules::{Allows, Finding, Rule};

/// Runs D8 for one file.
pub fn check(
    tokens: &[Token],
    model: &FileModel,
    units: &UnitsConfig,
    allows: &Allows,
) -> Vec<Finding> {
    let vocab = Vocabulary::from_config(units);
    let mut findings = Vec::new();
    check_decls(model, units, &vocab, allows, &mut findings);
    check_mixing(tokens, model, &vocab, allows, &mut findings);
    findings.sort_by_key(|f| (f.line, f.col));
    findings
}

/// The suffix vocabulary, preprocessed for longest-match lookup.
struct Vocabulary {
    /// All recognised unit suffixes (canonical + accepted), longest
    /// first so `_mbps` wins over `_bps`.
    suffixes: Vec<String>,
    /// `(alias, replacement)` pairs from the deny list.
    deny: Vec<(String, String)>,
}

impl Vocabulary {
    fn from_config(units: &UnitsConfig) -> Self {
        let mut suffixes: Vec<String> = units
            .canonical
            .iter()
            .chain(units.accepted.iter())
            .cloned()
            .collect();
        suffixes.sort_by_key(|s| std::cmp::Reverse(s.len()));
        let deny = units
            .deny
            .iter()
            .filter_map(|pair| {
                pair.split_once('=')
                    .map(|(a, b)| (a.to_string(), b.to_string()))
            })
            .collect();
        Vocabulary { suffixes, deny }
    }

    /// The unit suffix of `name`, if any (case-insensitive so
    /// `WARMUP_MS` matches `_ms`). Longest match wins.
    fn suffix_of(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.suffixes
            .iter()
            .find(|s| lower.ends_with(s.as_str()) && lower.len() > s.len())
            .map(String::as_str)
    }

    /// The deny alias `name` ends with, if any, with its replacement.
    fn deny_alias_of(&self, name: &str) -> Option<(&str, &str)> {
        let lower = name.to_ascii_lowercase();
        // a name that carries a *valid* longer suffix is fine even if a
        // deny alias is its tail (none overlap today, but stay safe)
        if self.suffix_of(name).is_some() {
            return None;
        }
        self.deny
            .iter()
            .find(|(a, _)| lower.ends_with(a.as_str()) && lower.len() > a.len())
            .map(|(a, b)| (a.as_str(), b.as_str()))
    }
}

/// Two suffixes agree when they name the same scale: `_secs` is a
/// legacy spelling of `_s`, `_millis` of `_ms`, and so on. `_mbps`
/// vs `_bps` and `_pct` vs `_frac` are *different scales* — mixing
/// them is the bug.
fn scale(suffix: &str) -> &str {
    match suffix {
        "_secs" => "_s",
        "_millis" => "_ms",
        "_micros" => "_us",
        "_nanos" => "_ns",
        "_packets" => "_pkts",
        other => other,
    }
}

fn check_decls(
    model: &FileModel,
    units: &UnitsConfig,
    vocab: &Vocabulary,
    allows: &Allows,
    findings: &mut Vec<Finding>,
) {
    for d in &model.decls {
        if d.in_test {
            continue;
        }
        if allows.covers(d.line, Rule::Units) {
            continue;
        }
        if let Some((alias, replacement)) = vocab.deny_alias_of(&d.name) {
            findings.push(Finding {
                rule: Rule::Units,
                line: d.line,
                col: d.col,
                snippet: d.name.clone(),
                note: Some(format!(
                    "`{alias}` is not in the vocabulary; use `{replacement}`"
                )),
            });
            continue;
        }
        // missing-suffix check: float-typed fields only — the API
        // surface where an unlabeled quantity propagates furthest
        let is_float_field =
            d.kind == DeclKind::Field && d.ty.as_deref().is_some_and(|t| t == "f64" || t == "f32");
        if is_float_field
            && vocab.suffix_of(&d.name).is_none()
            && !units.dimensionless.iter().any(|n| n == &d.name)
        {
            findings.push(Finding {
                rule: Rule::Units,
                line: d.line,
                col: d.col,
                snippet: d.name.clone(),
                note: Some(
                    "float field without a unit suffix; rename, or add it to \
                     [units].dimensionless in lint.toml if it truly has no unit"
                        .to_string(),
                ),
            });
        }
    }
}

/// Comparison/additive operators that require both operands to share a
/// scale.
fn is_mixing_op(text: &str) -> bool {
    matches!(text, "+" | "-" | "==" | "!=" | "<" | ">" | "<=" | ">=")
}

fn check_mixing(
    tokens: &[Token],
    model: &FileModel,
    vocab: &Vocabulary,
    allows: &Allows,
    findings: &mut Vec<Finding>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Punct || !is_mixing_op(&t.text) {
            continue;
        }
        let Some(p) = prev_code(tokens, i) else {
            continue;
        };
        let Some(n) = next_code(tokens, i + 1) else {
            continue;
        };
        if tokens[p].kind != TokenKind::Ident || tokens[n].kind != TokenKind::Ident {
            continue;
        }
        let (Some(ls), Some(rs)) = (
            vocab.suffix_of(&tokens[p].text),
            vocab.suffix_of(&tokens[n].text),
        ) else {
            continue;
        };
        if scale(ls) == scale(rs) {
            continue;
        }
        if model.in_test_region(i) || allows.covers(t.line, Rule::Units) {
            continue;
        }
        findings.push(Finding {
            rule: Rule::Units,
            line: t.line,
            col: t.col,
            snippet: format!("{} {} {}", tokens[p].text, t.text, tokens[n].text),
            note: Some(format!("mixes `{ls}` with `{rs}` without conversion")),
        });
    }
}

fn prev_code(tokens: &[Token], i: usize) -> Option<usize> {
    (0..i).rev().find(|&j| tokens[j].kind != TokenKind::Comment)
}

fn next_code(tokens: &[Token], mut i: usize) -> Option<usize> {
    while i < tokens.len() {
        if tokens[i].kind != TokenKind::Comment {
            return Some(i);
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;
    use crate::parser::parse;

    fn config() -> UnitsConfig {
        UnitsConfig {
            canonical: [
                "_bps", "_ns", "_us", "_ms", "_s", "_pkts", "_bytes", "_frac",
            ]
            .map(String::from)
            .to_vec(),
            accepted: [
                "_mbps", "_secs", "_millis", "_micros", "_nanos", "_pct", "_hz",
            ]
            .map(String::from)
            .to_vec(),
            deny: ["_sec=_s", "_msec=_ms", "_kbps=_bps", "_pkt=_pkts"]
                .map(String::from)
                .to_vec(),
            dimensionless: vec!["gamma".to_string(), "tolerance".to_string()],
        }
    }

    fn run(src: &str) -> Vec<Finding> {
        let toks = tokenize(src);
        let model = parse(&toks);
        let allows = Allows::from_tokens(&toks);
        check(&toks, &model, &config(), &allows)
    }

    #[test]
    fn deny_alias_fires_with_replacement() {
        let hits = run("fn f() { let gap_sec = 1.0; }");
        assert_eq!(hits.len(), 1);
        assert!(hits[0].note.as_deref().unwrap().contains("_s"));
        assert_eq!(hits[0].snippet, "gap_sec");
    }

    #[test]
    fn float_field_without_suffix_fires_unless_dimensionless() {
        let hits = run("struct R { rate: f64, gamma: f64, rate_bps: f64, count: u64 }");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].snippet, "rate");
    }

    #[test]
    fn mixing_different_scales_fires() {
        let hits = run("fn f() { if gap_ms < timeout_us { } }");
        assert_eq!(hits.len(), 1);
        assert!(hits[0].note.as_deref().unwrap().contains("_ms"));
    }

    #[test]
    fn same_scale_and_multiplication_are_fine() {
        assert!(run("fn f() { let t = a_ms + b_ms; }").is_empty());
        assert!(run("fn f() { let bits = rate_bps * window_s; }").is_empty());
        // _secs is a legacy spelling of _s — same scale, no finding
        assert!(run("fn f() { let ok = elapsed_secs < budget_s; }").is_empty());
    }

    #[test]
    fn mbps_vs_bps_is_a_real_scale_bug() {
        let hits = run("fn f() { let bad = truth_mbps - estimate_bps; }");
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn const_suffix_is_case_insensitive() {
        assert!(run("const WARMUP_MS: u64 = 5;").is_empty());
        let hits = run("const WARMUP_MSEC: u64 = 5;");
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn allow_marker_and_test_mods_are_exempt() {
        let marked =
            "struct R {\n  // lint: allow(units) -- legacy name, CSV-stable\n  rate: f64,\n}";
        assert!(run(marked).is_empty());
        let test_src = "#[cfg(test)]\nmod tests { fn t() { let x = a_ms + b_us; } }";
        assert!(run(test_src).is_empty());
    }
}
