//! `lint.toml` — the declared architecture contract, and its parser.
//!
//! The linter stays zero-dependency, so this module implements the
//! small TOML subset the config actually uses rather than pulling in a
//! TOML crate:
//!
//! * `[table]` and `[[array.of.tables]]` headers (dotted keys allowed)
//! * `key = "string"`, `key = ["a", "b"]`, `key = 123`, `key = true`
//! * `#` comments and blank lines
//!
//! Anything else is a parse error with a line number — config mistakes
//! must exit 2 (tool error), never silently disarm a rule.
//!
//! The workspace config lives at the repo root as `lint.toml` and is
//! also compiled into the binary (`include_str!`) so `abw-lint` runs
//! with the committed contract even when invoked outside the repo
//! root; an on-disk `lint.toml` under the lint root takes precedence.

use std::collections::BTreeMap;
use std::fmt;

/// The embedded copy of the workspace contract.
pub const DEFAULT_TOML: &str = include_str!("../../../lint.toml");

/// A config-file parse error with its 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line in the TOML source.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// One `[[layering.deny]]` entry: a forbidden import edge.
#[derive(Debug, Clone, Default)]
pub struct DenyEdge {
    /// Glob over workspace-relative file paths (`*` matches anything,
    /// `/` included).
    pub from: String,
    /// Path prefixes that files matching `from` must not import; a
    /// path matches when equal to the prefix or nested under it
    /// (`std::time::Instant` matches `std::time`).
    pub imports: Vec<String>,
    /// Globs over workspace-relative paths exempt from this edge.
    pub except: Vec<String>,
    /// Why the edge is forbidden — echoed in the finding hint.
    pub reason: String,
}

/// `[layering]`: the import-graph pass.
#[derive(Debug, Clone, Default)]
pub struct LayeringConfig {
    /// Workspace-relative path of the committed crate-graph snapshot.
    pub snapshot: String,
    /// Forbidden edges.
    pub deny: Vec<DenyEdge>,
}

/// One `[[panic_free.scope]]` entry: a hot-path region for D7.
#[derive(Debug, Clone, Default)]
pub struct HotScope {
    /// Glob over workspace-relative file paths.
    pub file: String,
    /// Glob patterns over impl-qualified fn names (`Link::*`,
    /// `*::next`, `Simulator::run_until`). Reachability closes over
    /// same-file calls from matching fns.
    pub fns: Vec<String>,
}

/// `[units]`: the D8 suffix vocabulary.
#[derive(Debug, Clone, Default)]
pub struct UnitsConfig {
    /// The preferred unit suffixes (findings suggest these).
    pub canonical: Vec<String>,
    /// Additional suffixes accepted as units (legacy spellings that
    /// still participate in mixed-unit detection).
    pub accepted: Vec<String>,
    /// Suffixes that are always wrong and carry a canonical
    /// replacement, as `"_sec=_s"` pairs.
    pub deny: Vec<String>,
    /// Exact names exempt from the missing-suffix check on float
    /// fields: genuinely dimensionless quantities (probabilities,
    /// shape parameters, statistical moments over generic data).
    pub dimensionless: Vec<String>,
}

/// `[registry]`: the D9 static exhaustiveness check.
#[derive(Debug, Clone, Default)]
pub struct RegistryConfig {
    /// Directory whose `*.rs` stems must appear in the registry.
    pub tools_dir: String,
    /// The registry source file scanned for `module: "…"` entries.
    pub registry_file: String,
    /// Module stems exempt from the check (`mod`, `registry`).
    pub exclude: Vec<String>,
}

/// The whole parsed `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// Import-graph layering contract.
    pub layering: LayeringConfig,
    /// D7 hot scopes.
    pub panic_free: Vec<HotScope>,
    /// D8 vocabulary.
    pub units: UnitsConfig,
    /// D9 registry pairing.
    pub registry: RegistryConfig,
}

impl LintConfig {
    /// Parses the embedded workspace contract. Panics only if the
    /// committed `lint.toml` is malformed, which the crate's own tests
    /// catch before a release build ships.
    pub fn embedded() -> LintConfig {
        parse(DEFAULT_TOML).expect("embedded lint.toml must parse")
    }
}

// ---------------------------------------------------------------------
// generic TOML-subset representation

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    List(Vec<String>),
    Int(i64),
    Bool(bool),
}

#[derive(Debug, Default)]
struct Table {
    entries: BTreeMap<String, (u32, Value)>,
}

impl Table {
    fn str(&self, key: &str) -> Option<&str> {
        match self.entries.get(key) {
            Some((_, Value::Str(s))) => Some(s),
            _ => None,
        }
    }

    fn list(&self, key: &str) -> Vec<String> {
        match self.entries.get(key) {
            Some((_, Value::List(v))) => v.clone(),
            Some((_, Value::Str(s))) => vec![s.clone()],
            _ => Vec::new(),
        }
    }
}

#[derive(Debug, Default)]
struct Doc {
    /// Header path → the tables declared under it, in file order.
    /// `[t]` appends one table the first time and reuses it after;
    /// `[[t]]` appends a fresh table each time.
    tables: BTreeMap<String, Vec<Table>>,
}

/// Parses `source` into the typed [`LintConfig`].
pub fn parse(source: &str) -> Result<LintConfig, ConfigError> {
    let doc = parse_doc(source)?;
    let mut config = LintConfig::default();

    if let Some(t) = doc.tables.get("layering").and_then(|v| v.first()) {
        config.layering.snapshot = t.str("snapshot").unwrap_or_default().to_string();
    }
    for t in doc.tables.get("layering.deny").into_iter().flatten() {
        let from = t.str("from").map(str::to_string).unwrap_or_default();
        if from.is_empty() {
            let line = t.entries.values().map(|(l, _)| *l).min().unwrap_or(0);
            return Err(ConfigError {
                line,
                message: "[[layering.deny]] requires a `from` glob".into(),
            });
        }
        config.layering.deny.push(DenyEdge {
            from,
            imports: t.list("import"),
            except: t.list("except"),
            reason: t.str("reason").unwrap_or_default().to_string(),
        });
    }
    for t in doc.tables.get("panic_free.scope").into_iter().flatten() {
        let file = t.str("file").map(str::to_string).unwrap_or_default();
        if file.is_empty() {
            let line = t.entries.values().map(|(l, _)| *l).min().unwrap_or(0);
            return Err(ConfigError {
                line,
                message: "[[panic_free.scope]] requires a `file` glob".into(),
            });
        }
        config.panic_free.push(HotScope {
            file,
            fns: t.list("fns"),
        });
    }
    if let Some(t) = doc.tables.get("units").and_then(|v| v.first()) {
        config.units.canonical = t.list("canonical");
        config.units.accepted = t.list("accepted");
        config.units.deny = t.list("deny");
        config.units.dimensionless = t.list("dimensionless");
    }
    if let Some(t) = doc.tables.get("registry").and_then(|v| v.first()) {
        config.registry.tools_dir = t.str("tools_dir").unwrap_or_default().to_string();
        config.registry.registry_file = t.str("registry_file").unwrap_or_default().to_string();
        config.registry.exclude = t.list("exclude");
    }
    Ok(config)
}

fn parse_doc(source: &str) -> Result<Doc, ConfigError> {
    let mut doc = Doc::default();
    let mut current: Option<String> = None;
    for (idx, raw) in source.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(inner) = line.strip_prefix("[[").and_then(|r| r.strip_suffix("]]")) {
            let key = inner.trim().to_string();
            validate_header(&key, lineno)?;
            doc.tables
                .entry(key.clone())
                .or_default()
                .push(Table::default());
            current = Some(key);
        } else if let Some(inner) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
            let key = inner.trim().to_string();
            validate_header(&key, lineno)?;
            let tables = doc.tables.entry(key.clone()).or_default();
            if tables.is_empty() {
                tables.push(Table::default());
            }
            current = Some(key);
        } else if let Some(eq) = find_eq(line) {
            let key = line[..eq].trim();
            let value = line[eq + 1..].trim();
            if key.is_empty() {
                return Err(ConfigError {
                    line: lineno,
                    message: "missing key before `=`".into(),
                });
            }
            let value = parse_value(value, lineno)?;
            let table_key = current.clone().ok_or(ConfigError {
                line: lineno,
                message: "key/value pair before any [table] header".into(),
            })?;
            let table = doc
                .tables
                .get_mut(&table_key)
                .and_then(|v| v.last_mut())
                .expect("current table exists");
            if table
                .entries
                .insert(key.to_string(), (lineno, value))
                .is_some()
            {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("duplicate key `{key}`"),
                });
            }
        } else {
            return Err(ConfigError {
                line: lineno,
                message: format!("unrecognised line: `{line}`"),
            });
        }
    }
    Ok(doc)
}

fn validate_header(key: &str, line: u32) -> Result<(), ConfigError> {
    let ok = !key.is_empty()
        && key.split('.').all(|seg| {
            !seg.is_empty()
                && seg
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        });
    if ok {
        Ok(())
    } else {
        Err(ConfigError {
            line,
            message: format!("invalid table header `[{key}]`"),
        })
    }
}

/// The `=` separating key from value (never inside a string — keys in
/// this subset are bare).
fn find_eq(line: &str) -> Option<usize> {
    line.find('=')
}

/// Strips a `#` comment, honouring `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str, line: u32) -> Result<Value, ConfigError> {
    if let Some(rest) = text.strip_prefix('"') {
        let Some(end) = rest.find('"') else {
            return Err(ConfigError {
                line,
                message: "unterminated string".into(),
            });
        };
        if !rest[end + 1..].trim().is_empty() {
            return Err(ConfigError {
                line,
                message: "trailing characters after string".into(),
            });
        }
        return Ok(Value::Str(rest[..end].to_string()));
    }
    if let Some(inner) = text.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
        let mut items = Vec::new();
        for part in split_list(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let Some(s) = part.strip_prefix('"').and_then(|r| r.strip_suffix('"')) else {
                return Err(ConfigError {
                    line,
                    message: format!("list items must be strings, got `{part}`"),
                });
            };
            items.push(s.to_string());
        }
        return Ok(Value::List(items));
    }
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if let Ok(n) = text.parse::<i64>() {
        return Ok(Value::Int(n));
    }
    Err(ConfigError {
        line,
        message: format!("unrecognised value `{text}`"),
    })
}

/// Splits a list body on commas outside strings.
fn split_list(inner: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    for (i, c) in inner.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&inner[start..]);
    parts
}

// ---------------------------------------------------------------------
// glob matching (shared by layering `from`, `except` is exact, and D7
// fn patterns)

/// Matches `pat` against `text` where `*` matches any run of
/// characters (including `/` and `::` separators) and every other
/// character matches itself. Deliberately simple: the config's globs
/// are file paths and qualified fn names, not shell patterns.
pub fn glob_match(pat: &str, text: &str) -> bool {
    let p: Vec<char> = pat.chars().collect();
    let t: Vec<char> = text.chars().collect();
    // greedy two-pointer with backtracking on the last `*`
    let (mut pi, mut ti) = (0usize, 0usize);
    let (mut star, mut mark) = (usize::MAX, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = pi;
            mark = ti;
            pi += 1;
        } else if star != usize::MAX {
            pi = star + 1;
            mark += 1;
            ti = mark;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

/// True when import path `path` falls under the deny `prefix`:
/// equal, or nested below it (`std::time::Instant` under `std::time`).
pub fn path_matches(prefix: &str, path: &str) -> bool {
    path == prefix || path.starts_with(&format!("{prefix}::"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_embedded_workspace_config() {
        let config = LintConfig::embedded();
        assert!(!config.layering.deny.is_empty(), "deny edges declared");
        assert!(!config.panic_free.is_empty(), "hot scopes declared");
        assert!(!config.units.canonical.is_empty(), "unit vocabulary");
        assert!(!config.registry.tools_dir.is_empty(), "registry paths");
        assert!(!config.layering.snapshot.is_empty(), "snapshot path");
        for edge in &config.layering.deny {
            assert!(!edge.reason.is_empty(), "every deny edge carries a reason");
            assert!(!edge.imports.is_empty());
        }
    }

    #[test]
    fn array_of_tables_accumulate() {
        let src = "\
[[layering.deny]]
from = \"a/*\"
import = [\"x\"]
reason = \"r1\"

[[layering.deny]]
from = \"b/*\"
import = [\"y\", \"z\"]
reason = \"r2\"
";
        let c = parse(src).unwrap();
        assert_eq!(c.layering.deny.len(), 2);
        assert_eq!(c.layering.deny[1].imports, ["y", "z"]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("[units]\ncanonical = [bad]\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse("key = \"before any table\"\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = parse("[units]\ncanonical = \"_s\"\ncanonical = \"_ms\"\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn comments_and_strings_coexist() {
        let src = "[registry]\ntools_dir = \"a#b\" # trailing comment\n";
        let c = parse(src).unwrap();
        assert_eq!(c.registry.tools_dir, "a#b");
    }

    #[test]
    fn glob_semantics() {
        assert!(glob_match(
            "crates/core/src/tools/*.rs",
            "crates/core/src/tools/igi.rs"
        ));
        assert!(glob_match("crates/obs/*", "crates/obs/src/lib.rs"));
        assert!(glob_match("Link::*", "Link::push"));
        assert!(glob_match("*::next", "Igi::next"));
        assert!(!glob_match("*::next", "next"));
        assert!(glob_match("Simulator::run_until", "Simulator::run_until"));
        assert!(!glob_match("crates/obs/*", "crates/core/src/lib.rs"));
        assert!(glob_match("*", "anything/at/all"));
    }

    #[test]
    fn path_prefix_matching() {
        assert!(path_matches("std::time", "std::time::Instant"));
        assert!(path_matches("std::time", "std::time"));
        assert!(!path_matches("std::time", "std::timer"));
        assert!(!path_matches("std::time::Instant", "std::time"));
    }
}
