//! Fixed-bin histograms for distribution reporting in experiment output.

/// A histogram with uniform-width bins over `[lo, hi)` plus underflow and
/// overflow counters.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` uniform bins spanning `[lo, hi)`.
    ///
    /// Panics when `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Records one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            // float rounding at the upper edge can land on len(); clamp.
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total samples recorded, including under/overflow.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Iterator over `(bin_center, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + width * (i as f64 + 0.5), c))
    }

    /// Iterator over `(bin_center, fraction_of_total)` pairs.
    pub fn normalized(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let total = self.count.max(1) as f64;
        self.iter().map(move |(x, c)| (x, c as f64 / total))
    }

    /// Bin center with the largest count, `None` when empty.
    pub fn mode(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        self.iter()
            .max_by_key(|&(_, c)| c)
            .map(|(center, _)| center)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_and_flows() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.push(-1.0);
        h.push(0.0);
        h.push(5.5);
        h.push(9.999);
        h.push(10.0);
        h.push(42.0);
        assert_eq!(h.count(), 6);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        let counts: Vec<u64> = h.iter().map(|(_, c)| c).collect();
        assert_eq!(counts.iter().sum::<u64>(), 3);
        assert_eq!(counts[0], 1);
        assert_eq!(counts[5], 1);
        assert_eq!(counts[9], 1);
    }

    #[test]
    fn normalized_sums_below_one_with_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for i in 0..8 {
            h.push(i as f64 / 8.0);
        }
        h.push(5.0);
        let total: f64 = h.normalized().map(|(_, f)| f).sum();
        assert!((total - 8.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn mode_detection() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        h.push(0.5);
        h.push(1.5);
        h.push(1.6);
        assert_eq!(h.mode(), Some(1.5));
        let empty = Histogram::new(0.0, 1.0, 2);
        assert_eq!(empty.mode(), None);
    }

    #[test]
    #[should_panic]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
