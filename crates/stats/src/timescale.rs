//! Variance versus averaging timescale.
//!
//! The paper's definitions section stresses that `Var[A_tau]` decreases with
//! the averaging timescale `tau`, and that the *rate* of decrease depends on
//! the correlation structure: `1/k` for IID (Equation 4) and `1/k^{2(1-H)}`
//! for an exactly self-similar process with Hurst parameter `H`
//! (Equation 5). This module computes variance-time tables from a sampled
//! series and provides the two reference decay laws.

use crate::running::Running;

/// Variance of the process aggregated at multiples of the base timescale.
///
/// Given a series sampled at a base timescale (each element is the process
/// averaged over one base interval), returns `(k, Var[A_{k*tau}])` for each
/// requested aggregation level `k`: the series is partitioned into blocks of
/// `k`, each block is averaged, and the variance of the block means is
/// reported. Levels with fewer than 2 complete blocks are skipped.
pub fn variance_time(series: &[f64], levels: &[usize]) -> Vec<(usize, f64)> {
    let mut out = Vec::new();
    for &k in levels {
        if k == 0 {
            continue;
        }
        let mut r = Running::new();
        for block in series.chunks_exact(k) {
            r.push(block.iter().sum::<f64>() / k as f64);
        }
        if r.count() >= 2 {
            out.push((k, r.population_variance()));
        }
    }
    out
}

/// Equation 4: variance of an IID process at aggregation level `k`.
pub fn iid_decay(base_variance: f64, k: f64) -> f64 {
    base_variance / k
}

/// Equation 5: variance of an exactly self-similar process with Hurst
/// parameter `h` at aggregation level `k`.
///
/// For `h = 0.5` this coincides with the IID decay.
pub fn self_similar_decay(base_variance: f64, k: f64, h: f64) -> f64 {
    base_variance / k.powf(2.0 * (1.0 - h))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn variance_decreases_with_aggregation() {
        let mut rng = StdRng::seed_from_u64(11);
        let series: Vec<f64> = (0..100_000).map(|_| rng.random::<f64>()).collect();
        let vt = variance_time(&series, &[1, 2, 4, 8, 16, 32]);
        assert_eq!(vt.len(), 6);
        for w in vt.windows(2) {
            assert!(w[1].1 < w[0].1, "variance must shrink with aggregation");
        }
    }

    #[test]
    fn iid_series_follows_equation_4() {
        let mut rng = StdRng::seed_from_u64(5);
        let series: Vec<f64> = (0..200_000).map(|_| rng.random::<f64>()).collect();
        let vt = variance_time(&series, &[1, 10, 100]);
        let base = vt[0].1;
        for &(k, v) in &vt[1..] {
            let expected = iid_decay(base, k as f64);
            let ratio = v / expected;
            assert!(
                (0.8..1.2).contains(&ratio),
                "level {k}: measured {v}, expected {expected}"
            );
        }
    }

    #[test]
    fn self_similar_decay_slower_than_iid() {
        let base = 4.0;
        for k in [2.0, 8.0, 64.0] {
            assert!(self_similar_decay(base, k, 0.9) > iid_decay(base, k));
            // H = 0.5 reduces to IID
            let d = self_similar_decay(base, k, 0.5);
            assert!((d - iid_decay(base, k)).abs() < 1e-12);
        }
    }

    #[test]
    fn skips_degenerate_levels() {
        let series = [1.0, 2.0, 3.0, 4.0];
        // level 3 leaves one complete block; level 0 is invalid
        let vt = variance_time(&series, &[0, 3, 2]);
        assert_eq!(vt.len(), 1);
        assert_eq!(vt[0].0, 2);
    }
}
