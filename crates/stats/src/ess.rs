//! Effective sample size for correlated avail-bw samples.
//!
//! Equation 11 of the paper — `Var[m_A(k)] = Var[A_tau]/k` — assumes the
//! `k` samples are *independent*. Probing streams sent close together
//! sample a correlated process, so the variance of their mean shrinks
//! slower than `1/k`; the honest divisor is the **effective sample
//! size**
//!
//! ```text
//! ESS = k / (1 + 2 * sum_{j>=1} rho_j)
//! ```
//!
//! with `rho_j` the lag-`j` autocorrelation of the sample sequence.
//! Tool comparisons that count raw samples (Pitfall 1) overstate their
//! confidence exactly by the `k / ESS` factor.

use crate::autocorr::autocorrelation;

/// Effective sample size of a sample sequence, via the initial positive
/// sequence estimator: autocorrelations are summed over increasing lags
/// until the first non-positive one (the standard truncation that keeps
/// the estimator stable on finite data).
///
/// Returns `None` for sequences shorter than 3 or with zero variance.
pub fn effective_sample_size(samples: &[f64]) -> Option<f64> {
    let n = samples.len();
    if n < 3 {
        return None;
    }
    let mut rho_sum = 0.0;
    for lag in 1..(n - 2) {
        match autocorrelation(samples, lag) {
            Some(r) if r > 0.0 => rho_sum += r,
            _ => break,
        }
    }
    let ess = n as f64 / (1.0 + 2.0 * rho_sum);
    Some(ess.clamp(1.0, n as f64))
}

/// The variance of the sample mean, corrected for correlation:
/// `Var[A_tau] / ESS` instead of Equation 11's `Var[A_tau] / k`.
///
/// Returns `None` when the ESS is undefined.
pub fn corrected_mean_variance(samples: &[f64]) -> Option<f64> {
    let ess = effective_sample_size(samples)?;
    let r = crate::running::Running::from_samples(samples);
    Some(r.variance() / ess)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn iid_samples_have_full_ess() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs: Vec<f64> = (0..5000).map(|_| rng.random::<f64>()).collect();
        let ess = effective_sample_size(&xs).unwrap();
        assert!(
            ess > 0.8 * xs.len() as f64,
            "IID ESS should be near n: {ess} of {}",
            xs.len()
        );
    }

    #[test]
    fn correlated_samples_have_reduced_ess() {
        // AR(1) with phi = 0.9: theoretical ESS ratio = (1-phi)/(1+phi) ≈ 0.053
        let mut rng = StdRng::seed_from_u64(5);
        let mut x = 0.0;
        let xs: Vec<f64> = (0..20000)
            .map(|_| {
                x = 0.9 * x + (rng.random::<f64>() - 0.5);
                x
            })
            .collect();
        let ess = effective_sample_size(&xs).unwrap();
        let ratio = ess / xs.len() as f64;
        assert!(
            (0.02..0.12).contains(&ratio),
            "AR(1) phi=0.9 ESS ratio {ratio}, theory ~0.053"
        );
    }

    #[test]
    fn corrected_variance_exceeds_naive_for_correlated_data() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut x = 0.0;
        let xs: Vec<f64> = (0..5000)
            .map(|_| {
                x = 0.8 * x + (rng.random::<f64>() - 0.5);
                x
            })
            .collect();
        let corrected = corrected_mean_variance(&xs).unwrap();
        let naive = crate::running::Running::from_samples(&xs).variance() / xs.len() as f64;
        assert!(
            corrected > 3.0 * naive,
            "corrected {corrected} should exceed naive {naive} several-fold"
        );
    }

    #[test]
    fn degenerate_inputs() {
        assert!(effective_sample_size(&[1.0, 2.0]).is_none());
        // constant series: autocorrelation undefined, rho sum 0 → ESS = n
        let ess = effective_sample_size(&[5.0; 10]).unwrap();
        assert_eq!(ess, 10.0);
    }

    #[test]
    fn ess_bounded_by_n() {
        // alternating series has negative lag-1 correlation; ESS is
        // clamped to at most n (the IPS estimator stops at the first
        // non-positive autocorrelation)
        let xs: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let ess = effective_sample_size(&xs).unwrap();
        assert!((1.0..=100.0).contains(&ess));
    }
}
