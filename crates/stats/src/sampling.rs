//! Poisson sampling of a time process, and sample-mean error helpers.
//!
//! Pitfall 1 of the paper: with `k` independent samples of the avail-bw
//! process, the variance of the sample mean is `Var[A_tau] / k`
//! (Equation 11) — so comparing tools that use different `k` or different
//! `tau` is meaningless. These helpers generate the Poisson sampling
//! instants used by the Figure 1 experiment and by Spruce's pair spacing.

use rand::{Rng, RngExt};

/// Draws an exponentially distributed variate with the given `mean` via
/// inverse-transform sampling.
///
/// Panics in debug builds when `mean` is not positive.
pub fn exp_variate<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    debug_assert!(mean > 0.0, "exponential mean must be positive");
    // u in (0, 1]: guard against ln(0).
    let u: f64 = 1.0 - rng.random::<f64>();
    -mean * u.ln()
}

/// Generates `k` Poisson (exponentially spaced) sampling instants inside
/// `[start, end)`, with mean gap `(end - start) / k`.
///
/// Instants that would fall beyond `end` wrap around to the beginning, so
/// exactly `k` instants are always returned (the process is assumed
/// stationary, so wrapping does not bias the sample). Returned instants are
/// not sorted.
pub fn poisson_instants<R: Rng + ?Sized>(rng: &mut R, start: f64, end: f64, k: usize) -> Vec<f64> {
    assert!(end > start, "empty sampling window");
    let span = end - start;
    let mean_gap = span / k as f64;
    let mut t = start + exp_variate(rng, mean_gap);
    let mut out = Vec::with_capacity(k);
    for _ in 0..k {
        while t >= end {
            t -= span;
        }
        out.push(t);
        t += exp_variate(rng, mean_gap);
    }
    out
}

/// Relative error `(estimate - truth) / truth`.
///
/// Returns NaN when `truth` is zero.
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    // exact-zero guard against division by zero; lint: allow(float_eq)
    if truth == 0.0 {
        f64::NAN
    } else {
        (estimate - truth) / truth
    }
}

/// Mean of the absolute relative errors of a set of estimates against a
/// single ground truth. Returns NaN for an empty set or zero truth.
pub fn mean_abs_relative_error(estimates: &[f64], truth: f64) -> f64 {
    // exact-zero guard against division by zero; lint: allow(float_eq)
    if estimates.is_empty() || truth == 0.0 {
        return f64::NAN;
    }
    estimates
        .iter()
        .map(|&e| relative_error(e, truth).abs())
        .sum::<f64>()
        / estimates.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exp_variate_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| exp_variate(&mut rng, 2.5)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.5).abs() < 0.02, "mean was {mean}");
    }

    #[test]
    fn exp_variate_positive() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(exp_variate(&mut rng, 0.001) > 0.0);
        }
    }

    #[test]
    fn instants_in_window() {
        let mut rng = StdRng::seed_from_u64(42);
        let pts = poisson_instants(&mut rng, 10.0, 20.0, 50);
        assert_eq!(pts.len(), 50);
        for &t in &pts {
            assert!((10.0..20.0).contains(&t), "instant {t} out of window");
        }
    }

    #[test]
    fn instants_cover_window() {
        // with many samples, instants should spread over the whole window
        let mut rng = StdRng::seed_from_u64(3);
        let pts = poisson_instants(&mut rng, 0.0, 1.0, 1000);
        let lo = pts.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = pts.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(lo < 0.05 && hi > 0.95);
    }

    #[test]
    fn relative_error_signs() {
        assert!((relative_error(12.0, 10.0) - 0.2).abs() < 1e-12);
        assert!((relative_error(8.0, 10.0) + 0.2).abs() < 1e-12);
        assert!(relative_error(1.0, 0.0).is_nan());
    }

    #[test]
    fn mean_abs_err() {
        let v = mean_abs_relative_error(&[11.0, 9.0], 10.0);
        assert!((v - 0.1).abs() < 1e-12);
        assert!(mean_abs_relative_error(&[], 10.0).is_nan());
    }
}
