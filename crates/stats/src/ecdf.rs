//! Empirical cumulative distribution functions.
//!
//! Figure 1 of the paper reports the CDF of the relative error of the
//! avail-bw sample mean at three averaging timescales; [`Ecdf`] is the
//! structure those experiment binaries print.

/// An empirical CDF over a finite sample.
///
/// Construction sorts the samples once; queries are `O(log n)`.
///
/// ```
/// use abw_stats::ecdf::Ecdf;
/// let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(e.cdf(2.5), 0.5);
/// assert_eq!(e.median(), Some(2.0));
/// ```
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from samples. NaN samples are dropped.
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.retain(|x| !x.is_nan());
        samples.sort_by(f64::total_cmp);
        Ecdf { sorted: samples }
    }

    /// Number of (non-NaN) samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the ECDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`, i.e. the fraction of samples less than or equal to `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // partition_point gives the count of samples <= x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`0 <= q <= 1`) using the nearest-rank method.
    ///
    /// Returns `None` on an empty sample or out-of-range `q`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        // exact q=0 picks the minimum by definition; lint: allow(float_eq)
        if q == 0.0 {
            return Some(self.sorted[0]);
        }
        let rank = (q * self.sorted.len() as f64).ceil() as usize;
        Some(self.sorted[rank.saturating_sub(1).min(self.sorted.len() - 1)])
    }

    /// Median (0.5-quantile).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// The sorted samples, e.g. for plotting the full CDF curve.
    pub fn sorted_samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Evaluates the CDF on an evenly spaced grid of `points` x-values
    /// spanning `[min, max]`; useful for printing figure series.
    ///
    /// Returns an empty vector when there are no samples or `points < 2`.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points < 2 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = self.sorted[self.sorted.len() - 1];
        let step = (hi - lo) / (points - 1) as f64;
        (0..points)
            .map(|i| {
                let x = lo + step * i as f64;
                (x, self.cdf(x))
            })
            .collect()
    }

    /// Fraction of samples whose absolute value exceeds `threshold`.
    ///
    /// Used for statements like "the probability that the relative error
    /// exceeds 5%".
    pub fn fraction_abs_above(&self, threshold: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.iter().filter(|&&x| x.abs() > threshold).count();
        n as f64 / self.sorted.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_steps() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.5), 0.5);
        assert_eq!(e.cdf(4.0), 1.0);
        assert_eq!(e.cdf(100.0), 1.0);
    }

    #[test]
    fn quantiles() {
        let e = Ecdf::new(vec![5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(e.quantile(0.0), Some(1.0));
        assert_eq!(e.median(), Some(3.0));
        assert_eq!(e.quantile(1.0), Some(5.0));
        assert_eq!(e.quantile(1.5), None);
    }

    #[test]
    fn nan_dropped() {
        let e = Ecdf::new(vec![f64::NAN, 1.0, 2.0]);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn empty() {
        let e = Ecdf::new(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.cdf(1.0), 0.0);
        assert_eq!(e.median(), None);
        assert!(e.curve(10).is_empty());
    }

    #[test]
    fn fraction_above() {
        let e = Ecdf::new(vec![-0.2, -0.01, 0.0, 0.03, 0.5]);
        assert!((e.fraction_abs_above(0.05) - 0.4).abs() < 1e-12);
        assert_eq!(e.fraction_abs_above(1.0), 0.0);
    }

    #[test]
    fn curve_is_monotone() {
        let e = Ecdf::new((0..50).map(|i| ((i * 37) % 17) as f64).collect());
        let c = e.curve(33);
        assert_eq!(c.len(), 33);
        for w in c.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF must be non-decreasing");
            assert!(w[1].0 >= w[0].0);
        }
        assert_eq!(c.last().unwrap().1, 1.0);
    }
}
