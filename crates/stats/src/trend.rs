//! One-way-delay (OWD) trend statistics.
//!
//! Implements the Pairwise Comparison Test (PCT) and Pairwise Difference Test
//! (PDT) used by Pathload (Jain & Dovrolis, ToN 2003) to decide whether the
//! OWDs of a probing stream have an increasing trend — i.e. whether the
//! probing rate exceeded the avail-bw.
//!
//! The paper's Fallacy 8 ("increasing OWDs is equivalent to `Ro < Ri`") is
//! demonstrated with exactly these statistics: a stream can have `Ro < Ri`
//! because of a single cross-traffic burst while PCT/PDT correctly report *no
//! trend* (Figure 5).

/// Outcome of a trend test on an OWD series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrendVerdict {
    /// The OWDs show a clear increasing trend (probing rate above avail-bw).
    Increasing,
    /// The OWDs show no increasing trend (probing rate at or below avail-bw).
    NoTrend,
    /// The statistics disagree or fall between thresholds.
    Ambiguous,
}

/// Pairwise Comparison Test statistic.
///
/// Fraction of consecutive OWD pairs that are strictly increasing. For an
/// independent series the expectation is 0.5; for a strongly increasing
/// series it approaches 1.
///
/// Returns 0.5 (the "no information" value) for series shorter than 2.
pub fn pct(owds: &[f64]) -> f64 {
    if owds.len() < 2 {
        return 0.5;
    }
    let inc = owds.windows(2).filter(|w| w[1] > w[0]).count();
    inc as f64 / (owds.len() - 1) as f64
}

/// Pairwise Difference Test statistic.
///
/// Net OWD change normalised by total variation:
/// `(D_n - D_1) / sum |D_{k+1} - D_k|`, in `[-1, 1]`. A monotonically
/// increasing series gives exactly 1; an independent series gives ~0.
///
/// Returns 0.0 for series shorter than 2 or with zero total variation.
pub fn pdt(owds: &[f64]) -> f64 {
    if owds.len() < 2 {
        return 0.0;
    }
    let total_variation: f64 = owds.windows(2).map(|w| (w[1] - w[0]).abs()).sum();
    // exact-zero guard against division by zero; lint: allow(float_eq)
    if total_variation == 0.0 {
        return 0.0;
    }
    // mathematically in [-1, 1]; clamp away float-rounding excursions
    ((owds[owds.len() - 1] - owds[0]) / total_variation).clamp(-1.0, 1.0)
}

/// Pathload's full trend analysis: group-median robustification followed by
/// PCT/PDT with the thresholds from the Pathload paper.
///
/// ```
/// use abw_stats::trend::{TrendAnalyzer, TrendVerdict};
/// let analyzer = TrendAnalyzer::default();
/// let increasing: Vec<f64> = (0..100).map(|i| i as f64 * 1e-5).collect();
/// assert_eq!(analyzer.classify(&increasing), TrendVerdict::Increasing);
/// ```
#[derive(Debug, Clone)]
pub struct TrendAnalyzer {
    /// PCT above this ⇒ increasing (Pathload uses 0.66).
    pub pct_increasing: f64,
    /// PCT below this ⇒ no trend (Pathload uses 0.54).
    pub pct_no_trend: f64,
    /// PDT above this ⇒ increasing (Pathload uses 0.55).
    pub pdt_increasing: f64,
    /// PDT below this ⇒ no trend (Pathload uses 0.45).
    pub pdt_no_trend: f64,
}

impl Default for TrendAnalyzer {
    fn default() -> Self {
        TrendAnalyzer {
            pct_increasing: 0.66,
            pct_no_trend: 0.54,
            pdt_increasing: 0.55,
            pdt_no_trend: 0.45,
        }
    }
}

impl TrendAnalyzer {
    /// Reduces a raw OWD series to `ceil(sqrt(n))` group medians.
    ///
    /// Pathload applies PCT/PDT to group medians rather than raw OWDs to
    /// filter out per-packet measurement noise.
    pub fn group_medians(&self, owds: &[f64]) -> Vec<f64> {
        let n = owds.len();
        if n == 0 {
            return Vec::new();
        }
        let group = (n as f64).sqrt().round().max(1.0) as usize;
        owds.chunks(group).map(median).collect()
    }

    /// Classifies an OWD series.
    ///
    /// Each of PCT and PDT votes `Increasing` / `NoTrend` / abstains; the
    /// verdicts combine as in Pathload: if either test says `Increasing` and
    /// the other does not say `NoTrend`, the stream is `Increasing`;
    /// symmetrically for `NoTrend`; anything else is `Ambiguous`.
    pub fn classify(&self, owds: &[f64]) -> TrendVerdict {
        let medians = self.group_medians(owds);
        if medians.len() < 3 {
            return TrendVerdict::Ambiguous;
        }
        let s_pct = pct(&medians);
        let s_pdt = pdt(&medians);

        let v_pct = if s_pct > self.pct_increasing {
            TrendVerdict::Increasing
        } else if s_pct < self.pct_no_trend {
            TrendVerdict::NoTrend
        } else {
            TrendVerdict::Ambiguous
        };
        let v_pdt = if s_pdt > self.pdt_increasing {
            TrendVerdict::Increasing
        } else if s_pdt < self.pdt_no_trend {
            TrendVerdict::NoTrend
        } else {
            TrendVerdict::Ambiguous
        };

        use TrendVerdict::*;
        match (v_pct, v_pdt) {
            (Increasing, Increasing) => Increasing,
            (NoTrend, NoTrend) => NoTrend,
            (Increasing, Ambiguous) | (Ambiguous, Increasing) => Increasing,
            (NoTrend, Ambiguous) | (Ambiguous, NoTrend) => NoTrend,
            _ => Ambiguous,
        }
    }

    /// Returns the raw (PCT, PDT) pair on group medians, for reporting.
    pub fn statistics(&self, owds: &[f64]) -> (f64, f64) {
        let medians = self.group_medians(owds);
        (pct(&medians), pdt(&medians))
    }
}

/// Median of a non-empty slice (averaging the two central order statistics
/// for even lengths). Returns NaN on empty input.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v = xs.to_vec();
    // total_cmp: a stray NaN sorts to the end instead of aborting the
    // whole experiment run
    v.sort_by(f64::total_cmp);
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn increasing_series(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64 * 0.5).collect()
    }

    /// Deterministic pseudo-noise series with no trend.
    fn flat_series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| 100.0 + ((i as u64 * 2654435761) % 17) as f64)
            .collect()
    }

    #[test]
    fn pct_extremes() {
        assert_eq!(pct(&increasing_series(50)), 1.0);
        let dec: Vec<f64> = (0..50).map(|i| -(i as f64)).collect();
        assert_eq!(pct(&dec), 0.0);
        assert_eq!(pct(&[1.0]), 0.5);
    }

    #[test]
    fn pdt_extremes() {
        assert!((pdt(&increasing_series(50)) - 1.0).abs() < 1e-12);
        let dec: Vec<f64> = (0..50).map(|i| -(i as f64)).collect();
        assert!((pdt(&dec) + 1.0).abs() < 1e-12);
        assert_eq!(pdt(&[3.0, 3.0, 3.0]), 0.0);
        assert_eq!(pdt(&[]), 0.0);
    }

    #[test]
    fn pdt_bounded() {
        let s = flat_series(101);
        let v = pdt(&s);
        assert!((-1.0..=1.0).contains(&v));
    }

    #[test]
    fn classify_increasing() {
        let a = TrendAnalyzer::default();
        assert_eq!(
            a.classify(&increasing_series(100)),
            TrendVerdict::Increasing
        );
    }

    #[test]
    fn classify_no_trend() {
        let a = TrendAnalyzer::default();
        assert_eq!(a.classify(&flat_series(100)), TrendVerdict::NoTrend);
    }

    #[test]
    fn classify_noisy_increasing() {
        // increasing trend + bounded noise: medians should still rise
        let s: Vec<f64> = (0..160)
            .map(|i| i as f64 * 0.3 + ((i as u64 * 2654435761) % 13) as f64)
            .collect();
        let a = TrendAnalyzer::default();
        assert_eq!(a.classify(&s), TrendVerdict::Increasing);
    }

    #[test]
    fn short_series_is_ambiguous() {
        let a = TrendAnalyzer::default();
        assert_eq!(a.classify(&[1.0, 2.0]), TrendVerdict::Ambiguous);
        assert_eq!(a.classify(&[]), TrendVerdict::Ambiguous);
    }

    #[test]
    fn trailing_burst_is_not_a_trend() {
        // Fallacy 8, Figure 5: flat OWDs with a jump in the last few packets.
        let mut s = flat_series(144);
        for (j, x) in s.iter_mut().rev().take(4).enumerate() {
            *x += 40.0 + j as f64;
        }
        let a = TrendAnalyzer::default();
        assert_eq!(a.classify(&s), TrendVerdict::NoTrend);
    }

    #[test]
    fn median_basics() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(median(&[]).is_nan());
    }

    #[test]
    fn group_medians_length() {
        let a = TrendAnalyzer::default();
        assert_eq!(a.group_medians(&increasing_series(100)).len(), 10);
        assert!(a.group_medians(&[]).is_empty());
        assert_eq!(a.group_medians(&[7.0]), vec![7.0]);
    }
}
