//! # abw-stats
//!
//! Statistics substrate for end-to-end available bandwidth (avail-bw)
//! estimation, as required by the experiments in *"Ten Fallacies and Pitfalls
//! on End-to-End Available Bandwidth Estimation"* (Jain & Dovrolis, IMC 2004).
//!
//! The paper's central statistical points are:
//!
//! * the avail-bw is a **random process** `A_tau(t)` whose variance depends on
//!   the averaging timescale `tau` ([`timescale`]),
//! * a finite number of samples gives a **sample mean** whose error is
//!   governed by the population variance ([`running`], [`sampling`]),
//! * one-way-delay (OWD) series carry more information than the single
//!   `Ro/Ri` ratio, and can be analysed with **trend statistics** ([`trend`]).
//!
//! Everything in this crate is deterministic given an RNG and allocation-light;
//! it has no dependency on the simulator so it can be reused on real
//! measurement data.

pub mod autocorr;
pub mod ecdf;
pub mod ess;
pub mod histogram;
pub mod hurst;
pub mod regression;
pub mod running;
pub mod sampling;
pub mod timescale;
pub mod trend;

pub use ecdf::Ecdf;
pub use ess::{corrected_mean_variance, effective_sample_size};
pub use histogram::Histogram;
pub use regression::{linear_fit, LinearFit};
pub use running::{Running, Summary};
pub use sampling::{poisson_instants, relative_error};
pub use trend::{pct, pdt, TrendAnalyzer, TrendVerdict};
