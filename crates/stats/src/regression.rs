//! Ordinary least squares line fitting.
//!
//! Used by TOPP's turning-point search (regression of `Ri/Ro` against `Ri`),
//! by the variance-time Hurst estimator, and by OWD trend slope estimation.

/// Result of a least-squares line fit `y = slope * x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r2: f64,
    /// Number of points used.
    pub n: usize,
}

impl LinearFit {
    /// Evaluates the fitted line at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Fits `y = a*x + b` by ordinary least squares.
///
/// Returns `None` when fewer than two points are given, when the slices have
/// different lengths, or when all `x` are identical (vertical line).
pub fn linear_fit(x: &[f64], y: &[f64]) -> Option<LinearFit> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mean_x = x.iter().sum::<f64>() / n;
    let mean_y = y.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        let dx = xi - mean_x;
        let dy = yi - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    // exact-zero guards: degenerate (vertical / constant) inputs, not
    // tolerance checks; lint: allow(float_eq)
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    // lint: allow(float_eq)
    let r2 = if syy == 0.0 {
        1.0 // all y equal: the horizontal fit is exact
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(LinearFit {
        slope,
        intercept,
        r2,
        n: x.len(),
    })
}

/// Fits a line to `(index, y)` pairs, i.e. `x = 0, 1, 2, ...`.
///
/// Convenience for OWD series, where the x axis is the packet number.
pub fn linear_fit_indexed(y: &[f64]) -> Option<LinearFit> {
    let x: Vec<f64> = (0..y.len()).map(|i| i as f64).collect();
    linear_fit(&x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [1.0, 3.0, 5.0, 7.0];
        let f = linear_fit(&x, &y).unwrap();
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 1.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
        assert!((f.predict(10.0) - 21.0).abs() < 1e-12);
    }

    #[test]
    fn horizontal_line() {
        let f = linear_fit(&[0.0, 1.0, 2.0], &[4.0, 4.0, 4.0]).unwrap();
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.intercept, 4.0);
        assert_eq!(f.r2, 1.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
        assert!(linear_fit(&[1.0, 1.0], &[2.0, 3.0]).is_none());
        assert!(linear_fit(&[1.0, 2.0], &[2.0]).is_none());
    }

    #[test]
    fn noisy_fit_reasonable() {
        // y = 0.5x + 2 with deterministic "noise"
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&xi| 0.5 * xi + 2.0 + 0.3 * (xi * 1.7).sin())
            .collect();
        let f = linear_fit(&x, &y).unwrap();
        assert!((f.slope - 0.5).abs() < 0.01);
        assert!(f.r2 > 0.99);
    }

    #[test]
    fn indexed_matches_explicit() {
        let y = [2.0, 2.5, 3.1, 3.4];
        let a = linear_fit_indexed(&y).unwrap();
        let b = linear_fit(&[0.0, 1.0, 2.0, 3.0], &y).unwrap();
        assert_eq!(a, b);
    }
}
