//! Hurst parameter estimation.
//!
//! The synthetic trace substrate (standing in for the paper's NLANR trace)
//! should exhibit long-range dependence; these estimators verify that, and
//! let experiments report how close the trace's variance decay is to
//! Equation 5's self-similar law.

use crate::regression::linear_fit;
use crate::timescale::variance_time;

/// Estimates the Hurst parameter with the variance-time method.
///
/// Fits `log Var[A^{(k)}]` against `log k` over the given aggregation
/// levels; the slope `s` relates to Hurst via `H = 1 + s/2` (Equation 5).
/// Returns `None` when fewer than 3 levels produce a variance, or when a
/// level's variance is zero (log undefined).
pub fn variance_time_hurst(series: &[f64], levels: &[usize]) -> Option<f64> {
    let vt = variance_time(series, levels);
    if vt.len() < 3 {
        return None;
    }
    let mut xs = Vec::with_capacity(vt.len());
    let mut ys = Vec::with_capacity(vt.len());
    for (k, v) in vt {
        if v <= 0.0 {
            return None;
        }
        xs.push((k as f64).ln());
        ys.push(v.ln());
    }
    let fit = linear_fit(&xs, &ys)?;
    Some(1.0 + fit.slope / 2.0)
}

/// Estimates the Hurst parameter with the rescaled-range (R/S) method.
///
/// Computes `E[R/S]` over blocks of each size in `block_sizes` and fits
/// `log(R/S)` against `log(block size)`; the slope is the Hurst estimate.
/// Returns `None` when fewer than 3 block sizes are usable.
pub fn rescaled_range_hurst(series: &[f64], block_sizes: &[usize]) -> Option<f64> {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &n in block_sizes {
        if n < 4 || n > series.len() {
            continue;
        }
        let mut rs_values = Vec::new();
        for block in series.chunks_exact(n) {
            if let Some(rs) = rescaled_range(block) {
                rs_values.push(rs);
            }
        }
        if rs_values.is_empty() {
            continue;
        }
        let mean_rs = rs_values.iter().sum::<f64>() / rs_values.len() as f64;
        if mean_rs <= 0.0 {
            continue;
        }
        xs.push((n as f64).ln());
        ys.push(mean_rs.ln());
    }
    if xs.len() < 3 {
        return None;
    }
    linear_fit(&xs, &ys).map(|f| f.slope)
}

/// R/S statistic of one block: range of the mean-adjusted cumulative sum
/// divided by the block standard deviation. `None` when the deviation is 0.
fn rescaled_range(block: &[f64]) -> Option<f64> {
    let n = block.len() as f64;
    let mean = block.iter().sum::<f64>() / n;
    let mut cum = 0.0;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut var = 0.0;
    for &x in block {
        cum += x - mean;
        min = min.min(cum);
        max = max.max(cum);
        var += (x - mean) * (x - mean);
    }
    let sd = (var / n).sqrt();
    // exact-zero stddev = constant block; lint: allow(float_eq)
    if sd == 0.0 {
        None
    } else {
        Some((max - min) / sd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn white_noise(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.random::<f64>() - 0.5).collect()
    }

    #[test]
    fn white_noise_hurst_near_half() {
        let s = white_noise(1 << 16, 9);
        let h = variance_time_hurst(&s, &[1, 2, 4, 8, 16, 32, 64, 128]).unwrap();
        assert!((h - 0.5).abs() < 0.1, "H = {h}");
    }

    #[test]
    fn rs_white_noise_near_half() {
        let s = white_noise(1 << 15, 21);
        let h = rescaled_range_hurst(&s, &[16, 32, 64, 128, 256, 512]).unwrap();
        // R/S is biased upward on short blocks; accept a loose band
        assert!((0.4..0.75).contains(&h), "H = {h}");
    }

    #[test]
    fn persistent_series_has_high_hurst() {
        // A random walk's increments aggregated with strong positive
        // correlation: x_t = 0.95 x_{t-1} + noise gives slowly decaying
        // variance, i.e. a variance-time H well above 0.5.
        let mut rng = StdRng::seed_from_u64(4);
        let mut x = 0.0;
        let s: Vec<f64> = (0..(1 << 16))
            .map(|_| {
                x = 0.95 * x + (rng.random::<f64>() - 0.5);
                x
            })
            .collect();
        let h = variance_time_hurst(&s, &[1, 2, 4, 8, 16]).unwrap();
        assert!(h > 0.8, "H = {h}");
    }

    #[test]
    fn degenerate_inputs() {
        assert!(variance_time_hurst(&[1.0, 2.0], &[1, 2, 4]).is_none());
        let constant = vec![5.0; 1024];
        assert!(variance_time_hurst(&constant, &[1, 2, 4, 8]).is_none());
        assert!(rescaled_range_hurst(&constant, &[8, 16, 32]).is_none());
    }
}
