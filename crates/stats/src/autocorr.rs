//! Autocovariance and autocorrelation of a sampled process.
//!
//! The rate at which `Var[A_tau]` decays with `tau` is set by the
//! correlation structure of the avail-bw process (paper §1); these helpers
//! let experiments and the trace substrate report that structure directly.

/// Sample autocovariance at the given lag (biased, `1/n` normalisation).
///
/// Returns `None` when the lag leaves fewer than 2 overlapping points.
pub fn autocovariance(series: &[f64], lag: usize) -> Option<f64> {
    let n = series.len();
    if lag + 2 > n {
        return None;
    }
    let mean = series.iter().sum::<f64>() / n as f64;
    let sum: f64 = series[..n - lag]
        .iter()
        .zip(&series[lag..])
        .map(|(&a, &b)| (a - mean) * (b - mean))
        .sum();
    Some(sum / n as f64)
}

/// Sample autocorrelation at the given lag, in `[-1, 1]`.
///
/// Returns `None` for degenerate inputs (constant series or too-large lag).
pub fn autocorrelation(series: &[f64], lag: usize) -> Option<f64> {
    let c0 = autocovariance(series, 0)?;
    // exact-zero variance = constant series; lint: allow(float_eq)
    if c0 == 0.0 {
        return None;
    }
    Some(autocovariance(series, lag)? / c0)
}

/// Autocorrelation function for lags `0..=max_lag` (shorter if the series
/// runs out).
pub fn acf(series: &[f64], max_lag: usize) -> Vec<f64> {
    (0..=max_lag)
        .map_while(|lag| autocorrelation(series, lag))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn lag_zero_is_one() {
        let s = [1.0, 2.0, 3.0, 2.0, 1.0];
        assert!((autocorrelation(&s, 0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn white_noise_uncorrelated() {
        let mut rng = StdRng::seed_from_u64(2);
        let s: Vec<f64> = (0..100_000).map(|_| rng.random::<f64>()).collect();
        for lag in [1, 5, 20] {
            let r = autocorrelation(&s, lag).unwrap();
            assert!(r.abs() < 0.02, "lag {lag}: {r}");
        }
    }

    #[test]
    fn ar1_has_geometric_acf() {
        let mut rng = StdRng::seed_from_u64(8);
        let phi = 0.8;
        let mut x = 0.0;
        let s: Vec<f64> = (0..200_000)
            .map(|_| {
                x = phi * x + (rng.random::<f64>() - 0.5);
                x
            })
            .collect();
        let r1 = autocorrelation(&s, 1).unwrap();
        let r2 = autocorrelation(&s, 2).unwrap();
        assert!((r1 - phi).abs() < 0.02, "r1 = {r1}");
        assert!((r2 - phi * phi).abs() < 0.03, "r2 = {r2}");
    }

    #[test]
    fn degenerate() {
        assert!(autocovariance(&[1.0], 0).is_none());
        assert!(autocorrelation(&[3.0, 3.0, 3.0], 1).is_none());
        assert!(autocorrelation(&[1.0, 2.0], 5).is_none());
    }

    #[test]
    fn acf_truncates() {
        let s = [1.0, 2.0, 1.5, 2.5];
        let a = acf(&s, 10);
        assert!(a.len() <= 4);
        assert!((a[0] - 1.0).abs() < 1e-12);
    }
}
