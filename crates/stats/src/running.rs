//! Running (streaming) moment estimators.
//!
//! Uses Welford's algorithm so that long simulation runs do not lose
//! precision to catastrophic cancellation, which matters when measuring
//! the small `Ro/Ri` deviations of Figures 3 and 4.

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
///
/// ```
/// use abw_stats::running::Running;
/// let mut r = Running::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     r.push(x);
/// }
/// assert_eq!(r.mean(), 5.0);
/// assert_eq!(r.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Running {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds an accumulator from a slice of samples.
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut r = Running::new();
        for &x in samples {
            r.push(x);
        }
        r
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Running) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (n-1 denominator); 0 with fewer than 2 samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population variance (n denominator); 0 when empty.
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Unbiased sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum sample; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum sample; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Coefficient of variation (stddev / mean); 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        // exact-zero guard against division by zero; lint: allow(float_eq)
        if self.mean() == 0.0 {
            0.0
        } else {
            self.stddev() / self.mean().abs()
        }
    }

    /// Snapshot of the accumulated statistics.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count(),
            mean: self.mean(),
            variance: self.variance(),
            stddev: self.stddev(),
            min: self.min(),
            max: self.max(),
        }
    }
}

/// Immutable snapshot of a [`Running`] accumulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample variance.
    pub variance: f64,
    /// Unbiased sample standard deviation.
    pub stddev: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        let r = Running::new();
        assert_eq!(r.count(), 0);
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.variance(), 0.0);
    }

    #[test]
    fn single_sample() {
        let mut r = Running::new();
        r.push(5.0);
        assert_eq!(r.mean(), 5.0);
        assert_eq!(r.variance(), 0.0);
        assert_eq!(r.min(), 5.0);
        assert_eq!(r.max(), 5.0);
    }

    #[test]
    fn known_variance() {
        let r = Running::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((r.mean() - 5.0).abs() < 1e-12);
        // population variance of this classic set is 4.0
        assert!((r.population_variance() - 4.0).abs() < 1e-12);
        assert!((r.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_sequential() {
        let all: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let seq = Running::from_samples(&all);
        let mut a = Running::from_samples(&all[..37]);
        let b = Running::from_samples(&all[37..]);
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-10);
        assert!((a.variance() - seq.variance()).abs() < 1e-9);
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = Running::from_samples(&[1.0, 2.0]);
        let before = a.summary();
        a.merge(&Running::new());
        assert_eq!(a.summary(), before);

        let mut e = Running::new();
        e.merge(&Running::from_samples(&[1.0, 2.0]));
        assert_eq!(e.count(), 2);
        assert!((e.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn cv_of_constant_is_zero() {
        let r = Running::from_samples(&[3.0, 3.0, 3.0]);
        assert_eq!(r.cv(), 0.0);
    }
}
