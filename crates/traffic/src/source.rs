//! Driving an [`ArrivalProcess`] onto a path.

use abw_netsim::{
    packet_to, Agent, AgentId, Ctx, FlowId, FluidRoute, FluidSource, FluidStep, PacketKind, PathId,
    SimDuration, SimTime, Simulator,
};

use crate::process::{ArrivalProcess, ParetoOnOff};

/// Draws buffered ahead per refill: one dynamic dispatch and one
/// buffer-management pass amortise over this many arrivals.
const DRAW_BATCH: usize = 64;

/// A simulator agent that injects the packets of an [`ArrivalProcess`]
/// down a path until an optional stop time.
///
/// Cross traffic in the paper's multi-hop experiments is *one-hop
/// persistent*: it enters at link `i` and exits at link `i+1`, which in
/// this simulator is simply a source whose path contains only link `i`.
pub struct SourceAgent {
    process: Box<dyn ArrivalProcess>,
    path: PathId,
    dst: AgentId,
    flow: FlowId,
    stop_at: Option<SimTime>,
    /// Pre-drawn `(gap, size)` pairs (see [`ArrivalProcess::next_arrivals`]);
    /// buffering changes *when* draws happen, never their values or order,
    /// so the emitted packet stream is bit-identical to unbuffered draws.
    draws: Vec<(SimDuration, u32)>,
    /// Next unconsumed index into `draws`.
    draws_next: usize,
    /// Packets injected so far.
    pub sent_packets: u64,
    /// Bytes injected so far.
    pub sent_bytes: u64,
}

impl SourceAgent {
    /// Creates a source that runs from the simulation start until stopped.
    pub fn new(process: Box<dyn ArrivalProcess>, path: PathId, dst: AgentId, flow: FlowId) -> Self {
        SourceAgent {
            process,
            path,
            dst,
            flow,
            stop_at: None,
            draws: Vec::new(),
            draws_next: 0,
            sent_packets: 0,
            sent_bytes: 0,
        }
    }

    /// Stops injecting at the given simulated time.
    pub fn with_stop_at(mut self, t: SimTime) -> Self {
        self.stop_at = Some(t);
        self
    }

    /// Retunes the process's mean rate mid-simulation (see
    /// [`ArrivalProcess::set_rate_bps`]); already-scheduled arrivals and
    /// the up-to-`DRAW_BATCH` (64) pre-drawn gaps in the buffer are
    /// unaffected — the new rate takes full effect within at most one
    /// draw batch. The tracking experiments measure convergence with a
    /// tolerance that absorbs this latency.
    pub fn set_rate_bps(&mut self, rate_bps: f64) -> bool {
        self.process.set_rate_bps(rate_bps)
    }

    /// Empirical mean rate injected so far, given the elapsed time.
    pub fn injected_rate_bps(&self, elapsed: SimDuration) -> f64 {
        if elapsed == SimDuration::ZERO {
            return 0.0;
        }
        self.sent_bytes as f64 * 8.0 / elapsed.as_secs_f64()
    }

    /// The next `(gap, size)` draw, through the batch buffer.
    #[inline]
    fn next_draw(&mut self) -> (SimDuration, u32) {
        if self.draws_next == self.draws.len() {
            self.draws.clear();
            self.draws_next = 0;
            self.process.next_arrivals(&mut self.draws, DRAW_BATCH);
        }
        let d = self.draws[self.draws_next];
        self.draws_next += 1;
        d
    }
}

impl Agent for SourceAgent {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // The first packet arrives after one gap: sources started together
        // do not emit a synchronised burst at t = 0.
        let (gap, _) = self.next_draw();
        ctx.schedule_in(gap, 0);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        // one code path for both the event loop and the fluid window
        match self.fluid_step(ctx.now()) {
            FluidStep::Stop => {}
            FluidStep::Send { gap, size, seq } => {
                let p = packet_to(self.dst, self.path, self.flow, size, seq, PacketKind::Data);
                ctx.send(p);
                ctx.schedule_in(gap, 0);
            }
        }
    }

    fn fluid_source(&mut self) -> Option<&mut dyn FluidSource> {
        Some(self)
    }
}

impl FluidSource for SourceAgent {
    fn fluid_route(&self) -> FluidRoute {
        FluidRoute {
            path: self.path,
            dst: self.dst,
            flow: self.flow,
            kind: PacketKind::Data,
        }
    }

    fn fluid_step(&mut self, now: SimTime) -> FluidStep {
        if let Some(stop) = self.stop_at {
            if now >= stop {
                return FluidStep::Stop;
            }
        }
        // send one packet now, draw the next gap
        let (next_gap, size) = self.next_draw();
        let seq = self.sent_packets;
        self.sent_packets += 1;
        self.sent_bytes += size as u64;
        FluidStep::Send {
            gap: next_gap,
            size,
            seq,
        }
    }
}

/// Adds `n` Pareto ON-OFF sources whose rates sum to `total_rate_bps`,
/// all feeding `path` towards `dst`. Aggregated heavy-tailed ON-OFF
/// sources yield long-range-dependent traffic — the model behind the
/// synthetic NLANR-substitute trace.
///
/// Returns the created agent ids. Flows are numbered `flow_base + i`.
#[allow(clippy::too_many_arguments)]
pub fn spawn_aggregate(
    sim: &mut Simulator,
    n: usize,
    total_rate_bps: f64,
    peak_rate_bps: f64,
    packet_size: u32,
    path: PathId,
    dst: AgentId,
    flow_base: u32,
    seed: u64,
) -> Vec<AgentId> {
    assert!(n > 0, "aggregate needs at least one source");
    let per_source = total_rate_bps / n as f64;
    (0..n)
        .map(|i| {
            let process = ParetoOnOff::new(
                per_source,
                peak_rate_bps,
                packet_size,
                seed.wrapping_add(i as u64).wrapping_mul(0x9E3779B97F4A7C15),
            );
            sim.add_agent(Box::new(SourceAgent::new(
                Box::new(process),
                path,
                dst,
                FlowId(flow_base + i as u32),
            )))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{Cbr, PoissonProcess};
    use crate::sizes::SizeDist;
    use abw_netsim::{CountingSink, LinkConfig};

    fn build(capacity_bps: f64) -> (Simulator, PathId, AgentId) {
        let mut sim = Simulator::new();
        let link = sim.add_link(LinkConfig::new(capacity_bps, SimDuration::ZERO));
        let path = sim.add_path(vec![link]);
        let sink = sim.add_agent(Box::new(CountingSink::new()));
        (sim, path, sink)
    }

    #[test]
    fn cbr_source_delivers_at_rate() {
        let (mut sim, path, sink) = build(100e6);
        sim.add_agent(Box::new(SourceAgent::new(
            Box::new(Cbr::new(10e6, 1250)),
            path,
            sink,
            FlowId(1),
        )));
        sim.run_until(SimTime::from_nanos(2_000_000_000));
        let s: &CountingSink = sim.agent(sink);
        // 10 Mb/s for 2 s = 2.5 MB; first packet delayed one gap (1 ms)
        let expected = 2_500_000.0;
        let got = s.bytes as f64;
        assert!(
            (got - expected).abs() / expected < 0.01,
            "delivered {got} bytes"
        );
    }

    #[test]
    fn source_respects_stop_time() {
        let (mut sim, path, sink) = build(100e6);
        let stop = SimTime::from_nanos(500_000_000);
        sim.add_agent(Box::new(
            SourceAgent::new(Box::new(Cbr::new(10e6, 1250)), path, sink, FlowId(1))
                .with_stop_at(stop),
        ));
        sim.run_until(SimTime::from_nanos(2_000_000_000));
        let s: &CountingSink = sim.agent(sink);
        let expected = 10e6 * 0.5 / 8.0;
        let got = s.bytes as f64;
        assert!(
            (got - expected).abs() / expected < 0.02,
            "delivered {got} bytes"
        );
        assert!(s.last_arrival.unwrap() <= stop + SimDuration::from_millis(1));
    }

    #[test]
    fn poisson_source_utilisation_matches() {
        let (mut sim, path, sink) = build(50e6);
        sim.add_agent(Box::new(SourceAgent::new(
            Box::new(PoissonProcess::new(25e6, SizeDist::Constant(1500), 4)),
            path,
            sink,
            FlowId(1),
        )));
        sim.run_until(SimTime::from_nanos(20_000_000_000));
        let link = sim.link(abw_netsim::LinkId(0));
        let busy = link.busy_log().total_busy().as_secs_f64();
        let util = busy / 20.0;
        assert!((util - 0.5).abs() < 0.02, "utilisation {util}");
    }

    /// Runs one Poisson-over-bottleneck scenario and returns every
    /// observable the fluid fast-forward path could plausibly disturb.
    fn run_observables(
        fluid: bool,
    ) -> (
        u64,
        u64,
        Option<SimTime>,
        Option<SimTime>,
        u64,
        u64,
        u64,
        u64,
        u64,
    ) {
        let mut sim = Simulator::new();
        sim.set_fluid(fluid);
        // 60 Mb/s offered into a 50 Mb/s link with a tight queue: the
        // window must reproduce drop-tail decisions, not just timings
        let link = sim
            .add_link(LinkConfig::new(50e6, SimDuration::from_millis(1)).with_queue_bytes(15_000));
        let path = sim.add_path(vec![link]);
        let sink = sim.add_agent(Box::new(CountingSink::new()));
        let src = sim.add_agent(Box::new(
            SourceAgent::new(
                Box::new(PoissonProcess::new(60e6, SizeDist::Constant(1500), 7)),
                path,
                sink,
                FlowId(1),
            )
            .with_stop_at(SimTime::from_nanos(1_600_000_000)),
        ));
        // chunked run: windows must close at each deadline and
        // materialise their pending virtual events exactly
        for i in 1..=8 {
            sim.run_until(SimTime::from_nanos(i * 250_000_000));
            if i == 3 {
                // retune mid-run: the draw buffer persists across it
                sim.agent_mut::<SourceAgent>(src).set_rate_bps(30e6);
            }
        }
        sim.run_to_quiescence();
        let s: &CountingSink = sim.agent(sink);
        let l = sim.link(abw_netsim::LinkId(0));
        let c = sim.counters();
        (
            s.packets,
            s.bytes,
            s.first_arrival,
            s.last_arrival,
            c.injected,
            c.delivered,
            l.counters().dropped_pkts,
            l.busy_log().total_busy().as_nanos(),
            l.peak_queue_pkts(),
        )
    }

    #[test]
    fn fluid_fast_forward_is_bit_identical_to_event_loop() {
        abw_netsim::invariants::arm();
        assert_eq!(run_observables(true), run_observables(false));
    }

    #[test]
    fn aggregate_spawns_and_sums_to_rate() {
        let (mut sim, path, sink) = build(155.52e6);
        let ids = spawn_aggregate(&mut sim, 16, 70e6, 155.52e6, 1500, path, sink, 10, 99);
        assert_eq!(ids.len(), 16);
        sim.run_until(SimTime::from_nanos(30_000_000_000));
        let s: &CountingSink = sim.agent(sink);
        let rate = s.bytes as f64 * 8.0 / 30.0;
        assert!((rate - 70e6).abs() / 70e6 < 0.08, "aggregate rate {rate}");
    }
}
