//! Trace replay: drive the simulator with a recorded `(gap, size)`
//! sequence.
//!
//! The paper's closing section asks for tool evaluation "under
//! reproducible and controllable conditions"; replaying one recorded
//! arrival sequence against every tool is the strongest form of that —
//! identical cross traffic down to the packet, no sampling noise between
//! candidates. [`RecordedTrace`] captures a sequence from any
//! [`ArrivalProcess`] (or from external data), and [`Replay`] plays it
//! back, optionally looping.

use abw_netsim::SimDuration;

use crate::process::ArrivalProcess;

/// A recorded arrival sequence: parallel gaps and sizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedTrace {
    gaps: Vec<SimDuration>,
    sizes: Vec<u32>,
}

impl RecordedTrace {
    /// Builds a trace from explicit `(gap, size)` pairs.
    ///
    /// Panics on an empty sequence or a zero-sized packet.
    pub fn new(arrivals: Vec<(SimDuration, u32)>) -> Self {
        assert!(!arrivals.is_empty(), "empty trace");
        let (gaps, sizes): (Vec<_>, Vec<_>) = arrivals.into_iter().unzip();
        assert!(sizes.iter().all(|&s| s > 0), "zero-sized packet in trace");
        RecordedTrace { gaps, sizes }
    }

    /// Records `n` arrivals from a live process.
    pub fn capture(process: &mut dyn ArrivalProcess, n: usize) -> Self {
        assert!(n > 0, "empty capture");
        let arrivals = (0..n).map(|_| process.next_arrival()).collect();
        RecordedTrace::new(arrivals)
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.gaps.len()
    }

    /// True when the trace holds no arrivals (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.gaps.is_empty()
    }

    /// Total bytes carried.
    pub fn total_bytes(&self) -> u64 {
        self.sizes.iter().map(|&s| s as u64).sum()
    }

    /// Total time spanned by the gaps.
    pub fn duration(&self) -> SimDuration {
        self.gaps.iter().fold(SimDuration::ZERO, |acc, &g| acc + g)
    }

    /// Mean rate of the recorded sequence, bits/s.
    pub fn mean_rate_bps(&self) -> f64 {
        let secs = self.duration().as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.total_bytes() as f64 * 8.0 / secs
    }
}

/// An [`ArrivalProcess`] that replays a [`RecordedTrace`].
#[derive(Debug, Clone)]
pub struct Replay {
    trace: RecordedTrace,
    cursor: usize,
    looping: bool,
    exhausted: bool,
}

impl Replay {
    /// Plays the trace once; after the last arrival the process emits
    /// an effectively-infinite gap (the source goes silent).
    pub fn once(trace: RecordedTrace) -> Self {
        Replay {
            trace,
            cursor: 0,
            looping: false,
            exhausted: false,
        }
    }

    /// Plays the trace in a loop, back-to-back.
    pub fn looping(trace: RecordedTrace) -> Self {
        Replay {
            trace,
            cursor: 0,
            looping: true,
            exhausted: false,
        }
    }

    /// Arrivals emitted so far (caps at the length for a one-shot
    /// replay).
    pub fn position(&self) -> usize {
        self.cursor
    }
}

/// Gap emitted once a one-shot replay runs out (~30 simulated years).
const SILENT: SimDuration = SimDuration::from_secs(1_000_000_000);

impl ArrivalProcess for Replay {
    fn next_arrival(&mut self) -> (SimDuration, u32) {
        if self.exhausted {
            return (SILENT, 1);
        }
        let i = self.cursor % self.trace.len();
        let arrival = (self.trace.gaps[i], self.trace.sizes[i]);
        self.cursor += 1;
        if !self.looping && self.cursor >= self.trace.len() {
            self.exhausted = true;
        }
        arrival
    }

    fn mean_rate_bps(&self) -> f64 {
        self.trace.mean_rate_bps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::PoissonProcess;
    use crate::sizes::SizeDist;

    fn toy_trace() -> RecordedTrace {
        RecordedTrace::new(vec![
            (SimDuration::from_millis(1), 100),
            (SimDuration::from_millis(2), 200),
            (SimDuration::from_millis(3), 300),
        ])
    }

    #[test]
    fn accounting() {
        let t = toy_trace();
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_bytes(), 600);
        assert_eq!(t.duration(), SimDuration::from_millis(6));
        assert!((t.mean_rate_bps() - 600.0 * 8.0 / 0.006).abs() < 1e-6);
    }

    #[test]
    fn once_goes_silent() {
        let mut r = Replay::once(toy_trace());
        assert_eq!(r.next_arrival(), (SimDuration::from_millis(1), 100));
        assert_eq!(r.next_arrival(), (SimDuration::from_millis(2), 200));
        assert_eq!(r.next_arrival(), (SimDuration::from_millis(3), 300));
        let (gap, _) = r.next_arrival();
        assert_eq!(gap, SILENT);
        assert_eq!(r.position(), 3);
    }

    #[test]
    fn looping_repeats_exactly() {
        let mut r = Replay::looping(toy_trace());
        let first: Vec<_> = (0..3).map(|_| r.next_arrival()).collect();
        let second: Vec<_> = (0..3).map(|_| r.next_arrival()).collect();
        assert_eq!(first, second);
        assert_eq!(r.position(), 6);
    }

    #[test]
    fn capture_then_replay_is_identical() {
        let mut live = PoissonProcess::new(10e6, SizeDist::internet_mix(), 77);
        let trace = RecordedTrace::capture(&mut live, 500);
        // a fresh identical process replays the exact same sequence
        let mut reference = PoissonProcess::new(10e6, SizeDist::internet_mix(), 77);
        let mut replay = Replay::once(trace.clone());
        for _ in 0..500 {
            assert_eq!(replay.next_arrival(), reference.next_arrival());
        }
        // and the captured mean rate is close to the configured one
        assert!((trace.mean_rate_bps() - 10e6).abs() / 10e6 < 0.15);
    }

    #[test]
    #[should_panic]
    fn empty_trace_rejected() {
        let _ = RecordedTrace::new(vec![]);
    }
}
