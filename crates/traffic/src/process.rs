//! Arrival processes: deterministic, seeded `(gap, size)` generators.

use abw_netsim::{gap_for_rate, SimDuration};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::sizes::SizeDist;

/// A stream of packet arrivals: each call yields the gap until the next
/// packet and that packet's size in bytes.
///
/// Implementations own their RNG, so a process is a pure function of its
/// construction parameters (including the seed). `Send` so simulations
/// carrying sources can move to executor worker threads.
pub trait ArrivalProcess: Send {
    /// Gap to the next arrival and its size.
    fn next_arrival(&mut self) -> (SimDuration, u32);

    /// The configured long-run mean rate in bits per second.
    fn mean_rate_bps(&self) -> f64;

    /// Retunes the mean rate mid-stream, keeping the RNG state (so a
    /// rate step does not replay or skip arrivals). Returns `false` —
    /// the default — when the process does not support retuning or the
    /// rate is not positive; the process is unchanged in that case.
    fn set_rate_bps(&mut self, _rate_bps: f64) -> bool {
        false
    }

    /// Appends the next `n` arrivals to `out` — exactly the values `n`
    /// successive [`ArrivalProcess::next_arrival`] calls would yield.
    ///
    /// The default does just that, which already amortises the dynamic
    /// dispatch to one virtual call per batch (the inner draws
    /// monomorphise); overrides must produce the identical stream.
    fn next_arrivals(&mut self, out: &mut Vec<(SimDuration, u32)>, n: usize) {
        out.reserve(n);
        for _ in 0..n {
            out.push(self.next_arrival());
        }
    }
}

/// Draws `Exp(mean)` seconds via inverse transform.
fn exp_secs(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = 1.0 - rng.random::<f64>();
    -mean * u.ln()
}

/// Draws `Pareto(shape, scale)` seconds via inverse transform.
///
/// Mean is `shape * scale / (shape - 1)` for `shape > 1`.
fn pareto_secs(rng: &mut StdRng, shape: f64, scale: f64) -> f64 {
    let u: f64 = 1.0 - rng.random::<f64>();
    scale * u.powf(-1.0 / shape)
}

// ---------------------------------------------------------------------------

/// Constant bit rate: fixed gaps, fixed size — the closest packet-level
/// approximation of the paper's fluid model.
#[derive(Debug, Clone)]
pub struct Cbr {
    rate_bps: f64,
    size: u32,
}

impl Cbr {
    /// A CBR stream of `size`-byte packets at `rate_bps`.
    pub fn new(rate_bps: f64, size: u32) -> Self {
        assert!(rate_bps > 0.0 && size > 0, "invalid CBR parameters");
        Cbr { rate_bps, size }
    }
}

impl ArrivalProcess for Cbr {
    fn next_arrival(&mut self) -> (SimDuration, u32) {
        (gap_for_rate(self.size, self.rate_bps), self.size)
    }

    fn mean_rate_bps(&self) -> f64 {
        self.rate_bps
    }

    fn set_rate_bps(&mut self, rate_bps: f64) -> bool {
        if rate_bps.is_nan() || rate_bps <= 0.0 {
            return false;
        }
        self.rate_bps = rate_bps;
        true
    }
}

// ---------------------------------------------------------------------------

/// Poisson packet arrivals: exponential gaps, sizes drawn from a
/// [`SizeDist`]. The arrival rate is chosen so the long-run bit rate
/// equals `rate_bps` given the size distribution's mean.
#[derive(Debug)]
pub struct PoissonProcess {
    rate_bps: f64,
    sizes: SizeDist,
    mean_gap_secs: f64,
    rng: StdRng,
}

impl PoissonProcess {
    /// A Poisson stream averaging `rate_bps` with the given sizes and seed.
    pub fn new(rate_bps: f64, sizes: SizeDist, seed: u64) -> Self {
        assert!(rate_bps > 0.0, "rate must be positive");
        // lint: allow(units) -- the `_sec` is the divisor of a compound unit, not a suffix
        let pkts_per_sec = rate_bps / (8.0 * sizes.mean());
        PoissonProcess {
            rate_bps,
            sizes,
            mean_gap_secs: 1.0 / pkts_per_sec,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl ArrivalProcess for PoissonProcess {
    fn next_arrival(&mut self) -> (SimDuration, u32) {
        let gap = exp_secs(&mut self.rng, self.mean_gap_secs);
        let size = self.sizes.sample(&mut self.rng);
        (SimDuration::from_secs_f64(gap), size)
    }

    fn mean_rate_bps(&self) -> f64 {
        self.rate_bps
    }

    fn set_rate_bps(&mut self, rate_bps: f64) -> bool {
        if rate_bps.is_nan() || rate_bps <= 0.0 {
            return false;
        }
        self.rate_bps = rate_bps;
        self.mean_gap_secs = 8.0 * self.sizes.mean() / rate_bps;
        true
    }
}

// ---------------------------------------------------------------------------

/// Pareto ON-OFF: bursts of packets sent back-to-back at a peak rate,
/// separated by heavy-tailed silences.
///
/// Matches the paper's Figure 3 model: ON duration uniform over 1–10
/// packets, OFF periods Pareto with shape 1.5. Aggregating many such
/// sources produces long-range-dependent traffic (Taqqu's theorem), which
/// is what makes the synthetic NLANR-substitute trace realistic.
#[derive(Debug)]
pub struct ParetoOnOff {
    rate_bps: f64,
    peak_rate_bps: f64,
    size: u32,
    off_shape: f64,
    off_scale_secs: f64,
    min_on_pkts: u32,
    max_on_pkts: u32,
    /// Packets left in the current ON burst.
    remaining: u32,
    rng: StdRng,
}

impl ParetoOnOff {
    /// A source averaging `rate_bps`, bursting at `peak_rate_bps` with
    /// `size`-byte packets, ON length uniform over 1–10 packets, OFF
    /// periods Pareto(1.5).
    ///
    /// Panics unless `0 < rate_bps < peak_rate_bps`.
    pub fn new(rate_bps: f64, peak_rate_bps: f64, size: u32, seed: u64) -> Self {
        Self::with_shape(rate_bps, peak_rate_bps, size, 1.5, 1, 10, seed)
    }

    /// Full-parameter constructor: OFF shape (> 1 so the mean exists) and
    /// the ON-burst length range in packets.
    pub fn with_shape(
        rate_bps: f64,
        peak_rate_bps: f64,
        size: u32,
        off_shape: f64,
        min_on_pkts: u32,
        max_on_pkts: u32,
        seed: u64,
    ) -> Self {
        assert!(rate_bps > 0.0, "rate must be positive");
        assert!(
            peak_rate_bps > rate_bps,
            "peak rate must exceed the mean rate"
        );
        assert!(off_shape > 1.0, "OFF shape must exceed 1 for a finite mean");
        assert!(min_on_pkts >= 1 && max_on_pkts >= min_on_pkts);
        let mean_on_pkts = (min_on_pkts + max_on_pkts) as f64 / 2.0;
        let bits_per_on = mean_on_pkts * size as f64 * 8.0;
        // A burst of n packets occupies n-1 peak-rate gaps (the first packet
        // of a burst arrives after the OFF gap), so a mean cycle is
        // off + (E[n]-1) * gap and must carry bits_per_on at rate_bps.
        let peak_gap_secs = size as f64 * 8.0 / peak_rate_bps;
        let mean_on_secs = (mean_on_pkts - 1.0) * peak_gap_secs;
        let mean_cycle_secs = bits_per_on / rate_bps;
        let mean_off_secs = mean_cycle_secs - mean_on_secs;
        assert!(mean_off_secs > 0.0, "no silence left: lower the mean rate");
        let off_scale_secs = mean_off_secs * (off_shape - 1.0) / off_shape;
        ParetoOnOff {
            rate_bps,
            peak_rate_bps,
            size,
            off_shape,
            off_scale_secs,
            min_on_pkts,
            max_on_pkts,
            remaining: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl ArrivalProcess for ParetoOnOff {
    fn next_arrival(&mut self) -> (SimDuration, u32) {
        if self.remaining == 0 {
            // new cycle: heavy-tailed silence, then a burst
            self.remaining = self.rng.random_range(self.min_on_pkts..=self.max_on_pkts);
            let off = pareto_secs(&mut self.rng, self.off_shape, self.off_scale_secs);
            self.remaining -= 1;
            (SimDuration::from_secs_f64(off), self.size)
        } else {
            self.remaining -= 1;
            (gap_for_rate(self.size, self.peak_rate_bps), self.size)
        }
    }

    fn mean_rate_bps(&self) -> f64 {
        self.rate_bps
    }
}

// ---------------------------------------------------------------------------

/// Packets with Pareto-distributed interarrivals — the "UDP sources with
/// Pareto interarrivals" cross traffic of Figure 7.
#[derive(Debug)]
pub struct ParetoInterarrival {
    rate_bps: f64,
    sizes: SizeDist,
    shape: f64,
    scale_secs: f64,
    rng: StdRng,
}

impl ParetoInterarrival {
    /// Mean rate `rate_bps`, gap shape `shape` (> 1), sizes from `sizes`.
    pub fn new(rate_bps: f64, sizes: SizeDist, shape: f64, seed: u64) -> Self {
        assert!(rate_bps > 0.0 && shape > 1.0, "invalid parameters");
        let mean_gap = 8.0 * sizes.mean() / rate_bps;
        let scale_secs = mean_gap * (shape - 1.0) / shape;
        ParetoInterarrival {
            rate_bps,
            sizes,
            shape,
            scale_secs,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl ArrivalProcess for ParetoInterarrival {
    fn next_arrival(&mut self) -> (SimDuration, u32) {
        let gap = pareto_secs(&mut self.rng, self.shape, self.scale_secs);
        let size = self.sizes.sample(&mut self.rng);
        (SimDuration::from_secs_f64(gap), size)
    }

    fn mean_rate_bps(&self) -> f64 {
        self.rate_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Long-run empirical rate of a process, in bits/s.
    fn empirical_rate(p: &mut dyn ArrivalProcess, arrivals: usize) -> f64 {
        let mut t = 0.0;
        let mut bits = 0.0;
        for _ in 0..arrivals {
            let (gap, size) = p.next_arrival();
            t += gap.as_secs_f64();
            bits += size as f64 * 8.0;
        }
        bits / t
    }

    #[test]
    fn cbr_exact_rate() {
        let mut p = Cbr::new(25e6, 1500);
        let r = empirical_rate(&mut p, 1000);
        assert!((r - 25e6).abs() / 25e6 < 1e-6, "rate {r}");
    }

    #[test]
    fn poisson_rate_converges() {
        let mut p = PoissonProcess::new(25e6, SizeDist::Constant(1500), 3);
        let r = empirical_rate(&mut p, 200_000);
        assert!((r - 25e6).abs() / 25e6 < 0.01, "rate {r}");
    }

    #[test]
    fn poisson_with_mixed_sizes_converges() {
        let mut p = PoissonProcess::new(10e6, SizeDist::internet_mix(), 11);
        let r = empirical_rate(&mut p, 400_000);
        assert!((r - 10e6).abs() / 10e6 < 0.01, "rate {r}");
    }

    #[test]
    fn pareto_onoff_rate_converges() {
        // heavy tail converges slowly; generous tolerance and many samples
        let mut p = ParetoOnOff::new(25e6, 50e6, 1500, 5);
        let r = empirical_rate(&mut p, 2_000_000);
        assert!((r - 25e6).abs() / 25e6 < 0.05, "rate {r}");
    }

    #[test]
    fn pareto_onoff_bursts_at_peak() {
        let mut p = ParetoOnOff::new(10e6, 40e6, 1500, 9);
        let peak_gap = gap_for_rate(1500, 40e6);
        let mut saw_burst_gap = false;
        for _ in 0..1000 {
            let (gap, _) = p.next_arrival();
            if gap == peak_gap {
                saw_burst_gap = true;
            }
        }
        assert!(saw_burst_gap, "no back-to-back burst gaps observed");
    }

    #[test]
    fn pareto_interarrival_rate_converges() {
        let mut p = ParetoInterarrival::new(5e6, SizeDist::Constant(1000), 2.5, 17);
        let r = empirical_rate(&mut p, 500_000);
        assert!((r - 5e6).abs() / 5e6 < 0.03, "rate {r}");
    }

    #[test]
    #[should_panic]
    fn onoff_peak_must_exceed_mean() {
        let _ = ParetoOnOff::new(50e6, 25e6, 1500, 0);
    }

    #[test]
    fn retuning_changes_rate_without_touching_rng_state() {
        let mut p = Cbr::new(25e6, 1500);
        assert!(p.set_rate_bps(10e6));
        assert_eq!(p.mean_rate_bps(), 10e6);
        let r = empirical_rate(&mut p, 1000);
        assert!((r - 10e6).abs() / 10e6 < 1e-6, "rate {r}");
        assert!(!p.set_rate_bps(0.0), "non-positive rate must be rejected");
        assert_eq!(p.mean_rate_bps(), 10e6);

        // Poisson: the retuned process continues its RNG sequence — the
        // gaps after the step must equal a fresh same-seed process's
        // gaps scaled by the rate ratio (exp_variate is multiplicative)
        let mut a = PoissonProcess::new(25e6, SizeDist::Constant(1500), 42);
        let mut b = PoissonProcess::new(50e6, SizeDist::Constant(1500), 42);
        assert!(a.set_rate_bps(50e6));
        for _ in 0..100 {
            assert_eq!(a.next_arrival(), b.next_arrival());
        }
        let r = empirical_rate(&mut a, 200_000);
        assert!((r - 50e6).abs() / 50e6 < 0.01, "rate {r}");

        // heavy-tailed processes do not support retuning
        let mut p = ParetoOnOff::new(25e6, 50e6, 1500, 5);
        assert!(!p.set_rate_bps(10e6));
        assert_eq!(p.mean_rate_bps(), 25e6);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = PoissonProcess::new(10e6, SizeDist::internet_mix(), 42);
        let mut b = PoissonProcess::new(10e6, SizeDist::internet_mix(), 42);
        for _ in 0..1000 {
            assert_eq!(a.next_arrival(), b.next_arrival());
        }
    }
}
