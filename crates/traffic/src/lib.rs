//! # abw-traffic
//!
//! Cross-traffic generators for the avail-bw estimation experiments.
//!
//! The paper's simulations use three cross-traffic models on the tight link
//! (Figure 3): Constant-Bit-Rate, Poisson, and Pareto ON-OFF (OFF shape
//! parameter 1.5, ON duration uniform over 1–10 packets), plus UDP sources
//! with Pareto interarrivals (Figure 7) and a bursty aggregate standing in
//! for the NLANR trace (Figures 1 and 6). Every generator here is an
//! [`ArrivalProcess`] — a deterministic, seeded stream of
//! `(gap, packet size)` pairs — driven onto a path by a [`SourceAgent`].
//!
//! Packet sizes follow [`SizeDist`]: Fallacy 4 ("packet pairs are as good
//! as packet trains") hinges on cross traffic having *discrete, modal*
//! packet sizes, so the size distribution is a first-class parameter.

pub mod process;
pub mod replay;
pub mod sizes;
pub mod source;

pub use process::{ArrivalProcess, Cbr, ParetoInterarrival, ParetoOnOff, PoissonProcess};
pub use replay::{RecordedTrace, Replay};
pub use sizes::SizeDist;
pub use source::{spawn_aggregate, SourceAgent};
