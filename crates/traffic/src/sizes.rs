//! Packet-size distributions.
//!
//! Internet cross traffic has a strongly modal size distribution (the paper
//! names 40 B and 1500 B packets explicitly); the granularity of the sizes
//! directly sets the quantisation noise seen by packet-pair probing
//! (Fallacy 4, Table 1).

use rand::rngs::StdRng;
use rand::RngExt;

/// A discrete packet-size distribution.
///
/// ```
/// use abw_traffic::SizeDist;
/// let mix = SizeDist::internet_mix();
/// assert_eq!(mix.mean(), 539.0); // 0.5*40 + 0.25*576 + 0.25*1500
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum SizeDist {
    /// Every packet has the same size.
    Constant(u32),
    /// Arbitrary finite support: `(size, probability)` pairs.
    ///
    /// Probabilities must be positive and sum to 1 (validated by
    /// [`SizeDist::empirical`]).
    Empirical(Vec<(u32, f64)>),
}

impl SizeDist {
    /// The canonical trimodal Internet mix: 40 B (ACKs) with probability
    /// 0.5, 576 B with 0.25, and 1500 B (full MTU) with 0.25.
    pub fn internet_mix() -> Self {
        SizeDist::Empirical(vec![(40, 0.50), (576, 0.25), (1500, 0.25)])
    }

    /// Builds a validated empirical distribution.
    ///
    /// Panics when empty, when any probability is non-positive or any size
    /// is zero, or when probabilities do not sum to 1 (±1e-9).
    pub fn empirical(entries: Vec<(u32, f64)>) -> Self {
        assert!(!entries.is_empty(), "empirical size distribution is empty");
        let mut total = 0.0;
        for &(size, p) in &entries {
            assert!(size > 0, "zero-size packet");
            assert!(p > 0.0, "non-positive probability");
            total += p;
        }
        assert!(
            (total - 1.0).abs() < 1e-9,
            "probabilities sum to {total}, expected 1"
        );
        SizeDist::Empirical(entries)
    }

    /// Draws one packet size.
    pub fn sample(&self, rng: &mut StdRng) -> u32 {
        match self {
            SizeDist::Constant(s) => *s,
            SizeDist::Empirical(entries) => {
                let mut u: f64 = rng.random();
                for &(size, p) in entries {
                    if u < p {
                        return size;
                    }
                    u -= p;
                }
                // float rounding can leave a sliver above the last cumsum
                entries.last().expect("validated non-empty").0
            }
        }
    }

    /// Expected packet size in bytes.
    pub fn mean(&self) -> f64 {
        match self {
            SizeDist::Constant(s) => *s as f64,
            SizeDist::Empirical(entries) => entries.iter().map(|&(s, p)| s as f64 * p).sum(),
        }
    }

    /// Largest size in the support.
    pub fn max(&self) -> u32 {
        match self {
            SizeDist::Constant(s) => *s,
            SizeDist::Empirical(entries) => {
                entries.iter().map(|&(s, _)| s).max().expect("non-empty")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn constant_is_constant() {
        let d = SizeDist::Constant(1500);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 1500);
        }
        assert_eq!(d.mean(), 1500.0);
        assert_eq!(d.max(), 1500);
    }

    #[test]
    fn internet_mix_mean() {
        let d = SizeDist::internet_mix();
        // 0.5*40 + 0.25*576 + 0.25*1500 = 539
        assert!((d.mean() - 539.0).abs() < 1e-9);
        assert_eq!(d.max(), 1500);
    }

    #[test]
    fn empirical_frequencies_converge() {
        let d = SizeDist::internet_mix();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut small = 0u32;
        for _ in 0..n {
            if d.sample(&mut rng) == 40 {
                small += 1;
            }
        }
        let frac = small as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "P(40B) = {frac}");
    }

    #[test]
    #[should_panic]
    fn invalid_probabilities_rejected() {
        let _ = SizeDist::empirical(vec![(40, 0.6), (1500, 0.6)]);
    }

    #[test]
    #[should_panic]
    fn zero_size_rejected() {
        let _ = SizeDist::empirical(vec![(0, 1.0)]);
    }
}
