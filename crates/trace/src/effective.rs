//! Effective bandwidth (Kelly 1996) — the alternative definition the
//! paper points to when discussing the underestimation artifacts of
//! Pitfalls 6 and 7.
//!
//! The avail-bw definition `A = C(1 - u)` ignores burstiness: two
//! traffic mixes with the same mean utilisation can need very different
//! headroom to meet a delay constraint. The *effective bandwidth* of a
//! load process `X` at space parameter `s` and timescale `tau`,
//!
//! ```text
//! alpha(s, tau) = 1/(s*tau) * ln E[ exp(s * X(tau)) ]
//! ```
//!
//! (with `X(tau)` the bits arriving in a window of length `tau`),
//! interpolates between the mean rate (`s → 0`) and the peak rate
//! (`s → ∞`): the burstier the traffic, the faster it rises with `s`.
//! Comparing `C - alpha(s)` to the plain avail-bw quantifies how much of
//! the "available" bandwidth is actually usable under a QoS constraint.

use crate::process::AvailBw;

/// Effective-bandwidth curve of a link's *cross-traffic load* process,
/// derived from the recorded busy periods.
#[derive(Debug, Clone)]
pub struct EffectiveBandwidth {
    /// Window length in nanoseconds.
    pub tau_ns: u64,
    /// Bits served per window (the load samples `X(tau)`).
    loads_bits: Vec<f64>,
    /// Window length in seconds.
    tau_secs: f64,
}

impl EffectiveBandwidth {
    /// Builds the load samples from an avail-bw process at window
    /// length `tau_ns` (back-to-back windows across the horizon).
    ///
    /// Panics when the horizon holds fewer than 2 windows.
    pub fn from_process(process: &AvailBw, tau_ns: u64) -> Self {
        assert!(tau_ns > 0, "zero window");
        let (h0, h1) = process.horizon();
        let mut loads = Vec::new();
        let mut t = h0;
        while t + tau_ns <= h1 {
            // load = busy time * capacity
            let busy_secs = process.busy_ns(t, t + tau_ns) as f64 / 1e9;
            loads.push(busy_secs * process.capacity_bps());
            t += tau_ns;
        }
        assert!(loads.len() >= 2, "horizon shorter than two windows");
        EffectiveBandwidth {
            tau_ns,
            loads_bits: loads,
            tau_secs: tau_ns as f64 / 1e9,
        }
    }

    /// Number of load windows.
    pub fn windows(&self) -> usize {
        self.loads_bits.len()
    }

    /// Mean load rate in bits/s (`alpha` at `s → 0`).
    pub fn mean_rate_bps(&self) -> f64 {
        self.loads_bits.iter().sum::<f64>() / (self.loads_bits.len() as f64 * self.tau_secs)
    }

    /// Peak window load rate in bits/s (`alpha` at `s → ∞`).
    pub fn peak_rate_bps(&self) -> f64 {
        self.loads_bits
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
            / self.tau_secs
    }

    /// The effective bandwidth `alpha(s)` in bits/s for a space
    /// parameter `s` in 1/bits (`s > 0`).
    ///
    /// Computed with the log-sum-exp trick so large `s` does not
    /// overflow.
    pub fn alpha_bps(&self, s: f64) -> f64 {
        assert!(s > 0.0, "space parameter must be positive");
        let n = self.loads_bits.len() as f64;
        let max = self
            .loads_bits
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        // ln E[exp(sX)] = s*max + ln(1 + mean(expm1((x-max)*s))): the
        // expm1/ln_1p pair keeps precision when s*X is far below the
        // f64 epsilon (where plain exp/ln degenerates to 1.0 + noise)
        let sum_m1: f64 = self
            .loads_bits
            .iter()
            .map(|&x| ((x - max) * s).exp_m1())
            .sum();
        let ln_mean = s * max + (sum_m1 / n).ln_1p();
        ln_mean / (s * self.tau_secs)
    }

    /// The curve `(s, alpha(s))` over a log-spaced grid of `points`
    /// space parameters in `[s_lo, s_hi]`.
    pub fn curve(&self, s_lo: f64, s_hi: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(s_lo > 0.0 && s_hi > s_lo && points >= 2);
        let ratio = (s_hi / s_lo).powf(1.0 / (points - 1) as f64);
        (0..points)
            .map(|i| {
                let s = s_lo * ratio.powi(i as i32);
                (s, self.alpha_bps(s))
            })
            .collect()
    }

    /// "Effective avail-bw": capacity minus `alpha(s)` — what is left
    /// for new traffic under the QoS stringency `s`. Always at most the
    /// plain avail-bw, with the gap growing with burstiness.
    pub fn effective_avail_bps(&self, capacity_bps: f64, s: f64) -> f64 {
        capacity_bps - self.alpha_bps(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::AvailBw;

    const MS: u64 = 1_000_000; // ns
    const CAP: f64 = 100e6; // bits/s

    /// Smooth process: busy 5 ms of every 10 ms window (1 s horizon).
    fn smooth() -> AvailBw {
        let intervals: Vec<(u64, u64)> =
            (0..100).map(|i| (i * 10 * MS, (i * 10 + 5) * MS)).collect();
        AvailBw::new(CAP, &intervals, (0, 1000 * MS))
    }

    /// Bursty process, same mean: fully busy every other 10 ms window.
    fn bursty() -> AvailBw {
        let intervals: Vec<(u64, u64)> =
            (0..50).map(|i| (i * 20 * MS, (i * 20 + 10) * MS)).collect();
        AvailBw::new(CAP, &intervals, (0, 1000 * MS))
    }

    #[test]
    fn alpha_interpolates_mean_to_peak() {
        let eb = EffectiveBandwidth::from_process(&bursty(), 10 * MS);
        let mean = eb.mean_rate_bps();
        let peak = eb.peak_rate_bps();
        assert!((mean - 50e6).abs() < 1.0);
        assert!((peak - 100e6).abs() < 1.0);
        // small s ≈ mean, large s ≈ peak (s is per bit: the regimes sit
        // at s*X << 1 and s*(peak-mean)*tau >> ln n)
        assert!((eb.alpha_bps(1e-12) - mean).abs() / mean < 1e-3);
        assert!((eb.alpha_bps(1e-3) - peak).abs() / peak < 1e-3);
    }

    #[test]
    fn alpha_is_nondecreasing_in_s() {
        let eb = EffectiveBandwidth::from_process(&bursty(), 10 * MS);
        let curve = eb.curve(1e-12, 1e-3, 30);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1.0, "alpha must not decrease: {w:?}");
        }
    }

    #[test]
    fn burstier_traffic_has_higher_alpha_at_same_mean() {
        let s = 1e-5;
        let eb_smooth = EffectiveBandwidth::from_process(&smooth(), 10 * MS);
        let eb_bursty = EffectiveBandwidth::from_process(&bursty(), 10 * MS);
        assert!(
            (eb_smooth.mean_rate_bps() - eb_bursty.mean_rate_bps()).abs() < 1.0,
            "same mean by construction"
        );
        assert!(
            eb_bursty.alpha_bps(s) > eb_smooth.alpha_bps(s) + 1e6,
            "bursty alpha {} vs smooth alpha {}",
            eb_bursty.alpha_bps(s),
            eb_smooth.alpha_bps(s)
        );
        // and therefore less effective avail-bw under the constraint
        assert!(eb_bursty.effective_avail_bps(CAP, s) < eb_smooth.effective_avail_bps(CAP, s));
    }

    #[test]
    fn smooth_traffic_alpha_is_flat() {
        // every window identical ⇒ alpha(s) = mean for all s
        let eb = EffectiveBandwidth::from_process(&smooth(), 10 * MS);
        for s in [1e-12, 1e-8, 1e-5, 1e-3] {
            assert!(
                (eb.alpha_bps(s) - 50e6).abs() < 1.0,
                "s = {s}: alpha = {}",
                eb.alpha_bps(s)
            );
        }
    }

    #[test]
    fn effective_avail_bounded_by_plain_avail() {
        let eb = EffectiveBandwidth::from_process(&bursty(), 10 * MS);
        let plain_avail = CAP - eb.mean_rate_bps();
        for s in [1e-10, 1e-7, 1e-5, 1e-4] {
            assert!(eb.effective_avail_bps(CAP, s) <= plain_avail + 1.0);
        }
    }
}
