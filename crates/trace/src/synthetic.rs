//! The synthetic stand-in for the paper's NLANR packet trace.
//!
//! The paper's Figures 1 and 6 analyse trace ANL-1070432720 from the OC-3
//! (155.52 Mb/s) access link of Argonne National Laboratory; with ~45%
//! mean utilisation its 10 ms avail-bw sample path varies roughly between
//! 60 and 110 Mb/s. We cannot redistribute that trace, so this module
//! *simulates* an equivalent link: an aggregate of heavy-tailed
//! (Pareto ON-OFF) sources over a mix of packet sizes, which by Taqqu's
//! theorem produces the long-range-dependent burstiness the experiments
//! rely on. The substitution is documented in DESIGN.md §2.

use abw_netsim::{CountingSink, FlowId, LinkConfig, LinkId, SimDuration, SimTime, Simulator};
use abw_traffic::{ParetoOnOff, SourceAgent};

use crate::process::AvailBw;

/// Parameters of the synthetic trace link.
#[derive(Debug, Clone)]
pub struct SyntheticTraceConfig {
    /// Link capacity in bits/s (default: OC-3 payload rate, 155.52 Mb/s).
    pub capacity_bps: f64,
    /// Target mean utilisation in `(0, 1)`.
    pub mean_utilization: f64,
    /// Number of aggregated ON-OFF sources.
    pub sources: usize,
    /// Peak rate of each source during a burst, in bits/s.
    pub peak_rate_bps: f64,
    /// Trace duration.
    pub duration: SimDuration,
    /// Warm-up discarded before the horizon starts.
    pub warmup: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticTraceConfig {
    fn default() -> Self {
        SyntheticTraceConfig {
            capacity_bps: 155.52e6,
            mean_utilization: 0.45,
            sources: 24,
            peak_rate_bps: 40e6,
            duration: SimDuration::from_secs(60),
            warmup: SimDuration::from_secs(2),
            seed: 0x0ABE,
        }
    }
}

/// A generated trace: the avail-bw process plus bookkeeping.
#[derive(Debug)]
pub struct SyntheticTrace {
    /// The ground-truth avail-bw process over the trace horizon.
    pub process: AvailBw,
    /// Achieved mean utilisation (should be close to the configured one).
    pub achieved_utilization: f64,
    /// Packets that crossed the link.
    pub packets: u64,
}

/// Installs the trace's source aggregate into an existing simulator,
/// feeding `path` towards `sink`. Returns the number of sources created.
///
/// Exposed so experiments can probe a *live* link carrying exactly the
/// traffic mix of the synthetic trace (Figure 6 runs Pathload against
/// such a link). The aggregate is split across three packet sizes
/// (1500/576/40 B) in roughly the Internet-mix proportions by byte share.
pub fn spawn_trace_sources(
    sim: &mut Simulator,
    path: abw_netsim::PathId,
    sink: abw_netsim::AgentId,
    config: &SyntheticTraceConfig,
) -> u32 {
    assert!(
        config.mean_utilization > 0.0 && config.mean_utilization < 1.0,
        "utilisation must be in (0, 1)"
    );
    assert!(
        config.sources >= 3,
        "need at least 3 sources for the size mix"
    );
    let total_rate = config.capacity_bps * config.mean_utilization;
    // byte-share split across sizes: most bytes in MTU packets
    let plan: [(u32, f64); 3] = [(1500, 0.60), (576, 0.25), (40, 0.15)];
    let mut flow = 0u32;
    for (idx, &(size, share)) in plan.iter().enumerate() {
        let n = (config.sources as f64 * share).round().max(1.0) as usize;
        let per_source = total_rate * share / n as f64;
        for i in 0..n {
            let seed = config
                .seed
                .wrapping_add((idx * 1000 + i) as u64)
                .wrapping_mul(0x9E3779B97F4A7C15);
            let peak = config.peak_rate_bps.min(config.capacity_bps);
            let proc = ParetoOnOff::new(per_source, peak, size, seed);
            sim.add_agent(Box::new(SourceAgent::new(
                Box::new(proc),
                path,
                sink,
                FlowId(flow),
            )));
            flow += 1;
        }
    }
    flow
}

impl SyntheticTrace {
    /// Runs the simulation described by `config` and extracts the
    /// avail-bw process.
    pub fn generate(config: &SyntheticTraceConfig) -> Self {
        let mut sim = Simulator::new();
        let link = sim.add_link(LinkConfig::new(config.capacity_bps, SimDuration::ZERO));
        let path = sim.add_path(vec![link]);
        let sink = sim.add_agent(Box::new(CountingSink::new()));
        spawn_trace_sources(&mut sim, path, sink, config);

        let t0 = SimTime::ZERO + config.warmup;
        let t1 = t0 + config.duration;
        sim.run_until(t1);

        let process = AvailBw::from_link(sim.link(LinkId(0)), t0, t1);
        let achieved = 1.0 - process.mean() / config.capacity_bps;
        SyntheticTrace {
            process,
            achieved_utilization: achieved,
            packets: sim.link(LinkId(0)).counters().forwarded_pkts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down config that keeps the unit tests fast.
    fn quick() -> SyntheticTraceConfig {
        SyntheticTraceConfig {
            duration: SimDuration::from_secs(10),
            warmup: SimDuration::from_secs(1),
            ..SyntheticTraceConfig::default()
        }
    }

    #[test]
    fn utilisation_near_target() {
        let t = SyntheticTrace::generate(&quick());
        assert!(
            (t.achieved_utilization - 0.45).abs() < 0.08,
            "utilisation {}",
            t.achieved_utilization
        );
        assert!(t.packets > 10_000);
    }

    #[test]
    fn avail_bw_varies_at_10ms() {
        let t = SyntheticTrace::generate(&quick());
        let pop = t.process.population(10_000_000); // 10 ms
        let mean_mbps = pop.mean() / 1e6;
        let sd_mbps = pop.stddev() / 1e6;
        // paper's Figure 6: mean ~85, range roughly 60-110
        assert!((70.0..100.0).contains(&mean_mbps), "mean {mean_mbps}");
        assert!(sd_mbps > 3.0, "too smooth: sd {sd_mbps}");
        assert!(sd_mbps < 40.0, "implausibly bursty: sd {sd_mbps}");
    }

    #[test]
    fn variance_shrinks_with_timescale() {
        let t = SyntheticTrace::generate(&quick());
        let v1 = t.process.population(1_000_000).variance(); // 1 ms
        let v10 = t.process.population(10_000_000).variance(); // 10 ms
        let v100 = t.process.population(100_000_000).variance(); // 100 ms
        assert!(v1 > v10, "Var[A_1ms]={v1} vs Var[A_10ms]={v10}");
        assert!(v10 > v100, "Var[A_10ms]={v10} vs Var[A_100ms]={v100}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SyntheticTrace::generate(&quick());
        let b = SyntheticTrace::generate(&quick());
        assert_eq!(a.packets, b.packets);
        assert_eq!(
            a.process.busy_ns(1_100_000_000, 2_100_000_000),
            b.process.busy_ns(1_100_000_000, 2_100_000_000)
        );
    }
}
