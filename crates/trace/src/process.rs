//! Exact avail-bw queries over recorded busy intervals.

use abw_netsim::{Link, SimTime};
use abw_stats::running::Running;
use abw_stats::sampling::poisson_instants;
use rand::rngs::StdRng;

/// The available-bandwidth process of one link over a fixed horizon,
/// queryable at any averaging timescale.
///
/// Built from the link's merged busy intervals; `busy(a, b)` is computed
/// from a prefix-sum index in `O(log n)`, so population statistics over
/// thousands of windows stay cheap.
///
/// ```
/// use abw_trace::AvailBw;
/// // a 100 b/s link busy for the first half of a 1000 ns horizon
/// let p = AvailBw::new(100.0, &[(0, 500)], (0, 1000));
/// assert_eq!(p.mean(), 50.0);                // Equation 2
/// assert_eq!(p.avail(500, 1000), 100.0);     // idle half
/// assert_eq!(p.utilization(0, 500), 1.0);    // busy half
/// ```
#[derive(Debug, Clone)]
pub struct AvailBw {
    capacity_bps: f64,
    /// Interval starts (ns), sorted.
    starts: Vec<u64>,
    /// Interval ends (ns), sorted, `ends[i] >= starts[i]`.
    ends: Vec<u64>,
    /// `prefix[i]` = total busy ns in intervals `0..i`.
    prefix: Vec<u64>,
    horizon: (u64, u64),
}

impl AvailBw {
    /// Builds the process from raw `(start_ns, end_ns)` busy intervals.
    ///
    /// Intervals must be sorted, non-overlapping and inside the horizon.
    /// Panics otherwise (the simulator's `BusyLog` guarantees the former).
    pub fn new(capacity_bps: f64, intervals: &[(u64, u64)], horizon: (u64, u64)) -> Self {
        assert!(capacity_bps > 0.0, "capacity must be positive");
        assert!(horizon.1 > horizon.0, "empty horizon");
        let mut starts = Vec::with_capacity(intervals.len());
        let mut ends = Vec::with_capacity(intervals.len());
        let mut prefix = Vec::with_capacity(intervals.len() + 1);
        prefix.push(0);
        let mut prev_end = horizon.0;
        let mut acc = 0u64;
        for &(s, e) in intervals {
            assert!(s >= prev_end, "busy intervals overlap or are unsorted");
            assert!(e >= s, "busy interval ends before it starts");
            assert!(e <= horizon.1, "busy interval beyond horizon");
            starts.push(s);
            ends.push(e);
            acc += e - s;
            prefix.push(acc);
            prev_end = e;
        }
        AvailBw {
            capacity_bps,
            starts,
            ends,
            prefix,
            horizon,
        }
    }

    /// Builds the process from a simulated link's busy log, restricted to
    /// `[t0, t1)`. Intervals straddling the horizon edges are clipped.
    pub fn from_link(link: &Link, t0: SimTime, t1: SimTime) -> Self {
        let (a, b) = (t0.as_nanos(), t1.as_nanos());
        let clipped: Vec<(u64, u64)> = link
            .busy_log()
            .intervals()
            .iter()
            .filter_map(|&(s, e)| {
                let cs = s.max(a);
                let ce = e.min(b);
                (cs < ce).then_some((cs, ce))
            })
            .collect();
        AvailBw::new(link.capacity_bps(), &clipped, (a, b))
    }

    /// Link capacity in bits/s.
    pub fn capacity_bps(&self) -> f64 {
        self.capacity_bps
    }

    /// The `(start_ns, end_ns)` horizon this process covers.
    pub fn horizon(&self) -> (u64, u64) {
        self.horizon
    }

    /// Horizon length in seconds.
    pub fn horizon_secs(&self) -> f64 {
        (self.horizon.1 - self.horizon.0) as f64 / 1e9
    }

    /// The merged busy intervals as `(start_ns, end_ns)` pairs (used by
    /// the text serialiser in [`crate::io`]).
    pub fn intervals(&self) -> Vec<(u64, u64)> {
        self.starts
            .iter()
            .zip(&self.ends)
            .map(|(&s, &e)| (s, e))
            .collect()
    }

    /// Total busy time in `[0, t)` within the recorded intervals.
    fn busy_before(&self, t: u64) -> u64 {
        // first interval with start >= t
        let i = self.starts.partition_point(|&s| s < t);
        let mut busy = self.prefix[i];
        // the previous interval may straddle t
        if i > 0 && self.ends[i - 1] > t {
            busy -= self.ends[i - 1] - t;
        }
        busy
    }

    /// Busy nanoseconds in the window `[a_ns, b_ns)`.
    pub fn busy_ns(&self, a_ns: u64, b_ns: u64) -> u64 {
        assert!(b_ns >= a_ns, "window ends before it starts");
        self.busy_before(b_ns) - self.busy_before(a_ns)
    }

    /// Average utilisation `u(a, b)` in `[0, 1]` (Equation 1).
    pub fn utilization(&self, a_ns: u64, b_ns: u64) -> f64 {
        assert!(b_ns > a_ns, "empty utilisation window");
        self.busy_ns(a_ns, b_ns) as f64 / (b_ns - a_ns) as f64
    }

    /// Avail-bw `A(a, b) = C * (1 - u(a, b))` in bits/s (Equation 2).
    pub fn avail(&self, a_ns: u64, b_ns: u64) -> f64 {
        self.capacity_bps * (1.0 - self.utilization(a_ns, b_ns))
    }

    /// Avail-bw over a window of `tau_ns` starting at `t_ns`.
    pub fn avail_at(&self, t_ns: u64, tau_ns: u64) -> f64 {
        self.avail(t_ns, t_ns + tau_ns)
    }

    /// Mean avail-bw over the whole horizon — the `A` of Equation (3)'s
    /// stationary process (the mean does not depend on `tau`).
    pub fn mean(&self) -> f64 {
        self.avail(self.horizon.0, self.horizon.1)
    }

    /// Population statistics of `A_tau(t)` over back-to-back windows of
    /// length `tau_ns` covering the horizon.
    pub fn population(&self, tau_ns: u64) -> Running {
        assert!(tau_ns > 0, "zero averaging timescale");
        let mut r = Running::new();
        let mut t = self.horizon.0;
        while t + tau_ns <= self.horizon.1 {
            r.push(self.avail(t, t + tau_ns));
            t += tau_ns;
        }
        r
    }

    /// The sample path `A_tau(t)` on a regular grid with the given step,
    /// as `(window start in seconds, avail-bw in bits/s)` pairs.
    pub fn sample_path(&self, tau_ns: u64, step_ns: u64) -> Vec<(f64, f64)> {
        assert!(tau_ns > 0 && step_ns > 0, "degenerate sample path grid");
        let mut out = Vec::new();
        let mut t = self.horizon.0;
        while t + tau_ns <= self.horizon.1 {
            out.push(((t - self.horizon.0) as f64 / 1e9, self.avail(t, t + tau_ns)));
            t += step_ns;
        }
        out
    }

    /// `k` Poisson-sampled values of `A_tau(t)` (the sampling scheme of the
    /// paper's Figure 1 experiment and of Spruce's pair spacing).
    pub fn poisson_sample(&self, rng: &mut StdRng, tau_ns: u64, k: usize) -> Vec<f64> {
        let end = (self.horizon.1 - tau_ns) as f64;
        let start = self.horizon.0 as f64;
        assert!(end > start, "horizon shorter than the averaging timescale");
        poisson_instants(rng, start, end, k)
            .into_iter()
            .map(|t| self.avail_at(t as u64, tau_ns))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Half-loaded toy process: busy 5 ns of every 10 ns, capacity 100 bps.
    fn half_loaded() -> AvailBw {
        let intervals: Vec<(u64, u64)> = (0..100).map(|i| (i * 10, i * 10 + 5)).collect();
        AvailBw::new(100.0, &intervals, (0, 1000))
    }

    #[test]
    fn utilisation_on_aligned_windows() {
        let p = half_loaded();
        assert_eq!(p.busy_ns(0, 1000), 500);
        assert!((p.utilization(0, 1000) - 0.5).abs() < 1e-12);
        assert!((p.mean() - 50.0).abs() < 1e-12);
        // a window covering exactly one busy half
        assert!((p.utilization(0, 5) - 1.0).abs() < 1e-12);
        assert!((p.utilization(5, 10) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn partial_overlap() {
        let p = half_loaded();
        // window [3, 13): busy in [3,5) and [10,13) = 2 + 3 = 5
        assert_eq!(p.busy_ns(3, 13), 5);
        assert!((p.avail(3, 13) - 50.0).abs() < 1e-12);
        // window inside a busy period
        assert_eq!(p.busy_ns(1, 4), 3);
        assert_eq!(p.avail(1, 4), 0.0);
        // window inside an idle period
        assert_eq!(p.busy_ns(6, 9), 0);
        assert_eq!(p.avail(6, 9), 100.0);
    }

    #[test]
    fn population_mean_matches_global() {
        let p = half_loaded();
        let pop = p.population(10);
        assert_eq!(pop.count(), 100);
        assert!((pop.mean() - 50.0).abs() < 1e-9);
        // aligned 10 ns windows all see exactly 50% utilisation
        assert!(pop.variance() < 1e-12);
    }

    #[test]
    fn variance_grows_at_small_timescales() {
        let p = half_loaded();
        // 5 ns windows alternate between 0% and 100% busy
        let pop = p.population(5);
        assert!(pop.variance() > 1000.0, "var = {}", pop.variance());
    }

    #[test]
    fn poisson_sampling_bounds() {
        let p = half_loaded();
        let mut rng = StdRng::seed_from_u64(1);
        let samples = p.poisson_sample(&mut rng, 10, 50);
        assert_eq!(samples.len(), 50);
        for &s in &samples {
            assert!((0.0..=100.0).contains(&s));
        }
    }

    #[test]
    fn empty_intervals_mean_full_capacity() {
        let p = AvailBw::new(42.0, &[], (0, 100));
        assert_eq!(p.mean(), 42.0);
        assert_eq!(p.busy_ns(0, 100), 0);
    }

    #[test]
    #[should_panic]
    fn overlapping_intervals_rejected() {
        let _ = AvailBw::new(1.0, &[(0, 10), (5, 15)], (0, 100));
    }

    #[test]
    fn busy_before_handles_straddle() {
        let p = AvailBw::new(10.0, &[(10, 20)], (0, 30));
        assert_eq!(p.busy_ns(0, 15), 5);
        assert_eq!(p.busy_ns(15, 30), 5);
        assert_eq!(p.busy_ns(12, 18), 6);
    }

    #[test]
    fn sample_path_grid() {
        let p = half_loaded();
        let path = p.sample_path(10, 10);
        assert_eq!(path.len(), 100);
        assert!((path[0].0 - 0.0).abs() < 1e-12);
        for &(_, a) in &path {
            assert!((a - 50.0).abs() < 1e-9);
        }
    }

    #[test]
    fn window_split_consistency() {
        // busy(a,c) = busy(a,b) + busy(b,c) for any split point
        let p = half_loaded();
        for b in [1u64, 7, 13, 500, 999] {
            assert_eq!(p.busy_ns(0, 1000), p.busy_ns(0, b) + p.busy_ns(b, 1000));
        }
    }
}
