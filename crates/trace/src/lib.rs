//! # abw-trace
//!
//! The available-bandwidth *process* — Equations (1)–(3) of the paper —
//! computed exactly from link busy-period records.
//!
//! The avail-bw of link `i` over `(t, t + tau)` is
//! `A_i = C_i * (1 - u_i(t, t + tau))` where `u_i` is the average
//! utilisation in that window. [`AvailBw`] answers such queries in
//! `O(log n)` from the merged busy intervals the simulator records, giving
//! every experiment its ground truth ("population") statistics.
//!
//! [`synthetic`] generates the stand-in for the NLANR packet trace
//! (ANL-1070432720, an OC-3 access link) used by the paper's Figures 1
//! and 6: a simulated 155.52 Mb/s link loaded to ~45% by an aggregate of
//! heavy-tailed ON-OFF sources.

pub mod effective;
pub mod io;
pub mod process;
pub mod synthetic;

pub use effective::EffectiveBandwidth;
pub use process::AvailBw;
pub use synthetic::{spawn_trace_sources, SyntheticTrace, SyntheticTraceConfig};
