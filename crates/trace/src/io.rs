//! Plain-text persistence for avail-bw processes and arrival traces.
//!
//! Experiments that take minutes to simulate should not have to be
//! re-run to re-plot: busy-interval records round-trip through a simple
//! line format (`start_ns end_ns`, one interval per line, with a header
//! carrying capacity and horizon), readable by any plotting tool. No
//! external serialisation crates are involved.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::process::AvailBw;

/// Magic first line of the busy-interval format.
const HEADER: &str = "abw-busy-v1";

/// Serialises the process's busy intervals to the text format.
pub fn to_string(process: &AvailBw) -> String {
    let (h0, h1) = process.horizon();
    let mut out = String::new();
    let _ = writeln!(out, "{HEADER}");
    let _ = writeln!(out, "capacity_bps {}", process.capacity_bps());
    let _ = writeln!(out, "horizon {h0} {h1}");
    for (s, e) in process.intervals() {
        let _ = writeln!(out, "{s} {e}");
    }
    out
}

/// Parses the text format back into an [`AvailBw`].
///
/// Returns a descriptive error on malformed input.
pub fn from_str(text: &str) -> Result<AvailBw, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h == HEADER => {}
        other => return Err(format!("bad header: {other:?}")),
    }
    let capacity = lines
        .next()
        .and_then(|l| l.strip_prefix("capacity_bps "))
        .and_then(|v| v.parse::<f64>().ok())
        .ok_or("missing or malformed capacity_bps line")?;
    let horizon_line = lines
        .next()
        .and_then(|l| l.strip_prefix("horizon "))
        .ok_or("missing horizon line")?;
    let mut parts = horizon_line.split_whitespace();
    let h0: u64 = parts
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or("malformed horizon start")?;
    let h1: u64 = parts
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or("malformed horizon end")?;
    let mut intervals = Vec::new();
    for (i, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let mut p = line.split_whitespace();
        let s: u64 = p
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("line {}: bad interval start", i + 4))?;
        let e: u64 = p
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("line {}: bad interval end", i + 4))?;
        intervals.push((s, e));
    }
    if capacity <= 0.0 || h1 <= h0 {
        return Err("non-positive capacity or empty horizon".into());
    }
    // AvailBw::new validates ordering/overlap and panics on violation;
    // pre-validate to return an error instead
    let mut prev = h0;
    for &(s, e) in &intervals {
        if s < prev || e < s || e > h1 {
            return Err(format!("invalid interval ({s}, {e})"));
        }
        prev = e;
    }
    Ok(AvailBw::new(capacity, &intervals, (h0, h1)))
}

/// Writes the process to a file.
pub fn save(process: &AvailBw, path: &Path) -> io::Result<()> {
    fs::write(path, to_string(process))
}

/// Reads a process from a file.
pub fn load(path: &Path) -> io::Result<AvailBw> {
    let text = fs::read_to_string(path)?;
    from_str(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> AvailBw {
        AvailBw::new(50e6, &[(10, 20), (30, 55), (80, 81)], (0, 100))
    }

    #[test]
    fn round_trip_through_string() {
        let p = toy();
        let text = to_string(&p);
        let q = from_str(&text).expect("parses");
        assert_eq!(q.capacity_bps(), p.capacity_bps());
        assert_eq!(q.horizon(), p.horizon());
        for (a, b) in [(0u64, 100u64), (5, 35), (30, 55), (54, 81)] {
            assert_eq!(q.busy_ns(a, b), p.busy_ns(a, b));
        }
    }

    #[test]
    fn round_trip_through_file() {
        let dir = std::env::temp_dir().join("abw_trace_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.abw");
        let p = toy();
        save(&p, &path).expect("saves");
        let q = load(&path).expect("loads");
        assert_eq!(q.busy_ns(0, 100), p.busy_ns(0, 100));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_interval_set_round_trips() {
        let p = AvailBw::new(1e6, &[], (5, 50));
        let q = from_str(&to_string(&p)).expect("parses");
        assert_eq!(q.busy_ns(5, 50), 0);
        assert_eq!(q.mean(), 1e6);
    }

    #[test]
    fn malformed_inputs_are_errors_not_panics() {
        assert!(from_str("").is_err());
        assert!(from_str("wrong-header\ncapacity_bps 5\nhorizon 0 10").is_err());
        assert!(from_str("abw-busy-v1\ncapacity_bps x\nhorizon 0 10").is_err());
        assert!(from_str("abw-busy-v1\ncapacity_bps 5\nhorizon 10 10").is_err());
        // overlapping intervals rejected with an error
        assert!(from_str("abw-busy-v1\ncapacity_bps 5\nhorizon 0 100\n0 10\n5 15").is_err());
        // interval beyond horizon
        assert!(from_str("abw-busy-v1\ncapacity_bps 5\nhorizon 0 100\n90 110").is_err());
    }
}
