//! # abw-exec
//!
//! A zero-dependency, std-only parallel executor for independent
//! simulation jobs.
//!
//! Every experiment in this workspace is a set of **embarrassingly
//! parallel** `(scenario, seed)` replications: each job builds its own
//! simulator, owns its own RNG stream (derived from the job's seed), and
//! never shares mutable state with its siblings. [`Executor::run`] fans
//! such jobs across a scoped thread pool and returns results **in
//! submission order**, regardless of completion order — so tables,
//! aggregate statistics and JSONL trace artifacts are byte-identical to
//! a serial run.
//!
//! ## Determinism contract
//!
//! 1. Jobs must be independent: no shared mutable state, no global RNG.
//! 2. Each worker runs its jobs under a thread-local `abw-obs` capture
//!    ([`abw_obs::global::begin_thread_capture`]): events a job's
//!    simulators emit are buffered per job, and manifest folds go into a
//!    per-job fragment, instead of interleaving in the process-global
//!    sinks.
//! 3. At join time the captures are merged **by job index**: event
//!    buffers replay into the process-global recorder in submission
//!    order, manifest fragments are absorbed in submission order. The
//!    result is indistinguishable from having run the jobs serially.
//!
//! ## Worker count
//!
//! [`Executor::from_env`] reads `ABW_JOBS`: a positive integer fixes the
//! worker count (`ABW_JOBS=1` forces the fully serial in-thread path —
//! no worker threads, no capture buffering); `0`, garbage, or an unset
//! variable fall back to [`std::thread::available_parallelism`].
//!
//! ## Panics
//!
//! A panicking job does not hang or poison the run: the executor joins
//! all workers, then re-panics on the calling thread with the **lowest
//! panicking job index** in the message.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, Once};
use std::time::Instant;

use abw_obs::global::{self, CapturedJob};
use abw_obs::prof;
use abw_obs::{Recorder as _, Value};

/// Environment variable selecting the worker count.
pub const JOBS_ENV: &str = "ABW_JOBS";

/// Parses an `ABW_JOBS`-style value: a positive integer is taken as-is;
/// `0`, garbage, or `None` yield `None` (caller falls back to the
/// available parallelism).
pub fn parse_jobs(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// The number of hardware threads, with a serial fallback when the
/// platform cannot say.
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A parallel executor with a fixed worker count.
///
/// Cheap to construct; experiments typically build one per run via
/// [`Executor::from_env`], or accept one from the caller for explicit
/// control (the serial-equivalence tests pin worker counts this way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    workers: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::from_env()
    }
}

impl Executor {
    /// An executor with `workers` threads; `0` means "use the available
    /// parallelism".
    pub fn new(workers: usize) -> Self {
        Executor {
            workers: if workers == 0 {
                available_workers()
            } else {
                workers
            },
        }
    }

    /// An executor configured from `ABW_JOBS` (see the module docs).
    ///
    /// A **set but unusable** `ABW_JOBS` (`0`, garbage) keeps the
    /// documented all-cores fallback, but is no longer silent: the
    /// first occurrence per process emits an `exec.jobs_fallback` obs
    /// event and a stderr warning, so a misconfigured CI leg that
    /// thinks it pinned the worker count is visible.
    pub fn from_env() -> Self {
        let raw = std::env::var(JOBS_ENV).ok();
        let parsed = raw.as_deref().and_then(|v| parse_jobs(Some(v)));
        if parsed.is_none() {
            if let Some(raw) = raw.as_deref() {
                warn_jobs_fallback(raw);
            }
        }
        Executor {
            workers: parsed.unwrap_or_else(available_workers),
        }
    }

    /// The strictly serial executor (`ABW_JOBS=1` equivalent).
    pub fn serial() -> Self {
        Executor { workers: 1 }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `jobs` and returns their results in submission order.
    ///
    /// With one worker (or one job, or when called from inside another
    /// executor's job) the jobs run serially on the calling thread with
    /// no buffering — the reference behaviour. Otherwise jobs are pulled
    /// by a scoped worker pool; each runs under a thread-local obs
    /// capture, and captures are replayed/absorbed in job-index order at
    /// join time.
    ///
    /// Panics if any job panicked, naming the lowest panicking job
    /// index.
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        // Nested use (a job spawning its own executor) degrades to
        // serial: the enclosing capture already owns this thread's
        // event/manifest routing, and in-order inline execution keeps
        // its buffer identical to a serial run.
        if self.workers <= 1 || n == 1 || global::thread_capture_active() {
            return self.run_serial(jobs);
        }
        self.run_parallel(jobs)
    }

    /// The reference path: in-order, on the calling thread, events and
    /// manifest folds flowing straight to wherever they are routed.
    fn run_serial<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        F: FnOnce() -> T,
    {
        let mut wall_ms = Vec::with_capacity(jobs.len());
        let run_started = Instant::now();
        let results = jobs
            .into_iter()
            .map(|job| {
                let span = prof::span("exec.job");
                let started = Instant::now();
                let out = job();
                wall_ms.push(started.elapsed().as_secs_f64() * 1e3);
                drop(span);
                out
            })
            .collect();
        let busy_ns = run_started.elapsed().as_nanos() as u64;
        let stats = [WorkerStats {
            jobs: wall_ms.len() as u64,
            busy_ns,
            idle_ns: 0,
        }];
        record_worker_stats(&stats);
        record_run(1, &wall_ms, &stats);
        results
    }

    fn run_parallel<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = jobs.len();
        let workers = self.workers.min(n);
        // Capture only the channels that are actually live: buffering
        // events nobody will replay wastes memory on the hot path.
        let capture_events = global::global().is_some();
        let capture_manifest = global::manifest_capture_active();

        struct Slot<T> {
            outcome: std::thread::Result<T>,
            capture: Option<CapturedJob>,
            wall_ms: f64,
        }

        let pending: Vec<Mutex<Option<F>>> =
            jobs.into_iter().map(|f| Mutex::new(Some(f))).collect();
        let slots: Vec<Mutex<Option<Slot<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let worker_stats: Mutex<Vec<WorkerStats>> = Mutex::new(Vec::with_capacity(workers));

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let worker_started = Instant::now();
                    let mut busy_ns = 0u64;
                    let mut jobs_run = 0u64;
                    loop {
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= n {
                            break;
                        }
                        let job = pending[index]
                            .lock()
                            .expect("pending-job mutex poisoned")
                            .take()
                            .expect("each job is taken exactly once");
                        global::begin_thread_capture(capture_events, capture_manifest);
                        let span = prof::span("exec.job");
                        let started = Instant::now();
                        let outcome = catch_unwind(AssertUnwindSafe(job));
                        let elapsed = started.elapsed();
                        drop(span);
                        let wall_ms = elapsed.as_secs_f64() * 1e3;
                        busy_ns = busy_ns.saturating_add(elapsed.as_nanos() as u64);
                        jobs_run += 1;
                        let capture = global::take_thread_capture();
                        if outcome.is_err() {
                            abort.store(true, Ordering::Relaxed);
                        }
                        *slots[index].lock().expect("result-slot mutex poisoned") = Some(Slot {
                            outcome,
                            capture,
                            wall_ms,
                        });
                    }
                    // worker retires: report scheduling efficiency and
                    // fold this thread's profile/cost tallies into the
                    // process totals (span merge is name-keyed, so the
                    // nondeterministic retire order cannot show)
                    let total_ns = worker_started.elapsed().as_nanos() as u64;
                    let stats = WorkerStats {
                        jobs: jobs_run,
                        busy_ns,
                        idle_ns: total_ns.saturating_sub(busy_ns),
                    };
                    if let Ok(mut all) = worker_stats.lock() {
                        all.push(stats);
                    }
                    record_worker_stats(&[stats]);
                    prof::flush_thread();
                });
            }
        });

        // Join in submission order. Surface the lowest-index panic
        // first (a `None` slot is a job that never started because a
        // panic elsewhere aborted the run — never the culprit), then
        // replay traces, absorb manifest fragments, collect results.
        let slots: Vec<Option<Slot<T>>> = slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("result-slot mutex poisoned"))
            .collect();
        if let Some((index, payload)) =
            slots
                .iter()
                .enumerate()
                .find_map(|(i, s)| match s.as_ref().map(|s| &s.outcome) {
                    Some(Err(payload)) => Some((i, payload)),
                    _ => None,
                })
        {
            panic!("job {index} panicked: {}", panic_message(payload.as_ref()));
        }
        let mut results = Vec::with_capacity(n);
        let mut wall_ms = Vec::with_capacity(n);
        for slot in slots {
            let slot = slot.expect("no panic occurred, so every job ran");
            if let Some(capture) = slot.capture {
                global::replay_into_global(&capture.events);
                if let Some(fragment) = capture.manifest {
                    global::with_manifest(|m| {
                        m.absorb(fragment);
                    });
                }
            }
            wall_ms.push(slot.wall_ms);
            results.push(match slot.outcome {
                Ok(value) => value,
                Err(_) => unreachable!("panics surfaced above"),
            });
        }
        let mut stats = worker_stats
            .into_inner()
            .expect("worker-stats mutex poisoned");
        // retire order is nondeterministic; present busiest-first
        stats.sort_by_key(|s| std::cmp::Reverse(s.busy_ns));
        record_run(workers, &wall_ms, &stats);
        results
    }
}

/// Per-worker scheduling totals for one executor run.
#[derive(Debug, Clone, Copy, Default)]
struct WorkerStats {
    /// Jobs this worker completed.
    jobs: u64,
    /// Time spent running jobs.
    busy_ns: u64,
    /// Worker lifetime minus busy time (queue-empty waits, scheduling).
    idle_ns: u64,
}

/// Attaches one worker's busy/idle totals to the profiling tree (under
/// the worker's current span, i.e. the root). No-op while profiling is
/// disabled.
fn record_worker_stats(stats: &[WorkerStats]) {
    for s in stats {
        prof::record("exec.worker.busy", s.jobs, s.busy_ns);
        prof::record("exec.worker.idle", 1, s.idle_ns);
    }
}

/// One-time guard for the `ABW_JOBS` fallback warning.
static JOBS_FALLBACK_WARNED: Once = Once::new();

/// Announces (once per process) that a set `ABW_JOBS` value could not
/// be used and the executor fell back to every core: a point event for
/// traces, a manifest counter, and a stderr line for humans.
fn warn_jobs_fallback(raw: &str) {
    JOBS_FALLBACK_WARNED.call_once(|| {
        let workers = available_workers();
        // deliberate operator-facing warning, not library chatter;
        // lint: allow(print)
        eprintln!(
            "warning: {JOBS_ENV}={raw:?} is not a positive integer; \
             falling back to all {workers} cores"
        );
        if let Some(mut recorder) = global::global() {
            recorder.instant(
                0,
                "exec.jobs_fallback",
                &[("value", Value::Str(raw)), ("workers", workers.into())],
            );
        }
        global::with_manifest(|m| {
            m.add_counter("exec.jobs_fallback", 1);
        });
    });
}

/// Monotonic sequence number distinguishing multiple executor runs
/// inside one manifest.
static RUN_SEQ: AtomicUsize = AtomicUsize::new(0);

/// Records one executor run into the active manifest capture (if any):
/// worker count, per-job wall-clock times, and per-worker busy/idle
/// scheduling totals. Wall times are inherently nondeterministic and
/// live next to `wall_time_secs`, outside every byte-identity
/// guarantee.
fn record_run(workers: usize, wall_ms: &[f64], stats: &[WorkerStats]) {
    global::with_manifest(|m| {
        m.add_counter("exec.jobs", wall_ms.len() as u64);
        let seq = RUN_SEQ.fetch_add(1, Ordering::Relaxed);
        let mut json = format!("{{\"workers\":{workers},\"job_wall_ms\":[");
        for (i, ms) in wall_ms.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            json.push_str(&format!("{ms:.3}"));
        }
        json.push_str("],\"worker_busy_ms\":[");
        for (i, s) in stats.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            json.push_str(&format!("{:.3}", s.busy_ns as f64 / 1e6));
        }
        json.push_str("],\"worker_idle_ms\":[");
        for (i, s) in stats.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            json.push_str(&format!("{:.3}", s.idle_ns as f64 / 1e6));
        }
        json.push_str("]}");
        m.extra.push((format!("exec.run{seq}"), json));
    });
}

/// Best-effort text of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[test]
    fn results_come_back_in_submission_order_under_adversarial_durations() {
        // earlier jobs sleep longer, so completion order is the exact
        // reverse of submission order
        let exec = Executor::new(4);
        let jobs: Vec<_> = (0..8u64)
            .map(|i| {
                move || {
                    std::thread::sleep(Duration::from_millis(8 * (8 - i)));
                    i * 100
                }
            })
            .collect();
        let results = exec.run(jobs);
        assert_eq!(results, (0..8).map(|i| i * 100).collect::<Vec<u64>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let make_jobs = || {
            (0..20u64)
                .map(|i| move || i.wrapping_mul(0x9E3779B97F4A7C15))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            Executor::serial().run(make_jobs()),
            Executor::new(4).run(make_jobs())
        );
    }

    #[test]
    fn panicking_job_fails_the_run_with_its_index() {
        let exec = Executor::new(3);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
                Box::new(|| 1),
                Box::new(|| panic!("deliberate failure")),
                Box::new(|| 3),
            ];
            exec.run(jobs);
        }));
        let payload = caught.expect_err("run must propagate the panic");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            message.contains("job 1 panicked"),
            "message should name job 1: {message:?}"
        );
        assert!(
            message.contains("deliberate failure"),
            "message should carry the original payload: {message:?}"
        );
    }

    #[test]
    fn serial_executor_spawns_no_threads() {
        // thread identity proves the serial path stays on the caller
        let caller = std::thread::current().id();
        let jobs: Vec<_> = (0..2)
            .map(|_| move || std::thread::current().id() == caller)
            .collect();
        let results = Executor::serial().run(jobs);
        assert_eq!(results, vec![true, true]);
    }

    #[test]
    fn nested_runs_degrade_to_serial_without_deadlock() {
        let outer = Executor::new(4);
        let hits = AtomicU64::new(0);
        let results = outer.run(
            (0..4)
                .map(|_| {
                    let hits = &hits;
                    move || {
                        // inner executor inside a worker job: must inline
                        let inner = Executor::new(4);
                        let inner_results = inner.run(vec![|| 1u64, || 2u64]);
                        hits.fetch_add(1, Ordering::Relaxed);
                        inner_results.iter().sum::<u64>()
                    }
                })
                .collect(),
        );
        assert_eq!(results, vec![3, 3, 3, 3]);
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn jobs_env_parsing_falls_back_on_zero_and_garbage() {
        assert_eq!(parse_jobs(Some("4")), Some(4));
        assert_eq!(parse_jobs(Some(" 2 ")), Some(2));
        assert_eq!(parse_jobs(Some("1")), Some(1));
        assert_eq!(parse_jobs(Some("0")), None, "0 falls back");
        assert_eq!(parse_jobs(Some("-3")), None, "negative falls back");
        assert_eq!(parse_jobs(Some("lots")), None, "garbage falls back");
        assert_eq!(parse_jobs(Some("")), None, "empty falls back");
        assert_eq!(parse_jobs(None), None, "unset falls back");
    }

    #[test]
    fn from_env_with_garbage_falls_back_to_all_cores() {
        let prev = std::env::var(JOBS_ENV).ok();
        std::env::set_var(JOBS_ENV, "lots");
        let exec = Executor::from_env();
        match prev {
            Some(v) => std::env::set_var(JOBS_ENV, v),
            None => std::env::remove_var(JOBS_ENV),
        }
        assert_eq!(exec.workers(), available_workers());
    }

    #[test]
    fn record_run_reports_worker_scheduling_totals() {
        global::begin_thread_capture(false, true);
        let results = Executor::new(4).run((0..6u64).map(|i| move || i).collect::<Vec<_>>());
        assert_eq!(results, vec![0, 1, 2, 3, 4, 5]);
        let captured = global::take_thread_capture().expect("capture active");
        let fragment = captured.manifest.expect("manifest fragment");
        let (_, run_json) = fragment
            .extra
            .iter()
            .find(|(k, _)| k.starts_with("exec.run"))
            .expect("executor recorded its run");
        assert!(run_json.contains("\"job_wall_ms\":["));
        assert!(run_json.contains("\"worker_busy_ms\":["));
        assert!(run_json.contains("\"worker_idle_ms\":["));
    }

    #[test]
    fn executor_new_zero_means_available_parallelism() {
        assert_eq!(Executor::new(0).workers(), available_workers());
        assert_eq!(Executor::new(7).workers(), 7);
        assert!(Executor::from_env().workers() >= 1);
    }

    #[test]
    fn empty_job_list_is_fine() {
        let results: Vec<u8> = Executor::new(4).run(Vec::<fn() -> u8>::new());
        assert!(results.is_empty());
    }
}
