//! Looping short transfers: the "aggregate of many short TCP transfers"
//! cross traffic of Figure 7.
//!
//! A [`ShortFlowAgent`] embeds a TCP sender; when its size-limited
//! transfer completes, the agent idles for an exponential think time and
//! starts the next transfer with fresh congestion state (slow start,
//! cwnd 1) on the same sequence space. A pool of such agents models
//! web-like "mice" whose aggregate is congestion-responsive but
//! individually short-lived.

use abw_netsim::{Agent, AgentId, Ctx, FlowId, Packet, PathId, SimDuration};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::sender::{TcpConfig, TcpSender};

const TIMER_RESTART: u64 = 999_999;

/// A TCP source that repeats size-limited transfers with exponential
/// think times between them.
pub struct ShortFlowAgent {
    transfer_segments: u64,
    mean_think: SimDuration,
    rng: StdRng,
    inner: TcpSender,
    restart_pending: bool,
    mss: u32,
    /// Completed transfers.
    pub completed_transfers: u64,
}

impl ShortFlowAgent {
    /// Repeats `transfer_segments`-segment transfers over `path`, with
    /// `Exp(mean_think)` pauses between transfers.
    pub fn new(
        path: PathId,
        dst: AgentId,
        flow: FlowId,
        transfer_segments: u64,
        mean_think: SimDuration,
        seed: u64,
    ) -> Self {
        assert!(transfer_segments > 0, "empty transfer");
        let mut rng = StdRng::seed_from_u64(seed);
        // desynchronise the pool: the first transfer starts after one
        // think time
        let first_delay = exp_duration(&mut rng, mean_think);
        let config = TcpConfig::bulk(path, dst, flow)
            .with_limit(transfer_segments)
            .with_start_after(first_delay);
        let mss = config.mss;
        ShortFlowAgent {
            transfer_segments,
            mean_think,
            rng,
            inner: TcpSender::new(config),
            restart_pending: false,
            mss,
            completed_transfers: 0,
        }
    }

    fn maybe_schedule_restart(&mut self, ctx: &mut Ctx<'_>) {
        if self.restart_pending || self.inner.finished_at.is_none() {
            return;
        }
        self.restart_pending = true;
        self.completed_transfers += 1;
        let think = exp_duration(&mut self.rng, self.mean_think);
        ctx.schedule_in(think, TIMER_RESTART);
    }

    /// Total segments acknowledged across all transfers.
    pub fn total_acked_segments(&self) -> u64 {
        self.inner.acked_segments
    }

    /// Mean aggregate rate this agent injected, in bits/s over `elapsed`.
    pub fn mean_rate_bps(&self, elapsed: SimDuration) -> f64 {
        if elapsed == SimDuration::ZERO {
            return 0.0;
        }
        self.inner.acked_segments as f64 * self.mss as f64 * 8.0 / elapsed.as_secs_f64()
    }
}

fn exp_duration(rng: &mut StdRng, mean: SimDuration) -> SimDuration {
    let u: f64 = 1.0 - rng.random::<f64>();
    SimDuration::from_secs_f64(-mean.as_secs_f64() * u.ln())
}

impl Agent for ShortFlowAgent {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.inner.on_start(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TIMER_RESTART {
            self.restart_pending = false;
            self.inner.restart_transfer(self.transfer_segments, ctx);
            return;
        }
        self.inner.on_timer(ctx, token);
        self.maybe_schedule_restart(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: Packet) {
        self.inner.on_packet(ctx, packet);
        self.maybe_schedule_restart(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TcpSink;
    use abw_netsim::{LinkConfig, SimTime, Simulator};

    #[test]
    fn short_flows_loop() {
        let mut sim = Simulator::new();
        let link = sim.add_link(
            LinkConfig::new(10e6, SimDuration::from_millis(5)).with_queue_packets(64, 1500),
        );
        let path = sim.add_path(vec![link]);
        let sink = sim.add_agent(Box::new(TcpSink::new(SimDuration::from_millis(5))));
        let agent = sim.add_agent(Box::new(ShortFlowAgent::new(
            path,
            sink,
            FlowId(7),
            20,
            SimDuration::from_millis(200),
            3,
        )));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(30));
        let a: &ShortFlowAgent = sim.agent(agent);
        assert!(
            a.completed_transfers >= 10,
            "only {} transfers completed",
            a.completed_transfers
        );
        assert!(a.total_acked_segments() >= a.completed_transfers * 20);
    }

    #[test]
    fn pool_generates_sustained_load() {
        let mut sim = Simulator::new();
        let link = sim.add_link(
            LinkConfig::new(50e6, SimDuration::from_millis(5)).with_queue_packets(128, 1500),
        );
        let path = sim.add_path(vec![link]);
        let mut agents = Vec::new();
        for i in 0..20 {
            let sink = sim.add_agent(Box::new(TcpSink::new(SimDuration::from_millis(5))));
            agents.push(sim.add_agent(Box::new(ShortFlowAgent::new(
                path,
                sink,
                FlowId(100 + i as u32),
                15,
                SimDuration::from_millis(300),
                1000 + i,
            ))));
        }
        let horizon = SimDuration::from_secs(20);
        sim.run_until(SimTime::ZERO + horizon);
        let total: f64 = agents
            .iter()
            .map(|&a| sim.agent::<ShortFlowAgent>(a).mean_rate_bps(horizon))
            .sum();
        assert!(total > 1e6, "aggregate rate {:.2} Mb/s", total / 1e6);
        assert!(total < 50e6);
    }
}
