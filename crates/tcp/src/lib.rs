//! # abw-tcp
//!
//! A TCP Reno model running over `abw-netsim`, built for Pitfall 10 of the
//! paper: *"evaluating the accuracy of avail-bw estimation through
//! comparisons with bulk TCP throughput"*. Figure 7 plots the throughput
//! of a bulk transfer against the receiver's advertised window under three
//! cross-traffic types; reproducing it needs:
//!
//! * a [`sender::TcpSender`] with slow start, congestion avoidance, fast
//!   retransmit/recovery, a retransmission timeout, and a configurable
//!   receiver-advertised window (`Wr`, in segments),
//! * a [`sink::TcpSink`] generating cumulative ACKs over an uncongested
//!   reverse path,
//! * a [`short::ShortFlowAgent`] that loops size-limited transfers with
//!   exponential think times — an aggregate of "mice" as responsive cross
//!   traffic.
//!
//! Sequence numbers are in segments (1 segment = 1 MSS on the wire), not
//! bytes; the experiments only need packet-granularity dynamics.

pub mod sender;
pub mod short;
pub mod sink;

pub use sender::{TcpConfig, TcpSender};
pub use short::ShortFlowAgent;
pub use sink::TcpSink;
