//! TCP Reno sender.

use std::collections::HashMap;

use abw_netsim::{Agent, AgentId, Ctx, FlowId, Packet, PacketKind, PathId, SimDuration, SimTime};

/// Static parameters of a TCP connection.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Path from sender to receiver.
    pub path: PathId,
    /// The receiving [`crate::TcpSink`] agent.
    pub dst: AgentId,
    /// Flow id for accounting.
    pub flow: FlowId,
    /// Segment size on the wire, in bytes.
    pub mss: u32,
    /// Receiver advertised window in segments — the `Wr` axis of Figure 7.
    pub rwnd: u64,
    /// Total segments to transfer; `None` means a bulk (unbounded) source.
    pub limit_segments: Option<u64>,
    /// Initial retransmission timeout; also the RTO used throughout when
    /// `adaptive_rto` is off.
    pub rto: SimDuration,
    /// Estimate the RTO from measured RTTs (RFC 6298 smoothing with
    /// Karn's rule); the initial value is `rto` until the first sample.
    pub adaptive_rto: bool,
    /// Lower bound on the adaptive RTO.
    pub min_rto: SimDuration,
    /// Delay before the connection starts sending.
    pub start_after: SimDuration,
}

impl TcpConfig {
    /// A bulk transfer with 1500 B segments, a 64-segment window and a
    /// 1 s RTO, starting immediately.
    pub fn bulk(path: PathId, dst: AgentId, flow: FlowId) -> Self {
        TcpConfig {
            path,
            dst,
            flow,
            mss: 1500,
            rwnd: 64,
            limit_segments: None,
            rto: SimDuration::from_millis(1000),
            adaptive_rto: true,
            min_rto: SimDuration::from_millis(200),
            start_after: SimDuration::ZERO,
        }
    }

    /// Sets the receiver advertised window (segments).
    pub fn with_rwnd(mut self, rwnd: u64) -> Self {
        assert!(rwnd >= 1, "rwnd must be at least one segment");
        self.rwnd = rwnd;
        self
    }

    /// Limits the transfer to `segments` segments.
    pub fn with_limit(mut self, segments: u64) -> Self {
        self.limit_segments = Some(segments);
        self
    }

    /// Sets a fixed retransmission timeout (disables RTT adaptation).
    pub fn with_rto(mut self, rto: SimDuration) -> Self {
        self.rto = rto;
        self.adaptive_rto = false;
        self
    }

    /// Delays the start of the transfer.
    pub fn with_start_after(mut self, d: SimDuration) -> Self {
        self.start_after = d;
        self
    }
}

/// Congestion-control phase, exposed for tests and debugging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Exponential window growth below `ssthresh`.
    SlowStart,
    /// Linear window growth above `ssthresh`.
    CongestionAvoidance,
    /// NewReno-less fast recovery after a triple duplicate ACK.
    FastRecovery,
}

impl Phase {
    /// Lower-case label, as used in trace events.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::SlowStart => "slow_start",
            Phase::CongestionAvoidance => "congestion_avoidance",
            Phase::FastRecovery => "fast_recovery",
        }
    }
}

const TIMER_SEND: u64 = 1;
const TIMER_RTO_BASE: u64 = 1000;

/// A TCP Reno sender agent.
///
/// Implements slow start, congestion avoidance (one MSS per RTT), fast
/// retransmit on the third duplicate ACK, fast recovery, and a
/// retransmission timeout that adapts to the measured RTT (RFC 6298
/// smoothing, Karn's rule, exponential backoff). The window is
/// `min(cwnd, rwnd)`, so a small `rwnd` yields the *window-limited*
/// flows used as responsive cross traffic in Figure 7.
pub struct TcpSender {
    config: TcpConfig,
    /// Lowest unacknowledged segment.
    una: u64,
    /// Next segment to send.
    next_seq: u64,
    // lint: allow(units) -- canonical TCP name; unit is segments
    cwnd: f64,
    // lint: allow(units) -- canonical TCP name; unit is segments
    ssthresh: f64,
    dup_acks: u32,
    /// End of the current fast-recovery episode (`next_seq` at entry).
    recover: u64,
    phase: Phase,
    /// Invalidates stale RTO timers: only the timer carrying the current
    /// epoch fires.
    rto_epoch: u64,
    rto_backoff: u32,
    /// First-transmission times of in-flight segments (absent once
    /// retransmitted — Karn's rule excludes them from RTT sampling).
    send_times: HashMap<u64, SimTime>,
    /// Smoothed RTT (seconds); `None` before the first sample.
    srtt: Option<f64>,
    /// RTT variation (seconds).
    // lint: allow(units) -- canonical RFC 6298 name; seconds
    rttvar: f64,
    started_at: Option<SimTime>,
    /// Completion time (size-limited transfers only).
    pub finished_at: Option<SimTime>,
    /// Segments acknowledged.
    pub acked_segments: u64,
    /// Total segments put on the wire, including retransmissions.
    pub transmitted_segments: u64,
    /// Retransmitted segments.
    pub retransmits: u64,
}

impl TcpSender {
    /// Creates an idle sender; transmission starts `start_after` into the
    /// simulation.
    pub fn new(config: TcpConfig) -> Self {
        assert!(config.mss > 0, "zero MSS");
        TcpSender {
            una: 0,
            next_seq: 0,
            cwnd: 1.0,
            ssthresh: config.rwnd.max(2) as f64,
            dup_acks: 0,
            recover: 0,
            phase: Phase::SlowStart,
            rto_epoch: 0,
            rto_backoff: 0,
            send_times: HashMap::new(),
            srtt: None,
            rttvar: 0.0,
            started_at: None,
            finished_at: None,
            acked_segments: 0,
            transmitted_segments: 0,
            retransmits: 0,
            config,
        }
    }

    /// Current congestion-control phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Starts a new size-limited transfer on the same sequence space:
    /// extends the segment limit by `additional` and resets the
    /// congestion state to a fresh connection's (slow start, cwnd 1).
    ///
    /// Used by looping short-flow sources: keeping the sequence space
    /// continuous means ACKs still in flight from the previous transfer
    /// cannot be mistaken for acknowledgements of new data.
    ///
    /// Panics on a bulk (unlimited) sender.
    pub fn restart_transfer(&mut self, additional: u64, ctx: &mut Ctx<'_>) {
        let limit = self
            .config
            .limit_segments
            .expect("restart_transfer on a bulk sender");
        self.config.limit_segments = Some(limit + additional);
        self.cwnd = 1.0;
        self.ssthresh = self.config.rwnd.max(2) as f64;
        self.phase = Phase::SlowStart;
        self.dup_acks = 0;
        self.rto_backoff = 0;
        self.finished_at = None;
        self.pump(ctx);
    }

    /// Current congestion window in segments.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Smoothed RTT estimate in seconds (`None` before the first
    /// un-retransmitted segment is acknowledged).
    pub fn srtt_secs(&self) -> Option<f64> {
        self.srtt
    }

    /// The retransmission timeout currently in force (before backoff).
    pub fn current_rto(&self) -> SimDuration {
        if !self.config.adaptive_rto {
            return self.config.rto;
        }
        match self.srtt {
            None => self.config.rto,
            Some(srtt) => {
                let rto = SimDuration::from_secs_f64(srtt + 4.0 * self.rttvar);
                rto.max(self.config.min_rto)
            }
        }
    }

    /// RFC 6298 smoothing of one RTT sample.
    fn record_rtt(&mut self, sample: f64) {
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2.0;
            }
            Some(srtt) => {
                self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - sample).abs();
                self.srtt = Some(0.875 * srtt + 0.125 * sample);
            }
        }
    }

    /// Mean goodput in bits/s between the first transmission and `now`
    /// (or completion for size-limited transfers).
    pub fn goodput_bps(&self, now: SimTime) -> f64 {
        let Some(start) = self.started_at else {
            return 0.0;
        };
        let end = self.finished_at.unwrap_or(now);
        let secs = end.saturating_since(start).as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.acked_segments as f64 * self.config.mss as f64 * 8.0 / secs
    }

    fn effective_window(&self) -> u64 {
        (self.cwnd.floor() as u64).clamp(1, self.config.rwnd)
    }

    fn done_sending(&self) -> bool {
        matches!(self.config.limit_segments, Some(limit) if self.next_seq >= limit)
    }

    fn all_acked(&self) -> bool {
        matches!(self.config.limit_segments, Some(limit) if self.una >= limit)
    }

    fn segment(&self, seq: u64) -> Packet {
        Packet {
            id: 0,
            flow: self.config.flow,
            src: AgentId(usize::MAX), // filled by Ctx::send
            dst: self.config.dst,
            path: self.config.path,
            hop: 0,
            size: self.config.mss,
            seq,
            sent_at: SimTime::ZERO, // filled by Ctx::send
            ttl: abw_netsim::DEFAULT_TTL,
            kind: PacketKind::TcpData,
        }
    }

    /// Sends as much new data as the window allows.
    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        let window_end = self.una + self.effective_window();
        while self.next_seq < window_end && !self.done_sending() {
            if self.started_at.is_none() {
                self.started_at = Some(ctx.now());
            }
            let p = self.segment(self.next_seq);
            ctx.send(p);
            self.send_times.insert(self.next_seq, ctx.now());
            self.next_seq += 1;
            self.transmitted_segments += 1;
        }
        self.arm_rto(ctx);
    }

    fn retransmit_una(&mut self, ctx: &mut Ctx<'_>) {
        let p = self.segment(self.una);
        ctx.send(p);
        // Karn's rule: a retransmitted segment's ACK is ambiguous, so it
        // must not produce an RTT sample
        self.send_times.remove(&self.una);
        self.transmitted_segments += 1;
        self.retransmits += 1;
        self.arm_rto(ctx);
    }

    /// (Re)arms the retransmission timer by bumping the epoch; stale
    /// timers are ignored in `on_timer`.
    fn arm_rto(&mut self, ctx: &mut Ctx<'_>) {
        if self.una == self.next_seq {
            // nothing in flight
            return;
        }
        self.rto_epoch += 1;
        let backoff = self.current_rto().mul(1u64 << self.rto_backoff.min(6));
        ctx.schedule_in(backoff, TIMER_RTO_BASE + self.rto_epoch);
    }

    fn on_new_ack(&mut self, ctx: &mut Ctx<'_>, ack: u64) {
        let newly = ack - self.una;
        // RTT from the newest acknowledged, never-retransmitted segment
        if self.config.adaptive_rto {
            if let Some(sent) = self.send_times.get(&(ack - 1)).copied() {
                self.record_rtt(ctx.now().since(sent).as_secs_f64());
            }
        }
        for seq in self.una..ack {
            self.send_times.remove(&seq);
        }
        self.acked_segments += newly;
        self.una = ack;
        self.dup_acks = 0;
        self.rto_backoff = 0;

        match self.phase {
            Phase::FastRecovery => {
                if ack >= self.recover {
                    // recovery complete: deflate
                    self.cwnd = self.ssthresh;
                    self.phase = if self.cwnd < self.ssthresh {
                        Phase::SlowStart
                    } else {
                        Phase::CongestionAvoidance
                    };
                } else {
                    // partial ACK (NewReno-style): retransmit next hole
                    self.retransmit_una(ctx);
                    self.cwnd = (self.cwnd - newly as f64 + 1.0).max(1.0);
                }
            }
            Phase::SlowStart => {
                self.cwnd += newly as f64;
                if self.cwnd >= self.ssthresh {
                    self.phase = Phase::CongestionAvoidance;
                }
            }
            Phase::CongestionAvoidance => {
                self.cwnd += newly as f64 / self.cwnd;
            }
        }

        if ctx.recorder_active() {
            ctx.emit(
                "tcp.cwnd",
                &[
                    ("flow", self.config.flow.0.into()),
                    ("cwnd", self.cwnd.into()),
                    ("ssthresh", self.ssthresh.into()),
                    ("phase", self.phase.as_str().into()),
                ],
            );
        }
        if self.all_acked() {
            if self.finished_at.is_none() {
                self.finished_at = Some(ctx.now());
            }
            return;
        }
        self.pump(ctx);
    }

    fn on_dup_ack(&mut self, ctx: &mut Ctx<'_>) {
        if self.phase == Phase::FastRecovery {
            // window inflation: one more segment may leave per dup ACK
            self.cwnd += 1.0;
            self.pump(ctx);
            return;
        }
        self.dup_acks += 1;
        if self.dup_acks == 3 {
            // fast retransmit
            let flight = (self.next_seq - self.una) as f64;
            self.ssthresh = (flight / 2.0).max(2.0);
            self.recover = self.next_seq;
            self.phase = Phase::FastRecovery;
            self.cwnd = self.ssthresh + 3.0;
            ctx.emit(
                "tcp.loss",
                &[
                    ("flow", self.config.flow.0.into()),
                    ("kind", "fast_retransmit".into()),
                    ("cwnd", self.cwnd.into()),
                    ("ssthresh", self.ssthresh.into()),
                ],
            );
            self.retransmit_una(ctx);
        }
    }
}

impl Agent for TcpSender {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.schedule_in(self.config.start_after, TIMER_SEND);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TIMER_SEND {
            self.pump(ctx);
            return;
        }
        // RTO timer: only the latest epoch counts
        if token != TIMER_RTO_BASE + self.rto_epoch {
            return;
        }
        if self.una == self.next_seq {
            return; // everything acked in the meantime
        }
        // timeout: collapse to slow start and retransmit the hole
        let flight = (self.next_seq - self.una) as f64;
        self.ssthresh = (flight / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.dup_acks = 0;
        self.phase = Phase::SlowStart;
        self.rto_backoff += 1;
        ctx.emit(
            "tcp.loss",
            &[
                ("flow", self.config.flow.0.into()),
                ("kind", "timeout".into()),
                ("cwnd", self.cwnd.into()),
                ("ssthresh", self.ssthresh.into()),
            ],
        );
        self.retransmit_una(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: Packet) {
        let PacketKind::TcpAck { ack } = packet.kind else {
            return;
        };
        if ack > self.una {
            self.on_new_ack(ctx, ack);
        } else if ack == self.una && self.una < self.next_seq {
            self.on_dup_ack(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TcpSink;
    use abw_netsim::{LinkConfig, Simulator};

    /// Bottleneck topology: one link, given capacity/propagation/buffer.
    fn topo(
        capacity_bps: f64,
        prop: SimDuration,
        buffer_pkts: u64,
    ) -> (Simulator, PathId, AgentId) {
        let mut sim = Simulator::new();
        let cfg = LinkConfig::new(capacity_bps, prop).with_queue_packets(buffer_pkts, 1500);
        let link = sim.add_link(cfg);
        let path = sim.add_path(vec![link]);
        let sink = sim.add_agent(Box::new(TcpSink::new(prop)));
        (sim, path, sink)
    }

    #[test]
    fn size_limited_transfer_completes() {
        let (mut sim, path, sink) = topo(10e6, SimDuration::from_millis(10), 100);
        let cfg = TcpConfig::bulk(path, sink, FlowId(1)).with_limit(200);
        let sender = sim.add_agent(Box::new(TcpSender::new(cfg)));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(30));
        let s: &TcpSender = sim.agent(sender);
        assert!(s.finished_at.is_some(), "transfer did not complete");
        assert_eq!(s.acked_segments, 200);
        let k: &TcpSink = sim.agent(sink);
        assert_eq!(k.cumulative_ack(), 200);
    }

    #[test]
    fn bulk_saturates_an_idle_link() {
        // 10 Mb/s, 10 ms one-way: BDP ≈ 17 segments < rwnd 64
        let (mut sim, path, sink) = topo(10e6, SimDuration::from_millis(10), 100);
        let cfg = TcpConfig::bulk(path, sink, FlowId(1));
        let sender = sim.add_agent(Box::new(TcpSender::new(cfg)));
        let horizon = SimTime::ZERO + SimDuration::from_secs(20);
        sim.run_until(horizon);
        let s: &TcpSender = sim.agent(sender);
        let rate = s.goodput_bps(horizon);
        assert!(
            rate > 0.9 * 10e6,
            "bulk TCP reached only {:.1} Mb/s",
            rate / 1e6
        );
    }

    #[test]
    fn window_limited_throughput_is_wr_over_rtt() {
        // tiny window on a fat link: throughput = Wr * MSS * 8 / RTT
        let (mut sim, path, sink) = topo(100e6, SimDuration::from_millis(20), 200);
        let cfg = TcpConfig::bulk(path, sink, FlowId(1)).with_rwnd(4);
        let sender = sim.add_agent(Box::new(TcpSender::new(cfg)));
        let horizon = SimTime::ZERO + SimDuration::from_secs(30);
        sim.run_until(horizon);
        let s: &TcpSender = sim.agent(sender);
        let rate = s.goodput_bps(horizon);
        // RTT = 40 ms + serialisation; expected ≈ 4 * 1500 * 8 / 0.04 = 1.2 Mb/s
        let expected = 4.0 * 1500.0 * 8.0 / 0.040;
        assert!(
            (rate - expected).abs() / expected < 0.1,
            "rate {:.0} vs expected {:.0}",
            rate,
            expected
        );
    }

    #[test]
    fn recovers_from_drops_in_a_small_buffer() {
        // buffer of 8 packets forces periodic loss; TCP must keep making
        // progress through fast retransmit and RTO
        let (mut sim, path, sink) = topo(5e6, SimDuration::from_millis(10), 8);
        let cfg = TcpConfig::bulk(path, sink, FlowId(1));
        let sender = sim.add_agent(Box::new(TcpSender::new(cfg)));
        let horizon = SimTime::ZERO + SimDuration::from_secs(30);
        sim.run_until(horizon);
        let s: &TcpSender = sim.agent(sender);
        assert!(s.retransmits > 0, "expected losses with an 8-packet buffer");
        let rate = s.goodput_bps(horizon);
        assert!(
            rate > 0.5 * 5e6,
            "goodput collapsed to {:.2} Mb/s",
            rate / 1e6
        );
        // no spurious over-delivery: goodput cannot exceed capacity
        assert!(rate <= 5e6 * 1.01);
    }

    #[test]
    fn two_flows_share_a_bottleneck() {
        let (mut sim, path, sink1) = topo(10e6, SimDuration::from_millis(10), 30);
        let sink2 = sim.add_agent(Box::new(TcpSink::new(SimDuration::from_millis(10))));
        let s1 = sim.add_agent(Box::new(TcpSender::new(TcpConfig::bulk(
            path,
            sink1,
            FlowId(1),
        ))));
        let s2 = sim.add_agent(Box::new(TcpSender::new(
            TcpConfig::bulk(path, sink2, FlowId(2)).with_start_after(SimDuration::from_millis(250)),
        )));
        let horizon = SimTime::ZERO + SimDuration::from_secs(60);
        sim.run_until(horizon);
        let r1 = sim.agent::<TcpSender>(s1).goodput_bps(horizon);
        let r2 = sim.agent::<TcpSender>(s2).goodput_bps(horizon);
        let total = r1 + r2;
        assert!(
            total > 0.85 * 10e6,
            "flows under-utilise the link: {:.1} Mb/s",
            total / 1e6
        );
        // rough fairness: neither flow starves
        assert!(
            r1 > 0.15 * total,
            "flow 1 starved: {:.1}%",
            100.0 * r1 / total
        );
        assert!(
            r2 > 0.15 * total,
            "flow 2 starved: {:.1}%",
            100.0 * r2 / total
        );
    }

    #[test]
    fn srtt_converges_to_the_path_rtt() {
        // idle 100 Mb/s link, 20 ms each way: RTT ≈ 40 ms + serialisation
        let (mut sim, path, sink) = topo(100e6, SimDuration::from_millis(20), 200);
        let cfg = TcpConfig::bulk(path, sink, FlowId(1)).with_rwnd(8);
        let sender = sim.add_agent(Box::new(TcpSender::new(cfg)));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(5));
        let s: &TcpSender = sim.agent(sender);
        let srtt = s.srtt_secs().expect("samples collected");
        assert!(
            (srtt - 0.040).abs() < 0.005,
            "srtt {:.1} ms, path RTT ~40 ms",
            srtt * 1e3
        );
        // the adaptive RTO sits at or above the floor and well below the
        // 1 s initial value
        let rto = s.current_rto().as_secs_f64();
        assert!((0.04..0.5).contains(&rto), "RTO {:.0} ms", rto * 1e3);
    }

    #[test]
    fn fixed_rto_stays_fixed() {
        let (mut sim, path, sink) = topo(100e6, SimDuration::from_millis(10), 200);
        let cfg = TcpConfig::bulk(path, sink, FlowId(1)).with_rto(SimDuration::from_millis(700));
        let sender = sim.add_agent(Box::new(TcpSender::new(cfg)));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(3));
        let s: &TcpSender = sim.agent(sender);
        assert_eq!(s.current_rto(), SimDuration::from_millis(700));
    }

    #[test]
    fn slow_start_grows_exponentially_initially() {
        let (mut sim, path, sink) = topo(100e6, SimDuration::from_millis(50), 500);
        let cfg = TcpConfig::bulk(path, sink, FlowId(1)).with_rwnd(256);
        let sender = sim.add_agent(Box::new(TcpSender::new(cfg)));
        // after ~3 RTTs (300 ms) cwnd should have grown well beyond 1
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(350));
        let s: &TcpSender = sim.agent(sender);
        assert!(s.cwnd() >= 8.0, "cwnd = {}", s.cwnd());
        assert_eq!(s.phase(), Phase::SlowStart);
    }
}
