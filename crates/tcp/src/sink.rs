//! The TCP receiver: in-order reassembly and cumulative ACKs.

use std::collections::BTreeSet;

#[cfg(test)]
use abw_netsim::FlowId;
use abw_netsim::{Agent, AgentId, Ctx, Packet, PacketKind, PathId, SimDuration, SimTime};

/// A TCP receiver that acknowledges every arriving segment with a
/// cumulative ACK sent over an uncongested reverse path.
///
/// The reverse-path delay models the ACK's propagation back to the sender;
/// reverse-path congestion is out of scope for the paper's experiments
/// (DESIGN.md §6).
pub struct TcpSink {
    /// Next in-order segment expected (= the cumulative ACK value).
    expected: u64,
    /// Out-of-order segments above `expected`.
    out_of_order: BTreeSet<u64>,
    ack_delay: SimDuration,
    /// Segments received in order (duplicates not counted).
    pub received_segments: u64,
    /// Bytes received (payload-carrying packets only, duplicates counted).
    pub received_bytes: u64,
    /// Arrival time of the first data segment.
    pub first_data: Option<SimTime>,
    /// Arrival time of the latest data segment.
    pub last_data: Option<SimTime>,
}

impl TcpSink {
    /// Creates a sink whose ACKs reach the sender after `ack_delay`.
    pub fn new(ack_delay: SimDuration) -> Self {
        TcpSink {
            expected: 0,
            out_of_order: BTreeSet::new(),
            ack_delay,
            received_segments: 0,
            received_bytes: 0,
            first_data: None,
            last_data: None,
        }
    }

    /// The current cumulative ACK (next expected segment).
    pub fn cumulative_ack(&self) -> u64 {
        self.expected
    }
}

impl Agent for TcpSink {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: Packet) {
        if packet.kind != PacketKind::TcpData {
            return;
        }
        self.received_bytes += packet.size as u64;
        if self.first_data.is_none() {
            self.first_data = Some(ctx.now());
        }
        self.last_data = Some(ctx.now());

        if packet.seq == self.expected {
            self.expected += 1;
            self.received_segments += 1;
            // drain any contiguous out-of-order run
            while self.out_of_order.remove(&self.expected) {
                self.expected += 1;
                self.received_segments += 1;
            }
        } else if packet.seq > self.expected && self.out_of_order.insert(packet.seq) {
            self.received_segments += 1;
        }
        // duplicate/old segments still trigger a (duplicate) ACK

        let ack = Packet {
            id: 0,
            flow: packet.flow,
            src: AgentId(usize::MAX), // filled by send_direct
            dst: packet.src,
            path: PathId(0), // unused on the direct reverse path
            hop: 0,
            size: 40,
            seq: self.expected,
            sent_at: SimTime::ZERO, // filled by send_direct
            ttl: abw_netsim::DEFAULT_TTL,
            kind: PacketKind::TcpAck { ack: self.expected },
        };
        ctx.send_direct(packet.src, ack, self.ack_delay);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abw_netsim::Simulator;

    /// Injects a fixed sequence of segment numbers at 1 ms intervals.
    struct Feeder {
        to: AgentId,
        seqs: Vec<u64>,
        next: usize,
    }
    impl Agent for Feeder {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.schedule_in(SimDuration::from_millis(1), 0);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
            if self.next >= self.seqs.len() {
                return;
            }
            let seq = self.seqs[self.next];
            self.next += 1;
            let p = Packet {
                id: 0,
                flow: FlowId(1),
                src: AgentId(usize::MAX),
                dst: self.to,
                path: PathId(0),
                hop: 0,
                size: 1500,
                seq,
                sent_at: SimTime::ZERO,
                ttl: abw_netsim::DEFAULT_TTL,
                kind: PacketKind::TcpData,
            };
            ctx.send_direct(self.to, p, SimDuration::ZERO);
            ctx.schedule_in(SimDuration::from_millis(1), 0);
        }
    }

    fn run(seqs: Vec<u64>) -> (Vec<u64>, u64) {
        let mut sim = Simulator::new();
        let sink = sim.add_agent(Box::new(TcpSink::new(SimDuration::from_millis(5))));
        // send_direct stamps packet.src with the feeder's id, so the
        // sink's ACKs come back to the feeder itself.
        struct FeederWithAcks {
            inner: Feeder,
            acks: Vec<u64>,
        }
        impl Agent for FeederWithAcks {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                self.inner.on_start(ctx);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, t: u64) {
                self.inner.on_timer(ctx, t);
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, p: Packet) {
                if let PacketKind::TcpAck { ack } = p.kind {
                    self.acks.push(ack);
                }
            }
        }
        let feeder = sim.add_agent(Box::new(FeederWithAcks {
            inner: Feeder {
                to: sink,
                seqs,
                next: 0,
            },
            acks: Vec::new(),
        }));
        sim.run_to_quiescence();
        let acks = sim.agent::<FeederWithAcks>(feeder).acks.clone();
        let expected = sim.agent::<TcpSink>(sink).cumulative_ack();
        (acks, expected)
    }

    #[test]
    fn in_order_acks_advance() {
        let (acks, expected) = run(vec![0, 1, 2, 3]);
        assert_eq!(acks, vec![1, 2, 3, 4]);
        assert_eq!(expected, 4);
    }

    #[test]
    fn gap_produces_duplicate_acks_then_catches_up() {
        // segment 1 lost: 0, 2, 3 arrive, then 1 retransmitted
        let (acks, expected) = run(vec![0, 2, 3, 1]);
        assert_eq!(acks, vec![1, 1, 1, 4]);
        assert_eq!(expected, 4);
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let (acks, expected) = run(vec![0, 0, 1, 1]);
        assert_eq!(expected, 2);
        assert_eq!(acks, vec![1, 1, 2, 2]);
    }
}
