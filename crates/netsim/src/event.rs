//! The discrete-event queue.
//!
//! Events are ordered by `(time, insertion sequence)`: ties in simulated
//! time resolve in insertion order, which makes every run bit-identical
//! for a given seed — a property the integration tests assert.
//!
//! The queue is a calendar queue: a ring of fixed-width time buckets
//! plus an overflow heap for events beyond the ring's horizon. Compared
//! to the original `BinaryHeap` (kept below as `baseline::BaselineQueue`
//! for the equivalence property test), entries stay put in their bucket
//! instead of being sifted on every operation, empty stretches of
//! simulated time are skipped a 64-bucket word at a time, and a cached
//! minimum makes the peek-then-pop pattern of the simulator's event loop
//! cost one bucket scan per event.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use abw_obs::prof::{self, Cost};

use crate::arena::PacketRef;
use crate::packet::{AgentId, LinkId};
use crate::time::SimTime;

/// A scheduled occurrence.
#[derive(Debug, Clone, Copy)]
pub enum Event {
    /// `packet` arrives at the input of the link `packet.path[packet.hop]`.
    Arrive { packet: PacketRef },
    /// The link finishes serialising its head-of-line packet.
    TxDone { link: LinkId },
    /// An agent timer fires; `token` is the value the agent scheduled.
    Timer { agent: AgentId, token: u64 },
    /// `packet` is handed to its destination agent.
    Deliver { agent: AgentId, packet: PacketRef },
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest entry surfaces.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Bucket width: `2^18` ns ≈ 262 µs. Packet service times and probe
/// gaps in the paper's scenarios are tens to hundreds of microseconds,
/// so a bucket holds a handful of events at steady state.
const BUCKET_SHIFT: u32 = 18;
/// Ring size (must be a power of two). `256 × 262 µs ≈ 67 ms` of
/// horizon — propagation delays and probe-stream pauses fit; only
/// coarse experiment timers land in the overflow heap.
const BUCKETS: usize = 256;
const BUCKET_MASK: u64 = BUCKETS as u64 - 1;
/// Occupancy bitmap words (64 buckets per word).
const WORDS: usize = BUCKETS / 64;

/// Where the cached minimum entry currently lives.
#[derive(Debug, Clone, Copy)]
enum MinLoc {
    /// `buckets[idx][pos]`.
    Ring { idx: usize, pos: usize },
    /// Top of the overflow heap.
    Overflow,
}

#[derive(Debug, Clone, Copy)]
struct CachedMin {
    time: SimTime,
    seq: u64,
    loc: MinLoc,
}

/// A time-ordered event queue with deterministic tie-breaking.
#[derive(Debug)]
pub struct EventQueue {
    /// Ring buckets; bucket `i` holds entries of exactly one "day"
    /// (`time >> BUCKET_SHIFT`) congruent to `i` modulo [`BUCKETS`].
    buckets: Vec<Vec<Entry>>,
    /// Occupancy bitmap over `buckets` (bit set ⇔ bucket non-empty).
    occupied: [u64; WORDS],
    /// Events beyond the ring horizon at push time.
    overflow: BinaryHeap<Entry>,
    /// Day of the most recently popped event. All pending entries have
    /// `day >= cursor_day`, and every ring bucket therefore holds at
    /// most one distinct day — the proof is in DESIGN.md §16.
    cursor_day: u64,
    /// Entries currently in the ring (not counting `overflow`).
    ring_len: usize,
    /// Total pending entries.
    len: usize,
    /// Next insertion sequence number.
    seq: u64,
    /// Lazily computed earliest entry; invalidated by [`EventQueue::pop`],
    /// kept exact by pushes (a new entry either beats the cached minimum
    /// and replaces it, or cannot be the minimum).
    cached_min: Option<CachedMin>,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue {
            buckets: (0..BUCKETS).map(|_| Vec::new()).collect(),
            occupied: [0; WORDS],
            overflow: BinaryHeap::new(),
            cursor_day: 0,
            ring_len: 0,
            len: 0,
            seq: 0,
            cached_min: None,
        }
    }
}

#[inline]
fn day_of(time: SimTime) -> u64 {
    time.as_nanos() >> BUCKET_SHIFT
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at `time`.
    #[inline]
    pub fn push(&mut self, time: SimTime, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.insert(Entry { time, seq, event });
    }

    /// Allocates and returns the sequence number the next [`EventQueue::push`]
    /// would use, without storing anything. The simulator's fluid burst
    /// path uses this to keep later tie-breaks bit-identical when an
    /// event's push/pop round-trip is elided entirely.
    #[inline]
    pub(crate) fn consume_seq(&mut self) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        seq
    }

    /// Schedules `event` at `time` under a sequence number previously
    /// allocated with [`EventQueue::consume_seq`] — the fluid burst path
    /// materialising a virtual event back into the queue.
    #[inline]
    pub(crate) fn push_with_seq(&mut self, time: SimTime, seq: u64, event: Event) {
        debug_assert!(seq < self.seq, "sequence number was never allocated");
        self.insert(Entry { time, seq, event });
    }

    #[inline]
    fn insert(&mut self, entry: Entry) {
        self.len += 1;
        let day = day_of(entry.time);
        let loc = if day < self.cursor_day + BUCKETS as u64 {
            let idx = (day & BUCKET_MASK) as usize;
            // lint: allow(panic_free) -- idx is masked to BUCKETS-1 by construction
            let bucket = &mut self.buckets[idx];
            debug_assert!(
                bucket.iter().all(|e| day_of(e.time) == day),
                "calendar bucket mixes days"
            );
            let pos = bucket.len();
            bucket.push(entry);
            // lint: allow(panic_free) -- idx < BUCKETS, so idx/64 < WORDS
            self.occupied[idx / 64] |= 1 << (idx % 64);
            self.ring_len += 1;
            MinLoc::Ring { idx, pos }
        } else {
            self.overflow.push(entry);
            MinLoc::Overflow
        };
        if let Some(m) = self.cached_min {
            // A new entry either beats the cached minimum and replaces it,
            // or cannot be the minimum; ring positions stay valid because
            // pushes only append and removal invalidates the cache.
            if (entry.time, entry.seq) < (m.time, m.seq) {
                self.cached_min = Some(CachedMin {
                    time: entry.time,
                    seq: entry.seq,
                    loc,
                });
            }
        }
    }

    /// Finds (and caches) the earliest entry without removing it.
    fn find_min(&mut self) -> Option<CachedMin> {
        if let Some(m) = self.cached_min {
            return Some(m);
        }
        if self.len == 0 {
            return None;
        }
        let ring = if self.ring_len > 0 {
            let idx = self.first_occupied_from((self.cursor_day & BUCKET_MASK) as usize);
            // lint: allow(panic_free) -- first_occupied_from returns a bucket index < BUCKETS
            let bucket = &self.buckets[idx];
            debug_assert!(!bucket.is_empty(), "occupancy bit set on empty bucket");
            let mut pos = 0;
            // lint: allow(panic_free) -- the occupancy bit guarantees a non-empty bucket
            let mut best = (bucket[0].time, bucket[0].seq);
            for (i, e) in bucket.iter().enumerate().skip(1) {
                if (e.time, e.seq) < best {
                    best = (e.time, e.seq);
                    pos = i;
                }
            }
            Some(CachedMin {
                time: best.0,
                seq: best.1,
                loc: MinLoc::Ring { idx, pos },
            })
        } else {
            None
        };
        let over = self.overflow.peek().map(|e| CachedMin {
            time: e.time,
            seq: e.seq,
            loc: MinLoc::Overflow,
        });
        let min = match (ring, over) {
            (Some(r), Some(o)) => {
                if (r.time, r.seq) <= (o.time, o.seq) {
                    Some(r)
                } else {
                    Some(o)
                }
            }
            (r, o) => r.or(o),
        };
        self.cached_min = min;
        min
    }

    /// First occupied bucket index at or after `start`, scanning the
    /// ring circularly a 64-bucket word at a time. Caller guarantees
    /// `ring_len > 0`.
    fn first_occupied_from(&self, start: usize) -> usize {
        let mut word = start / 64;
        // mask off bits below `start` in the first word
        // lint: allow(panic_free) -- start < BUCKETS, so start/64 < WORDS
        let mut bits = self.occupied[word] & (!0u64 << (start % 64));
        for _ in 0..=WORDS {
            if bits != 0 {
                return word * 64 + bits.trailing_zeros() as usize;
            }
            word = (word + 1) % WORDS;
            // lint: allow(panic_free) -- word is taken mod WORDS on the line above
            bits = self.occupied[word];
        }
        // lint: allow(panic_free) -- caller guarantees ring_len > 0; some occupancy bit is set
        unreachable!("ring_len > 0 but no occupied bucket");
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        let m = self.find_min()?;
        Some(self.remove_min(m))
    }

    /// Removes and returns the earliest event only when it is scheduled
    /// at or before `deadline`; otherwise leaves the queue (and the
    /// cached minimum) untouched. This fuses the event loop's
    /// peek-then-pop pair into one bucket scan.
    #[inline]
    pub fn pop_at_or_before(&mut self, deadline: SimTime) -> Option<(SimTime, Event)> {
        let m = self.find_min()?;
        if m.time > deadline {
            return None;
        }
        Some(self.remove_min(m))
    }

    fn remove_min(&mut self, m: CachedMin) -> (SimTime, Event) {
        let entry = match m.loc {
            MinLoc::Ring { idx, pos } => {
                // lint: allow(panic_free) -- the cached min location was produced by find_min this pop
                let bucket = &mut self.buckets[idx];
                let entry = bucket.swap_remove(pos);
                if bucket.is_empty() {
                    // lint: allow(panic_free) -- idx < BUCKETS, so idx/64 < WORDS
                    self.occupied[idx / 64] &= !(1 << (idx % 64));
                }
                self.ring_len -= 1;
                entry
            }
            // lint: allow(panic_free) -- the cached min said the overflow heap is non-empty
            MinLoc::Overflow => self.overflow.pop().expect("cached overflow top vanished"),
        };
        debug_assert!((entry.time, entry.seq) == (m.time, m.seq), "cache drift");
        self.len -= 1;
        let day = day_of(entry.time);
        if day > self.cursor_day + 1 {
            // jumped a provably-eventless window of more than one bucket
            prof::count(Cost::FfSkips);
        }
        self.cursor_day = day;
        self.cached_min = None;
        (entry.time, entry.event)
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.find_min().map(|m| m.time)
    }

    /// The earliest entry — `(time, seq, event)` — without removing it.
    /// The fluid burst path inspects the event kind to decide whether to
    /// absorb it into the window or close the window around it.
    #[inline]
    pub(crate) fn peek_entry(&mut self) -> Option<(SimTime, u64, Event)> {
        let m = self.find_min()?;
        let e = match m.loc {
            // lint: allow(panic_free) -- the cached min location was produced by find_min just above
            MinLoc::Ring { idx, pos } => self.buckets[idx][pos],
            // lint: allow(panic_free) -- the cached min said the overflow heap is non-empty
            MinLoc::Overflow => *self.overflow.peek().expect("cached overflow top vanished"),
        };
        Some((e.time, e.seq, e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The original `BinaryHeap` queue, kept as the ordering oracle for the
/// calendar-queue equivalence property test.
#[cfg(test)]
pub(crate) mod baseline {
    use super::*;

    /// A time-ordered event queue with deterministic tie-breaking,
    /// backed by a binary heap — the pre-calendar implementation.
    #[derive(Debug, Default)]
    pub struct BaselineQueue {
        heap: BinaryHeap<Entry>,
        seq: u64,
    }

    impl BaselineQueue {
        pub fn new() -> Self {
            BaselineQueue::default()
        }

        pub fn push(&mut self, time: SimTime, event: Event) {
            let seq = self.seq;
            self.seq += 1;
            self.heap.push(Entry { time, seq, event });
        }

        pub fn pop(&mut self) -> Option<(SimTime, Event)> {
            self.heap.pop().map(|e| (e.time, e.event))
        }

        pub fn peek_time(&self) -> Option<SimTime> {
            self.heap.peek().map(|e| e.time)
        }

        pub fn len(&self) -> usize {
            self.heap.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::baseline::BaselineQueue;
    use super::*;

    #[test]
    fn time_order() {
        let mut q = EventQueue::new();
        q.push(
            SimTime::from_nanos(30),
            Event::Timer {
                agent: AgentId(0),
                token: 3,
            },
        );
        q.push(
            SimTime::from_nanos(10),
            Event::Timer {
                agent: AgentId(0),
                token: 1,
            },
        );
        q.push(
            SimTime::from_nanos(20),
            Event::Timer {
                agent: AgentId(0),
                token: 2,
            },
        );
        let mut tokens = Vec::new();
        while let Some((_, ev)) = q.pop() {
            if let Event::Timer { token, .. } = ev {
                tokens.push(token);
            }
        }
        assert_eq!(tokens, vec![1, 2, 3]);
    }

    #[test]
    fn ties_resolve_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for token in 0..100 {
            q.push(
                t,
                Event::Timer {
                    agent: AgentId(0),
                    token,
                },
            );
        }
        let mut tokens = Vec::new();
        while let Some((_, Event::Timer { token, .. })) = q.pop() {
            tokens.push(token);
        }
        assert_eq!(tokens, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.push(SimTime::from_nanos(7), Event::TxDone { link: LinkId(0) });
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(q.len(), 1);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_nanos(7));
        assert!(q.is_empty());
    }

    #[test]
    fn pop_at_or_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(50), Event::TxDone { link: LinkId(0) });
        q.push(SimTime::from_nanos(10), Event::TxDone { link: LinkId(1) });
        let (t, _) = q.pop_at_or_before(SimTime::from_nanos(30)).unwrap();
        assert_eq!(t, SimTime::from_nanos(10));
        assert!(q.pop_at_or_before(SimTime::from_nanos(30)).is_none());
        assert_eq!(q.len(), 1, "event past the deadline must stay queued");
        let (t, _) = q.pop_at_or_before(SimTime::from_nanos(50)).unwrap();
        assert_eq!(t, SimTime::from_nanos(50));
    }

    #[test]
    fn far_future_events_take_the_overflow_path() {
        let mut q = EventQueue::new();
        // far beyond the ring horizon (~67 ms)
        let far = SimTime::from_nanos(10_000_000_000);
        let near = SimTime::from_nanos(1_000);
        q.push(
            far,
            Event::Timer {
                agent: AgentId(0),
                token: 2,
            },
        );
        q.push(
            near,
            Event::Timer {
                agent: AgentId(0),
                token: 1,
            },
        );
        let (t1, Event::Timer { token: k1, .. }) = q.pop().unwrap() else {
            panic!()
        };
        assert_eq!((t1, k1), (near, 1));
        // after the cursor advances, a same-day push lands in the ring
        // while the earlier push stays in overflow; order must hold
        q.push(
            far,
            Event::Timer {
                agent: AgentId(0),
                token: 3,
            },
        );
        let (_, Event::Timer { token: k2, .. }) = q.pop().unwrap() else {
            panic!()
        };
        let (_, Event::Timer { token: k3, .. }) = q.pop().unwrap() else {
            panic!()
        };
        assert_eq!((k2, k3), (2, 3), "overflow/ring ties resolve by seq");
        assert!(q.is_empty());
    }

    #[test]
    fn consume_seq_then_push_with_seq_round_trips() {
        let mut q = EventQueue::new();
        q.push(
            SimTime::from_nanos(5),
            Event::Timer {
                agent: AgentId(0),
                token: 0,
            },
        );
        let held = q.consume_seq(); // a virtual event's seq
        q.push(
            SimTime::from_nanos(5),
            Event::Timer {
                agent: AgentId(0),
                token: 2,
            },
        );
        // materialise the virtual event at the same time: it must pop
        // between the two real pushes, exactly as if it was never elided
        q.push_with_seq(
            SimTime::from_nanos(5),
            held,
            Event::Timer {
                agent: AgentId(0),
                token: 1,
            },
        );
        let mut tokens = Vec::new();
        while let Some((_, Event::Timer { token, .. })) = q.pop() {
            tokens.push(token);
        }
        assert_eq!(tokens, vec![0, 1, 2]);
    }

    /// Seeded pseudo-random stream generator (SplitMix64) — no external
    /// RNG dependency in this crate.
    struct Mix(u64);
    impl Mix {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    /// The satellite property test: the same seeded stream of pushes and
    /// pops through the old `BinaryHeap` and the calendar queue must pop
    /// in identical order, including same-time ties. Pushes respect the
    /// simulator's contract (never earlier than the last popped time)
    /// and are biased to create tie clusters, bucket-boundary times, and
    /// overflow-horizon jumps.
    #[test]
    fn calendar_queue_matches_binary_heap_oracle() {
        for seed in 0..25u64 {
            let mut rng = Mix(seed.wrapping_mul(0xA076_1D64_78BD_642F) + 1);
            let mut cal = EventQueue::new();
            let mut base = BaselineQueue::new();
            let mut floor = 0u64; // last popped time, in ns
            let mut recent: Vec<u64> = Vec::new();
            let mut token = 0u64;
            for step in 0..4_000 {
                let r = rng.next();
                if r % 100 < 60 || cal.is_empty() {
                    // push: mixture of offsets exercising ring + overflow
                    let t = match r % 10 {
                        // exact tie with a recently used time (clamped to
                        // the simulator contract: never before the last pop)
                        0..=2 if !recent.is_empty() => {
                            recent[(rng.next() as usize) % recent.len()].max(floor)
                        }
                        // same-bucket short hop
                        3..=5 => floor + rng.next() % (1 << BUCKET_SHIFT),
                        // bucket-boundary multiples
                        6..=7 => floor + (rng.next() % 512) * (1 << BUCKET_SHIFT),
                        // far future: overflow horizon and beyond
                        8 => floor + rng.next() % 400_000_000,
                        _ => floor + rng.next() % 3_000_000,
                    };
                    recent.push(t);
                    if recent.len() > 8 {
                        recent.remove(0);
                    }
                    let ev = Event::Timer {
                        agent: AgentId(0),
                        token,
                    };
                    token += 1;
                    cal.push(SimTime::from_nanos(t), ev);
                    base.push(SimTime::from_nanos(t), ev);
                    assert_eq!(cal.peek_time(), base.peek_time(), "seed {seed} step {step}");
                } else {
                    let got = cal.pop();
                    let want = base.pop();
                    let (gt, Some(Event::Timer { token: gk, .. })) =
                        (got.map(|g| g.0), got.map(|g| g.1))
                    else {
                        panic!()
                    };
                    let (wt, Some(Event::Timer { token: wk, .. })) =
                        (want.map(|w| w.0), want.map(|w| w.1))
                    else {
                        panic!()
                    };
                    assert_eq!((gt, gk), (wt, wk), "seed {seed} step {step}");
                    floor = gt.unwrap().as_nanos();
                }
                assert_eq!(cal.len(), base.len(), "seed {seed} step {step}");
            }
            // drain both queues completely
            loop {
                let got = cal.pop();
                let want = base.pop();
                match (got, want) {
                    (None, None) => break,
                    (
                        Some((gt, Event::Timer { token: gk, .. })),
                        Some((wt, Event::Timer { token: wk, .. })),
                    ) => {
                        assert_eq!((gt, gk), (wt, wk), "seed {seed} drain");
                    }
                    other => panic!("queues disagree on emptiness: {other:?}"),
                }
            }
        }
    }
}
