//! The discrete-event queue.
//!
//! Events are ordered by `(time, insertion sequence)`: ties in simulated
//! time resolve in insertion order, which makes every run bit-identical
//! for a given seed — a property the integration tests assert.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::packet::{AgentId, LinkId, Packet};
use crate::time::SimTime;

/// A scheduled occurrence.
#[derive(Debug)]
pub enum Event {
    /// `packet` arrives at the input of the link `packet.path[packet.hop]`.
    Arrive { packet: Packet },
    /// The link finishes serialising its head-of-line packet.
    TxDone { link: LinkId },
    /// An agent timer fires; `token` is the value the agent scheduled.
    Timer { agent: AgentId, token: u64 },
    /// `packet` is handed to its destination agent.
    Deliver { agent: AgentId, packet: Packet },
}

#[derive(Debug)]
struct Entry {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest entry surfaces.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A time-ordered event queue with deterministic tie-breaking.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_order() {
        let mut q = EventQueue::new();
        q.push(
            SimTime::from_nanos(30),
            Event::Timer {
                agent: AgentId(0),
                token: 3,
            },
        );
        q.push(
            SimTime::from_nanos(10),
            Event::Timer {
                agent: AgentId(0),
                token: 1,
            },
        );
        q.push(
            SimTime::from_nanos(20),
            Event::Timer {
                agent: AgentId(0),
                token: 2,
            },
        );
        let mut tokens = Vec::new();
        while let Some((_, ev)) = q.pop() {
            if let Event::Timer { token, .. } = ev {
                tokens.push(token);
            }
        }
        assert_eq!(tokens, vec![1, 2, 3]);
    }

    #[test]
    fn ties_resolve_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for token in 0..100 {
            q.push(
                t,
                Event::Timer {
                    agent: AgentId(0),
                    token,
                },
            );
        }
        let mut tokens = Vec::new();
        while let Some((_, Event::Timer { token, .. })) = q.pop() {
            tokens.push(token);
        }
        assert_eq!(tokens, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.push(SimTime::from_nanos(7), Event::TxDone { link: LinkId(0) });
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(q.len(), 1);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_nanos(7));
        assert!(q.is_empty());
    }
}
