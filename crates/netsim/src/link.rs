//! Store-and-forward links with FIFO drop-tail queues.
//!
//! A link models an output interface: packets that arrive while the
//! interface is transmitting wait in a FIFO queue bounded in bytes.
//! Every transmission is recorded as a busy interval so that the exact
//! available bandwidth `A_tau(t) = C * (1 - u(t, t+tau))` of the link can
//! be computed afterwards (the "population" ground truth the paper's
//! Figures 1, 2 and 6 compare against).

use std::collections::VecDeque;

use abw_obs::manifest::LinkSnapshot;
use abw_obs::metrics::LogLinearHistogram;

use crate::arena::PacketRef;
use crate::impair::{Impairment, ImpairmentConfig, IngressDecision};
use crate::invariants::invariant;
use crate::time::{transmission_time, SimDuration, SimTime};

/// Static configuration of a link.
#[derive(Debug, Clone, Copy)]
pub struct LinkConfig {
    /// Transmission capacity in bits per second.
    pub capacity_bps: f64,
    /// Propagation delay to the next hop.
    pub prop_delay: SimDuration,
    /// Queue bound in bytes; `None` means unbounded.
    pub queue_bytes: Option<u64>,
    /// Whether to record busy intervals (costs memory on long runs).
    pub record_busy: bool,
}

impl LinkConfig {
    /// A link with the given capacity (bits/s) and propagation delay,
    /// an unbounded queue, and busy-interval recording enabled.
    pub fn new(capacity_bps: f64, prop_delay: SimDuration) -> Self {
        assert!(
            capacity_bps.is_finite() && capacity_bps > 0.0,
            "link capacity must be positive"
        );
        LinkConfig {
            capacity_bps,
            prop_delay,
            queue_bytes: None,
            record_busy: true,
        }
    }

    /// Sets the queue bound in bytes.
    pub fn with_queue_bytes(mut self, bytes: u64) -> Self {
        self.queue_bytes = Some(bytes);
        self
    }

    /// Sets the queue bound in packets of the given size.
    pub fn with_queue_packets(mut self, packets: u64, packet_size: u32) -> Self {
        self.queue_bytes = Some(packets * packet_size as u64);
        self
    }

    /// Disables busy-interval recording.
    pub fn without_recording(mut self) -> Self {
        self.record_busy = false;
        self
    }
}

/// Packet/byte counters of one link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkCounters {
    /// Packets fully transmitted.
    pub forwarded_pkts: u64,
    /// Bytes fully transmitted.
    pub forwarded_bytes: u64,
    /// Packets dropped at the queue tail.
    pub dropped_pkts: u64,
    /// Bytes dropped at the queue tail.
    pub dropped_bytes: u64,
    /// Packets lost to an injected impairment (never entered the queue).
    pub impaired_pkts: u64,
    /// Bytes lost to an injected impairment.
    pub impaired_bytes: u64,
}

/// Merged busy intervals of a link: `(start, end)` pairs in nanoseconds,
/// non-overlapping and sorted. Back-to-back transmissions coalesce.
#[derive(Debug, Clone, Default)]
pub struct BusyLog {
    intervals: Vec<(u64, u64)>,
}

impl BusyLog {
    /// Appends a busy interval, merging with the previous one when they
    /// touch. Intervals must be appended in non-decreasing start order.
    pub fn push(&mut self, start: SimTime, end: SimTime) {
        let (s, e) = (start.as_nanos(), end.as_nanos());
        debug_assert!(s <= e, "busy interval ends before it starts");
        if let Some(last) = self.intervals.last_mut() {
            debug_assert!(s >= last.0, "busy intervals out of order");
            if s <= last.1 {
                last.1 = last.1.max(e);
                return;
            }
        }
        self.intervals.push((s, e));
    }

    /// The merged `(start_ns, end_ns)` intervals.
    pub fn intervals(&self) -> &[(u64, u64)] {
        &self.intervals
    }

    /// Total recorded busy time.
    pub fn total_busy(&self) -> SimDuration {
        SimDuration::from_nanos(self.intervals.iter().map(|(s, e)| e - s).sum())
    }
}

/// The result of offering a packet to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// The packet was queued (or went straight into service); when
    /// `starts_service` the caller must schedule the transmission
    /// completion returned by [`Link::start_transmission`].
    Accepted { starts_service: bool },
    /// The queue was full; the packet was dropped.
    Dropped,
    /// An injected impairment lost the packet before it reached the
    /// queue (it never occupied buffer space).
    Impaired,
}

/// One queued packet: the arena handle plus the only field the link
/// itself ever reads — the wire size. Keeping the size inline lets the
/// byte ledger, the busy-period maths and `queueing_delay` run without
/// touching the arena.
#[derive(Debug, Clone, Copy)]
struct QueuedPacket {
    pkt: PacketRef,
    size: u32,
}

/// A store-and-forward link.
#[derive(Debug)]
pub struct Link {
    config: LinkConfig,
    queue: VecDeque<QueuedPacket>,
    queued_bytes: u64,
    /// Set while a packet is being serialised onto the wire.
    transmitting: bool,
    tx_started_at: SimTime,
    counters: LinkCounters,
    busy: BusyLog,
    /// Packets accepted into the queue (fuel for the `ABW_CHECK`
    /// conservation invariant: accepted = forwarded + in-queue).
    accepted_pkts: u64,
    /// Largest queue depth seen, in packets (including the one in
    /// service). Tracked unconditionally — it is two instructions.
    peak_queue_pkts: u64,
    /// Queue-depth distribution, in packets. Populated only while the
    /// owning simulator has a recorder installed, so the untraced hot
    /// path never pays for it.
    depth_hist: Option<Box<LogLinearHistogram>>,
    /// Injected-fault pipeline, if any (loss/reorder/jitter/flaps).
    impairment: Option<Box<Impairment>>,
    /// Capacity the in-flight (or most recent) transmission was started
    /// at. Differs from `config.capacity_bps` only under rate flaps; the
    /// busy-period invariant must use the rate the packet was actually
    /// serialised at.
    tx_capacity_bps: f64,
    /// Set when a transmission starts at a different rate than the
    /// previous one (a flap took effect); consumed by the simulator to
    /// emit a `link.flap` event.
    flap_pending: Option<f64>,
    /// Memo of the last `(size, rate) → serialisation time` computation;
    /// steady streams of same-size packets skip the floating-point
    /// rounding entirely. Pure caching — hits return exactly what
    /// [`transmission_time`] would.
    tx_memo: (u32, f64, SimDuration),
}

impl Link {
    /// Creates an idle link.
    pub fn new(config: LinkConfig) -> Self {
        Link {
            config,
            queue: VecDeque::new(),
            queued_bytes: 0,
            transmitting: false,
            tx_started_at: SimTime::ZERO,
            counters: LinkCounters::default(),
            busy: BusyLog::default(),
            accepted_pkts: 0,
            peak_queue_pkts: 0,
            depth_hist: None,
            impairment: None,
            tx_capacity_bps: config.capacity_bps,
            flap_pending: None,
            tx_memo: (0, 0.0, SimDuration::ZERO),
        }
    }

    /// [`transmission_time`] through the one-entry memo.
    #[inline]
    fn tx_time(&mut self, size: u32, rate_bps: f64) -> SimDuration {
        let (ms, mr, md) = self.tx_memo;
        if ms == size && mr == rate_bps {
            return md;
        }
        let d = transmission_time(size, rate_bps);
        self.tx_memo = (size, rate_bps, d);
        d
    }

    /// Installs an impairment pipeline, replacing any existing one.
    /// `seed` drives this link's private RNG stream, so the decision
    /// sequence is a pure function of `(config, seed)`.
    pub fn set_impairment(&mut self, config: ImpairmentConfig, seed: u64) {
        self.impairment = Some(Box::new(Impairment::new(config, seed)));
    }

    /// The installed impairment pipeline, if any.
    pub fn impairment(&self) -> Option<&Impairment> {
        self.impairment.as_deref()
    }

    /// Extra egress delay (reorder hold + jitter) for the packet that
    /// just finished transmission. Advances the impairment RNG by one
    /// egress decision; zero when no impairment is installed.
    pub fn egress_extra(&mut self) -> SimDuration {
        self.impairment
            .as_deref_mut()
            .map_or(SimDuration::ZERO, Impairment::egress_extra)
    }

    /// The capacity the link would serialise a packet at right now:
    /// the base capacity, overridden by the active rate flap if any.
    pub fn effective_capacity_bps(&self, now: SimTime) -> f64 {
        self.impairment
            .as_deref()
            .map_or(self.config.capacity_bps, |i| {
                i.capacity_at(now, self.config.capacity_bps)
            })
    }

    /// Returns the new rate once after a rate flap takes effect at a
    /// transmission start (consumed by the simulator's event emission).
    pub fn take_flap_event(&mut self) -> Option<f64> {
        self.flap_pending.take()
    }

    /// Link configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Capacity in bits per second.
    pub fn capacity_bps(&self) -> f64 {
        self.config.capacity_bps
    }

    /// Propagation delay to the next hop.
    pub fn prop_delay(&self) -> SimDuration {
        self.config.prop_delay
    }

    /// Counters snapshot.
    pub fn counters(&self) -> LinkCounters {
        self.counters
    }

    /// Recorded busy intervals (empty when recording is disabled).
    pub fn busy_log(&self) -> &BusyLog {
        &self.busy
    }

    /// Largest queue depth seen so far, in packets (including the
    /// packet in service).
    pub fn peak_queue_pkts(&self) -> u64 {
        self.peak_queue_pkts
    }

    /// Starts sampling the queue depth into a histogram on every
    /// enqueue. Idempotent; called by the simulator when a recorder is
    /// installed.
    pub fn enable_depth_histogram(&mut self) {
        if self.depth_hist.is_none() {
            self.depth_hist = Some(Box::new(LogLinearHistogram::for_depth()));
        }
    }

    /// The queue-depth histogram, when depth sampling is enabled.
    pub fn depth_histogram(&self) -> Option<&LogLinearHistogram> {
        self.depth_hist.as_deref()
    }

    /// This link's state as a manifest [`LinkSnapshot`].
    pub fn snapshot(&self, name: impl Into<String>) -> LinkSnapshot {
        LinkSnapshot {
            link: name.into(),
            capacity_bps: self.config.capacity_bps as u64,
            forwarded_pkts: self.counters.forwarded_pkts,
            forwarded_bytes: self.counters.forwarded_bytes,
            dropped_pkts: self.counters.dropped_pkts,
            dropped_bytes: self.counters.dropped_bytes,
            impaired_pkts: self.counters.impaired_pkts,
            impaired_bytes: self.counters.impaired_bytes,
            peak_queue_pkts: self.peak_queue_pkts,
            queue_depth_summary: self
                .depth_hist
                .as_deref()
                .filter(|h| h.count() > 0)
                .map(|h| h.summary_json()),
        }
    }

    /// Bytes currently waiting (not counting the packet in service).
    pub fn queued_bytes(&self) -> u64 {
        self.queued_bytes
    }

    /// Packets currently waiting (not counting the packet in service).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// True while a packet is on the wire.
    pub fn is_transmitting(&self) -> bool {
        self.transmitting
    }

    /// Offers a packet (by arena handle plus wire size) to the link at
    /// time `now`.
    ///
    /// On `Accepted { starts_service: true }` the caller must immediately
    /// call [`Link::start_transmission`] and schedule its completion. On
    /// `Dropped` / `Impaired` the caller still owns the handle and must
    /// free it.
    ///
    /// Profiling contract: the link does not tally `Cost::QueueOps`
    /// itself — each caller counts one op per accepted enqueue, so the
    /// fluid fast path can batch its tallies per window instead of
    /// paying a thread-local increment per packet.
    pub fn enqueue(&mut self, pkt: PacketRef, size: u32, _now: SimTime) -> EnqueueOutcome {
        if let Some(imp) = self.impairment.as_deref_mut() {
            if imp.ingress() == IngressDecision::Lose {
                self.counters.impaired_pkts += 1;
                self.counters.impaired_bytes += size as u64;
                return EnqueueOutcome::Impaired;
            }
        }
        if let Some(limit) = self.config.queue_bytes {
            // The byte bound applies once the system holds a packet; an idle
            // link always accepts, so a packet larger than the bound can
            // still cross it.
            if !self.queue.is_empty() && self.queued_bytes + size as u64 > limit {
                self.counters.dropped_pkts += 1;
                self.counters.dropped_bytes += size as u64;
                return EnqueueOutcome::Dropped;
            }
        }
        self.queued_bytes += size as u64;
        self.queue.push_back(QueuedPacket { pkt, size });
        self.accepted_pkts += 1;
        let depth = self.queue.len() as u64;
        self.peak_queue_pkts = self.peak_queue_pkts.max(depth);
        if let Some(hist) = self.depth_hist.as_deref_mut() {
            hist.record(depth);
        }
        self.check_conservation("enqueue");
        EnqueueOutcome::Accepted {
            starts_service: !self.transmitting,
        }
    }

    /// Begins serialising the head-of-line packet at `now`; returns the
    /// time the last bit leaves the interface.
    ///
    /// Panics when the queue is empty or a transmission is in progress —
    /// both indicate an event-loop bug.
    pub fn start_transmission(&mut self, now: SimTime) -> SimTime {
        assert!(!self.transmitting, "link already transmitting");
        let head_size = self
            .queue
            .front()
            // lint: allow(panic_free) -- asserted non-empty: service only starts on a queued head
            .expect("start_transmission on empty queue")
            .size;
        self.transmitting = true;
        self.tx_started_at = now;
        let effective = self.effective_capacity_bps(now);
        if effective != self.tx_capacity_bps {
            self.flap_pending = Some(effective);
        }
        self.tx_capacity_bps = effective;
        now + self.tx_time(head_size, effective)
    }

    /// Completes the in-progress transmission at `now`, returning the
    /// transmitted packet. The caller forwards it and, when the return
    /// value's `next_starts_service` is true, schedules the next
    /// completion via [`Link::start_transmission`].
    ///
    /// Profiling contract: as with [`Link::enqueue`], the caller tallies
    /// the `Cost::QueueOps` unit for this dequeue (batched per window on
    /// the fluid fast path).
    pub fn finish_transmission(&mut self, now: SimTime) -> (PacketRef, bool) {
        assert!(self.transmitting, "no transmission in progress");
        self.transmitting = false;
        let head = self
            .queue
            .pop_front()
            // lint: allow(panic_free) -- asserted transmitting above; the head is on the wire
            .expect("transmission finished on empty queue");
        // busy-period bookkeeping: the completion event must fire exactly
        // one serialisation time after service began
        invariant!(
            now >= self.tx_started_at
                && now.since(self.tx_started_at)
                    == transmission_time(head.size, self.tx_capacity_bps),
            "link busy-period bookkeeping: tx of {} B started at {} but finished at {} \
             (capacity {} b/s)",
            head.size,
            self.tx_started_at,
            now,
            self.tx_capacity_bps
        );
        invariant!(
            self.queued_bytes >= head.size as u64,
            "link queue depth went negative: {} queued bytes < {} B packet leaving",
            self.queued_bytes,
            head.size
        );
        self.queued_bytes -= head.size as u64;
        self.counters.forwarded_pkts += 1;
        self.counters.forwarded_bytes += head.size as u64;
        if self.config.record_busy {
            self.busy.push(self.tx_started_at, now);
        }
        self.check_conservation("finish_transmission");
        (head.pkt, !self.queue.is_empty())
    }

    /// `ABW_CHECK` FIFO conservation: every packet accepted into the
    /// queue is either forwarded or still queued (dropped packets never
    /// enter), and the byte ledger agrees with the queue contents.
    /// Free when disarmed — the operands are not evaluated.
    fn check_conservation(&self, site: &str) {
        invariant!(
            self.accepted_pkts == self.counters.forwarded_pkts + self.queue.len() as u64,
            "link packet conservation at {site}: accepted {} != forwarded {} + in-queue {}",
            self.accepted_pkts,
            self.counters.forwarded_pkts,
            self.queue.len()
        );
        invariant!(
            self.queued_bytes == self.queue.iter().map(|p| p.size as u64).sum::<u64>(),
            "link byte ledger at {site}: {} queued bytes != queue contents",
            self.queued_bytes
        );
        invariant!(
            !self.transmitting || !self.queue.is_empty(),
            "link busy-period bookkeeping at {site}: transmitting with an empty queue"
        );
    }

    /// Instantaneous queueing delay a newly arriving packet would see:
    /// remaining service time of the packet on the wire plus serialisation
    /// of everything queued behind it.
    pub fn queueing_delay(&self, now: SimTime) -> SimDuration {
        let rate = self.effective_capacity_bps(now);
        let mut ns = 0u64;
        if self.transmitting {
            // lint: allow(panic_free) -- transmitting implies a head packet on the wire
            let head = self.queue.front().expect("transmitting without head");
            // the in-flight packet drains at the rate it was started at
            let done = self.tx_started_at + transmission_time(head.size, self.tx_capacity_bps);
            ns += done.saturating_since(now).as_nanos();
            for p in self.queue.iter().skip(1) {
                ns += transmission_time(p.size, rate).as_nanos();
            }
        } else {
            for p in self.queue.iter() {
                ns += transmission_time(p.size, rate).as_nanos();
            }
        }
        SimDuration::from_nanos(ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::PacketArena;
    use crate::packet::{AgentId, FlowId, Packet, PacketKind, PathId, DEFAULT_TTL};

    fn pkt(size: u32, seq: u64) -> Packet {
        Packet {
            id: 0,
            flow: FlowId(0),
            src: AgentId(0),
            dst: AgentId(1),
            path: PathId(0),
            hop: 0,
            size,
            seq,
            sent_at: SimTime::ZERO,
            ttl: DEFAULT_TTL,
            kind: PacketKind::Data,
        }
    }

    /// Allocates a packet and offers it to the link.
    fn offer(
        l: &mut Link,
        a: &mut PacketArena,
        size: u32,
        seq: u64,
        now: SimTime,
    ) -> EnqueueOutcome {
        let r = a.alloc(pkt(size, seq));
        let out = l.enqueue(r, size, now);
        if !matches!(out, EnqueueOutcome::Accepted { .. }) {
            a.take(r); // dropped/impaired packets are freed by the caller
        }
        out
    }

    fn test_link() -> Link {
        // 12 Mb/s: a 1500 B packet takes exactly 1 ms
        Link::new(LinkConfig::new(12e6, SimDuration::from_millis(1)))
    }

    #[test]
    fn single_packet_service() {
        let mut l = test_link();
        let mut a = PacketArena::new();
        let t0 = SimTime::ZERO;
        match offer(&mut l, &mut a, 1500, 0, t0) {
            EnqueueOutcome::Accepted { starts_service } => assert!(starts_service),
            _ => panic!("accept expected"),
        }
        let done = l.start_transmission(t0);
        assert_eq!(done, SimTime::from_nanos(1_000_000));
        let (r, more) = l.finish_transmission(done);
        assert_eq!(a.take(r).size, 1500);
        assert!(!more);
        assert_eq!(l.counters().forwarded_pkts, 1);
        assert_eq!(l.busy_log().total_busy(), SimDuration::from_millis(1));
    }

    #[test]
    fn fifo_order_and_backlog() {
        let mut l = test_link();
        let mut a = PacketArena::new();
        let t0 = SimTime::ZERO;
        assert_eq!(
            offer(&mut l, &mut a, 1500, 1, t0),
            EnqueueOutcome::Accepted {
                starts_service: true
            }
        );
        let done1 = l.start_transmission(t0);
        assert_eq!(
            offer(&mut l, &mut a, 1500, 2, t0),
            EnqueueOutcome::Accepted {
                starts_service: false
            }
        );
        let (r1, more) = l.finish_transmission(done1);
        assert_eq!(a.take(r1).seq, 1);
        assert!(more);
        let done2 = l.start_transmission(done1);
        let (r2, more) = l.finish_transmission(done2);
        assert_eq!(a.take(r2).seq, 2);
        assert!(!more);
        // back-to-back transmissions merge into one busy interval
        assert_eq!(l.busy_log().intervals().len(), 1);
        assert_eq!(l.busy_log().total_busy(), SimDuration::from_millis(2));
    }

    #[test]
    fn drop_tail() {
        let cfg = LinkConfig::new(12e6, SimDuration::ZERO).with_queue_bytes(3000);
        let mut l = Link::new(cfg);
        let mut a = PacketArena::new();
        let t0 = SimTime::ZERO;
        assert!(matches!(
            offer(&mut l, &mut a, 1500, 0, t0),
            EnqueueOutcome::Accepted { .. }
        ));
        l.start_transmission(t0);
        assert!(matches!(
            offer(&mut l, &mut a, 1500, 1, t0),
            EnqueueOutcome::Accepted { .. }
        ));
        // third packet exceeds the 3000 B bound
        assert_eq!(offer(&mut l, &mut a, 1500, 2, t0), EnqueueOutcome::Dropped);
        assert_eq!(l.counters().dropped_pkts, 1);
        assert_eq!(l.counters().dropped_bytes, 1500);
        assert_eq!(a.in_flight(), 2, "dropped packet was freed by the caller");
    }

    #[test]
    fn queueing_delay_accumulates() {
        let mut l = test_link();
        let mut a = PacketArena::new();
        let t0 = SimTime::ZERO;
        assert_eq!(l.queueing_delay(t0), SimDuration::ZERO);
        offer(&mut l, &mut a, 1500, 0, t0);
        l.start_transmission(t0);
        offer(&mut l, &mut a, 1500, 1, t0);
        // one full packet on the wire + one queued = 2 ms
        assert_eq!(l.queueing_delay(t0), SimDuration::from_millis(2));
        // halfway through the first transmission: 1.5 ms remain
        let mid = t0 + SimDuration::from_micros(500);
        assert_eq!(l.queueing_delay(mid), SimDuration::from_micros(1500));
    }

    #[test]
    fn busy_log_merges_only_contiguous() {
        let mut log = BusyLog::default();
        log.push(SimTime::from_nanos(0), SimTime::from_nanos(10));
        log.push(SimTime::from_nanos(10), SimTime::from_nanos(20));
        log.push(SimTime::from_nanos(30), SimTime::from_nanos(40));
        assert_eq!(log.intervals(), &[(0, 20), (30, 40)]);
        assert_eq!(log.total_busy(), SimDuration::from_nanos(30));
    }

    #[test]
    #[should_panic]
    fn double_start_panics() {
        let mut l = test_link();
        let mut a = PacketArena::new();
        offer(&mut l, &mut a, 100, 0, SimTime::ZERO);
        l.start_transmission(SimTime::ZERO);
        l.start_transmission(SimTime::ZERO);
    }

    #[test]
    fn impairment_loss_bypasses_queue() {
        let mut l = test_link();
        let mut a = PacketArena::new();
        l.set_impairment(ImpairmentConfig::iid_loss(1.0), 1);
        assert_eq!(
            offer(&mut l, &mut a, 1500, 0, SimTime::ZERO),
            EnqueueOutcome::Impaired
        );
        let c = l.counters();
        assert_eq!(c.impaired_pkts, 1);
        assert_eq!(c.impaired_bytes, 1500);
        assert_eq!(c.dropped_pkts, 0, "impairment loss is not a queue drop");
        assert_eq!(l.queue_len(), 0, "lost packet never occupies the queue");
        assert_eq!(a.in_flight(), 0, "lost packet was freed by the caller");
    }

    #[test]
    fn capacity_flap_changes_service_time() {
        // base 12 Mb/s (1500 B = 1 ms), flapped to 6 Mb/s at t = 10 ms
        let mut l = test_link();
        let mut a = PacketArena::new();
        l.set_impairment(
            ImpairmentConfig::none().with_flap(SimTime::from_nanos(10_000_000), 6e6),
            0,
        );
        let t0 = SimTime::ZERO;
        offer(&mut l, &mut a, 1500, 0, t0);
        let done = l.start_transmission(t0);
        assert_eq!(done.since(t0), SimDuration::from_millis(1));
        assert!(l.take_flap_event().is_none(), "rate unchanged before flap");
        l.finish_transmission(done);

        let t1 = SimTime::from_nanos(20_000_000);
        offer(&mut l, &mut a, 1500, 1, t1);
        let done = l.start_transmission(t1);
        assert_eq!(done.since(t1), SimDuration::from_millis(2), "half rate");
        assert_eq!(l.take_flap_event(), Some(6e6));
        assert!(l.take_flap_event().is_none(), "flap event is one-shot");
        // busy-period invariant must hold at the flapped rate
        crate::invariants::arm();
        l.finish_transmission(done);
    }
}
