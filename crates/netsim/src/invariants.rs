//! `ABW_CHECK` runtime invariant checks.
//!
//! The static side of the workspace's correctness tooling (`abw-lint`)
//! catches determinism hazards at the token level; this module is the
//! dynamic side: simulator-state invariants that are too expensive (or
//! too semantic) to check on every run, armed on demand.
//!
//! * **Arming.** Set `ABW_CHECK=1` (or `true`/`on`) in the environment,
//!   or call [`arm`] programmatically. The flag is read once per
//!   process.
//! * **Cost model.** In release builds [`armed`] is `const false`, so
//!   every check — including its operand expressions — compiles out
//!   entirely. In debug builds an unarmed check costs one relaxed
//!   atomic load plus a lazily-initialised environment read.
//! * **What is checked.** Event-clock monotonicity, per-link FIFO
//!   packet conservation (accepted = forwarded + in-queue, with
//!   byte-level agreement), exact busy-period bookkeeping, and global
//!   packet conservation at quiescence. A violation panics with an
//!   `ABW_CHECK invariant violated:` message — these are simulator
//!   bugs, never user errors.
//!
//! CI runs a debug-profile `ABW_CHECK=1 cargo test` leg so the
//! invariants actually execute against the whole suite.

#[cfg(debug_assertions)]
mod imp {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::OnceLock;

    static FORCED: AtomicBool = AtomicBool::new(false);
    static FROM_ENV: OnceLock<bool> = OnceLock::new();

    /// True when invariant checks are armed for this process.
    pub fn armed() -> bool {
        FORCED.load(Ordering::Relaxed)
            || *FROM_ENV.get_or_init(|| {
                matches!(
                    std::env::var("ABW_CHECK").as_deref(),
                    Ok("1") | Ok("true") | Ok("on")
                )
            })
    }

    /// Arms the checks process-wide, regardless of the environment.
    pub fn arm() {
        FORCED.store(true, Ordering::Relaxed);
    }
}

#[cfg(not(debug_assertions))]
mod imp {
    /// Release builds compile every check out: `armed` is `const false`
    /// and the dead branches vanish.
    #[inline(always)]
    pub const fn armed() -> bool {
        false
    }

    /// No-op in release builds.
    #[inline(always)]
    pub fn arm() {}
}

pub use imp::{arm, armed};

/// True when arming the checks can actually take effect in this build.
///
/// Release builds compile every invariant out ([`armed`] is
/// `const false`), so a harness that *relies* on the checks firing —
/// the scenario fuzzer arms them and treats a violation as a found
/// bug — must be able to tell "armed and active" apart from "armed
/// but compiled out", and warn rather than report a silently
/// check-free run.
pub const fn checks_compiled_in() -> bool {
    cfg!(debug_assertions)
}

/// Checks `$cond` when the invariants are armed; panics with the
/// formatted message on violation. The condition and message operands
/// are not evaluated while disarmed, so checks may walk queues freely.
macro_rules! invariant {
    ($cond:expr, $($arg:tt)+) => {
        if $crate::invariants::armed() && !($cond) {
            panic!("ABW_CHECK invariant violated: {}", format_args!($($arg)+));
        }
    };
}
pub(crate) use invariant;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(debug_assertions)]
    fn armed_invariant_panics_on_violation() {
        arm();
        let caught = std::panic::catch_unwind(|| {
            invariant!(1 + 1 == 3, "arithmetic broke: {}", 42);
        });
        let payload = caught.expect_err("violated invariant must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload is the formatted message");
        assert!(msg.contains("ABW_CHECK invariant violated"), "{msg}");
        assert!(msg.contains("arithmetic broke: 42"), "{msg}");
    }

    #[test]
    #[cfg(debug_assertions)]
    fn armed_invariant_passes_when_true() {
        arm();
        invariant!(2 + 2 == 4, "never printed");
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn release_builds_disarm_completely() {
        arm();
        assert!(!armed());
        // the condition must not even be evaluated
        invariant!(
            { unreachable!("release must not evaluate conditions") },
            "never"
        );
    }
}
