//! Deterministic link impairments: loss, reordering, jitter, rate flaps.
//!
//! The paper's pitfalls hinge on what happens when probes are
//! *disturbed*: direct probing silently assumes no loss, Pathload reads
//! loss as congestion, BFind deliberately induces it. The base
//! simulator can only lose packets through queue overflow, so this
//! module adds a per-link fault-injection pipeline:
//!
//! * i.i.d. random loss ([`LossModel::Iid`]),
//! * Gilbert–Elliott two-state bursty loss ([`LossModel::GilbertElliott`]),
//! * bounded packet reordering ([`ReorderSpec`]: a packet is held back
//!   by a fixed extra delay with some probability, letting later
//!   packets overtake it),
//! * delay jitter (uniform extra egress delay in `[0, max]`),
//! * scheduled capacity flaps (the link's effective rate steps through
//!   a fixed `(time, rate)` schedule).
//!
//! Every random decision is drawn from the impairment's **own seeded
//! RNG stream**, advanced only by packets crossing its link, so a run
//! is a pure function of its seeds: bit-reproducible and invariant
//! under `ABW_JOBS` (each simulation owns its links, and the executor
//! never shares state between jobs).
//!
//! Loss is applied at link *ingress* (before the queue — the packet
//! never occupies buffer space, modelling corruption on the upstream
//! wire); reordering and jitter are applied at link *egress* (extra
//! delay on top of propagation, the `netem`-style model). Capacity
//! flaps take effect at the next transmission start, so an in-flight
//! packet always finishes at the rate it started with.

use abw_obs::prof::{self, Cost};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::time::{SimDuration, SimTime};

/// Packet-loss process of an impaired link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossModel {
    /// No impairment loss.
    None,
    /// Independent loss: every packet is dropped with probability `p`.
    Iid {
        /// Per-packet loss probability in `[0, 1]`.
        p: f64,
    },
    /// Gilbert–Elliott bursty loss: a two-state Markov chain where each
    /// state has its own loss probability. The chain starts in the good
    /// state and transitions once per packet *after* the loss decision.
    GilbertElliott {
        /// Probability of moving good → bad, per packet.
        p_good_to_bad: f64,
        /// Probability of moving bad → good, per packet.
        p_bad_to_good: f64,
        /// Loss probability while in the bad state.
        loss_bad: f64,
        /// Loss probability while in the good state (usually 0).
        loss_good: f64,
    },
}

impl LossModel {
    fn validate(&self) {
        let check = |p: f64, what: &str| {
            assert!(
                (0.0..=1.0).contains(&p),
                "{what} must be a probability in [0, 1], got {p}"
            );
        };
        match *self {
            LossModel::None => {}
            LossModel::Iid { p } => check(p, "iid loss probability"),
            LossModel::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_bad,
                loss_good,
            } => {
                check(p_good_to_bad, "good->bad transition probability");
                check(p_bad_to_good, "bad->good transition probability");
                check(loss_bad, "bad-state loss probability");
                check(loss_good, "good-state loss probability");
            }
        }
    }

    fn is_noop(&self) -> bool {
        match *self {
            LossModel::None => true,
            LossModel::Iid { p } => p <= 0.0,
            LossModel::GilbertElliott {
                loss_bad,
                loss_good,
                ..
            } => loss_bad <= 0.0 && loss_good <= 0.0,
        }
    }
}

/// Bounded reordering: with probability `prob`, a departing packet is
/// held for `extra` beyond its normal egress time. Packets serialised
/// while it is held overtake it, so the reordering depth is bounded by
/// `extra / serialisation_time` — never unbounded shuffling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReorderSpec {
    /// Probability a packet is held back.
    pub prob: f64,
    /// How long a held packet is delayed.
    pub extra: SimDuration,
}

/// Declarative impairment configuration of one link.
///
/// Build with the `with_*` methods or parse from a kebab-case spec
/// string ([`ImpairmentConfig::parse`]); attach to a link with
/// [`crate::sim::Simulator::impair_link`] or through a scenario's
/// `HopSpec`.
#[derive(Debug, Clone, PartialEq)]
pub struct ImpairmentConfig {
    /// Packet-loss process.
    pub loss: LossModel,
    /// Bounded reordering, if any.
    pub reorder: Option<ReorderSpec>,
    /// Uniform egress jitter in `[0, max]`, if any.
    pub jitter: Option<SimDuration>,
    /// Scheduled capacity flaps: at each `(time, rate_bps)` the link's
    /// effective capacity becomes `rate_bps` (until the next entry).
    /// Entries must be in strictly increasing time order.
    pub flaps: Vec<(SimTime, f64)>,
}

impl Default for ImpairmentConfig {
    fn default() -> Self {
        ImpairmentConfig {
            loss: LossModel::None,
            reorder: None,
            jitter: None,
            flaps: Vec::new(),
        }
    }
}

impl ImpairmentConfig {
    /// A configuration with no impairments (attachable but inert).
    pub fn none() -> Self {
        ImpairmentConfig::default()
    }

    /// Independent per-packet loss with probability `p`.
    pub fn iid_loss(p: f64) -> Self {
        ImpairmentConfig {
            loss: LossModel::Iid { p },
            ..ImpairmentConfig::default()
        }
    }

    /// Sets the loss model.
    pub fn with_loss(mut self, loss: LossModel) -> Self {
        self.loss = loss;
        self
    }

    /// Adds bounded reordering.
    pub fn with_reorder(mut self, prob: f64, extra: SimDuration) -> Self {
        self.reorder = Some(ReorderSpec { prob, extra });
        self
    }

    /// Adds uniform egress jitter in `[0, max]`.
    pub fn with_jitter(mut self, max: SimDuration) -> Self {
        self.jitter = Some(max);
        self
    }

    /// Appends a capacity flap: effective rate becomes `rate_bps` at `at`.
    pub fn with_flap(mut self, at: SimTime, rate_bps: f64) -> Self {
        self.flaps.push((at, rate_bps));
        self
    }

    /// True when attaching this configuration would change nothing.
    pub fn is_noop(&self) -> bool {
        self.loss.is_noop()
            && self.reorder.is_none_or(|r| r.prob <= 0.0)
            && self.jitter.is_none_or(|j| j == SimDuration::ZERO)
            && self.flaps.is_empty()
    }

    /// Parses a kebab-case impairment spec: comma-separated
    /// `key=value` items.
    ///
    /// | key | value | example |
    /// |-----|-------|---------|
    /// | `loss` | i.i.d. loss probability | `loss=0.01` |
    /// | `ge-loss` | `p_gb:p_bg:loss_bad[:loss_good]` | `ge-loss=0.05:0.4:0.5` |
    /// | `reorder` | `prob:extra` | `reorder=0.05:2ms` |
    /// | `jitter` | max extra delay | `jitter=500us` |
    /// | `flap` | `time:rate[;time:rate…]` | `flap=2s:25e6;4s:50e6` |
    ///
    /// Durations take `ns`/`us`/`ms`/`s` suffixes. An empty string
    /// parses to [`ImpairmentConfig::none`]. A repeated key or an empty
    /// item (a trailing or doubled comma) is a parse error — near-miss
    /// specs must fail loudly rather than silently last-wins, since
    /// generated specs (the scenario fuzzer) exercise exactly those
    /// corners.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut config = ImpairmentConfig::none();
        if spec.trim().is_empty() {
            return Ok(config);
        }
        let mut seen: Vec<String> = Vec::new();
        for item in spec.split(',').map(str::trim) {
            if item.is_empty() {
                return Err("empty impairment item (trailing or doubled comma?)".to_string());
            }
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| format!("impairment item `{item}` is not key=value"))?;
            let key_name = key.trim().to_string();
            if seen.contains(&key_name) {
                return Err(format!(
                    "repeated impairment key `{key_name}` (each key may appear once)"
                ));
            }
            seen.push(key_name);
            match key.trim() {
                "loss" => {
                    config.loss = LossModel::Iid {
                        p: parse_prob(value)?,
                    };
                }
                "ge-loss" => {
                    let parts: Vec<&str> = value.split(':').collect();
                    if !(3..=4).contains(&parts.len()) {
                        return Err(format!(
                            "ge-loss wants p_gb:p_bg:loss_bad[:loss_good], got `{value}`"
                        ));
                    }
                    config.loss = LossModel::GilbertElliott {
                        p_good_to_bad: parse_prob(parts[0])?,
                        p_bad_to_good: parse_prob(parts[1])?,
                        loss_bad: parse_prob(parts[2])?,
                        loss_good: parts.get(3).map_or(Ok(0.0), |p| parse_prob(p))?,
                    };
                }
                "reorder" => {
                    let (prob, extra) = value
                        .split_once(':')
                        .ok_or_else(|| format!("reorder wants prob:extra, got `{value}`"))?;
                    config.reorder = Some(ReorderSpec {
                        prob: parse_prob(prob)?,
                        extra: parse_duration(extra)?,
                    });
                }
                "jitter" => config.jitter = Some(parse_duration(value)?),
                "flap" => {
                    for step in value.split(';') {
                        let (at, rate) = step
                            .split_once(':')
                            .ok_or_else(|| format!("flap wants time:rate, got `{step}`"))?;
                        let at = parse_duration(at)?;
                        let rate: f64 = rate
                            .trim()
                            .parse()
                            .map_err(|_| format!("flap rate `{rate}` is not a number"))?;
                        if !(rate.is_finite() && rate > 0.0) {
                            return Err(format!("flap rate must be positive, got {rate}"));
                        }
                        config.flaps.push((SimTime::ZERO + at, rate));
                    }
                }
                other => return Err(format!("unknown impairment key `{other}`")),
            }
        }
        config.validated()
    }

    /// Renders the configuration back to its canonical kebab-case spec
    /// string — the exact inverse of [`ImpairmentConfig::parse`]:
    /// `parse(&cfg.to_spec())` reproduces `cfg` bit-for-bit (floats are
    /// printed with their shortest round-trip representation, durations
    /// as an integer count of the largest exact unit). A no-op
    /// configuration renders as the empty string.
    pub fn to_spec(&self) -> String {
        let mut items: Vec<String> = Vec::new();
        match self.loss {
            LossModel::None => {}
            LossModel::Iid { p } => items.push(format!("loss={p}")),
            LossModel::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_bad,
                loss_good,
            } => {
                let mut s = format!("ge-loss={p_good_to_bad}:{p_bad_to_good}:{loss_bad}");
                if loss_good > 0.0 {
                    s.push_str(&format!(":{loss_good}"));
                }
                items.push(s);
            }
        }
        if let Some(r) = self.reorder {
            items.push(format!("reorder={}:{}", r.prob, fmt_duration(r.extra)));
        }
        if let Some(j) = self.jitter {
            items.push(format!("jitter={}", fmt_duration(j)));
        }
        if !self.flaps.is_empty() {
            let steps: Vec<String> = self
                .flaps
                .iter()
                .map(|&(at, rate)| {
                    format!(
                        "{}:{rate}",
                        fmt_duration(at.saturating_since(SimTime::ZERO))
                    )
                })
                .collect();
            items.push(format!("flap={}", steps.join(";")));
        }
        items.join(", ")
    }

    fn validated(self) -> Result<Self, String> {
        self.loss.validate();
        if let Some(r) = self.reorder {
            if !(0.0..=1.0).contains(&r.prob) {
                return Err(format!("reorder probability out of [0,1]: {}", r.prob));
            }
        }
        for w in self.flaps.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(format!(
                    "flap schedule must be strictly increasing in time ({} then {})",
                    w[0].0, w[1].0
                ));
            }
        }
        Ok(self)
    }
}

fn parse_prob(s: &str) -> Result<f64, String> {
    let p: f64 = s
        .trim()
        .parse()
        .map_err(|_| format!("`{s}` is not a number"))?;
    if (0.0..=1.0).contains(&p) {
        Ok(p)
    } else {
        Err(format!("probability `{s}` out of [0, 1]"))
    }
}

/// Renders a duration as an integer count of the largest unit that
/// divides it exactly (`500ms`, `250us`, `1536ns`) — the canonical
/// inverse of [`parse_duration`]. An integer count keeps the round trip
/// exact: `parse_duration` multiplies in `f64` and rounds to the
/// nearest nanosecond, which reproduces `n * unit_nanos` exactly for
/// every integer `n` below 2^52.
pub fn fmt_duration(d: SimDuration) -> String {
    let ns = d.as_nanos();
    if ns == 0 {
        return "0s".to_string();
    }
    if ns.is_multiple_of(1_000_000_000) {
        format!("{}s", ns / 1_000_000_000)
    } else if ns.is_multiple_of(1_000_000) {
        format!("{}ms", ns / 1_000_000)
    } else if ns.is_multiple_of(1_000) {
        format!("{}us", ns / 1_000)
    } else {
        format!("{ns}ns")
    }
}

/// Parses a duration with an `ns`/`us`/`ms`/`s` suffix (e.g. `500us`,
/// `2.5ms`).
pub fn parse_duration(s: &str) -> Result<SimDuration, String> {
    let s = s.trim();
    let (number, scale) = if let Some(n) = s.strip_suffix("ns") {
        (n, 1e-9)
    } else if let Some(n) = s.strip_suffix("us") {
        (n, 1e-6)
    } else if let Some(n) = s.strip_suffix("ms") {
        (n, 1e-3)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1.0)
    } else {
        return Err(format!("duration `{s}` needs an ns/us/ms/s suffix"));
    };
    let value: f64 = number
        .trim()
        .parse()
        .map_err(|_| format!("duration `{s}` is not a number"))?;
    if !(value.is_finite() && value >= 0.0) {
        return Err(format!("duration `{s}` must be non-negative and finite"));
    }
    Ok(SimDuration::from_secs_f64(value * scale))
}

/// What the ingress pipeline decided for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngressDecision {
    /// The packet proceeds into the queue.
    Pass,
    /// The packet is lost before entering the queue.
    Lose,
}

/// The live impairment state of one link: configuration plus the seeded
/// RNG stream and the Gilbert–Elliott channel state.
#[derive(Debug)]
pub struct Impairment {
    config: ImpairmentConfig,
    rng: StdRng,
    /// Gilbert–Elliott channel state: true while in the bad state.
    ge_bad: bool,
}

impl Impairment {
    /// Creates the live state for `config`, drawing every decision from
    /// a fresh RNG stream seeded with `seed`.
    ///
    /// Panics when a probability is outside `[0, 1]` or the flap
    /// schedule is not strictly increasing — configuration errors.
    pub fn new(config: ImpairmentConfig, seed: u64) -> Self {
        let config = config
            .validated()
            .unwrap_or_else(|e| panic!("invalid impairment configuration: {e}"));
        Impairment {
            config,
            rng: StdRng::seed_from_u64(seed),
            ge_bad: false,
        }
    }

    /// The configuration this impairment was built from.
    pub fn config(&self) -> &ImpairmentConfig {
        &self.config
    }

    /// One uniform draw in `[0, 1)`, tallied as [`Cost::RngDraws`] —
    /// every random decision below goes through here so the profiler
    /// sees exactly how much entropy the impairment pipeline consumes.
    fn draw(&mut self) -> f64 {
        prof::count(Cost::RngDraws);
        self.rng.random::<f64>()
    }

    /// Ingress decision for the next packet offered to the link. Each
    /// call advances the loss process by exactly one packet.
    pub fn ingress(&mut self) -> IngressDecision {
        let lose = match self.config.loss {
            LossModel::None => false,
            LossModel::Iid { p } => p > 0.0 && self.draw() < p,
            LossModel::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_bad,
                loss_good,
            } => {
                let p = if self.ge_bad { loss_bad } else { loss_good };
                let lose = p > 0.0 && self.draw() < p;
                // transition after the loss decision, one step per packet
                let p_flip = if self.ge_bad {
                    p_bad_to_good
                } else {
                    p_good_to_bad
                };
                if p_flip > 0.0 && self.draw() < p_flip {
                    self.ge_bad = !self.ge_bad;
                }
                lose
            }
        };
        if lose {
            IngressDecision::Lose
        } else {
            IngressDecision::Pass
        }
    }

    /// Extra egress delay for the next departing packet: reorder hold
    /// plus jitter. Returns [`SimDuration::ZERO`] when neither applies.
    pub fn egress_extra(&mut self) -> SimDuration {
        let mut extra = SimDuration::ZERO;
        if let Some(r) = self.config.reorder {
            if r.prob > 0.0 && self.draw() < r.prob {
                extra += r.extra;
            }
        }
        if let Some(max) = self.config.jitter {
            if max > SimDuration::ZERO {
                prof::count(Cost::RngDraws);
                extra += SimDuration::from_nanos(self.rng.random_range(0..=max.as_nanos()));
            }
        }
        extra
    }

    /// The link's effective capacity at `now`: the last flap at or
    /// before `now`, else `base_bps`.
    pub fn capacity_at(&self, now: SimTime, base_bps: f64) -> f64 {
        self.config
            .flaps
            .iter()
            .take_while(|&&(at, _)| at <= now)
            .last()
            .map_or(base_bps, |&(_, rate)| rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decisions(imp: &mut Impairment, n: usize) -> Vec<bool> {
        (0..n)
            .map(|_| imp.ingress() == IngressDecision::Lose)
            .collect()
    }

    #[test]
    fn same_seed_same_decisions() {
        let cfg = ImpairmentConfig::iid_loss(0.2)
            .with_reorder(0.1, SimDuration::from_millis(2))
            .with_jitter(SimDuration::from_micros(500));
        let mut a = Impairment::new(cfg.clone(), 42);
        let mut b = Impairment::new(cfg, 42);
        for _ in 0..1000 {
            assert_eq!(a.ingress(), b.ingress());
            assert_eq!(a.egress_extra(), b.egress_extra());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let cfg = ImpairmentConfig::iid_loss(0.5);
        let mut a = Impairment::new(cfg.clone(), 1);
        let mut b = Impairment::new(cfg, 2);
        let da = decisions(&mut a, 256);
        let db = decisions(&mut b, 256);
        assert_ne!(da, db);
    }

    #[test]
    fn iid_loss_rate_converges() {
        let mut imp = Impairment::new(ImpairmentConfig::iid_loss(0.1), 7);
        let lost = decisions(&mut imp, 20_000).iter().filter(|&&l| l).count();
        let rate = lost as f64 / 20_000.0;
        assert!((rate - 0.1).abs() < 0.01, "empirical loss rate {rate}");
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        // equal mean loss rate as iid, but losses must clump: the number
        // of loss runs is much smaller than the number of losses
        let cfg = ImpairmentConfig::none().with_loss(LossModel::GilbertElliott {
            p_good_to_bad: 0.02,
            p_bad_to_good: 0.2,
            loss_bad: 0.8,
            loss_good: 0.0,
        });
        let mut imp = Impairment::new(cfg, 11);
        let d = decisions(&mut imp, 50_000);
        let losses = d.iter().filter(|&&l| l).count();
        let runs = d.windows(2).filter(|w| !w[0] && w[1]).count().max(1);
        assert!(losses > 1000, "GE chain produced too few losses: {losses}");
        let mean_burst = losses as f64 / runs as f64;
        assert!(
            mean_burst > 1.5,
            "losses should arrive in bursts (mean burst length {mean_burst:.2})"
        );
    }

    #[test]
    fn jitter_is_bounded() {
        let max = SimDuration::from_micros(300);
        let mut imp = Impairment::new(ImpairmentConfig::none().with_jitter(max), 3);
        for _ in 0..5000 {
            assert!(imp.egress_extra() <= max);
        }
    }

    #[test]
    fn reorder_hold_is_all_or_nothing() {
        let extra = SimDuration::from_millis(1);
        let mut imp = Impairment::new(ImpairmentConfig::none().with_reorder(0.3, extra), 9);
        let mut held = 0;
        for _ in 0..5000 {
            let e = imp.egress_extra();
            assert!(e == SimDuration::ZERO || e == extra);
            if e == extra {
                held += 1;
            }
        }
        let rate = held as f64 / 5000.0;
        assert!((rate - 0.3).abs() < 0.05, "hold rate {rate}");
    }

    #[test]
    fn capacity_flap_schedule() {
        let cfg = ImpairmentConfig::none()
            .with_flap(SimTime::from_nanos(1_000), 20e6)
            .with_flap(SimTime::from_nanos(5_000), 80e6);
        let imp = Impairment::new(cfg, 0);
        assert_eq!(imp.capacity_at(SimTime::ZERO, 50e6), 50e6);
        assert_eq!(imp.capacity_at(SimTime::from_nanos(999), 50e6), 50e6);
        assert_eq!(imp.capacity_at(SimTime::from_nanos(1_000), 50e6), 20e6);
        assert_eq!(imp.capacity_at(SimTime::from_nanos(4_999), 50e6), 20e6);
        assert_eq!(imp.capacity_at(SimTime::from_nanos(5_000), 50e6), 80e6);
    }

    #[test]
    fn parse_full_spec() {
        let cfg = ImpairmentConfig::parse(
            "loss=0.01, reorder=0.05:2ms, jitter=500us, flap=2s:25e6;4s:50e6",
        )
        .unwrap();
        assert_eq!(cfg.loss, LossModel::Iid { p: 0.01 });
        assert_eq!(
            cfg.reorder,
            Some(ReorderSpec {
                prob: 0.05,
                extra: SimDuration::from_millis(2)
            })
        );
        assert_eq!(cfg.jitter, Some(SimDuration::from_micros(500)));
        assert_eq!(
            cfg.flaps,
            vec![
                (SimTime::ZERO + SimDuration::from_secs(2), 25e6),
                (SimTime::ZERO + SimDuration::from_secs(4), 50e6),
            ]
        );
    }

    #[test]
    fn parse_gilbert_elliott() {
        let cfg = ImpairmentConfig::parse("ge-loss=0.05:0.4:0.5").unwrap();
        assert_eq!(
            cfg.loss,
            LossModel::GilbertElliott {
                p_good_to_bad: 0.05,
                p_bad_to_good: 0.4,
                loss_bad: 0.5,
                loss_good: 0.0,
            }
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ImpairmentConfig::parse("loss=1.5").is_err());
        assert!(ImpairmentConfig::parse("loss").is_err());
        assert!(ImpairmentConfig::parse("jitter=5").is_err(), "no suffix");
        assert!(ImpairmentConfig::parse("warp=0.1").is_err());
        assert!(ImpairmentConfig::parse("flap=2s:0").is_err());
        assert!(ImpairmentConfig::parse("flap=4s:1e6;2s:2e6").is_err());
        assert!(ImpairmentConfig::parse("reorder=0.1").is_err());
    }

    #[test]
    fn parse_rejects_repeated_keys() {
        // last-wins would silently drop the first value — generated
        // near-miss specs must fail loudly instead
        let err = ImpairmentConfig::parse("loss=0.01, loss=0.02").unwrap_err();
        assert!(err.contains("repeated impairment key `loss`"), "{err}");
        let err = ImpairmentConfig::parse("jitter=1ms, loss=0.1, jitter=2ms").unwrap_err();
        assert!(err.contains("repeated impairment key `jitter`"), "{err}");
        // ...including a repeat that would have parsed identically
        assert!(ImpairmentConfig::parse("loss=0.01,loss=0.01").is_err());
    }

    #[test]
    fn parse_rejects_trailing_and_doubled_commas() {
        for bad in ["loss=0.01,", "loss=0.01,,jitter=1ms", ",loss=0.01"] {
            let err = ImpairmentConfig::parse(bad).unwrap_err();
            assert!(err.contains("empty impairment item"), "`{bad}`: {err}");
        }
    }

    #[test]
    fn to_spec_round_trips() {
        let specs = [
            "",
            "loss=0.01",
            "ge-loss=0.05:0.4:0.5",
            "ge-loss=0.05:0.4:0.5:0.001",
            "loss=0.013, reorder=0.05:2ms, jitter=500us, flap=2s:25000000;4s:51300000.5",
            "jitter=1536ns",
        ];
        for spec in specs {
            let cfg = ImpairmentConfig::parse(spec).unwrap();
            let rendered = cfg.to_spec();
            let reparsed = ImpairmentConfig::parse(&rendered)
                .unwrap_or_else(|e| panic!("`{rendered}` does not re-parse: {e}"));
            assert_eq!(cfg, reparsed, "spec `{spec}` -> `{rendered}`");
        }
        // the canonical rendering is itself a fixpoint
        let cfg = ImpairmentConfig::parse("loss=0.25,   jitter=250us").unwrap();
        assert_eq!(cfg.to_spec(), "loss=0.25, jitter=250us");
        assert_eq!(ImpairmentConfig::none().to_spec(), "");
    }

    #[test]
    fn fmt_duration_picks_largest_exact_unit() {
        assert_eq!(fmt_duration(SimDuration::ZERO), "0s");
        assert_eq!(fmt_duration(SimDuration::from_secs(2)), "2s");
        assert_eq!(fmt_duration(SimDuration::from_millis(500)), "500ms");
        assert_eq!(fmt_duration(SimDuration::from_micros(1500)), "1500us");
        assert_eq!(fmt_duration(SimDuration::from_nanos(1536)), "1536ns");
        for ns in [1u64, 999, 1_000, 123_456, 7_000_000, 86_400_000_000_000] {
            let d = SimDuration::from_nanos(ns);
            assert_eq!(parse_duration(&fmt_duration(d)).unwrap(), d, "{ns}ns");
        }
    }

    #[test]
    fn empty_spec_is_noop() {
        let cfg = ImpairmentConfig::parse("").unwrap();
        assert!(cfg.is_noop());
        assert!(ImpairmentConfig::iid_loss(0.0).is_noop());
        assert!(!ImpairmentConfig::iid_loss(0.1).is_noop());
    }
}
