//! # abw-netsim
//!
//! A deterministic, discrete-event, packet-level network simulator — the
//! substrate under every experiment in *"Ten Fallacies and Pitfalls on
//! End-to-End Available Bandwidth Estimation"* (Jain & Dovrolis, IMC 2004).
//! The paper's figures come from ns-2 simulations of single-hop and
//! multi-hop paths; this crate provides the same abstraction level:
//!
//! * store-and-forward [`link::Link`]s with FIFO drop-tail queues,
//! * multi-hop paths with per-hop TTL handling and ICMP time-exceeded
//!   replies (needed by BFind),
//! * an [`agent::Agent`] trait for traffic sources, sinks, probing
//!   endpoints and TCP,
//! * exact busy-period recording per link, from which `abw-trace` computes
//!   the ground-truth available bandwidth process `A_tau(t)`,
//! * per-link fault injection ([`impair::Impairment`]): i.i.d. and
//!   Gilbert–Elliott loss, bounded reordering, jitter, and scheduled
//!   capacity flaps — each driven by its own seeded RNG stream.
//!
//! Determinism: time is integer nanoseconds, event ties break in insertion
//! order, and all randomness lives in agents that own seeded RNGs; a run is
//! a pure function of its seeds.
//!
//! ## Example
//!
//! ```
//! use abw_netsim::{Simulator, LinkConfig, SimDuration, SimTime, CountingSink};
//!
//! let mut sim = Simulator::new();
//! let link = sim.add_link(LinkConfig::new(50e6, SimDuration::from_millis(5)));
//! let path = sim.add_path(vec![link]);
//! let sink = sim.add_agent(Box::new(CountingSink::new()));
//! sim.run_until(SimTime::from_nanos(1_000_000));
//! assert_eq!(sim.agent::<CountingSink>(sink).packets, 0);
//! let _ = path;
//! ```

pub mod agent;
pub mod arena;
pub mod event;
pub mod impair;
pub mod invariants;
pub mod link;
pub mod packet;
pub mod sim;
pub mod time;

pub use agent::{packet_to, Agent, CountingSink, Ctx, FluidRoute, FluidSource, FluidStep};
pub use arena::{PacketArena, PacketRef};
pub use impair::{Impairment, ImpairmentConfig, LossModel, ReorderSpec};
pub use link::{BusyLog, Link, LinkConfig, LinkCounters};
pub use packet::{AgentId, FlowId, LinkId, Packet, PacketKind, PathId, DEFAULT_TTL};
pub use sim::{SimCounters, Simulator};
pub use time::{gap_for_rate, transmission_time, SimDuration, SimTime};
