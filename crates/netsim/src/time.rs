//! Simulation time.
//!
//! Time is an integer count of nanoseconds since the start of the
//! simulation. Integer time keeps the event loop free of floating-point
//! drift, which matters because probing tools infer available bandwidth
//! from *microsecond-scale* packet gap changes; conversions to and from
//! seconds happen only at the API edges.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation origin, `t = 0`.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the origin as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`.
    ///
    /// Panics when `earlier` is later than `self`; simulation causality
    /// violations should fail loudly.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier instant is in the future"),
        )
    }

    /// Saturating difference: zero when `earlier` is later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond. Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration must be finite and non-negative, got {s}"
        );
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds (for reporting and rate arithmetic).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Integer division of durations (how many `rhs` fit in `self`).
    pub fn div_duration(self, rhs: SimDuration) -> u64 {
        assert!(rhs.0 > 0, "division by zero duration");
        self.0 / rhs.0
    }

    /// Scales the duration by an integer factor.
    pub const fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction went negative"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction went negative"),
        )
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// Time to serialise `bytes` onto a link of `rate_bps` capacity,
/// rounded to the nearest nanosecond.
///
/// Panics when the rate is not strictly positive and finite.
pub fn transmission_time(bytes: u32, rate_bps: f64) -> SimDuration {
    assert!(
        rate_bps.is_finite() && rate_bps > 0.0,
        "link rate must be positive, got {rate_bps}"
    );
    let ns = (bytes as f64 * 8.0 * 1e9 / rate_bps).round() as u64;
    SimDuration::from_nanos(ns)
}

/// The packet gap that yields a stream of `rate_bps` with `bytes`-sized
/// packets: `gap = 8 * bytes / rate`.
pub fn gap_for_rate(bytes: u32, rate_bps: f64) -> SimDuration {
    transmission_time(bytes, rate_bps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_nanos(), 250_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_nanos(100) + SimDuration::from_nanos(50);
        assert_eq!(t.as_nanos(), 150);
        assert_eq!(t.since(SimTime::from_nanos(100)).as_nanos(), 50);
        assert_eq!(
            SimTime::from_nanos(10).saturating_since(SimTime::from_nanos(20)),
            SimDuration::ZERO
        );
    }

    #[test]
    #[should_panic]
    fn negative_since_panics() {
        let _ = SimTime::from_nanos(10).since(SimTime::from_nanos(20));
    }

    #[test]
    fn transmission_times() {
        // 1500 B at 100 Mb/s = 120 us
        assert_eq!(
            transmission_time(1500, 100e6),
            SimDuration::from_micros(120)
        );
        // 40 B at 1 Gb/s = 320 ns
        assert_eq!(transmission_time(40, 1e9), SimDuration::from_nanos(320));
    }

    #[test]
    fn gap_for_rate_matches_rate() {
        // sending 1500 B packets every gap yields exactly 30 Mb/s
        let gap = gap_for_rate(1500, 30e6);
        let rate = 1500.0 * 8.0 / gap.as_secs_f64();
        assert!((rate - 30e6).abs() / 30e6 < 1e-6);
    }

    #[test]
    fn duration_division() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d.div_duration(SimDuration::from_millis(3)), 3);
        assert_eq!(d.mul(3).as_nanos(), 30_000_000);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_nanos(1_500_000)), "0.001500s");
        assert_eq!(format!("{}", SimDuration::from_millis(20)), "0.020000s");
    }
}
