//! Slab allocation for in-flight packets.
//!
//! Packets used to travel *inside* event-queue entries by value
//! (~88 bytes each), so every push, pop and heap sift moved a whole
//! packet. The arena gives each in-flight packet a stable slot and the
//! event queue carries a copyable 8-byte [`PacketRef`] instead. Slots
//! are recycled through a free list, so the steady-state hot path
//! performs no heap allocation per packet at all — the slab grows to
//! the peak number of simultaneously in-flight packets and then stays
//! there (`BENCH_8.json` pins the collapse of `heap_allocs`).
//!
//! Slots carry a generation counter that is bumped on every free. A
//! [`PacketRef`] whose generation disagrees with its slot is stale —
//! using one is a simulator bug (an event referencing a packet that was
//! already delivered or dropped) and panics immediately rather than
//! silently aliasing a recycled slot.

use crate::packet::Packet;

/// A generational handle to a packet stored in a [`PacketArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketRef {
    idx: u32,
    gen: u32,
}

impl PacketRef {
    /// A handle that matches no slot — a placeholder for "no packet"
    /// fields whose validity is tracked out of band (the arena panics
    /// if it is ever dereferenced).
    pub(crate) const DANGLING: PacketRef = PacketRef {
        idx: u32::MAX,
        gen: u32::MAX,
    };
}

struct Slot {
    gen: u32,
    packet: Option<Packet>,
}

/// A slab of in-flight packets with generational handles.
#[derive(Default)]
pub struct PacketArena {
    slots: Vec<Slot>,
    free: Vec<u32>,
}

impl PacketArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        PacketArena::default()
    }

    /// Stores `packet`, reusing a freed slot when one is available.
    #[inline]
    pub fn alloc(&mut self, packet: Packet) -> PacketRef {
        if let Some(idx) = self.free.pop() {
            // lint: allow(panic_free) -- free-list entries are indices of existing slots
            let slot = &mut self.slots[idx as usize];
            debug_assert!(slot.packet.is_none(), "free-list slot still occupied");
            slot.packet = Some(packet);
            PacketRef { idx, gen: slot.gen }
        } else {
            // lint: allow(panic_free) -- u32::MAX live packets would exhaust memory first
            let idx = u32::try_from(self.slots.len()).expect("packet arena overflow");
            self.slots.push(Slot {
                gen: 0,
                packet: Some(packet),
            });
            PacketRef { idx, gen: 0 }
        }
    }

    /// Read access to a live packet.
    ///
    /// Panics on a stale or vacant reference — always a simulator bug.
    #[inline]
    pub fn get(&self, r: PacketRef) -> &Packet {
        // lint: allow(panic_free) -- refs are arena-issued; a bad index is a stale ref, which the generation assert exists to catch
        let slot = &self.slots[r.idx as usize];
        assert!(slot.gen == r.gen, "stale packet reference");
        // lint: allow(panic_free) -- generation matched, so the slot holds the referenced packet
        slot.packet.as_ref().expect("vacant packet slot")
    }

    /// Mutable access to a live packet (see [`PacketArena::get`]).
    #[inline]
    pub fn get_mut(&mut self, r: PacketRef) -> &mut Packet {
        // lint: allow(panic_free) -- refs are arena-issued; a bad index is a stale ref, which the generation assert exists to catch
        let slot = &mut self.slots[r.idx as usize];
        assert!(slot.gen == r.gen, "stale packet reference");
        // lint: allow(panic_free) -- generation matched, so the slot holds the referenced packet
        slot.packet.as_mut().expect("vacant packet slot")
    }

    /// Removes and returns a packet, recycling its slot.
    #[inline]
    pub fn take(&mut self, r: PacketRef) -> Packet {
        // lint: allow(panic_free) -- refs are arena-issued; a bad index is a stale ref, which the generation assert exists to catch
        let slot = &mut self.slots[r.idx as usize];
        assert!(slot.gen == r.gen, "stale packet reference");
        // lint: allow(panic_free) -- generation matched, so the slot holds the referenced packet
        let packet = slot.packet.take().expect("vacant packet slot");
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(r.idx);
        packet
    }

    /// Number of packets currently stored (in flight).
    pub fn in_flight(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Total slots ever allocated — the peak of simultaneously in-flight
    /// packets over the arena's lifetime.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{AgentId, FlowId, PacketKind, PathId, DEFAULT_TTL};
    use crate::time::SimTime;

    fn pkt(seq: u64) -> Packet {
        Packet {
            id: seq,
            flow: FlowId(0),
            src: AgentId(0),
            dst: AgentId(1),
            path: PathId(0),
            hop: 0,
            size: 1500,
            seq,
            sent_at: SimTime::ZERO,
            ttl: DEFAULT_TTL,
            kind: PacketKind::Data,
        }
    }

    #[test]
    fn alloc_take_roundtrip() {
        let mut a = PacketArena::new();
        let r1 = a.alloc(pkt(1));
        let r2 = a.alloc(pkt(2));
        assert_eq!(a.in_flight(), 2);
        assert_eq!(a.get(r1).seq, 1);
        assert_eq!(a.get(r2).seq, 2);
        a.get_mut(r2).hop = 3;
        let p2 = a.take(r2);
        assert_eq!((p2.seq, p2.hop), (2, 3));
        assert_eq!(a.in_flight(), 1);
    }

    #[test]
    fn slots_are_recycled_without_growth() {
        let mut a = PacketArena::new();
        for i in 0..1_000u64 {
            let r = a.alloc(pkt(i));
            assert_eq!(a.take(r).seq, i);
        }
        assert_eq!(a.capacity(), 1, "steady state must not grow the slab");
        assert_eq!(a.in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "stale packet reference")]
    fn stale_reference_panics() {
        let mut a = PacketArena::new();
        let r = a.alloc(pkt(1));
        a.take(r);
        a.alloc(pkt(2)); // recycles the slot with a new generation
        a.get(r);
    }
}
