//! Agents: the active endpoints of the simulation.
//!
//! Traffic sources, sinks, probing senders/receivers and TCP endpoints all
//! implement [`Agent`]. Agents interact with the network exclusively
//! through the [`Ctx`] handle they receive in callbacks: sending packets
//! down a path, delivering directly to a peer (uncongested reverse path),
//! and scheduling timers.

use std::any::Any;

use abw_obs::{Event as ObsEvent, Field, Phase, Recorder};

use crate::arena::PacketArena;
use crate::event::{Event, EventQueue};
use crate::packet::{AgentId, FlowId, Packet, PacketKind, PathId};
use crate::time::{SimDuration, SimTime};

/// Behaviour of a simulation endpoint.
///
/// All callbacks receive a [`Ctx`] scoped to the current simulation time.
/// Implementations must be `'static` so the simulator can own them, and
/// `Send` so a whole simulation can be handed to a worker thread — the
/// parallel executor (`abw-exec`) runs one independent simulation per
/// job.
pub trait Agent: Any + Send {
    /// Called once when the simulation starts (before any event).
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Called when a timer scheduled with [`Ctx::schedule_in`] /
    /// [`Ctx::schedule_at`] fires.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}

    /// Called when a packet addressed to this agent is delivered.
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _packet: Packet) {}

    /// The agent's fluid-source view, when it has one.
    ///
    /// A fluid source is an agent whose *entire* timer behaviour is "draw
    /// the next (gap, size), send one packet now, re-arm the same timer"
    /// — exactly the shape of a cross-traffic generator. Exposing that
    /// shape lets the simulator run the source through the fluid
    /// fast-forward loop in [`run_until`](crate::sim::Simulator::run_until),
    /// which produces bit-identical state without a queue round-trip per
    /// packet. Agents with any other timer behaviour must return `None`.
    fn fluid_source(&mut self) -> Option<&mut dyn FluidSource> {
        None
    }

    /// True when `on_packet` only updates internal counters: it never
    /// sends, schedules, or emits trace events. Deliveries to passive
    /// sinks may be processed inside a fluid fast-forward window.
    fn is_passive_sink(&self) -> bool {
        false
    }
}

/// One step of a fluid source's timer loop (see [`Agent::fluid_source`]).
#[derive(Debug, Clone, Copy)]
pub enum FluidStep {
    /// Send a `size`-byte packet with sequence number `seq` now, and
    /// fire the timer again after `gap`.
    Send {
        gap: SimDuration,
        size: u32,
        seq: u64,
    },
    /// The source has stopped; do not re-arm the timer.
    Stop,
}

/// Static routing of a fluid source's packets: every packet it emits
/// goes down the same path to the same destination.
#[derive(Debug, Clone, Copy)]
pub struct FluidRoute {
    /// Path the packets travel.
    pub path: PathId,
    /// Destination agent.
    pub dst: AgentId,
    /// Flow id stamped on the packets.
    pub flow: FlowId,
    /// Packet kind stamped on the packets.
    pub kind: PacketKind,
}

/// The timer loop of a cross-traffic generator, factored so the
/// simulator can drive it directly (fluid fast-forward) with exactly
/// the same RNG draws and counter updates as the `on_timer` path.
pub trait FluidSource {
    /// Where this source's packets go.
    fn fluid_route(&self) -> FluidRoute;

    /// Performs one timer firing at `now`: the draw, the send-side
    /// counter updates, and the decision to stop. Must mutate exactly
    /// the state `on_timer` would, in the same order.
    fn fluid_step(&mut self, now: SimTime) -> FluidStep;
}

/// Handle through which an agent acts on the simulation.
pub struct Ctx<'a> {
    pub(crate) now: SimTime,
    pub(crate) agent: AgentId,
    pub(crate) events: &'a mut EventQueue,
    pub(crate) arena: &'a mut PacketArena,
    pub(crate) next_packet_id: &'a mut u64,
    pub(crate) injected: &'a mut u64,
    pub(crate) recorder: Option<&'a mut (dyn Recorder + 'static)>,
}

impl Ctx<'_> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the agent being called.
    pub fn self_id(&self) -> AgentId {
        self.agent
    }

    /// True when the simulation has a recorder installed — lets agents
    /// skip building expensive event fields.
    pub fn recorder_active(&self) -> bool {
        self.recorder.is_some()
    }

    /// Emits a point event at the current simulation time (dropped when
    /// the simulation is untraced). Used by agents — TCP senders emit
    /// `tcp.cwnd`, probing endpoints emit stream milestones.
    #[inline]
    pub fn emit(&mut self, kind: &'static str, fields: &[Field<'_>]) {
        if let Some(r) = self.recorder.as_mut() {
            r.record(&ObsEvent {
                t_ns: self.now.as_nanos(),
                kind,
                phase: Phase::Instant,
                fields,
            });
        }
    }

    /// Sends `packet` onto the first link of its path, right now.
    ///
    /// The packet's `id` is assigned here; `src` is forced to the calling
    /// agent so ICMP errors return to the right place. `hop` is reset to 0.
    pub fn send(&mut self, mut packet: Packet) {
        packet.id = *self.next_packet_id;
        *self.next_packet_id += 1;
        packet.src = self.agent;
        packet.hop = 0;
        packet.sent_at = self.now;
        *self.injected += 1;
        let pkt = self.arena.alloc(packet);
        self.events.push(self.now, Event::Arrive { packet: pkt });
    }

    /// Delivers `packet` directly to `dst` after `delay`, bypassing all
    /// links — the model of an uncongested reverse path used for TCP ACKs.
    pub fn send_direct(&mut self, dst: AgentId, mut packet: Packet, delay: SimDuration) {
        packet.id = *self.next_packet_id;
        *self.next_packet_id += 1;
        packet.src = self.agent;
        packet.sent_at = self.now;
        *self.injected += 1;
        let pkt = self.arena.alloc(packet);
        self.events.push(
            self.now + delay,
            Event::Deliver {
                agent: dst,
                packet: pkt,
            },
        );
    }

    /// Schedules `on_timer(token)` for this agent after `delay`.
    pub fn schedule_in(&mut self, delay: SimDuration, token: u64) {
        self.events.push(
            self.now + delay,
            Event::Timer {
                agent: self.agent,
                token,
            },
        );
    }

    /// Schedules `on_timer(token)` for this agent at absolute time `at`
    /// (which must not be in the past).
    pub fn schedule_at(&mut self, at: SimTime, token: u64) {
        assert!(at >= self.now, "cannot schedule a timer in the past");
        self.events.push(
            at,
            Event::Timer {
                agent: self.agent,
                token,
            },
        );
    }
}

/// A packet sink that counts and optionally timestamps deliveries.
///
/// Used directly as the destination for cross-traffic flows, and in tests.
#[derive(Debug, Default)]
pub struct CountingSink {
    /// Packets received.
    pub packets: u64,
    /// Bytes received.
    pub bytes: u64,
    /// Arrival time of the first packet.
    pub first_arrival: Option<SimTime>,
    /// Arrival time of the most recent packet.
    pub last_arrival: Option<SimTime>,
}

impl CountingSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        CountingSink::default()
    }

    /// Mean received rate in bits/s between first and last arrival;
    /// `None` with fewer than 2 packets.
    pub fn mean_rate_bps(&self) -> Option<f64> {
        let (first, last) = (self.first_arrival?, self.last_arrival?);
        if last <= first {
            return None;
        }
        Some(self.bytes as f64 * 8.0 / last.since(first).as_secs_f64())
    }
}

impl Agent for CountingSink {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: Packet) {
        self.packets += 1;
        self.bytes += packet.size as u64;
        if self.first_arrival.is_none() {
            self.first_arrival = Some(ctx.now());
        }
        self.last_arrival = Some(ctx.now());
    }

    fn is_passive_sink(&self) -> bool {
        true
    }
}

/// Helper for agents that need a well-formed packet skeleton: fills the
/// routing fields and leaves sizing/kind to the caller.
pub fn packet_to(
    dst: AgentId,
    path: PathId,
    flow: crate::packet::FlowId,
    size: u32,
    seq: u64,
    kind: crate::packet::PacketKind,
) -> Packet {
    Packet {
        id: 0, // assigned by Ctx::send
        flow,
        src: AgentId(usize::MAX), // overwritten by Ctx::send
        dst,
        path,
        hop: 0,
        size,
        seq,
        sent_at: SimTime::ZERO, // overwritten by Ctx::send
        ttl: crate::packet::DEFAULT_TTL,
        kind,
    }
}
