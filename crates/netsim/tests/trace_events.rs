//! Integration tests for the simulator's observability hooks: event
//! emission, queue-depth histograms, manifest snapshots, and the
//! byte-identical-trace guarantee.

use std::sync::{Arc, Mutex};

use abw_netsim::{
    packet_to, Agent, CountingSink, Ctx, FlowId, LinkConfig, PacketKind, PathId, SimDuration,
    Simulator,
};
use abw_obs::{JsonlRecorder, MemoryRecorder, RunManifest};

/// Sends `n` packets with a fixed gap starting at t=0.
struct Burst {
    path: PathId,
    dst: abw_netsim::AgentId,
    n: u32,
    gap: SimDuration,
    sent: u32,
}

impl Agent for Burst {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.schedule_in(SimDuration::ZERO, 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        if self.sent >= self.n {
            return;
        }
        let p = packet_to(
            self.dst,
            self.path,
            FlowId(7),
            1500,
            self.sent as u64,
            PacketKind::Data,
        );
        ctx.send(p);
        self.sent += 1;
        if self.sent < self.n {
            ctx.schedule_in(self.gap, 0);
        }
    }
}

/// Builds a single-hop 12 Mb/s simulator with `n` packets at `gap_us`.
fn traced_run(
    n: u32,
    gap_us: u64,
    queue_bytes: Option<u64>,
) -> (Simulator, Arc<Mutex<MemoryRecorder>>) {
    let mut sim = Simulator::new();
    let mem = Arc::new(Mutex::new(MemoryRecorder::new()));
    sim.set_recorder(Box::new(mem.clone()));
    let mut cfg = LinkConfig::new(12e6, SimDuration::from_millis(1));
    if let Some(b) = queue_bytes {
        cfg = cfg.with_queue_bytes(b);
    }
    let link = sim.add_link(cfg);
    let path = sim.add_path(vec![link]);
    let sink = sim.add_agent(Box::new(CountingSink::new()));
    sim.add_agent(Box::new(Burst {
        path,
        dst: sink,
        n,
        gap: SimDuration::from_micros(gap_us),
        sent: 0,
    }));
    sim.run_to_quiescence();
    (sim, mem)
}

#[test]
fn events_cover_the_packet_lifecycle() {
    let (_, mem) = traced_run(5, 500, None);
    let mem = mem.lock().unwrap();
    assert_eq!(mem.of_kind("link.enqueue").count(), 5);
    assert_eq!(mem.of_kind("link.dequeue").count(), 5);
    assert_eq!(mem.of_kind("pkt.deliver").count(), 5);
    // 24 Mb/s into 12 Mb/s: one long busy period once the queue forms
    let busy_begins = mem
        .of_kind("link.busy")
        .filter(|e| e.phase == abw_obs::Phase::Begin)
        .count();
    let busy_ends = mem
        .of_kind("link.busy")
        .filter(|e| e.phase == abw_obs::Phase::End)
        .count();
    assert_eq!(busy_begins, busy_ends, "busy spans must balance");
    assert!(busy_begins >= 1);
    // timestamps are non-decreasing (events are a replayable log)
    let ts: Vec<u64> = mem.events().iter().map(|e| e.t_ns).collect();
    assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    // every delivery carries a positive one-way delay
    for ev in mem.of_kind("pkt.deliver") {
        let owd = ev.field("owd_ns").and_then(|v| v.as_u64()).unwrap();
        assert!(owd >= 2_000_000, "1 ms serialisation + 1 ms propagation");
    }
}

#[test]
fn drops_are_traced_and_counted() {
    // 3000-byte queue bound, 10 packets at line-rate-doubling gap
    let (sim, mem) = traced_run(10, 500, Some(3000));
    let mem = mem.lock().unwrap();
    let drops = mem.of_kind("link.drop").count() as u64;
    assert!(drops > 0, "overload against a tiny queue must drop");
    assert_eq!(drops, sim.total_drops());
    let c = sim.counters();
    assert_eq!(c.injected, c.delivered + drops + c.ttl_expired);
}

#[test]
fn queue_depth_histogram_tracks_buildup() {
    let (sim, _) = traced_run(5, 500, None);
    let link = sim.link(abw_netsim::LinkId(0));
    let hist = link
        .depth_histogram()
        .expect("set_recorder enables depth sampling");
    assert_eq!(hist.count(), 5, "one sample per enqueue");
    // rate ratio 2:1 over 5 packets: depth reaches 3 (2 waiting + 1 in
    // service) at the fifth enqueue
    assert_eq!(link.peak_queue_pkts(), 3);
    assert_eq!(hist.max(), Some(3));
}

#[test]
fn untraced_simulator_skips_depth_sampling() {
    let mut sim = Simulator::new();
    let link = sim.add_link(LinkConfig::new(12e6, SimDuration::ZERO));
    assert!(sim.link(link).depth_histogram().is_none());
    assert!(!sim.recorder_active());
}

#[test]
fn manifest_accumulates_counters_and_links() {
    let (sim, _) = traced_run(5, 500, None);
    let mut m = RunManifest {
        name: "trace-test".into(),
        version: "v-test".into(),
        ..RunManifest::default()
    };
    sim.fill_manifest(&mut m);
    sim.fill_manifest(&mut m); // second sim folds in: counters and links merge
    let get = |name: &str| {
        m.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap()
    };
    assert_eq!(get("injected"), 10);
    assert_eq!(get("delivered"), 10);
    assert_eq!(get("link_dropped"), 0);
    assert_eq!(m.links.len(), 1, "same link index merges, not appends");
    assert_eq!(m.links[0].forwarded_pkts, 10);
    assert!(m.sim_time_ns > 0);
    let json = m.to_json();
    assert!(json.contains("\"queue_depth\":{\"count\":5"));
}

#[test]
fn traces_are_byte_identical_across_runs() {
    let run = || {
        let mut sim = Simulator::new();
        let sink_buf = Arc::new(Mutex::new(JsonlRecorder::new(Vec::<u8>::new())));
        sim.set_recorder(Box::new(sink_buf.clone()));
        let link =
            sim.add_link(LinkConfig::new(12e6, SimDuration::from_millis(1)).with_queue_bytes(4500));
        let path = sim.add_path(vec![link]);
        let sink = sim.add_agent(Box::new(CountingSink::new()));
        sim.add_agent(Box::new(Burst {
            path,
            dst: sink,
            n: 20,
            gap: SimDuration::from_micros(333),
            sent: 0,
        }));
        sim.run_to_quiescence();
        drop(sim);
        let mut guard = sink_buf.lock().unwrap();
        abw_obs::Recorder::flush(&mut *guard);
        guard.writer().clone()
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    assert_eq!(a, b, "same topology + same seeds must yield the same bytes");
    let text = String::from_utf8(a).unwrap();
    for line in text.lines() {
        assert!(line.starts_with("{\"t\":") && line.ends_with('}'));
    }
}
