//! Canonical experiment topologies.
//!
//! The paper's simulations all share one shape: a probing path through one
//! or more store-and-forward links, each loaded by *one-hop persistent*
//! cross traffic (enters at link `i`, exits after link `i`). A
//! [`Scenario`] bundles the simulator, the probing endpoints and the
//! ground-truth bookkeeping so tools and experiments can be written
//! against one object.

use abw_netsim::{
    AgentId, CountingSink, FlowId, ImpairmentConfig, LinkConfig, LinkId, PathId, SimDuration,
    SimTime, Simulator,
};
use abw_trace::AvailBw;
use abw_traffic::{
    ArrivalProcess, Cbr, ParetoInterarrival, ParetoOnOff, PoissonProcess, SizeDist, SourceAgent,
};

use crate::probe::{ProbeReceiver, ProbeRunner, ProbeSender, Session};

pub mod dsl;
pub mod fuzz;

/// Cross-traffic model on a link (Figure 3's three models plus the
/// Pareto-interarrival UDP traffic of Figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossKind {
    /// Constant bit rate — the packet-level fluid approximation.
    Cbr,
    /// Poisson packet arrivals.
    Poisson,
    /// Pareto ON-OFF bursts (OFF shape 1.5, ON uniform 1–10 packets).
    ParetoOnOff,
    /// Packets with Pareto(2.5) interarrivals.
    ParetoInterarrival,
}

/// One hop of a scenario: a link plus its cross traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct HopSpec {
    /// Link capacity in bits/s.
    pub capacity_bps: f64,
    /// Mean cross-traffic rate entering this hop, in bits/s (0 = idle).
    pub cross_rate_bps: f64,
    /// Cross-traffic arrival model.
    pub cross: CrossKind,
    /// Cross-traffic packet sizes.
    pub cross_sizes: SizeDist,
    /// Propagation delay of the link.
    pub prop_delay: SimDuration,
    /// Queue bound in bytes (`None` = unbounded, the default for probing
    /// experiments so losses do not confound estimates).
    pub queue_bytes: Option<u64>,
    /// Injected faults on this hop's link (`None` = pristine, the
    /// default). The impairment RNG stream is derived from the scenario
    /// seed and the hop index, independently of the cross-traffic
    /// streams.
    pub impairment: Option<ImpairmentConfig>,
}

impl HopSpec {
    /// The paper's canonical tight link: 50 Mb/s capacity, 25 Mb/s cross
    /// traffic (avail-bw 25 Mb/s), 1500 B packets, 1 ms propagation.
    pub fn canonical(cross: CrossKind) -> Self {
        HopSpec {
            capacity_bps: 50e6,
            cross_rate_bps: 25e6,
            cross,
            cross_sizes: SizeDist::Constant(1500),
            prop_delay: SimDuration::from_millis(1),
            queue_bytes: None,
            impairment: None,
        }
    }

    /// Attaches an impairment pipeline to this hop's link.
    pub fn with_impairment(mut self, config: ImpairmentConfig) -> Self {
        self.impairment = Some(config);
        self
    }

    /// Attaches an impairment parsed from a kebab-case spec string
    /// (e.g. `"loss=0.01, jitter=500us"`); see
    /// [`ImpairmentConfig::parse`]. Panics on a malformed spec.
    pub fn with_impairment_spec(self, spec: &str) -> Self {
        let config = ImpairmentConfig::parse(spec)
            .unwrap_or_else(|e| panic!("bad impairment spec `{spec}`: {e}"));
        self.with_impairment(config)
    }

    /// The configured avail-bw of this hop.
    pub fn avail_bps(&self) -> f64 {
        self.capacity_bps - self.cross_rate_bps
    }
}

/// Configuration of the paper's single-hop setup.
#[derive(Debug, Clone)]
pub struct SingleHopConfig {
    /// Link capacity (default 50 Mb/s).
    pub capacity_bps: f64,
    /// Mean cross traffic rate (default 25 Mb/s, so avail-bw = 25 Mb/s).
    pub cross_rate_bps: f64,
    /// Cross-traffic model (default Poisson).
    pub cross: CrossKind,
    /// Cross-traffic packet sizes (default constant 1500 B).
    pub cross_sizes: SizeDist,
    /// Propagation delay (default 1 ms).
    pub prop_delay: SimDuration,
    /// Injected faults on the hop's link (default none).
    pub impairment: Option<ImpairmentConfig>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SingleHopConfig {
    fn default() -> Self {
        SingleHopConfig {
            capacity_bps: 50e6,
            cross_rate_bps: 25e6,
            cross: CrossKind::Poisson,
            cross_sizes: SizeDist::Constant(1500),
            prop_delay: SimDuration::from_millis(1),
            impairment: None,
            seed: 0xD0C5,
        }
    }
}

/// A ready-to-probe simulation: topology, cross traffic, and probing
/// endpoints.
pub struct Scenario {
    /// The simulator (public: experiments drive it directly when needed).
    pub sim: Simulator,
    /// The probing path (crosses every link).
    pub probe_path: PathId,
    /// The links, in path order.
    pub links: Vec<LinkId>,
    /// Hop specifications, in path order.
    pub hops: Vec<HopSpec>,
    /// The [`ProbeSender`] agent.
    pub sender: AgentId,
    /// The [`ProbeReceiver`] agent.
    pub receiver: AgentId,
    /// When the warm-up ended (ground-truth horizons start here).
    pub measure_from: SimTime,
    /// Cross-traffic source of each hop (`None` for idle hops), in path
    /// order — lets experiments retune cross rates mid-simulation.
    cross_sources: Vec<Option<AgentId>>,
}

impl Scenario {
    /// Builds a path from `hops`, wiring one-hop persistent cross traffic
    /// into every hop and probing endpoints across the whole path.
    pub fn from_hops(hops: Vec<HopSpec>, seed: u64) -> Self {
        assert!(!hops.is_empty(), "a scenario needs at least one hop");
        let mut sim = Simulator::new();
        let links: Vec<LinkId> = hops
            .iter()
            .map(|h| {
                let mut cfg = LinkConfig::new(h.capacity_bps, h.prop_delay);
                cfg.queue_bytes = h.queue_bytes;
                sim.add_link(cfg)
            })
            .collect();
        let probe_path = sim.add_path(links.clone());
        let receiver = sim.add_agent(Box::new(ProbeReceiver::new()));
        let sender = sim.add_agent(Box::new(ProbeSender::new(
            probe_path,
            receiver,
            FlowId(u32::MAX),
        )));

        // injected faults: each impaired link gets its own RNG stream,
        // derived from the scenario seed and hop index with a different
        // mix than the cross-traffic seeds so the streams never collide
        for (i, hop) in hops.iter().enumerate() {
            if let Some(config) = &hop.impairment {
                if !config.is_noop() {
                    sim.impair_link(links[i], config.clone(), impairment_seed(seed, i));
                }
            }
        }

        // one-hop persistent cross traffic: a dedicated single-link path
        // and sink per hop
        let mut cross_sources = Vec::with_capacity(hops.len());
        for (i, hop) in hops.iter().enumerate() {
            if hop.cross_rate_bps <= 0.0 {
                cross_sources.push(None);
                continue;
            }
            let cross_path = sim.add_path(vec![links[i]]);
            let cross_sink = sim.add_agent(Box::new(CountingSink::new()));
            let hop_seed = seed.wrapping_add(i as u64).wrapping_mul(0x9E3779B97F4A7C15);
            let process = make_process(hop, hop_seed);
            let source = sim.add_agent(Box::new(SourceAgent::new(
                process,
                cross_path,
                cross_sink,
                FlowId(i as u32),
            )));
            cross_sources.push(Some(source));
        }

        Scenario {
            sim,
            probe_path,
            links,
            hops,
            sender,
            receiver,
            measure_from: SimTime::ZERO,
            cross_sources,
        }
    }

    /// The paper's single-hop setup.
    pub fn single_hop(cfg: &SingleHopConfig) -> Self {
        let hop = HopSpec {
            capacity_bps: cfg.capacity_bps,
            cross_rate_bps: cfg.cross_rate_bps,
            cross: cfg.cross,
            cross_sizes: cfg.cross_sizes.clone(),
            prop_delay: cfg.prop_delay,
            queue_bytes: None,
            impairment: cfg.impairment.clone(),
        };
        Scenario::from_hops(vec![hop], cfg.seed)
    }

    /// Figure 4's topology: `tight_links` canonical tight hops in a row,
    /// all with the given cross model.
    pub fn multi_tight(tight_links: usize, cross: CrossKind, seed: u64) -> Self {
        assert!(tight_links >= 1);
        let hops = (0..tight_links)
            .map(|_| HopSpec::canonical(cross))
            .collect();
        Scenario::from_hops(hops, seed)
    }

    /// Pitfall 5's topology: the *narrow* link (lowest capacity, here
    /// 100 Mb/s Fast Ethernet, idle) is not the *tight* link (the most
    /// loaded, here an OC-3 at 155.52 Mb/s carrying `oc3_cross_bps`).
    pub fn tight_not_narrow(oc3_cross_bps: f64, seed: u64) -> Self {
        let narrow = HopSpec {
            capacity_bps: 100e6,
            cross_rate_bps: 0.0,
            cross: CrossKind::Poisson,
            cross_sizes: SizeDist::Constant(1500),
            prop_delay: SimDuration::from_millis(1),
            queue_bytes: None,
            impairment: None,
        };
        // constant MTU-sized cross packets keep the dispersion histogram
        // cleanly multi-modal, as in the bprobe/pathrate evaluations
        let tight = HopSpec {
            capacity_bps: 155.52e6,
            cross_rate_bps: oc3_cross_bps,
            cross: CrossKind::Poisson,
            cross_sizes: SizeDist::Constant(1500),
            prop_delay: SimDuration::from_millis(1),
            queue_bytes: None,
            impairment: None,
        };
        Scenario::from_hops(vec![narrow, tight], seed)
    }

    /// Runs the simulation for `d` so cross traffic reaches steady state;
    /// ground-truth horizons start after the warm-up.
    pub fn warm_up(&mut self, d: SimDuration) {
        self.sim.run_for(d);
        self.measure_from = self.sim.now();
    }

    /// A probing runner wired to this scenario's endpoints.
    pub fn runner(&self) -> ProbeRunner {
        ProbeRunner::new(self.sender, self.receiver)
    }

    /// A routed [`Session`] over this scenario's endpoints: the driver
    /// for any [`crate::tools::Estimator`], including ones that need
    /// load-ramp probing (BFind).
    pub fn session(&self) -> Session<'static> {
        Session::with_route(
            self.runner(),
            self.probe_path,
            self.links.len(),
            self.receiver,
        )
    }

    /// Retunes the mean cross-traffic rate of `hop` mid-simulation
    /// (tracking experiments step the avail-bw this way without
    /// rebuilding the simulator). Returns `false` when the hop has no
    /// cross source (it was built idle) or its arrival process does not
    /// support retuning; the configured rate is updated only on success.
    pub fn set_cross_rate(&mut self, hop: usize, rate_bps: f64) -> bool {
        let Some(Some(id)) = self.cross_sources.get(hop).copied() else {
            return false;
        };
        let changed = self.sim.agent_mut::<SourceAgent>(id).set_rate_bps(rate_bps);
        if changed {
            self.hops[hop].cross_rate_bps = rate_bps;
        }
        changed
    }

    /// Installs an impairment on hop `i`'s link of an already-built
    /// scenario, seeding its RNG stream exactly as
    /// [`Scenario::from_hops`] would with `seed` — so building with the
    /// impairment in the [`HopSpec`] and attaching it afterwards (before
    /// any traffic crosses the link) are bit-identical.
    pub fn impair_hop(&mut self, hop: usize, config: ImpairmentConfig, seed: u64) {
        self.hops[hop].impairment = Some(config.clone());
        self.sim
            .impair_link(self.links[hop], config, impairment_seed(seed, hop));
    }

    /// Configured end-to-end avail-bw: `min` over hops (Equation 3).
    pub fn configured_avail_bps(&self) -> f64 {
        self.hops
            .iter()
            .map(HopSpec::avail_bps)
            .fold(f64::INFINITY, f64::min)
    }

    /// Index and spec of the tight link (minimum configured avail-bw).
    pub fn tight_hop(&self) -> (usize, &HopSpec) {
        self.hops
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.avail_bps().total_cmp(&b.1.avail_bps()))
            .expect("non-empty")
    }

    /// Capacity of the tight link, `Ct`.
    pub fn tight_capacity_bps(&self) -> f64 {
        self.tight_hop().1.capacity_bps
    }

    /// Capacity of the narrow link, `Cn = min C_i`.
    pub fn narrow_capacity_bps(&self) -> f64 {
        self.hops
            .iter()
            .map(|h| h.capacity_bps)
            .fold(f64::INFINITY, f64::min)
    }

    /// Ground-truth avail-bw process of hop `i` from the end of warm-up
    /// to the current simulation time.
    pub fn ground_truth(&self, hop: usize) -> AvailBw {
        AvailBw::from_link(
            self.sim.link(self.links[hop]),
            self.measure_from,
            self.sim.now(),
        )
    }

    /// Ground-truth *path* avail-bw over `(a, b)`: the minimum over hops
    /// of each hop's avail-bw in that window (Equation 3).
    pub fn path_avail_bps(&self, a: SimTime, b: SimTime) -> f64 {
        self.links
            .iter()
            .map(|&l| AvailBw::from_link(self.sim.link(l), a, b).mean())
            .fold(f64::INFINITY, f64::min)
    }
}

/// Per-hop impairment RNG seed: the scenario seed and hop index mixed
/// with a constant offset so the stream differs from the cross-traffic
/// stream of the same hop (`seed + i` mixed without the offset).
fn impairment_seed(seed: u64, hop: usize) -> u64 {
    seed.wrapping_add(0xFA17_0000 + hop as u64)
        .wrapping_mul(0x9E3779B97F4A7C15)
}

fn make_process(hop: &HopSpec, seed: u64) -> Box<dyn ArrivalProcess> {
    match hop.cross {
        CrossKind::Cbr => {
            let size = match &hop.cross_sizes {
                SizeDist::Constant(s) => *s,
                other => other.max(),
            };
            Box::new(Cbr::new(hop.cross_rate_bps, size))
        }
        CrossKind::Poisson => Box::new(PoissonProcess::new(
            hop.cross_rate_bps,
            hop.cross_sizes.clone(),
            seed,
        )),
        CrossKind::ParetoOnOff => {
            let size = match &hop.cross_sizes {
                SizeDist::Constant(s) => *s,
                other => other.max(),
            };
            // bursts at half the link capacity: bursty but not saturating
            Box::new(ParetoOnOff::new(
                hop.cross_rate_bps,
                (hop.capacity_bps * 0.5).max(hop.cross_rate_bps * 1.5),
                size,
                seed,
            ))
        }
        CrossKind::ParetoInterarrival => Box::new(ParetoInterarrival::new(
            hop.cross_rate_bps,
            hop.cross_sizes.clone(),
            2.5,
            seed,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamSpec;

    #[test]
    fn single_hop_ground_truth_matches_configuration() {
        let mut s = Scenario::single_hop(&SingleHopConfig::default());
        s.warm_up(SimDuration::from_secs(1));
        s.sim.run_for(SimDuration::from_secs(10));
        let gt = s.ground_truth(0);
        let mean = gt.mean();
        assert!(
            (mean - 25e6).abs() / 25e6 < 0.03,
            "ground-truth avail-bw {mean}"
        );
        assert_eq!(s.configured_avail_bps(), 25e6);
        assert_eq!(s.tight_capacity_bps(), 50e6);
    }

    #[test]
    fn cbr_scenario_behaves_like_fluid() {
        let mut s = Scenario::single_hop(&SingleHopConfig {
            cross: CrossKind::Cbr,
            ..SingleHopConfig::default()
        });
        s.warm_up(SimDuration::from_millis(500));
        let mut runner = s.runner();
        // below avail-bw: no expansion
        let below = runner.run_stream(
            &mut s.sim,
            &StreamSpec::Periodic {
                rate_bps: 20e6,
                size: 1500,
                count: 100,
            },
        );
        let ratio = below.rate_ratio().unwrap();
        assert!(ratio > 0.99, "Ro/Ri = {ratio} below the avail-bw");
        // above avail-bw: fluid-model expansion Ro = Ri*Ct/(Ct+Ri-A)
        let above = runner.run_stream(
            &mut s.sim,
            &StreamSpec::Periodic {
                rate_bps: 40e6,
                size: 1500,
                count: 100,
            },
        );
        let ro = above.output_rate_bps().unwrap();
        let fluid = crate::fluid::output_rate(50e6, 40e6, 25e6);
        assert!(
            (ro - fluid).abs() / fluid < 0.05,
            "Ro = {ro}, fluid predicts {fluid}"
        );
    }

    #[test]
    fn multi_tight_path_has_min_avail() {
        let s = Scenario::multi_tight(3, CrossKind::Poisson, 7);
        assert_eq!(s.links.len(), 3);
        assert_eq!(s.configured_avail_bps(), 25e6);
    }

    #[test]
    fn tight_not_narrow_distinction() {
        let s = Scenario::tight_not_narrow(100e6, 3);
        assert_eq!(s.narrow_capacity_bps(), 100e6);
        assert_eq!(s.tight_capacity_bps(), 155.52e6);
        // tight link avail = 55.52 < narrow link avail = 100
        assert!((s.configured_avail_bps() - 55.52e6).abs() < 1.0);
        assert_eq!(s.tight_hop().0, 1);
    }

    #[test]
    fn impaired_hop_loses_cross_traffic_deterministically() {
        let build = || {
            let mut s = Scenario::single_hop(&SingleHopConfig {
                impairment: Some(ImpairmentConfig::iid_loss(0.05)),
                ..SingleHopConfig::default()
            });
            s.warm_up(SimDuration::from_secs(2));
            s
        };
        let a = build();
        let b = build();
        let lost = a.sim.link(a.links[0]).counters().impaired_pkts;
        assert!(lost > 0, "5% loss over 2 s of 25 Mb/s cross traffic");
        assert_eq!(
            lost,
            b.sim.link(b.links[0]).counters().impaired_pkts,
            "same seed must lose the same packets"
        );
    }

    #[test]
    fn impair_hop_matches_building_with_the_spec() {
        let cfg = ImpairmentConfig::iid_loss(0.02);
        let mut built = Scenario::single_hop(&SingleHopConfig {
            impairment: Some(cfg.clone()),
            ..SingleHopConfig::default()
        });
        let mut attached = Scenario::single_hop(&SingleHopConfig::default());
        attached.impair_hop(0, cfg, SingleHopConfig::default().seed);
        built.warm_up(SimDuration::from_secs(1));
        attached.warm_up(SimDuration::from_secs(1));
        assert_eq!(
            built.sim.link(built.links[0]).counters(),
            attached.sim.link(attached.links[0]).counters(),
        );
    }

    #[test]
    fn pristine_scenario_has_no_impairment_state() {
        let mut s = Scenario::single_hop(&SingleHopConfig::default());
        s.warm_up(SimDuration::from_secs(1));
        assert!(s.sim.link(s.links[0]).impairment().is_none());
        assert_eq!(s.sim.total_impaired(), 0);
    }

    #[test]
    fn path_avail_is_min_over_hops() {
        let mut s = Scenario::multi_tight(2, CrossKind::Poisson, 21);
        s.warm_up(SimDuration::from_secs(1));
        s.sim.run_for(SimDuration::from_secs(5));
        let a = s.path_avail_bps(s.measure_from, s.sim.now());
        assert!((a - 25e6).abs() / 25e6 < 0.05, "path avail {a}");
    }
}
