//! Probing stream construction.
//!
//! A [`StreamSpec`] describes one probing stream as the exact send offset
//! of every packet. Three families cover all the tools in the paper:
//!
//! * **periodic trains** (Delphi, TOPP, Pathload, IGI/PTR, BFind): `N`
//!   packets at a fixed rate — the probing duration is the averaging
//!   timescale knob (Pitfall 2);
//! * **packet pairs** (Spruce, TOPP): two packets at a precise intra-pair
//!   rate; pairs are spaced with exponential gaps to emulate Poisson
//!   sampling;
//! * **chirps** (pathChirp): exponentially shrinking gaps, so one stream
//!   probes a whole range of rates.

use abw_netsim::{gap_for_rate, SimDuration};

/// Description of one probing stream.
///
/// ```
/// use abw_core::stream::StreamSpec;
/// // 5 packets of 1500 B at 12 Mb/s: 1 ms between sends
/// let spec = StreamSpec::Periodic { rate_bps: 12e6, size: 1500, count: 5 };
/// assert_eq!(spec.offsets().len(), 5);
/// assert_eq!(spec.duration().as_millis_f64(), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum StreamSpec {
    /// `count` packets of `size` bytes at constant `rate_bps`.
    Periodic {
        /// Input rate in bits/s.
        rate_bps: f64,
        /// Packet size in bytes.
        size: u32,
        /// Number of packets (≥ 2).
        count: u32,
    },
    /// A single packet pair probing at `rate_bps` (intra-pair gap
    /// `8*size/rate`).
    Pair {
        /// Intra-pair rate in bits/s.
        rate_bps: f64,
        /// Packet size in bytes.
        size: u32,
    },
    /// A chirp of `count` packets: the first gap corresponds to
    /// `start_rate_bps` and each subsequent gap shrinks by `gamma`, so
    /// pair `k` probes `start_rate * gamma^k`.
    Chirp {
        /// Rate probed by the first packet pair, bits/s.
        start_rate_bps: f64,
        /// Spreading factor (> 1); successive pairs probe `gamma×` faster.
        gamma: f64,
        /// Packet size in bytes.
        size: u32,
        /// Number of packets (≥ 2).
        count: u32,
    },
}

impl StreamSpec {
    /// A periodic train sized to last `duration` at `rate_bps` — the
    /// "probing stream duration = averaging timescale" constructor used
    /// by the Figure 2 experiment.
    pub fn periodic_for_duration(rate_bps: f64, size: u32, duration: SimDuration) -> StreamSpec {
        let gap = gap_for_rate(size, rate_bps);
        let count = duration.as_nanos().div_ceil(gap.as_nanos()).max(1) as u32 + 1;
        StreamSpec::Periodic {
            rate_bps,
            size,
            count,
        }
    }

    /// Packet size in bytes.
    pub fn size(&self) -> u32 {
        match *self {
            StreamSpec::Periodic { size, .. }
            | StreamSpec::Pair { size, .. }
            | StreamSpec::Chirp { size, .. } => size,
        }
    }

    /// Number of packets in the stream.
    pub fn count(&self) -> u32 {
        match *self {
            StreamSpec::Periodic { count, .. } => count,
            StreamSpec::Pair { .. } => 2,
            StreamSpec::Chirp { count, .. } => count,
        }
    }

    /// The nominal input rate: for periodic streams and pairs the
    /// configured rate; for chirps the geometric mean of the probed range.
    pub fn nominal_rate_bps(&self) -> f64 {
        match *self {
            StreamSpec::Periodic { rate_bps, .. } | StreamSpec::Pair { rate_bps, .. } => rate_bps,
            StreamSpec::Chirp {
                start_rate_bps,
                gamma,
                count,
                ..
            } => start_rate_bps * gamma.powf((count.max(2) - 2) as f64 / 2.0),
        }
    }

    /// Exact send offsets of every packet, relative to the stream start.
    ///
    /// `offsets()[0]` is always zero; gaps are rounded to nanoseconds.
    pub fn offsets(&self) -> Vec<SimDuration> {
        match *self {
            StreamSpec::Periodic {
                rate_bps,
                size,
                count,
            } => {
                assert!(count >= 2, "a stream needs at least 2 packets");
                let gap = gap_for_rate(size, rate_bps);
                (0..count as u64)
                    .map(|k| SimDuration::from_nanos(gap.as_nanos() * k))
                    .collect()
            }
            StreamSpec::Pair { rate_bps, size } => {
                vec![SimDuration::ZERO, gap_for_rate(size, rate_bps)]
            }
            StreamSpec::Chirp {
                start_rate_bps,
                gamma,
                size,
                count,
            } => {
                assert!(count >= 2, "a chirp needs at least 2 packets");
                assert!(gamma > 1.0, "chirp spreading factor must exceed 1");
                // the narrowest gap must stay above the clock resolution,
                // or the chirp's top rates are fiction
                let first_gap = size as f64 * 8.0 / start_rate_bps;
                let last_gap = first_gap / gamma.powi(count as i32 - 2);
                assert!(
                    last_gap >= 10e-9,
                    "chirp exceeds the nanosecond clock: final gap {last_gap}s \
                     (reduce gamma, count, or the start rate)"
                );
                let mut offsets = Vec::with_capacity(count as usize);
                let mut t = 0.0f64;
                offsets.push(SimDuration::ZERO);
                for k in 0..(count - 1) {
                    t += first_gap / gamma.powi(k as i32);
                    offsets.push(SimDuration::from_secs_f64(t));
                }
                offsets
            }
        }
    }

    /// Rate probed by the pair `(k, k+1)`: `8 * size / gap_k`.
    pub fn pair_rate_bps(&self, k: usize) -> f64 {
        let offsets = self.offsets();
        assert!(k + 1 < offsets.len(), "pair index out of range");
        let gap = offsets[k + 1] - offsets[k];
        self.size() as f64 * 8.0 / gap.as_secs_f64()
    }

    /// Total stream duration (first to last packet send).
    pub fn duration(&self) -> SimDuration {
        *self.offsets().last().expect("stream has packets")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_offsets_are_uniform() {
        let s = StreamSpec::Periodic {
            rate_bps: 12e6,
            size: 1500,
            count: 5,
        };
        let o = s.offsets();
        assert_eq!(o.len(), 5);
        assert_eq!(o[0], SimDuration::ZERO);
        for w in o.windows(2) {
            assert_eq!(w[1] - w[0], SimDuration::from_millis(1));
        }
        assert_eq!(s.duration(), SimDuration::from_millis(4));
        assert!((s.pair_rate_bps(0) - 12e6).abs() < 1.0);
    }

    #[test]
    fn duration_constructor_covers_the_window() {
        let d = SimDuration::from_millis(100);
        let s = StreamSpec::periodic_for_duration(40e6, 1500, d);
        let got = s.duration();
        // duration within one gap of the request
        let gap = gap_for_rate(1500, 40e6);
        assert!(got >= d, "stream too short: {got}");
        assert!(got.as_nanos() - d.as_nanos() <= gap.as_nanos());
    }

    #[test]
    fn pair_is_two_packets() {
        let s = StreamSpec::Pair {
            rate_bps: 50e6,
            size: 1500,
        };
        assert_eq!(s.count(), 2);
        assert_eq!(s.offsets().len(), 2);
        assert!((s.pair_rate_bps(0) - 50e6).abs() / 50e6 < 1e-6);
    }

    #[test]
    fn chirp_rates_grow_geometrically() {
        let s = StreamSpec::Chirp {
            start_rate_bps: 10e6,
            gamma: 1.2,
            size: 1000,
            count: 8,
        };
        let o = s.offsets();
        assert_eq!(o.len(), 8);
        for k in 0..6 {
            let ratio = s.pair_rate_bps(k + 1) / s.pair_rate_bps(k);
            assert!((ratio - 1.2).abs() < 0.01, "pair {k}: ratio {ratio}");
        }
        assert!((s.pair_rate_bps(0) - 10e6).abs() / 10e6 < 0.01);
    }

    #[test]
    fn chirp_nominal_rate_is_geometric_mean() {
        let s = StreamSpec::Chirp {
            start_rate_bps: 10e6,
            gamma: 2.0,
            size: 1000,
            count: 4,
        };
        // pair rates: 10, 20, 40 → geometric mean 20
        assert!((s.nominal_rate_bps() - 20e6).abs() / 20e6 < 1e-9);
    }

    #[test]
    #[should_panic]
    fn one_packet_stream_rejected() {
        let _ = StreamSpec::Periodic {
            rate_bps: 1e6,
            size: 100,
            count: 1,
        }
        .offsets();
    }
}
