//! The single-link fluid model (paper §1, Equations 6–10).
//!
//! Every published avail-bw estimation technique reduces, in its basic
//! idea, to this model: a single tight link of capacity `Ct` carrying
//! fluid cross traffic of constant rate `Rc`, probed by a periodic stream
//! of rate `Ri` with packets of `L` bytes. The functions here are the
//! closed forms the tools invert, and the reference the simulator-based
//! tests compare against (under CBR cross traffic the packet simulator
//! must agree with the fluid model almost exactly).

/// Queue growth per probing packet when probing faster than the avail-bw
/// (Equation 6): `Δq = L * (Ri - A) / Ri` for `Ri > A`, else 0.
///
/// `l_bytes` is the probing packet size; rates in bits/s; returns bits of
/// queue growth per probing interarrival.
pub fn queue_growth_per_packet(l_bytes: f64, ri: f64, avail: f64) -> f64 {
    assert!(ri > 0.0, "probing rate must be positive");
    if ri <= avail {
        0.0
    } else {
        l_bytes * 8.0 * (ri - avail) / ri
    }
}

/// One-way-delay increase between consecutive probing packets
/// (Equation 7): `Δd = (L / Ct) * (Ri - A) / Ri` seconds for `Ri > A`,
/// else 0.
pub fn owd_increase_per_packet(l_bytes: f64, ct: f64, ri: f64, avail: f64) -> f64 {
    assert!(ct > 0.0, "capacity must be positive");
    queue_growth_per_packet(l_bytes, ri, avail) / ct
}

/// Output (received) rate of a probing stream (Equation 8):
/// `Ro = Ri * Ct / (Ct + Ri - A)` for `Ri > A`, else `Ro = Ri`.
///
/// ```
/// use abw_core::fluid::{output_rate, direct_probing_estimate};
/// // 50 Mb/s tight link, 25 Mb/s avail-bw, probing at 40 Mb/s
/// let ro = output_rate(50e6, 40e6, 25e6);
/// assert!(ro < 40e6);
/// // Equation 9 inverts Equation 8 exactly
/// let a = direct_probing_estimate(50e6, 40e6, ro);
/// assert!((a - 25e6).abs() < 1.0);
/// ```
pub fn output_rate(ct: f64, ri: f64, avail: f64) -> f64 {
    assert!(ct > 0.0 && ri > 0.0, "rates must be positive");
    if ri <= avail {
        ri
    } else {
        ri * ct / (ct + ri - avail)
    }
}

/// The direct-probing inversion (Equation 9): given the tight-link
/// capacity and the measured input/output rates with `Ri > A`, recover
/// the avail-bw: `A = Ct - Ri * (Ct / Ro - 1)`.
///
/// Only meaningful when the stream actually overloaded the link
/// (`Ro < Ri`); for `Ro >= Ri` it returns a value `>= Ct`-side garbage the
/// caller must treat as "A >= Ri".
pub fn direct_probing_estimate(ct: f64, ri: f64, ro: f64) -> f64 {
    assert!(ct > 0.0 && ri > 0.0 && ro > 0.0, "rates must be positive");
    ct - ri * (ct / ro - 1.0)
}

/// The iterative-probing predicate (Equation 10): does an observed
/// `Ro < Ri` (rate expansion) imply `Ri > A` under the fluid model?
///
/// `tolerance` absorbs measurement granularity: the stream is declared
/// overloading when `Ro / Ri < 1 - tolerance`.
pub fn overloaded(ri: f64, ro: f64, tolerance: f64) -> bool {
    assert!(ri > 0.0, "input rate must be positive");
    ro / ri < 1.0 - tolerance
}

#[cfg(test)]
mod tests {
    use super::*;

    const CT: f64 = 50e6;
    const A: f64 = 25e6;
    const L: f64 = 1500.0;

    #[test]
    fn no_growth_below_avail_bw() {
        assert_eq!(queue_growth_per_packet(L, 20e6, A), 0.0);
        assert_eq!(queue_growth_per_packet(L, A, A), 0.0);
        assert_eq!(owd_increase_per_packet(L, CT, 10e6, A), 0.0);
        assert_eq!(output_rate(CT, 20e6, A), 20e6);
    }

    #[test]
    fn growth_above_avail_bw() {
        // Ri = 40 Mb/s, A = 25 Mb/s: Δq = L*8 * 15/40 = 4500 bits
        let dq = queue_growth_per_packet(L, 40e6, A);
        assert!((dq - 4500.0).abs() < 1e-9);
        // Δd = Δq / Ct = 90 microseconds
        let dd = owd_increase_per_packet(L, CT, 40e6, A);
        assert!((dd - 9e-5).abs() < 1e-12);
    }

    #[test]
    fn output_rate_below_input_when_overloading() {
        // Ro = 40*50/(50+40-25) = 30.769 Mb/s
        let ro = output_rate(CT, 40e6, A);
        assert!((ro - 40e6 * 50.0 / 65.0).abs() < 1.0);
        assert!(ro < 40e6);
    }

    #[test]
    fn inversion_round_trip() {
        // Equation 9 must invert Equation 8 exactly for any Ri > A
        for ri in [26e6, 30e6, 40e6, 49e6, 80e6] {
            let ro = output_rate(CT, ri, A);
            let est = direct_probing_estimate(CT, ri, ro);
            assert!((est - A).abs() < 1.0, "Ri = {ri}: estimate {est} != {A}");
        }
    }

    #[test]
    fn output_rate_monotone_in_avail() {
        // more avail-bw ⇒ less expansion ⇒ higher output rate
        let mut prev = 0.0;
        for a in [5e6, 15e6, 25e6, 35e6] {
            let ro = output_rate(CT, 40e6, a);
            assert!(ro > prev);
            prev = ro;
        }
    }

    #[test]
    fn output_rate_continuous_at_the_knee() {
        // approaching Ri = A from above converges to Ro = Ri
        let ro = output_rate(CT, A + 1.0, A);
        assert!((ro - (A + 1.0)).abs() < 2.0);
    }

    #[test]
    fn overloaded_predicate_with_tolerance() {
        assert!(overloaded(40e6, 30e6, 0.02));
        assert!(!overloaded(40e6, 39.8e6, 0.02));
        // exactly at the tolerance boundary: not overloaded
        assert!(!overloaded(100.0, 98.0, 0.02));
    }

    #[test]
    fn owd_slope_matches_rate_expansion() {
        // consistency of Equations 7 and 8: cumulative OWD growth over the
        // stream equals the extra serialisation implied by Ro < Ri
        let ri = 40e6;
        let n = 100.0;
        let dd = owd_increase_per_packet(L, CT, ri, A);
        let total_owd_growth = dd * (n - 1.0);
        let ro = output_rate(CT, ri, A);
        let t_in = (n - 1.0) * L * 8.0 / ri;
        let t_out = (n - 1.0) * L * 8.0 / ro;
        assert!(
            (total_owd_growth - (t_out - t_in)).abs() < 1e-9,
            "OWD growth {total_owd_growth} vs dispersion growth {}",
            t_out - t_in
        );
    }
}
