//! # abw-core
//!
//! End-to-end available bandwidth estimation — the subject of *"Ten
//! Fallacies and Pitfalls on End-to-End Available Bandwidth Estimation"*
//! (Jain & Dovrolis, IMC 2004).
//!
//! The crate provides, on top of the `abw-netsim` simulator:
//!
//! * [`fluid`] — the single-link fluid model every probing technique is
//!   built on (Equations 6–10 of the paper), including the direct-probing
//!   inversion and the iterative-probing predicate;
//! * [`stream`] / [`probe`] — probing stream construction (periodic
//!   trains, Poisson-spaced packet pairs, exponentially spaced chirps) and
//!   the sender/receiver agents that measure one-way delays and rates;
//! * [`scenario`] — the canonical simulation topologies of the paper's
//!   experiments (single-hop 50 Mb/s with 25 Mb/s avail-bw, multi-hop
//!   paths with one-hop persistent cross traffic, tight≠narrow paths);
//! * [`tools`] — implementations of the estimation techniques the paper
//!   classifies: direct probing (Delphi-style trains, Spruce) and
//!   iterative probing (TOPP, Pathload, pathChirp, IGI/PTR, BFind), plus
//!   a bprobe-style end-to-end *capacity* estimator (Pitfall 5);
//! * [`experiments`] — one module per fallacy/pitfall, reproducing every
//!   figure and table in the paper's §3 (see DESIGN.md for the index).
//!
//! ## Quick start
//!
//! ```
//! use abw_core::scenario::{Scenario, SingleHopConfig, CrossKind};
//! use abw_core::tools::pathload::{Pathload, PathloadConfig};
//!
//! // 50 Mb/s link carrying 25 Mb/s of Poisson cross traffic
//! let mut scenario = Scenario::single_hop(&SingleHopConfig {
//!     cross: CrossKind::Poisson,
//!     ..SingleHopConfig::default()
//! });
//! let report = Pathload::new(PathloadConfig::quick()).run(&mut scenario);
//! let (lo, hi) = report.range_bps;
//! assert!(lo < hi);
//! ```

pub mod experiments;
pub mod fluid;
pub mod probe;
pub mod scenario;
pub mod stream;
pub mod tools;

pub use probe::{ProbeReceiver, ProbeRunner, ProbeSender, StreamResult};
pub use scenario::{CrossKind, Scenario, SingleHopConfig};
pub use stream::StreamSpec;
