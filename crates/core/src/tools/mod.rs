//! The estimation techniques the paper classifies (§2), rewritten as
//! resumable [`Estimator`] state machines.
//!
//! **Direct probing** (each stream yields an avail-bw *sample*, requires
//! the tight-link capacity `Ct`):
//! * [`direct`] — periodic trains inverted with Equation 9;
//! * [`delphi`] — the adaptive train prober (input rate tracks the
//!   estimate);
//! * [`spruce`] — Poisson-spaced packet pairs at the tight-link rate.
//!
//! **Iterative probing** (each stream only reveals whether its rate
//! exceeds the avail-bw; no `Ct` needed):
//! * [`topp`] — linear rate sweep with regression on `Ri/Ro`;
//! * [`pathload`] — binary rate search with PCT/PDT one-way-delay trend
//!   tests, reporting a *variation range*;
//! * [`pathchirp`] — exponentially spaced chirps with excursion analysis;
//! * [`schirp`] — smoothed chirps (Pásztor's S-chirp);
//! * [`igi`] — IGI and PTR: gap-increase trains at the turning point;
//! * [`bfind`] — sender-only ramping UDP load with traceroute-style
//!   per-hop RTT monitoring.
//!
//! Plus [`capacity`], a bprobe-style end-to-end capacity estimator: it
//! measures the *narrow* link, which is exactly why using it to supply
//! `Ct` to direct probing is Pitfall 5.
//!
//! # Architecture
//!
//! The paper's central observation is that avail-bw is a time-varying
//! process, so an estimator is not a one-shot function but an ongoing
//! measurement dialogue with the path. Each tool is therefore a pure
//! *decision* state machine implementing [`Estimator`]: given the last
//! observation it either requests the next probing action
//! ([`Action::Send`]) or concludes with a [`Verdict`]
//! ([`Action::Done`]). No tool touches the simulator — all simulator
//! interaction lives in one driver, [`crate::probe::Session`], whose
//! `step()` executes exactly one action so sessions can interleave and a
//! tool can keep re-estimating against time-varying cross traffic (the
//! `tracking` experiment).
//!
//! Tools are instantiated by name through the [`registry`], and the
//! blocking `run()` entry points below are thin `Session::drive`
//! wrappers kept for compatibility — they produce bit-identical results
//! to the pre-refactor implementations (pinned by
//! `tests/golden_tools.rs`).

pub mod bfind;
pub mod capacity;
pub mod delphi;
pub mod direct;
pub mod igi;
pub mod pathchirp;
pub mod pathload;
pub mod registry;
pub mod schirp;
pub mod spruce;
pub mod topp;

use abw_netsim::{SimDuration, Simulator};
use abw_obs::Value;
use abw_stats::running::Summary;

use crate::probe::{ProbeRunner, Session, StreamResult};
use crate::scenario::Scenario;
use crate::stream::StreamSpec;

use bfind::{Bfind, BfindReport};
use capacity::{CapacityProber, CapacityReport};
use delphi::{Delphi, DelphiReport};
use direct::DirectProber;
use igi::{Igi, IgiReport};
use pathchirp::Pathchirp;
use pathload::{Pathload, PathloadReport};
use schirp::Schirp;
use spruce::Spruce;
use topp::{Topp, ToppReport};

/// A point estimate of the avail-bw plus per-sample statistics.
#[derive(Debug, Clone)]
pub struct Estimate {
    /// The avail-bw estimate in bits/s.
    pub avail_bps: f64,
    /// Statistics of the per-stream samples behind the estimate.
    pub samples: Summary,
    /// Probing packets transmitted to produce the estimate (overhead).
    pub probe_packets: u64,
    /// Simulated time the measurement occupied (latency).
    pub elapsed_secs: f64,
}

/// A variation-range estimate `(R_L, R_H)` — what iterative probing
/// actually converges to (Fallacy 9).
#[derive(Debug, Clone)]
pub struct RangeEstimate {
    /// `(low, high)` of the variation range, bits/s.
    pub range_bps: (f64, f64),
    /// Midpoint of the range, bits/s.
    pub midpoint_bps: f64,
    /// True when a non-finite bound was passed to
    /// [`RangeEstimate::new`] and replaced by zero.
    pub clamped: bool,
    /// Probing packets transmitted.
    pub probe_packets: u64,
    /// Simulated time the measurement occupied.
    pub elapsed_secs: f64,
}

impl RangeEstimate {
    /// Builds a range estimate, ordering the bounds.
    ///
    /// Non-finite bounds (NaN or ±∞) are rejected rather than silently
    /// propagated into the midpoint: each offending bound is replaced by
    /// `0.0` and the verdict is marked [`RangeEstimate::clamped`] so
    /// consumers can tell a degenerate measurement from a genuine zero.
    pub fn new(lo: f64, hi: f64, probe_packets: u64, elapsed_secs: f64) -> Self {
        let clamped = !(lo.is_finite() && hi.is_finite());
        let lo = if lo.is_finite() { lo } else { 0.0 };
        let hi = if hi.is_finite() { hi } else { 0.0 };
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        RangeEstimate {
            range_bps: (lo, hi),
            midpoint_bps: (lo + hi) / 2.0,
            clamped,
            probe_packets,
            elapsed_secs,
        }
    }
}

/// Parameters of one load-ramp epoch (BFind's probing primitive): hold a
/// UDP load at `rate_bps` for `epoch` while running traceroute rounds
/// every `trace_interval`.
#[derive(Debug, Clone, Copy)]
pub struct LoadRampSpec {
    /// Load rate held during the epoch, bits/s (0 = idle baseline).
    pub rate_bps: f64,
    /// How long the rate is held.
    pub epoch: SimDuration,
    /// Gap between traceroute rounds within the epoch.
    pub trace_interval: SimDuration,
    /// Load packet size, bytes.
    pub load_packet_size: u32,
    /// Traceroute probe size, bytes.
    pub probe_size: u32,
}

/// One probing action an [`Estimator`] can request from the session.
#[derive(Debug, Clone)]
pub enum ProbeSpec {
    /// Send one probing stream through the session's [`ProbeRunner`].
    Stream {
        /// The stream to transmit.
        spec: StreamSpec,
        /// Inter-stream gap override for this stream only; `None` keeps
        /// the runner's configured gap. Tools with randomised spacing
        /// (Spruce, the capacity prober) draw it per stream.
        pre_gap: Option<SimDuration>,
    },
    /// Hold a load-ramp epoch (requires a routed session, i.e. one built
    /// by [`Scenario::session`]).
    LoadRamp(LoadRampSpec),
}

impl ProbeSpec {
    /// A stream action with the runner's default inter-stream gap.
    pub fn stream(spec: StreamSpec) -> Self {
        ProbeSpec::Stream {
            spec,
            pre_gap: None,
        }
    }
}

/// Per-hop RTT samples collected during one load-ramp epoch.
#[derive(Debug, Clone)]
pub struct LoadRampSample {
    /// Raw RTT samples per hop since the previous epoch boundary.
    pub hop_rtts: Vec<Vec<f64>>,
    /// Cumulative load + traceroute packets transmitted by the agent.
    pub probe_packets: u64,
}

/// What the session observed while executing one [`ProbeSpec`].
#[derive(Debug, Clone)]
pub enum Observation {
    /// Measurements of a completed probing stream.
    Stream(StreamResult),
    /// Measurements of a completed load-ramp epoch.
    LoadRamp(LoadRampSample),
}

impl Observation {
    /// The stream result, when this observation is one.
    pub fn stream(&self) -> Option<&StreamResult> {
        match self {
            Observation::Stream(r) => Some(r),
            Observation::LoadRamp(_) => None,
        }
    }

    /// The load-ramp sample, when this observation is one.
    pub fn load_ramp(&self) -> Option<&LoadRampSample> {
        match self {
            Observation::LoadRamp(s) => Some(s),
            Observation::Stream(_) => None,
        }
    }
}

/// A buffered trace event produced by an [`Estimator`] decision; the
/// session emits it through the simulator so event kinds, fields and
/// ordering match the pre-refactor inline `sim.emit` calls exactly.
#[derive(Debug, Clone)]
pub struct ToolEvent {
    /// Event kind (e.g. `"delphi.train"`).
    pub kind: &'static str,
    /// Event fields in emission order.
    pub fields: Vec<(&'static str, Value<'static>)>,
}

impl ToolEvent {
    /// A new event.
    pub fn new(kind: &'static str, fields: Vec<(&'static str, Value<'static>)>) -> Self {
        ToolEvent { kind, fields }
    }
}

/// The next move of an [`Estimator`].
#[derive(Debug)]
pub enum Action {
    /// Execute this probing action and feed the observation back.
    Send(ProbeSpec),
    /// The measurement concluded with this verdict.
    Done(Verdict),
}

/// A resumable estimation state machine: pure decision logic with no
/// simulator access.
///
/// The contract: the driver calls [`Estimator::next`] with `None` first,
/// then with the observation of each requested action, until the tool
/// returns [`Action::Done`]. Estimators are single-shot — driving one
/// past `Done` is a contract violation (build a fresh instance per
/// round, as the `tracking` experiment does).
pub trait Estimator: Send {
    /// Decides the next action given the last observation (`None` on the
    /// first call).
    fn next(&mut self, last: Option<&Observation>) -> Action;

    /// Drains trace events buffered by the last decision; the session
    /// emits them before executing the next action.
    fn take_events(&mut self) -> Vec<ToolEvent> {
        Vec::new()
    }
}

/// The unified result of an estimation round: every tool's report behind
/// one enum with common accessors.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// A point estimate (direct probing, chirp tools).
    Point(Estimate),
    /// A variation range.
    Range(RangeEstimate),
    /// Delphi's report with the adaptation trace.
    Delphi(DelphiReport),
    /// TOPP's report with the sweep and the recovered `Ct`.
    Topp(ToppReport),
    /// Pathload's report with the fleet trace.
    Pathload(PathloadReport),
    /// An IGI/PTR report read as IGI (`A = Ct - Rc`).
    Igi(IgiReport),
    /// An IGI/PTR report read as PTR (turning-point train rate).
    Ptr(IgiReport),
    /// BFind's report with the located tight hop.
    Bfind(BfindReport),
    /// A bprobe-style capacity report (measures `Cn`, not avail-bw —
    /// Pitfall 5).
    Capacity(CapacityReport),
}

impl Verdict {
    /// The headline estimate in bits/s: the avail-bw for estimation
    /// tools, the narrow-link capacity for [`Verdict::Capacity`], and
    /// the range midpoint for range verdicts.
    pub fn avail_bps(&self) -> f64 {
        match self {
            Verdict::Point(e) => e.avail_bps,
            Verdict::Range(r) => r.midpoint_bps,
            Verdict::Delphi(r) => r.avail_bps,
            Verdict::Topp(r) => r.avail_bps,
            Verdict::Pathload(r) => (r.range_bps.0 + r.range_bps.1) / 2.0,
            Verdict::Igi(r) => r.igi_bps,
            Verdict::Ptr(r) => r.ptr_bps,
            Verdict::Bfind(r) => r.avail_bps,
            Verdict::Capacity(r) => r.capacity_bps,
        }
    }

    /// Probing packets transmitted (overhead).
    pub fn probe_packets(&self) -> u64 {
        match self {
            Verdict::Point(e) => e.probe_packets,
            Verdict::Range(r) => r.probe_packets,
            Verdict::Delphi(r) => r.probe_packets,
            Verdict::Topp(r) => r.probe_packets,
            Verdict::Pathload(r) => r.probe_packets,
            Verdict::Igi(r) | Verdict::Ptr(r) => r.probe_packets,
            Verdict::Bfind(r) => r.probe_packets,
            Verdict::Capacity(r) => r.probe_packets,
        }
    }

    /// Simulated seconds the measurement occupied (latency); `0.0` for
    /// reports that do not track elapsed time (TOPP, IGI/PTR, BFind,
    /// capacity), matching their pre-refactor behaviour.
    pub fn elapsed_secs(&self) -> f64 {
        match self {
            Verdict::Point(e) => e.elapsed_secs,
            Verdict::Range(r) => r.elapsed_secs,
            Verdict::Delphi(r) => r.elapsed_secs,
            Verdict::Pathload(r) => r.elapsed_secs,
            Verdict::Topp(_)
            | Verdict::Igi(_)
            | Verdict::Ptr(_)
            | Verdict::Bfind(_)
            | Verdict::Capacity(_) => 0.0,
        }
    }

    /// The variation range, for verdicts that carry one.
    pub fn range_bps(&self) -> Option<(f64, f64)> {
        match self {
            Verdict::Range(r) => Some(r.range_bps),
            Verdict::Pathload(r) => Some(r.range_bps),
            _ => None,
        }
    }

    /// Stamps the measurement latency on verdicts that track it (the
    /// session measures wall time; reports without an elapsed field keep
    /// reporting `0.0` as before the refactor).
    pub(crate) fn set_elapsed(&mut self, secs: f64) {
        match self {
            Verdict::Point(e) => e.elapsed_secs = secs,
            Verdict::Range(r) => r.elapsed_secs = secs,
            Verdict::Delphi(r) => r.elapsed_secs = secs,
            Verdict::Pathload(r) => r.elapsed_secs = secs,
            Verdict::Topp(_)
            | Verdict::Igi(_)
            | Verdict::Ptr(_)
            | Verdict::Bfind(_)
            | Verdict::Capacity(_) => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Compatibility wrappers: the pre-refactor blocking entry points, now
// thin `Session::drive` shims. They live here (not in the tool files) so
// the tool implementations themselves never see a `Simulator`.

impl DirectProber {
    /// Runs the configured number of streams and aggregates the samples.
    pub fn run(&self, sim: &mut Simulator, runner: &mut ProbeRunner) -> Estimate {
        let mut tool = self.estimator();
        match Session::over(runner).drive(sim, &mut tool) {
            Verdict::Point(e) => e,
            _ => unreachable!("direct probing yields a point estimate"),
        }
    }

    /// Collects the raw per-stream samples instead of aggregating —
    /// used by experiments that study the sample distribution itself.
    pub fn collect_samples(&self, sim: &mut Simulator, runner: &mut ProbeRunner) -> Vec<f64> {
        let mut tool = self.estimator();
        Session::over(runner).drive(sim, &mut tool);
        tool.into_samples()
    }
}

impl Delphi {
    /// Runs the adaptive train sequence.
    pub fn run(&self, sim: &mut Simulator, runner: &mut ProbeRunner) -> DelphiReport {
        let mut tool = self.estimator();
        match Session::over(runner).drive(sim, &mut tool) {
            Verdict::Delphi(r) => r,
            _ => unreachable!("Delphi yields a Delphi report"),
        }
    }
}

impl Spruce {
    /// Sends the configured pairs and returns the averaged estimate.
    ///
    /// Negative per-pair samples (possible when a burst lands between the
    /// pair) are clamped to zero, as in the published tool.
    pub fn run(&self, sim: &mut Simulator, runner: &mut ProbeRunner) -> Estimate {
        let mut tool = self.estimator();
        match Session::over(runner).drive(sim, &mut tool) {
            Verdict::Point(e) => e,
            _ => unreachable!("Spruce yields a point estimate"),
        }
    }
}

impl Topp {
    /// Runs the linear sweep and analyses the turning point.
    pub fn run(&self, sim: &mut Simulator, runner: &mut ProbeRunner) -> ToppReport {
        let mut tool = self.estimator();
        match Session::over(runner).drive(sim, &mut tool) {
            Verdict::Topp(r) => r,
            _ => unreachable!("TOPP yields a TOPP report"),
        }
    }
}

impl Pathload {
    /// Runs the full binary search and returns the variation range.
    pub fn run(&self, scenario: &mut Scenario) -> PathloadReport {
        let mut tool = self.estimator();
        let mut session = scenario.session();
        match session.drive(&mut scenario.sim, &mut tool) {
            Verdict::Pathload(r) => r,
            _ => unreachable!("Pathload yields a Pathload report"),
        }
    }
}

impl Pathchirp {
    /// Sends the configured chirps and averages the per-chirp estimates.
    pub fn run(&self, sim: &mut Simulator, runner: &mut ProbeRunner) -> Estimate {
        let mut tool = self.estimator();
        match Session::over(runner).drive(sim, &mut tool) {
            Verdict::Point(e) => e,
            _ => unreachable!("pathChirp yields a point estimate"),
        }
    }
}

impl Schirp {
    /// Sends the configured chirps and averages the per-chirp estimates.
    pub fn run(&self, sim: &mut Simulator, runner: &mut ProbeRunner) -> Estimate {
        let mut tool = self.estimator();
        match Session::over(runner).drive(sim, &mut tool) {
            Verdict::Point(e) => e,
            _ => unreachable!("S-chirp yields a point estimate"),
        }
    }
}

impl Igi {
    /// Runs trains with growing gaps until the turning point.
    pub fn run(&self, sim: &mut Simulator, runner: &mut ProbeRunner) -> IgiReport {
        let mut tool = self.estimator();
        match Session::over(runner).drive(sim, &mut tool) {
            Verdict::Igi(r) => r,
            _ => unreachable!("IGI yields an IGI report"),
        }
    }
}

impl Bfind {
    /// Runs BFind against a scenario (it installs its own load/trace
    /// agent; the scenario's probing endpoints are not used).
    pub fn run(&self, scenario: &mut Scenario) -> BfindReport {
        let mut tool = self.estimator();
        let mut session = scenario.session();
        match session.drive(&mut scenario.sim, &mut tool) {
            Verdict::Bfind(r) => r,
            _ => unreachable!("BFind yields a BFind report"),
        }
    }
}

impl CapacityProber {
    /// Sends the pairs and returns the histogram-mode estimate.
    pub fn run(&self, sim: &mut Simulator, runner: &mut ProbeRunner) -> CapacityReport {
        let mut tool = self.estimator();
        match Session::over(runner).drive(sim, &mut tool) {
            Verdict::Capacity(r) => r,
            _ => unreachable!("the capacity prober yields a capacity report"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_estimate_orders_bounds() {
        let r = RangeEstimate::new(30e6, 20e6, 10, 1.0);
        assert_eq!(r.range_bps, (20e6, 30e6));
        assert_eq!(r.midpoint_bps, 25e6);
        assert!(!r.clamped);
    }

    #[test]
    fn range_estimate_rejects_non_finite_bounds() {
        // NaN low: clamped to zero instead of poisoning the midpoint
        let r = RangeEstimate::new(f64::NAN, 30e6, 10, 1.0);
        assert!(r.clamped);
        assert_eq!(r.range_bps, (0.0, 30e6));
        assert_eq!(r.midpoint_bps, 15e6);

        // infinite high bound
        let r = RangeEstimate::new(10e6, f64::INFINITY, 10, 1.0);
        assert!(r.clamped);
        assert_eq!(r.range_bps, (0.0, 10e6));
        assert!(r.midpoint_bps.is_finite());

        // both non-finite: degenerate but well-defined
        let r = RangeEstimate::new(f64::NAN, f64::NAN, 0, 0.0);
        assert!(r.clamped);
        assert_eq!(r.range_bps, (0.0, 0.0));
        assert_eq!(r.midpoint_bps, 0.0);
    }

    #[test]
    fn verdict_accessors_cover_every_variant() {
        let est = Estimate {
            avail_bps: 25e6,
            samples: abw_stats::running::Running::new().summary(),
            probe_packets: 42,
            elapsed_secs: 1.5,
        };
        let v = Verdict::Point(est);
        assert_eq!(v.avail_bps(), 25e6);
        assert_eq!(v.probe_packets(), 42);
        assert_eq!(v.elapsed_secs(), 1.5);
        assert!(v.range_bps().is_none());

        let v = Verdict::Range(RangeEstimate::new(20e6, 30e6, 7, 2.0));
        assert_eq!(v.avail_bps(), 25e6);
        assert_eq!(v.range_bps(), Some((20e6, 30e6)));
    }
}
