//! The estimation techniques the paper classifies (§2).
//!
//! **Direct probing** (each stream yields an avail-bw *sample*, requires
//! the tight-link capacity `Ct`):
//! * [`direct`] — periodic trains inverted with Equation 9;
//! * [`delphi`] — the adaptive train prober (input rate tracks the
//!   estimate);
//! * [`spruce`] — Poisson-spaced packet pairs at the tight-link rate.
//!
//! **Iterative probing** (each stream only reveals whether its rate
//! exceeds the avail-bw; no `Ct` needed):
//! * [`topp`] — linear rate sweep with regression on `Ri/Ro`;
//! * [`pathload`] — binary rate search with PCT/PDT one-way-delay trend
//!   tests, reporting a *variation range*;
//! * [`pathchirp`] — exponentially spaced chirps with excursion analysis;
//! * [`schirp`] — smoothed chirps (Pásztor's S-chirp);
//! * [`igi`] — IGI and PTR: gap-increase trains at the turning point;
//! * [`bfind`] — sender-only ramping UDP load with traceroute-style
//!   per-hop RTT monitoring.
//!
//! Plus [`capacity`], a bprobe-style end-to-end capacity estimator: it
//! measures the *narrow* link, which is exactly why using it to supply
//! `Ct` to direct probing is Pitfall 5.

pub mod bfind;
pub mod capacity;
pub mod delphi;
pub mod direct;
pub mod igi;
pub mod pathchirp;
pub mod pathload;
pub mod schirp;
pub mod spruce;
pub mod topp;

use abw_stats::running::Summary;

/// A point estimate of the avail-bw plus per-sample statistics.
#[derive(Debug, Clone)]
pub struct Estimate {
    /// The avail-bw estimate in bits/s.
    pub avail_bps: f64,
    /// Statistics of the per-stream samples behind the estimate.
    pub samples: Summary,
    /// Probing packets transmitted to produce the estimate (overhead).
    pub probe_packets: u64,
    /// Simulated time the measurement occupied (latency).
    pub elapsed_secs: f64,
}

/// A variation-range estimate `(R_L, R_H)` — what iterative probing
/// actually converges to (Fallacy 9).
#[derive(Debug, Clone)]
pub struct RangeEstimate {
    /// `(low, high)` of the variation range, bits/s.
    pub range_bps: (f64, f64),
    /// Midpoint of the range, bits/s.
    pub midpoint_bps: f64,
    /// Probing packets transmitted.
    pub probe_packets: u64,
    /// Simulated time the measurement occupied.
    pub elapsed_secs: f64,
}

impl RangeEstimate {
    /// Builds a range estimate, ordering the bounds.
    pub fn new(lo: f64, hi: f64, probe_packets: u64, elapsed_secs: f64) -> Self {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        RangeEstimate {
            range_bps: (lo, hi),
            midpoint_bps: (lo + hi) / 2.0,
            probe_packets,
            elapsed_secs,
        }
    }
}
