//! IGI and PTR (Hu & Steenkiste).
//!
//! Both techniques send trains of 60 packets and *increase the input gap*
//! (decrease the rate) until the **turning point**, where the average
//! output gap stops exceeding the input gap — the train rate then matches
//! the avail-bw:
//!
//! * **PTR** (Packet Transmission Rate) reports the train's transmission
//!   rate at the turning point — pure iterative probing, like TOPP but
//!   with 60-packet trains instead of pairs;
//! * **IGI** (Initial Gap Increasing) additionally applies a
//!   direct-probing-style formula at the turning point: the competing
//!   traffic rate is estimated from the gaps that grew,
//!   `Rc = Ct * Σ_{g_out > g_in}(g_out - g_in) / Σ g_out`, and
//!   `A = Ct - Rc` — which is why the paper calls IGI "harder to
//!   classify" (an iterative tool that still needs `Ct`).

use crate::probe::StreamResult;
use crate::stream::StreamSpec;
use crate::tools::{Action, Estimator, Observation, ProbeSpec, ToolEvent, Verdict};

/// IGI/PTR configuration.
#[derive(Debug, Clone)]
pub struct IgiConfig {
    /// Tight-link capacity `Ct` (used by the IGI formula only).
    pub tight_capacity_bps: f64,
    /// Packets per train (published default 60).
    pub packets_per_train: u32,
    /// Probing packet size (published default ~750 B).
    pub packet_size: u32,
    /// First probed rate (the initial gap is `8L / rate`), bits/s.
    pub initial_rate_bps: f64,
    /// Multiplicative gap increase per iteration (rate divides by this).
    pub gap_growth: f64,
    /// Turning point declared when `avg(g_out) <= g_in * (1 + tolerance)`.
    pub tolerance: f64,
    /// Hard cap on iterations.
    pub max_iterations: u32,
}

impl Default for IgiConfig {
    fn default() -> Self {
        IgiConfig {
            tight_capacity_bps: 50e6,
            packets_per_train: 60,
            packet_size: 750,
            initial_rate_bps: 48e6,
            gap_growth: 1.12,
            tolerance: 0.02,
            max_iterations: 40,
        }
    }
}

/// Result of an IGI/PTR run.
#[derive(Debug, Clone)]
pub struct IgiReport {
    /// The IGI estimate `A = Ct - Rc`, bits/s.
    pub igi_bps: f64,
    /// The PTR estimate (train transmission rate at the turning point),
    /// bits/s.
    pub ptr_bps: f64,
    /// Input rate of the train at the turning point, bits/s.
    pub turning_rate_bps: f64,
    /// Trains sent before the turning point was found.
    pub iterations: u32,
    /// Probing packets transmitted.
    pub probe_packets: u64,
}

/// The IGI/PTR estimator.
#[derive(Debug, Clone)]
pub struct Igi {
    config: IgiConfig,
}

impl Igi {
    /// Creates an IGI/PTR instance.
    pub fn new(config: IgiConfig) -> Self {
        assert!(config.gap_growth > 1.0, "gap must grow between iterations");
        assert!(config.packets_per_train >= 3);
        Igi { config }
    }

    /// The IGI competing-rate formula applied to one train.
    ///
    /// An *increased* gap (`g_out > g_in`) means the tight link's queue
    /// stayed busy across the whole gap, so the cross traffic it carried
    /// is `(g_out - g_B) * Ct` where `g_B = 8L/Ct` is the probe's own
    /// service time (the bottleneck gap). Summing over increased gaps:
    /// `Rc = Ct * Σ(g_out - g_B) / Σ g_out`, and `A = Ct - Rc`.
    ///
    /// Returns `(igi_avail, ptr_rate)`; `None` when fewer than 2 packets
    /// arrived.
    pub fn analyse_train(&self, result: &StreamResult, g_in: f64) -> Option<(f64, f64)> {
        let gaps = result.pair_gaps();
        if gaps.is_empty() {
            return None;
        }
        let l_bits = self.config.packet_size as f64 * 8.0;
        let g_bottleneck = l_bits / self.config.tight_capacity_bps;
        let mut cross_time = 0.0;
        let mut total_out = 0.0;
        for &(_, g_out) in &gaps {
            if g_out > g_in && g_out > g_bottleneck {
                cross_time += g_out - g_bottleneck;
            }
            total_out += g_out;
        }
        if total_out <= 0.0 {
            return None;
        }
        let rc = self.config.tight_capacity_bps * cross_time / total_out;
        let igi = self.config.tight_capacity_bps - rc;
        let ptr = gaps.len() as f64 * l_bits / total_out;
        Some((igi, ptr))
    }

    /// The resumable state machine reporting the IGI estimate.
    pub fn estimator(&self) -> IgiEstimator {
        self.make_estimator(false)
    }

    /// The resumable state machine reporting the PTR estimate. The run is
    /// identical to [`Igi::estimator`]; only the [`Verdict`] variant (and
    /// so the registry's headline number) differs.
    pub fn ptr_estimator(&self) -> IgiEstimator {
        self.make_estimator(true)
    }

    fn make_estimator(&self, ptr: bool) -> IgiEstimator {
        IgiEstimator {
            tool: self.clone(),
            ptr,
            rate_bps: self.config.initial_rate_bps,
            sent: 0,
            packets: 0,
            last: None,
            events: Vec::new(),
        }
    }
}

/// IGI/PTR as a decision state machine: grow the input gap train by
/// train until the turning point, then report via the IGI formula (or
/// the train rate, in PTR mode).
#[derive(Debug, Clone)]
pub struct IgiEstimator {
    tool: Igi,
    /// Report as [`Verdict::Ptr`] instead of [`Verdict::Igi`].
    ptr: bool,
    /// Input rate of the train in flight (or about to be sent).
    rate_bps: f64,
    /// Trains sent so far (the 1-based iteration counter).
    sent: u32,
    packets: u64,
    /// Most recent train that produced gaps, for the exhausted case:
    /// `(igi, ptr, rate, iteration)`.
    last: Option<(f64, f64, f64, u32)>,
    events: Vec<ToolEvent>,
}

impl IgiEstimator {
    fn verdict(&self, report: IgiReport) -> Verdict {
        if self.ptr {
            Verdict::Ptr(report)
        } else {
            Verdict::Igi(report)
        }
    }
}

impl Estimator for IgiEstimator {
    fn next(&mut self, last: Option<&Observation>) -> Action {
        let config = &self.tool.config;
        let l_bits = config.packet_size as f64 * 8.0;
        if let Some(obs) = last {
            // lint: allow(panic_free) -- reply kind matches the request this estimator issued
            let result = obs.stream().expect("IGI sends trains");
            self.packets += result.spec.count() as u64;
            let g_in = l_bits / self.rate_bps;
            if let Some((igi, ptr)) = self.tool.analyse_train(result, g_in) {
                self.last = Some((igi, ptr, self.rate_bps, self.sent));
                // turning point: output gaps no longer exceed input gaps
                let gaps = result.pair_gaps();
                let avg_out: f64 = gaps.iter().map(|&(_, g)| g).sum::<f64>() / gaps.len() as f64;
                let turned = avg_out <= g_in * (1.0 + config.tolerance);
                self.events.push(ToolEvent::new(
                    "igi.train",
                    vec![
                        ("iter", u64::from(self.sent).into()),
                        ("rate_bps", self.rate_bps.into()),
                        ("g_in_s", g_in.into()),
                        ("avg_g_out_s", avg_out.into()),
                        ("igi_bps", igi.into()),
                        ("ptr_bps", ptr.into()),
                        ("turned", turned.into()),
                    ],
                ));
                if turned {
                    let report = IgiReport {
                        igi_bps: igi,
                        ptr_bps: ptr,
                        turning_rate_bps: self.rate_bps,
                        iterations: self.sent,
                        probe_packets: self.packets,
                    };
                    return Action::Done(self.verdict(report));
                }
            }
            self.rate_bps /= config.gap_growth;
        }
        if self.sent < config.max_iterations {
            self.sent += 1;
            Action::Send(ProbeSpec::stream(StreamSpec::Periodic {
                rate_bps: self.rate_bps,
                size: config.packet_size,
                count: config.packets_per_train,
            }))
        } else {
            // never converged: report the last train's numbers; if no
            // train ever produced usable gaps (e.g. total loss), fall
            // back to the current probe state rather than panicking
            let (igi, ptr, rate, iterations) =
                self.last
                    .unwrap_or((self.rate_bps, self.rate_bps, self.rate_bps, self.sent));
            let report = IgiReport {
                igi_bps: igi,
                ptr_bps: ptr,
                turning_rate_bps: rate,
                iterations,
                probe_packets: self.packets,
            };
            Action::Done(self.verdict(report))
        }
    }

    fn take_events(&mut self) -> Vec<ToolEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{CrossKind, Scenario, SingleHopConfig};
    use abw_netsim::SimDuration;

    fn run_igi(cross: CrossKind) -> IgiReport {
        let mut s = Scenario::single_hop(&SingleHopConfig {
            cross,
            ..SingleHopConfig::default()
        });
        s.warm_up(SimDuration::from_millis(500));
        let mut runner = s.runner();
        Igi::new(IgiConfig::default()).run(&mut s.sim, &mut runner)
    }

    #[test]
    fn converges_on_cbr() {
        let r = run_igi(CrossKind::Cbr);
        assert!(
            (r.ptr_bps - 25e6).abs() / 25e6 < 0.25,
            "PTR {:.2} Mb/s",
            r.ptr_bps / 1e6
        );
        assert!(
            (r.igi_bps - 25e6).abs() / 25e6 < 0.25,
            "IGI {:.2} Mb/s",
            r.igi_bps / 1e6
        );
        assert!(r.iterations >= 2, "should need several gap increases");
    }

    #[test]
    fn converges_on_poisson() {
        let r = run_igi(CrossKind::Poisson);
        // burstiness biases towards underestimation (Pitfall 6); accept a
        // wide band but require the right ballpark
        assert!(
            r.ptr_bps > 10e6 && r.ptr_bps < 35e6,
            "PTR {:.2} Mb/s",
            r.ptr_bps / 1e6
        );
    }

    #[test]
    fn turning_rate_tracks_ptr() {
        let r = run_igi(CrossKind::Cbr);
        // the PTR (output-side rate) can only lag the input rate at the
        // turning point
        assert!(r.ptr_bps <= r.turning_rate_bps * 1.05);
    }

    #[test]
    fn idle_link_turns_immediately() {
        let mut s = Scenario::single_hop(&SingleHopConfig {
            cross_rate_bps: 0.0,
            ..SingleHopConfig::default()
        });
        s.warm_up(SimDuration::from_millis(100));
        let mut runner = s.runner();
        let r = Igi::new(IgiConfig::default()).run(&mut s.sim, &mut runner);
        assert_eq!(r.iterations, 1, "48 Mb/s < C = 50 Mb/s: no queueing");
        assert!(r.igi_bps > 45e6);
    }

    #[test]
    fn ptr_estimator_matches_igi_run() {
        let mut s = Scenario::single_hop(&SingleHopConfig {
            cross: CrossKind::Cbr,
            ..SingleHopConfig::default()
        });
        s.warm_up(SimDuration::from_millis(500));
        let igi = Igi::new(IgiConfig::default());
        let mut tool = igi.ptr_estimator();
        let mut runner = s.runner();
        let verdict = crate::probe::Session::over(&mut runner).drive(&mut s.sim, &mut tool);
        match verdict {
            Verdict::Ptr(r) => assert!(r.ptr_bps > 0.0),
            other => panic!("expected a PTR verdict, got {other:?}"),
        }
    }
}
