//! IGI and PTR (Hu & Steenkiste).
//!
//! Both techniques send trains of 60 packets and *increase the input gap*
//! (decrease the rate) until the **turning point**, where the average
//! output gap stops exceeding the input gap — the train rate then matches
//! the avail-bw:
//!
//! * **PTR** (Packet Transmission Rate) reports the train's transmission
//!   rate at the turning point — pure iterative probing, like TOPP but
//!   with 60-packet trains instead of pairs;
//! * **IGI** (Initial Gap Increasing) additionally applies a
//!   direct-probing-style formula at the turning point: the competing
//!   traffic rate is estimated from the gaps that grew,
//!   `Rc = Ct * Σ_{g_out > g_in}(g_out - g_in) / Σ g_out`, and
//!   `A = Ct - Rc` — which is why the paper calls IGI "harder to
//!   classify" (an iterative tool that still needs `Ct`).

use abw_netsim::Simulator;

use crate::probe::{ProbeRunner, StreamResult};
use crate::stream::StreamSpec;

/// IGI/PTR configuration.
#[derive(Debug, Clone)]
pub struct IgiConfig {
    /// Tight-link capacity `Ct` (used by the IGI formula only).
    pub tight_capacity_bps: f64,
    /// Packets per train (published default 60).
    pub packets_per_train: u32,
    /// Probing packet size (published default ~750 B).
    pub packet_size: u32,
    /// First probed rate (the initial gap is `8L / rate`), bits/s.
    pub initial_rate_bps: f64,
    /// Multiplicative gap increase per iteration (rate divides by this).
    pub gap_growth: f64,
    /// Turning point declared when `avg(g_out) <= g_in * (1 + tolerance)`.
    pub tolerance: f64,
    /// Hard cap on iterations.
    pub max_iterations: u32,
}

impl Default for IgiConfig {
    fn default() -> Self {
        IgiConfig {
            tight_capacity_bps: 50e6,
            packets_per_train: 60,
            packet_size: 750,
            initial_rate_bps: 48e6,
            gap_growth: 1.12,
            tolerance: 0.02,
            max_iterations: 40,
        }
    }
}

/// Result of an IGI/PTR run.
#[derive(Debug, Clone)]
pub struct IgiReport {
    /// The IGI estimate `A = Ct - Rc`, bits/s.
    pub igi_bps: f64,
    /// The PTR estimate (train transmission rate at the turning point),
    /// bits/s.
    pub ptr_bps: f64,
    /// Input rate of the train at the turning point, bits/s.
    pub turning_rate_bps: f64,
    /// Trains sent before the turning point was found.
    pub iterations: u32,
    /// Probing packets transmitted.
    pub probe_packets: u64,
}

/// The IGI/PTR estimator.
#[derive(Debug, Clone)]
pub struct Igi {
    config: IgiConfig,
}

impl Igi {
    /// Creates an IGI/PTR instance.
    pub fn new(config: IgiConfig) -> Self {
        assert!(config.gap_growth > 1.0, "gap must grow between iterations");
        assert!(config.packets_per_train >= 3);
        Igi { config }
    }

    /// The IGI competing-rate formula applied to one train.
    ///
    /// An *increased* gap (`g_out > g_in`) means the tight link's queue
    /// stayed busy across the whole gap, so the cross traffic it carried
    /// is `(g_out - g_B) * Ct` where `g_B = 8L/Ct` is the probe's own
    /// service time (the bottleneck gap). Summing over increased gaps:
    /// `Rc = Ct * Σ(g_out - g_B) / Σ g_out`, and `A = Ct - Rc`.
    ///
    /// Returns `(igi_avail, ptr_rate)`; `None` when fewer than 2 packets
    /// arrived.
    pub fn analyse_train(&self, result: &StreamResult, g_in: f64) -> Option<(f64, f64)> {
        let gaps = result.pair_gaps();
        if gaps.is_empty() {
            return None;
        }
        let l_bits = self.config.packet_size as f64 * 8.0;
        let g_bottleneck = l_bits / self.config.tight_capacity_bps;
        let mut cross_time = 0.0;
        let mut total_out = 0.0;
        for &(_, g_out) in &gaps {
            if g_out > g_in && g_out > g_bottleneck {
                cross_time += g_out - g_bottleneck;
            }
            total_out += g_out;
        }
        if total_out <= 0.0 {
            return None;
        }
        let rc = self.config.tight_capacity_bps * cross_time / total_out;
        let igi = self.config.tight_capacity_bps - rc;
        let ptr = gaps.len() as f64 * l_bits / total_out;
        Some((igi, ptr))
    }

    /// Runs trains with growing gaps until the turning point.
    pub fn run(&self, sim: &mut Simulator, runner: &mut ProbeRunner) -> IgiReport {
        let l_bits = self.config.packet_size as f64 * 8.0;
        let mut rate = self.config.initial_rate_bps;
        let mut packets = 0u64;
        let mut last = None;
        for iteration in 1..=self.config.max_iterations {
            let spec = StreamSpec::Periodic {
                rate_bps: rate,
                size: self.config.packet_size,
                count: self.config.packets_per_train,
            };
            let result = runner.run_stream(sim, &spec);
            packets += spec.count() as u64;
            let g_in = l_bits / rate;
            if let Some((igi, ptr)) = self.analyse_train(&result, g_in) {
                last = Some((igi, ptr, rate, iteration));
                // turning point: output gaps no longer exceed input gaps
                let gaps = result.pair_gaps();
                let avg_out: f64 = gaps.iter().map(|&(_, g)| g).sum::<f64>() / gaps.len() as f64;
                let turned = avg_out <= g_in * (1.0 + self.config.tolerance);
                sim.emit(
                    "igi.train",
                    &[
                        ("iter", u64::from(iteration).into()),
                        ("rate_bps", rate.into()),
                        ("g_in_s", g_in.into()),
                        ("avg_g_out_s", avg_out.into()),
                        ("igi_bps", igi.into()),
                        ("ptr_bps", ptr.into()),
                        ("turned", turned.into()),
                    ],
                );
                if turned {
                    return IgiReport {
                        igi_bps: igi,
                        ptr_bps: ptr,
                        turning_rate_bps: rate,
                        iterations: iteration,
                        probe_packets: packets,
                    };
                }
            }
            rate /= self.config.gap_growth;
        }
        // never converged: report the last train's numbers
        let (igi, ptr, rate, iterations) = last.expect("at least one train must produce gaps");
        IgiReport {
            igi_bps: igi,
            ptr_bps: ptr,
            turning_rate_bps: rate,
            iterations,
            probe_packets: packets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{CrossKind, Scenario, SingleHopConfig};
    use abw_netsim::SimDuration;

    fn run_igi(cross: CrossKind) -> IgiReport {
        let mut s = Scenario::single_hop(&SingleHopConfig {
            cross,
            ..SingleHopConfig::default()
        });
        s.warm_up(SimDuration::from_millis(500));
        let mut runner = s.runner();
        Igi::new(IgiConfig::default()).run(&mut s.sim, &mut runner)
    }

    #[test]
    fn converges_on_cbr() {
        let r = run_igi(CrossKind::Cbr);
        assert!(
            (r.ptr_bps - 25e6).abs() / 25e6 < 0.25,
            "PTR {:.2} Mb/s",
            r.ptr_bps / 1e6
        );
        assert!(
            (r.igi_bps - 25e6).abs() / 25e6 < 0.25,
            "IGI {:.2} Mb/s",
            r.igi_bps / 1e6
        );
        assert!(r.iterations >= 2, "should need several gap increases");
    }

    #[test]
    fn converges_on_poisson() {
        let r = run_igi(CrossKind::Poisson);
        // burstiness biases towards underestimation (Pitfall 6); accept a
        // wide band but require the right ballpark
        assert!(
            r.ptr_bps > 10e6 && r.ptr_bps < 35e6,
            "PTR {:.2} Mb/s",
            r.ptr_bps / 1e6
        );
    }

    #[test]
    fn turning_rate_tracks_ptr() {
        let r = run_igi(CrossKind::Cbr);
        // the PTR (output-side rate) can only lag the input rate at the
        // turning point
        assert!(r.ptr_bps <= r.turning_rate_bps * 1.05);
    }

    #[test]
    fn idle_link_turns_immediately() {
        let mut s = Scenario::single_hop(&SingleHopConfig {
            cross_rate_bps: 0.0,
            ..SingleHopConfig::default()
        });
        s.warm_up(SimDuration::from_millis(100));
        let mut runner = s.runner();
        let r = Igi::new(IgiConfig::default()).run(&mut s.sim, &mut runner);
        assert_eq!(r.iterations, 1, "48 Mb/s < C = 50 Mb/s: no queueing");
        assert!(r.igi_bps > 45e6);
    }
}
