//! bprobe-style end-to-end capacity estimation via packet-pair dispersion.
//!
//! Back-to-back packet pairs leave the path spaced by the serialisation
//! time of the *narrow* link (minimum capacity); the mode of the per-pair
//! capacity estimates `L·8 / gap_out` is therefore `Cn` — **not** the
//! tight-link capacity `Ct` that direct probing needs. Feeding this
//! estimate into Equation 9 on a path whose tight link is faster than its
//! narrow link is exactly Pitfall 5, demonstrated by the `exp_capacity`
//! experiment.

use abw_netsim::SimDuration;
use abw_stats::histogram::Histogram;
use abw_stats::running::Running;
use abw_stats::sampling::exp_variate;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::stream::StreamSpec;
use crate::tools::{Action, Estimator, Observation, ProbeSpec, Verdict};

/// Capacity-probe configuration.
#[derive(Debug, Clone)]
pub struct CapacityConfig {
    /// Number of packet pairs.
    pub pairs: u32,
    /// Probing packet size, bytes.
    pub packet_size: u32,
    /// Intra-pair rate: effectively back-to-back when far above any link
    /// capacity on the path.
    pub pair_rate_bps: f64,
    /// Mean (exponential) spacing between pairs.
    pub mean_pair_gap: SimDuration,
    /// Histogram bins used for the mode search.
    pub bins: usize,
    /// RNG seed for the pair spacing.
    pub seed: u64,
}

impl Default for CapacityConfig {
    fn default() -> Self {
        CapacityConfig {
            pairs: 100,
            packet_size: 1500,
            pair_rate_bps: 10e9,
            mean_pair_gap: SimDuration::from_millis(20),
            bins: 60,
            seed: 0xCAFE,
        }
    }
}

/// Result of a capacity probe.
#[derive(Debug, Clone)]
pub struct CapacityReport {
    /// The estimated end-to-end (narrow link) capacity, bits/s.
    pub capacity_bps: f64,
    /// Statistics of the raw per-pair estimates.
    pub samples: abw_stats::running::Summary,
    /// Pairs that produced a usable dispersion.
    pub usable_pairs: u32,
    /// Probing packets transmitted (two per pair).
    pub probe_packets: u64,
}

/// The packet-pair capacity prober.
#[derive(Debug, Clone)]
pub struct CapacityProber {
    config: CapacityConfig,
}

impl CapacityProber {
    /// Creates a capacity prober.
    pub fn new(config: CapacityConfig) -> Self {
        assert!(config.pairs >= 1 && config.bins >= 2);
        CapacityProber { config }
    }

    /// The resumable state machine for one estimation round.
    pub fn estimator(&self) -> CapacityEstimator {
        CapacityEstimator {
            config: self.config.clone(),
            rng: StdRng::seed_from_u64(self.config.seed),
            spec: StreamSpec::Pair {
                rate_bps: self.config.pair_rate_bps,
                size: self.config.packet_size,
            },
            sent: 0,
            estimates: Vec::new(),
        }
    }
}

/// The capacity probe as a decision state machine: exponentially spaced
/// back-to-back pairs, then a histogram-mode search over the per-pair
/// dispersion estimates.
#[derive(Debug, Clone)]
pub struct CapacityEstimator {
    config: CapacityConfig,
    rng: StdRng,
    spec: StreamSpec,
    sent: u32,
    estimates: Vec<f64>,
}

impl Estimator for CapacityEstimator {
    fn next(&mut self, last: Option<&Observation>) -> Action {
        if let Some(obs) = last {
            // lint: allow(panic_free) -- reply kind matches the request this estimator issued
            let result = obs.stream().expect("capacity probing sends pairs");
            if let Some(&(_, g_out)) = result.pair_gaps().first() {
                if g_out > 0.0 {
                    self.estimates
                        .push(self.config.packet_size as f64 * 8.0 / g_out);
                }
            }
        }
        if self.sent < self.config.pairs {
            self.sent += 1;
            let gap = SimDuration::from_secs_f64(exp_variate(
                &mut self.rng,
                self.config.mean_pair_gap.as_secs_f64(),
            ));
            Action::Send(ProbeSpec::Stream {
                spec: self.spec.clone(),
                pre_gap: Some(gap),
            })
        } else {
            let running = Running::from_samples(&self.estimates);
            let capacity = mode_of(&self.estimates, self.config.bins).unwrap_or(running.mean());
            Action::Done(Verdict::Capacity(CapacityReport {
                capacity_bps: capacity,
                samples: running.summary(),
                usable_pairs: u32::try_from(self.estimates.len()).unwrap_or(u32::MAX),
                probe_packets: self.config.pairs as u64 * 2,
            }))
        }
    }
}

/// Histogram mode of a positive sample set; `None` when empty.
fn mode_of(samples: &[f64], bins: usize) -> Option<f64> {
    let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if samples.is_empty() || max <= 0.0 {
        return None;
    }
    let mut h = Histogram::new(0.0, max * 1.001, bins);
    for &s in samples {
        h.push(s);
    }
    h.mode()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, SingleHopConfig};
    use abw_netsim::SimDuration;

    #[test]
    fn idle_link_capacity_exact() {
        let mut s = Scenario::single_hop(&SingleHopConfig {
            cross_rate_bps: 0.0,
            ..SingleHopConfig::default()
        });
        s.warm_up(SimDuration::from_millis(100));
        let mut runner = s.runner();
        let report = CapacityProber::new(CapacityConfig {
            pairs: 20,
            ..CapacityConfig::default()
        })
        .run(&mut s.sim, &mut runner);
        assert!(
            (report.capacity_bps - 50e6).abs() / 50e6 < 0.05,
            "capacity {:.2} Mb/s",
            report.capacity_bps / 1e6
        );
        assert_eq!(report.usable_pairs, 20);
    }

    #[test]
    fn loaded_link_mode_still_finds_capacity() {
        let mut s = Scenario::single_hop(&SingleHopConfig::default());
        s.warm_up(SimDuration::from_millis(300));
        let mut runner = s.runner();
        let report = CapacityProber::new(CapacityConfig::default()).run(&mut s.sim, &mut runner);
        // cross traffic expands some pairs, but the mode survives
        assert!(
            (report.capacity_bps - 50e6).abs() / 50e6 < 0.15,
            "capacity {:.2} Mb/s",
            report.capacity_bps / 1e6
        );
    }

    #[test]
    fn measures_the_narrow_link_not_the_tight_link() {
        // Pitfall 5: narrow = 100 Mb/s (idle), tight = OC-3 carrying
        // 60 Mb/s (avail 95.5 Mb/s < 100 Mb/s, so tight ≠ narrow)
        let mut s = Scenario::tight_not_narrow(60e6, 5);
        s.warm_up(SimDuration::from_millis(300));
        let mut runner = s.runner();
        let report = CapacityProber::new(CapacityConfig::default()).run(&mut s.sim, &mut runner);
        let cn = s.narrow_capacity_bps();
        assert!(
            (report.capacity_bps - cn).abs() / cn < 0.15,
            "capacity {:.2} Mb/s should be near Cn = {:.2} Mb/s",
            report.capacity_bps / 1e6,
            cn / 1e6
        );
        // and it is NOT the tight link's capacity
        assert!(report.capacity_bps < s.tight_capacity_bps() * 0.8);
    }
}
