//! pathChirp (Ribeiro et al.): iterative probing with exponentially
//! spaced "chirps".
//!
//! One chirp of `N` packets probes `N-1` rates at once — the paper notes
//! this per-packet efficiency comes from using *consecutive packet
//! pairs*. Per chirp, the queueing-delay signature is segmented into
//! excursions; the estimate combines the rates where excursions begin
//! with the rate at the start of the final (unterminated) excursion.
//!
//! This implementation follows the published excursion-segmentation
//! algorithm in simplified form (documented inline); the simplifications
//! do not change the tool's character — an iterative prober whose single
//! chirp spans a whole rate range.

use abw_stats::running::Running;

use crate::probe::StreamResult;
use crate::stream::StreamSpec;
use crate::tools::{Action, Estimate, Estimator, Observation, ProbeSpec, ToolEvent, Verdict};

/// pathChirp configuration.
#[derive(Debug, Clone)]
pub struct PathchirpConfig {
    /// Rate probed by the first (widest) pair, bits/s.
    pub start_rate_bps: f64,
    /// Spreading factor between consecutive pairs (published default 1.2).
    pub gamma: f64,
    /// Packets per chirp.
    pub packets_per_chirp: u32,
    /// Probing packet size, bytes.
    pub packet_size: u32,
    /// Chirps averaged per estimate.
    pub chirps: u32,
    /// A queueing delay above this threshold (seconds) counts as
    /// "excursion" — absorbs sub-packet-time jitter.
    pub delay_threshold_s: f64,
}

impl Default for PathchirpConfig {
    fn default() -> Self {
        PathchirpConfig {
            start_rate_bps: 5e6,
            gamma: 1.2,
            packets_per_chirp: 24,
            packet_size: 1000,
            chirps: 30,
            delay_threshold_s: 60e-6,
        }
    }
}

/// The pathChirp estimator.
#[derive(Debug, Clone)]
pub struct Pathchirp {
    config: PathchirpConfig,
}

impl Pathchirp {
    /// Creates a pathChirp instance.
    pub fn new(config: PathchirpConfig) -> Self {
        assert!(config.gamma > 1.0, "gamma must exceed 1");
        assert!(config.packets_per_chirp >= 4, "chirp too short");
        Pathchirp { config }
    }

    /// The per-chirp avail-bw estimate from one received chirp.
    ///
    /// Simplified excursion analysis:
    /// * compute each pair's probing rate `R_k` and the queueing delay
    ///   `q_k` of the pair's second packet (relative OWD);
    /// * find the last index `j*` from which `q` stays above the
    ///   threshold to the end of the chirp — the unterminated excursion
    ///   marking sustained overload; its start rate is the estimate;
    /// * when no such point exists the chirp never overloaded the path
    ///   and the estimate is the highest rate probed.
    pub fn chirp_estimate(&self, result: &StreamResult) -> Option<f64> {
        if result.received() < 4 {
            return None;
        }
        let owds = result.relative_owds();
        // pair k = adjacent received packets with consecutive seqs: the
        // probing rate from the pair's send gap, the queueing-delay
        // signature from the relative OWD of the pair's second packet.
        // Pairing the two by record position keeps them aligned when
        // loss punches holes in the chirp — a raw `owds[1..]` drifts
        // one slot per lost packet.
        let pairs: Vec<(f64, f64)> = result
            .records
            .windows(2)
            .enumerate()
            .filter_map(|(i, w)| match w {
                [a, b] if b.seq == a.seq + 1 => {
                    let g_in = b.sent_at.since(a.sent_at).as_secs_f64();
                    let rate = self.config.packet_size as f64 * 8.0 / g_in;
                    owds.get(i + 1).map(|&q| (rate, q))
                }
                _ => None,
            })
            .collect();
        if pairs.is_empty() {
            return None;
        }

        // last start of a run that stays above the threshold to the end
        let mut j_star = None;
        for (k, pair) in pairs.iter().enumerate().rev() {
            if pair.1 > self.config.delay_threshold_s {
                j_star = Some(k);
            } else {
                break;
            }
        }
        match j_star.and_then(|j| pairs.get(j)) {
            Some(pair) => Some(pair.0),
            // never overloaded: avail-bw is at least the top probed rate
            None => pairs.last().map(|p| p.0),
        }
    }

    /// The resumable state machine for one estimation round.
    pub fn estimator(&self) -> PathchirpEstimator {
        PathchirpEstimator {
            tool: self.clone(),
            spec: StreamSpec::Chirp {
                start_rate_bps: self.config.start_rate_bps,
                gamma: self.config.gamma,
                size: self.config.packet_size,
                count: self.config.packets_per_chirp,
            },
            sent: 0,
            processed: 0,
            samples: Running::new(),
            packets: 0,
            events: Vec::new(),
        }
    }
}

/// pathChirp as a decision state machine: send `chirps` identical chirp
/// streams, run the excursion analysis on each, report the mean.
#[derive(Debug, Clone)]
pub struct PathchirpEstimator {
    tool: Pathchirp,
    spec: StreamSpec,
    sent: u32,
    /// Chirps observed so far (the trace-event iteration counter).
    processed: u32,
    samples: Running,
    packets: u64,
    events: Vec<ToolEvent>,
}

impl Estimator for PathchirpEstimator {
    fn next(&mut self, last: Option<&Observation>) -> Action {
        if let Some(obs) = last {
            // lint: allow(panic_free) -- reply kind matches the request this estimator issued
            let result = obs.stream().expect("pathChirp sends chirps");
            self.packets += result.spec.count() as u64;
            if let Some(e) = self.tool.chirp_estimate(result) {
                self.samples.push(e);
                self.events.push(ToolEvent::new(
                    "pathchirp.chirp",
                    vec![
                        ("iter", u64::from(self.processed).into()),
                        ("estimate_bps", e.into()),
                        ("running_mean_bps", self.samples.mean().into()),
                        ("received", result.received().into()),
                    ],
                ));
            }
            self.processed += 1;
        }
        if self.sent < self.tool.config.chirps {
            self.sent += 1;
            Action::Send(ProbeSpec::stream(self.spec.clone()))
        } else {
            Action::Done(Verdict::Point(Estimate {
                avail_bps: self.samples.mean(),
                samples: self.samples.summary(),
                probe_packets: self.packets,
                elapsed_secs: 0.0,
            }))
        }
    }

    fn take_events(&mut self) -> Vec<ToolEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{CrossKind, Scenario, SingleHopConfig};
    use abw_netsim::SimDuration;

    fn run_chirp(cross: CrossKind, chirps: u32) -> Estimate {
        let mut s = Scenario::single_hop(&SingleHopConfig {
            cross,
            ..SingleHopConfig::default()
        });
        s.warm_up(SimDuration::from_millis(500));
        let mut runner = s.runner();
        let pc = Pathchirp::new(PathchirpConfig {
            chirps,
            ..PathchirpConfig::default()
        });
        pc.run(&mut s.sim, &mut runner)
    }

    #[test]
    fn tracks_avail_bw_on_cbr() {
        let est = run_chirp(CrossKind::Cbr, 20);
        assert!(
            (est.avail_bps - 25e6).abs() / 25e6 < 0.3,
            "estimate {:.2} Mb/s",
            est.avail_bps / 1e6
        );
    }

    #[test]
    fn tracks_avail_bw_on_poisson() {
        let est = run_chirp(CrossKind::Poisson, 40);
        assert!(
            (est.avail_bps - 25e6).abs() / 25e6 < 0.4,
            "estimate {:.2} Mb/s",
            est.avail_bps / 1e6
        );
    }

    #[test]
    fn idle_path_reports_top_of_chirp() {
        let mut s = Scenario::single_hop(&SingleHopConfig {
            cross_rate_bps: 0.0,
            ..SingleHopConfig::default()
        });
        s.warm_up(SimDuration::from_millis(100));
        let mut runner = s.runner();
        let cfg = PathchirpConfig {
            chirps: 3,
            ..PathchirpConfig::default()
        };
        let top_rate = cfg.start_rate_bps * cfg.gamma.powi(cfg.packets_per_chirp as i32 - 2);
        let pc = Pathchirp::new(cfg);
        let est = pc.run(&mut s.sim, &mut runner);
        // on an idle 50 Mb/s link the chirp's top rates exceed the
        // capacity, so an excursion forms near the capacity — the
        // estimate is between 25 Mb/s and the top probed rate
        assert!(
            est.avail_bps >= 25e6 && est.avail_bps <= top_rate,
            "estimate {:.2} Mb/s (top {:.2})",
            est.avail_bps / 1e6,
            top_rate / 1e6
        );
    }

    #[test]
    fn lossy_chirp_still_yields_an_estimate() {
        // A chirp with holes (lost seqs 3 and 7) has fewer consecutive
        // pairs than received packets; the excursion analysis must keep
        // rates and delays aligned and not panic on the mismatch.
        use crate::probe::{ProbeRecord, StreamResult};
        use crate::stream::StreamSpec;
        use abw_netsim::SimTime;

        let cfg = PathchirpConfig::default();
        let spec = StreamSpec::Chirp {
            start_rate_bps: cfg.start_rate_bps,
            gamma: cfg.gamma,
            size: cfg.packet_size,
            count: 12,
        };
        let records: Vec<ProbeRecord> = (0u32..12)
            .filter(|s| *s != 3 && *s != 7)
            .map(|seq| ProbeRecord {
                seq,
                sent_at: SimTime::from_nanos(seq as u64 * 1_000_000),
                // delays ramp up late in the chirp, as under overload
                recv_at: SimTime::from_nanos(
                    seq as u64 * 1_000_000 + 500_000 + (seq as u64).pow(2) * 20_000,
                ),
            })
            .collect();
        let result = StreamResult {
            stream_id: 0,
            spec,
            records,
        };
        let est = Pathchirp::new(cfg).chirp_estimate(&result);
        assert!(est.is_some_and(|e| e > 0.0), "estimate {est:?}");
    }

    #[test]
    fn efficiency_fewer_packets_than_pathload() {
        // one chirp probes ~22 rates with 24 packets; verify the packet
        // accounting reflects that efficiency
        let est = run_chirp(CrossKind::Cbr, 10);
        assert_eq!(est.probe_packets, 240);
    }
}
