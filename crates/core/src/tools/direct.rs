//! Delphi-style direct probing with periodic trains.
//!
//! Each probing stream of rate `Ri > A` yields one avail-bw sample via the
//! Equation 9 inversion `A = Ct - Ri (Ct/Ro - 1)`; the estimate is the
//! sample mean. Requires the tight-link capacity — supplying the *narrow*
//! capacity instead is Pitfall 5, and the `fig2`/`table1` experiments are
//! built directly on this prober.

use abw_netsim::SimDuration;
use abw_stats::running::Running;

use crate::fluid::direct_probing_estimate;
use crate::probe::StreamResult;
use crate::stream::StreamSpec;
use crate::tools::{Action, Estimate, Estimator, Observation, ProbeSpec, Verdict};

/// Configuration of the direct prober.
#[derive(Debug, Clone)]
pub struct DirectConfig {
    /// Tight-link capacity `Ct` in bits/s (assumed known, as in Delphi).
    pub tight_capacity_bps: f64,
    /// Input rate of each probing stream (should exceed the avail-bw so
    /// Equation 9 applies).
    pub input_rate_bps: f64,
    /// Probing packet size in bytes.
    pub packet_size: u32,
    /// Duration of each stream — the averaging-timescale knob
    /// (Pitfall 2).
    pub stream_duration: SimDuration,
    /// Number of streams (= samples; Pitfall 1 is about this `k`).
    pub streams: u32,
}

impl DirectConfig {
    /// The paper's Figure 2 parameters: Ct = 50 Mb/s, Ri = 40 Mb/s,
    /// 1500 B packets, 100 ms streams, 100 samples.
    pub fn canonical() -> Self {
        DirectConfig {
            tight_capacity_bps: 50e6,
            input_rate_bps: 40e6,
            packet_size: 1500,
            stream_duration: SimDuration::from_millis(100),
            streams: 100,
        }
    }
}

/// Direct probing with periodic trains (Delphi's sampling structure).
#[derive(Debug, Clone)]
pub struct DirectProber {
    config: DirectConfig,
}

impl DirectProber {
    /// Creates a prober with the given configuration.
    pub fn new(config: DirectConfig) -> Self {
        assert!(config.streams >= 1, "need at least one stream");
        DirectProber { config }
    }

    /// One avail-bw sample from a completed stream (Equation 9); `None`
    /// when the output rate is unmeasurable.
    pub fn sample(&self, result: &StreamResult) -> Option<f64> {
        let ro = result.output_rate_bps()?;
        Some(direct_probing_estimate(
            self.config.tight_capacity_bps,
            result.input_rate_bps(),
            ro,
        ))
    }

    /// The resumable state machine for one estimation round.
    pub fn estimator(&self) -> DirectEstimator {
        DirectEstimator {
            prober: self.clone(),
            spec: StreamSpec::periodic_for_duration(
                self.config.input_rate_bps,
                self.config.packet_size,
                self.config.stream_duration,
            ),
            sent: 0,
            samples: Running::new(),
            raw: Vec::new(),
            packets: 0,
        }
    }
}

/// Direct probing as a decision state machine: send `streams` identical
/// periodic trains, turn each into an Equation 9 sample, report the mean.
#[derive(Debug, Clone)]
pub struct DirectEstimator {
    prober: DirectProber,
    spec: StreamSpec,
    sent: u32,
    samples: Running,
    raw: Vec<f64>,
    packets: u64,
}

impl DirectEstimator {
    /// The raw per-stream samples, in probing order — for experiments
    /// that study the sample distribution rather than the mean.
    pub fn into_samples(self) -> Vec<f64> {
        self.raw
    }
}

impl Estimator for DirectEstimator {
    fn next(&mut self, last: Option<&Observation>) -> Action {
        if let Some(obs) = last {
            // lint: allow(panic_free) -- reply kind matches the request this estimator issued
            let result = obs.stream().expect("direct probing sends streams");
            self.packets += result.spec.count() as u64;
            if let Some(a) = self.prober.sample(result) {
                self.samples.push(a);
                self.raw.push(a);
            }
        }
        if self.sent < self.prober.config.streams {
            self.sent += 1;
            Action::Send(ProbeSpec::stream(self.spec.clone()))
        } else {
            Action::Done(Verdict::Point(Estimate {
                avail_bps: self.samples.mean(),
                samples: self.samples.summary(),
                probe_packets: self.packets,
                elapsed_secs: 0.0,
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{CrossKind, Scenario, SingleHopConfig};

    fn probe_with(cross: CrossKind, streams: u32) -> Estimate {
        let mut s = Scenario::single_hop(&SingleHopConfig {
            cross,
            ..SingleHopConfig::default()
        });
        s.warm_up(SimDuration::from_millis(500));
        let mut runner = s.runner();
        let prober = DirectProber::new(DirectConfig {
            streams,
            ..DirectConfig::canonical()
        });
        prober.run(&mut s.sim, &mut runner)
    }

    #[test]
    fn exact_on_cbr_cross_traffic() {
        // CBR ≈ fluid: Equation 9 recovers A almost exactly
        let est = probe_with(CrossKind::Cbr, 5);
        assert!(
            (est.avail_bps - 25e6).abs() / 25e6 < 0.02,
            "estimate {:.2} Mb/s",
            est.avail_bps / 1e6
        );
        assert!(est.probe_packets > 0);
        assert!(est.elapsed_secs > 0.0);
    }

    #[test]
    fn close_on_poisson_cross_traffic() {
        let est = probe_with(CrossKind::Poisson, 30);
        assert!(
            (est.avail_bps - 25e6).abs() / 25e6 < 0.10,
            "estimate {:.2} Mb/s",
            est.avail_bps / 1e6
        );
        // Poisson cross traffic makes individual samples vary
        assert!(est.samples.stddev > 0.0);
    }

    #[test]
    fn sample_count_matches_streams() {
        let mut s = Scenario::single_hop(&SingleHopConfig::default());
        s.warm_up(SimDuration::from_millis(200));
        let mut runner = s.runner();
        let prober = DirectProber::new(DirectConfig {
            streams: 7,
            stream_duration: SimDuration::from_millis(25),
            ..DirectConfig::canonical()
        });
        let samples = prober.collect_samples(&mut s.sim, &mut runner);
        assert_eq!(samples.len(), 7);
    }
}
