//! S-chirp — smoothed chirps (Pásztor, PhD thesis 2003).
//!
//! Like pathChirp, S-chirp probes a whole rate range within one stream;
//! the difference is the analysis: instead of segmenting the raw
//! queueing-delay signature into excursions, S-chirp *smooths* the
//! per-pair delay-variation series over a window before locating the
//! sustained-increase onset. Smoothing trades rate resolution for
//! robustness to packet-scale noise — the same latency/accuracy dial as
//! everywhere else in this area (Fallacy 3).

#[cfg(test)]
use abw_netsim::SimDuration;
use abw_stats::running::Running;

use crate::probe::StreamResult;
use crate::stream::StreamSpec;
use crate::tools::{Action, Estimate, Estimator, Observation, ProbeSpec, Verdict};

/// S-chirp configuration.
#[derive(Debug, Clone)]
pub struct SchirpConfig {
    /// Rate probed by the first (widest) pair, bits/s.
    pub start_rate_bps: f64,
    /// Spreading factor between consecutive pairs.
    pub gamma: f64,
    /// Packets per chirp.
    pub packets_per_chirp: u32,
    /// Probing packet size, bytes.
    pub packet_size: u32,
    /// Chirps averaged per estimate.
    pub chirps: u32,
    /// Moving-average window (in pairs) applied to the delay series.
    pub smoothing_window: usize,
    /// Smoothed delay slope above this (seconds per pair) marks the
    /// overload onset.
    // lint: allow(units) -- compound unit (seconds per pair) outside the suffix vocabulary
    pub slope_threshold: f64,
}

impl Default for SchirpConfig {
    fn default() -> Self {
        SchirpConfig {
            start_rate_bps: 5e6,
            gamma: 1.2,
            packets_per_chirp: 24,
            packet_size: 1000,
            chirps: 30,
            smoothing_window: 3,
            slope_threshold: 8e-6,
        }
    }
}

/// The S-chirp estimator.
#[derive(Debug, Clone)]
pub struct Schirp {
    config: SchirpConfig,
}

impl Schirp {
    /// Creates an S-chirp instance.
    pub fn new(config: SchirpConfig) -> Self {
        assert!(config.gamma > 1.0);
        assert!(config.smoothing_window >= 1);
        assert!(config.packets_per_chirp >= 4);
        Schirp { config }
    }

    /// Centered moving average with the configured window.
    fn smooth(&self, xs: &[f64]) -> Vec<f64> {
        let w = self.config.smoothing_window;
        (0..xs.len())
            .map(|i| {
                let lo = i.saturating_sub(w / 2);
                let hi = (i + w.div_ceil(2)).min(xs.len());
                // lint: allow(panic_free) -- lo <= i < hi <= len by construction
                xs[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
            })
            .collect()
    }

    /// The per-chirp estimate: the pair rate at the onset of a sustained
    /// increase in the smoothed queueing-delay series.
    pub fn chirp_estimate(&self, result: &StreamResult) -> Option<f64> {
        if result.received() < 4 {
            return None;
        }
        let owds = result.relative_owds();
        // per-pair (rate, delay) aligned by record position, so loss in
        // the chirp cannot shift the delay series against the rates
        // (see the same construction in pathChirp)
        let (rates, q_raw): (Vec<f64>, Vec<f64>) = result
            .records
            .windows(2)
            .enumerate()
            .filter_map(|(i, w)| match w {
                [a, b] if b.seq == a.seq + 1 => {
                    let g_in = b.sent_at.since(a.sent_at).as_secs_f64();
                    let rate = self.config.packet_size as f64 * 8.0 / g_in;
                    owds.get(i + 1).map(|&q| (rate, q))
                }
                _ => None,
            })
            .unzip();
        if rates.is_empty() {
            return None;
        }
        let q = self.smooth(&q_raw);

        // onset: the last index from which the smoothed delays increase
        // by at least the threshold per pair, through to the chirp's end
        let mut onset = None;
        for (k, w) in q.windows(2).enumerate().rev() {
            match w {
                [prev, cur] if cur - prev > self.config.slope_threshold => onset = Some(k),
                _ => break,
            }
        }
        match onset {
            Some(j) => rates.get(j).or(rates.last()).copied(),
            None => rates.last().copied(),
        }
    }

    /// The resumable state machine for one estimation round.
    pub fn estimator(&self) -> SchirpEstimator {
        SchirpEstimator {
            tool: self.clone(),
            spec: StreamSpec::Chirp {
                start_rate_bps: self.config.start_rate_bps,
                gamma: self.config.gamma,
                size: self.config.packet_size,
                count: self.config.packets_per_chirp,
            },
            sent: 0,
            samples: Running::new(),
            packets: 0,
        }
    }
}

/// S-chirp as a decision state machine: send the configured chirps and
/// average the per-chirp onset estimates.
#[derive(Debug, Clone)]
pub struct SchirpEstimator {
    tool: Schirp,
    spec: StreamSpec,
    sent: u32,
    samples: Running,
    packets: u64,
}

impl Estimator for SchirpEstimator {
    fn next(&mut self, last: Option<&Observation>) -> Action {
        if let Some(obs) = last {
            // lint: allow(panic_free) -- reply kind matches the request this estimator issued
            let result = obs.stream().expect("S-chirp sends chirps");
            self.packets += result.spec.count() as u64;
            if let Some(e) = self.tool.chirp_estimate(result) {
                self.samples.push(e);
            }
        }
        if self.sent < self.tool.config.chirps {
            self.sent += 1;
            Action::Send(ProbeSpec::stream(self.spec.clone()))
        } else {
            Action::Done(Verdict::Point(Estimate {
                avail_bps: self.samples.mean(),
                samples: self.samples.summary(),
                probe_packets: self.packets,
                elapsed_secs: 0.0,
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{CrossKind, Scenario, SingleHopConfig};

    fn run_schirp(cross: CrossKind, seed: u64) -> Estimate {
        let mut s = Scenario::single_hop(&SingleHopConfig {
            cross,
            seed,
            ..SingleHopConfig::default()
        });
        s.warm_up(SimDuration::from_millis(500));
        let mut runner = s.runner();
        Schirp::new(SchirpConfig::default()).run(&mut s.sim, &mut runner)
    }

    #[test]
    fn tracks_avail_bw_on_cbr() {
        let est = run_schirp(CrossKind::Cbr, 1);
        assert!(
            (est.avail_bps - 25e6).abs() / 25e6 < 0.35,
            "estimate {:.2} Mb/s",
            est.avail_bps / 1e6
        );
    }

    #[test]
    fn tracks_avail_bw_on_poisson() {
        let est = run_schirp(CrossKind::Poisson, 2);
        assert!(
            (est.avail_bps - 25e6).abs() / 25e6 < 0.45,
            "estimate {:.2} Mb/s",
            est.avail_bps / 1e6
        );
    }

    #[test]
    fn smoothing_preserves_length_and_mean() {
        let s = Schirp::new(SchirpConfig::default());
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let sm = s.smooth(&xs);
        assert_eq!(sm.len(), xs.len());
        let mean_raw = xs.iter().sum::<f64>() / xs.len() as f64;
        let mean_sm = sm.iter().sum::<f64>() / sm.len() as f64;
        assert!((mean_raw - mean_sm).abs() < 1.0);
        // a linear ramp stays (approximately) a linear ramp
        for w in sm.windows(2).skip(2).take(14) {
            assert!((w[1] - w[0] - 1.0).abs() < 0.5);
        }
    }
}
