//! Delphi (Ribeiro et al., ITC 2000): adaptive direct probing.
//!
//! Delphi is the canonical direct prober: each packet train yields one
//! avail-bw sample through the Equation 9 inversion, assuming the tight
//! link's capacity is known and the path behaves as a single queue. Its
//! distinctive feature is *adaptation*: the input rate of the next train
//! tracks the current avail-bw estimate (the original uses a
//! multifractal cross-traffic model to extrapolate; here the tracking
//! filter is an EWMA, with the multifractal machinery out of scope —
//! the sampling structure, which is what the paper's classification is
//! about, is preserved).
//!
//! Probing *at* the avail-bw estimate is self-defeating (`Ri ≤ A` makes
//! Equation 9 degenerate), so Delphi probes at `headroom × estimate`,
//! keeping the train slightly into the overload regime.

#[cfg(test)]
use abw_netsim::SimDuration;
use abw_stats::running::Running;

use crate::fluid::direct_probing_estimate;
use crate::stream::StreamSpec;
use crate::tools::{Action, Estimate, Estimator, Observation, ProbeSpec, ToolEvent, Verdict};

/// Delphi configuration.
#[derive(Debug, Clone)]
pub struct DelphiConfig {
    /// Tight-link capacity `Ct` (assumed known).
    pub tight_capacity_bps: f64,
    /// Initial input rate (first train), bits/s.
    pub initial_rate_bps: f64,
    /// Multiplier applied to the running estimate to choose the next
    /// input rate (> 1 keeps the train overloading).
    pub headroom: f64,
    /// EWMA weight of the newest sample in the tracking filter.
    pub alpha: f64,
    /// Packets per train.
    pub packets_per_train: u32,
    /// Probing packet size, bytes.
    pub packet_size: u32,
    /// Number of trains.
    pub trains: u32,
}

impl DelphiConfig {
    /// Defaults for the canonical 50/25 link.
    pub fn new(tight_capacity_bps: f64) -> Self {
        DelphiConfig {
            tight_capacity_bps,
            initial_rate_bps: tight_capacity_bps * 0.8,
            headroom: 1.25,
            alpha: 0.3,
            packets_per_train: 50,
            packet_size: 1500,
            trains: 40,
        }
    }
}

/// The Delphi estimator.
#[derive(Debug, Clone)]
pub struct Delphi {
    config: DelphiConfig,
}

/// Per-train record of a Delphi run, for studying the adaptation.
#[derive(Debug, Clone, Copy)]
pub struct DelphiStep {
    /// Input rate of this train, bits/s.
    pub ri_bps: f64,
    /// This train's raw avail-bw sample, bits/s (`None` when the train
    /// did not overload, i.e. `Ro ≈ Ri`).
    pub sample_bps: Option<f64>,
    /// The tracking estimate after this train, bits/s.
    pub estimate_bps: f64,
}

/// Delphi's result: the tracked estimate plus the adaptation trace.
#[derive(Debug, Clone)]
pub struct DelphiReport {
    /// Final tracked avail-bw estimate, bits/s.
    pub avail_bps: f64,
    /// Statistics of the raw per-train samples.
    pub samples: abw_stats::running::Summary,
    /// Every adaptation step.
    pub steps: Vec<DelphiStep>,
    /// Probing packets transmitted.
    pub probe_packets: u64,
    /// Simulated seconds the measurement took.
    pub elapsed_secs: f64,
}

impl DelphiReport {
    /// As a plain [`Estimate`].
    pub fn as_estimate(&self) -> Estimate {
        Estimate {
            avail_bps: self.avail_bps,
            samples: self.samples,
            probe_packets: self.probe_packets,
            elapsed_secs: self.elapsed_secs,
        }
    }
}

impl Delphi {
    /// Creates a Delphi instance.
    pub fn new(config: DelphiConfig) -> Self {
        assert!(config.headroom > 1.0, "headroom must keep Ri above A");
        assert!(
            (0.0..=1.0).contains(&config.alpha),
            "EWMA weight out of range"
        );
        assert!(config.trains >= 1);
        Delphi { config }
    }

    /// The resumable state machine for one estimation round.
    pub fn estimator(&self) -> DelphiEstimator {
        DelphiEstimator {
            config: self.config.clone(),
            estimate_bps: self.config.initial_rate_bps / self.config.headroom,
            rate_bps: self.config.initial_rate_bps,
            samples: Running::new(),
            steps: Vec::with_capacity(self.config.trains as usize),
            packets: 0,
            sent: 0,
            events: Vec::new(),
        }
    }
}

/// Delphi as a decision state machine: each observed train yields a
/// sample that updates the EWMA tracker, which in turn sets the next
/// train's input rate.
#[derive(Debug, Clone)]
pub struct DelphiEstimator {
    config: DelphiConfig,
    estimate_bps: f64,
    /// Input rate of the train in flight (or about to be sent).
    rate_bps: f64,
    samples: Running,
    steps: Vec<DelphiStep>,
    packets: u64,
    sent: u32,
    events: Vec<ToolEvent>,
}

impl Estimator for DelphiEstimator {
    fn next(&mut self, last: Option<&Observation>) -> Action {
        let ct = self.config.tight_capacity_bps;
        if let Some(obs) = last {
            // lint: allow(panic_free) -- reply kind matches the request this estimator issued
            let result = obs.stream().expect("Delphi sends streams");
            let rate = self.rate_bps;
            self.packets += result.spec.count() as u64;

            let sample = result.output_rate_bps().and_then(|ro| {
                // Equation 9 needs actual overload: Ro visibly below Ri
                if ro < rate * 0.995 {
                    Some(direct_probing_estimate(ct, rate, ro).clamp(0.0, ct))
                } else {
                    None
                }
            });
            match sample {
                Some(a) => {
                    self.samples.push(a);
                    self.estimate_bps =
                        (1.0 - self.config.alpha) * self.estimate_bps + self.config.alpha * a;
                }
                None => {
                    // train did not overload: the avail-bw is at least Ri,
                    // raise the floor so the next train probes higher
                    self.estimate_bps = self.estimate_bps.max(rate);
                }
            }
            self.events.push(ToolEvent::new(
                "delphi.train",
                vec![
                    ("iter", self.steps.len().into()),
                    ("ri_bps", rate.into()),
                    ("sample_bps", sample.unwrap_or(f64::NAN).into()),
                    ("estimate_bps", self.estimate_bps.into()),
                ],
            ));
            self.steps.push(DelphiStep {
                ri_bps: rate,
                sample_bps: sample,
                estimate_bps: self.estimate_bps,
            });
            self.rate_bps = (self.estimate_bps * self.config.headroom).min(ct * 0.98);
        }
        if self.sent < self.config.trains {
            self.sent += 1;
            Action::Send(ProbeSpec::stream(StreamSpec::Periodic {
                rate_bps: self.rate_bps,
                size: self.config.packet_size,
                count: self.config.packets_per_train,
            }))
        } else {
            Action::Done(Verdict::Delphi(DelphiReport {
                avail_bps: self.estimate_bps,
                samples: self.samples.summary(),
                steps: std::mem::take(&mut self.steps),
                probe_packets: self.packets,
                elapsed_secs: 0.0,
            }))
        }
    }

    fn take_events(&mut self) -> Vec<ToolEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{CrossKind, Scenario, SingleHopConfig};

    fn run_delphi(cross: CrossKind, seed: u64) -> DelphiReport {
        let mut s = Scenario::single_hop(&SingleHopConfig {
            cross,
            seed,
            ..SingleHopConfig::default()
        });
        s.warm_up(SimDuration::from_millis(500));
        let mut runner = s.runner();
        Delphi::new(DelphiConfig::new(50e6)).run(&mut s.sim, &mut runner)
    }

    #[test]
    fn tracks_avail_bw_on_cbr() {
        let r = run_delphi(CrossKind::Cbr, 1);
        assert!(
            (r.avail_bps - 25e6).abs() / 25e6 < 0.08,
            "estimate {:.2} Mb/s",
            r.avail_bps / 1e6
        );
    }

    #[test]
    fn tracks_avail_bw_on_poisson() {
        let r = run_delphi(CrossKind::Poisson, 2);
        assert!(
            (r.avail_bps - 25e6).abs() / 25e6 < 0.2,
            "estimate {:.2} Mb/s",
            r.avail_bps / 1e6
        );
    }

    #[test]
    fn adapts_rate_towards_the_overload_point() {
        let r = run_delphi(CrossKind::Cbr, 3);
        // after convergence the probing rate sits near headroom * A
        let last = r.steps.last().unwrap();
        assert!(
            (last.ri_bps - 1.25 * 25e6).abs() / (1.25 * 25e6) < 0.15,
            "final probing rate {:.2} Mb/s",
            last.ri_bps / 1e6
        );
        // the first train started far from there
        assert!((r.steps[0].ri_bps - 40e6).abs() < 1.0);
    }

    #[test]
    fn every_train_yields_at_most_one_sample() {
        let r = run_delphi(CrossKind::Poisson, 4);
        assert_eq!(r.steps.len(), 40);
        assert!(r.samples.count <= 40);
        assert!(r.samples.count > 10, "most trains should overload");
    }
}
