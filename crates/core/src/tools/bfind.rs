//! BFind (Akella et al.): sender-only avail-bw probing via per-hop RTTs.
//!
//! BFind needs no receiver cooperation: it ramps up a UDP load stream
//! while running traceroute-style TTL-limited probes to every router on
//! the path. When the load rate exceeds the avail-bw of some link, that
//! link's queue grows and the RTT to *that* router inflates — revealing
//! both the avail-bw (the rate at which inflation started) and which hop
//! is the tight link.
//!
//! In the simulator, routers sit at link inputs and answer TTL expiry
//! with ICMP time-exceeded over an uncongested reverse path
//! (`abw-netsim`), so per-hop RTTs reflect exactly the forward queueing
//! the probe experienced.

use abw_netsim::{
    gap_for_rate, packet_to, Agent, AgentId, Ctx, FlowId, Packet, PacketKind, PathId, SimDuration,
    Simulator,
};
use abw_stats::trend::median;

use crate::scenario::Scenario;

/// BFind configuration.
#[derive(Debug, Clone)]
pub struct BfindConfig {
    /// First load rate probed, bits/s.
    pub start_rate_bps: f64,
    /// Rate increase per epoch, bits/s.
    pub rate_step_bps: f64,
    /// Give up beyond this rate (paper's BFind also caps its load).
    pub max_rate_bps: f64,
    /// How long each load rate is held.
    pub epoch: SimDuration,
    /// Gap between traceroute rounds within an epoch.
    pub trace_interval: SimDuration,
    /// Load packet size, bytes.
    pub load_packet_size: u32,
    /// Traceroute probe size, bytes.
    pub probe_size: u32,
    /// A hop is flagged when its median RTT exceeds the baseline by this
    /// many seconds.
    pub rtt_threshold: f64,
}

impl Default for BfindConfig {
    fn default() -> Self {
        BfindConfig {
            start_rate_bps: 4e6,
            rate_step_bps: 2e6,
            max_rate_bps: 49e6,
            epoch: SimDuration::from_millis(500),
            trace_interval: SimDuration::from_millis(25),
            load_packet_size: 1000,
            probe_size: 60,
            rtt_threshold: 2e-3,
        }
    }
}

/// Per-epoch observation.
#[derive(Debug, Clone)]
pub struct BfindEpoch {
    /// Load rate held during the epoch, bits/s.
    pub rate_bps: f64,
    /// Median RTT per hop (seconds); NaN when no reply arrived.
    pub hop_rtts: Vec<f64>,
}

/// BFind's result.
#[derive(Debug, Clone)]
pub struct BfindReport {
    /// Estimated avail-bw: the last load rate that did not inflate any
    /// hop's RTT, bits/s.
    pub avail_bps: f64,
    /// Hop index whose RTT inflated (the located tight link), when found.
    pub tight_hop: Option<usize>,
    /// All epochs, for plotting the ramp.
    pub epochs: Vec<BfindEpoch>,
    /// Load + traceroute packets transmitted.
    pub probe_packets: u64,
}

const TOKEN_LOAD: u64 = 1;
const TOKEN_TRACE: u64 = 2;

/// The probing agent: a rate-adjustable load stream plus periodic
/// TTL-limited traceroute rounds, with per-hop RTT collection.
struct BfindAgent {
    path: PathId,
    hops: usize,
    dst: AgentId,
    load_rate_bps: f64,
    load_size: u32,
    probe_size: u32,
    trace_interval: SimDuration,
    load_seq: u64,
    trace_seq: u64,
    /// In-flight traceroute probes: seq → hop probed.
    /// RTTs collected since the last drain, per hop.
    rtt_samples: Vec<Vec<f64>>,
    packets: u64,
    running: bool,
}

impl BfindAgent {
    fn new(path: PathId, hops: usize, dst: AgentId, config: &BfindConfig) -> Self {
        BfindAgent {
            path,
            hops,
            dst,
            load_rate_bps: 0.0,
            load_size: config.load_packet_size,
            probe_size: config.probe_size,
            trace_interval: config.trace_interval,
            load_seq: 0,
            trace_seq: 0,
            rtt_samples: vec![Vec::new(); hops],
            packets: 0,
            running: false,
        }
    }

    fn drain(&mut self) -> Vec<Vec<f64>> {
        std::mem::replace(&mut self.rtt_samples, vec![Vec::new(); self.hops])
    }
}

impl Agent for BfindAgent {
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            TOKEN_LOAD => {
                if !self.running {
                    return;
                }
                if self.load_rate_bps > 0.0 {
                    let p = packet_to(
                        self.dst,
                        self.path,
                        FlowId(u32::MAX - 1),
                        self.load_size,
                        self.load_seq,
                        PacketKind::Data,
                    );
                    ctx.send(p);
                    self.load_seq += 1;
                    self.packets += 1;
                    ctx.schedule_in(gap_for_rate(self.load_size, self.load_rate_bps), TOKEN_LOAD);
                } else {
                    // idle baseline: poll for a rate change
                    ctx.schedule_in(SimDuration::from_millis(10), TOKEN_LOAD);
                }
            }
            TOKEN_TRACE => {
                if !self.running {
                    return;
                }
                // One probe per link. A probe measuring link k must cross
                // link k's queue, so it expires at the NEXT router
                // (ttl = k + 2); the reply attributes to link k. The last
                // link has no router behind it, so its probe travels the
                // full path addressed back to this agent (an echo whose
                // one-way delay includes the last queue; the baseline
                // difference cancels the missing reverse delay).
                for hop in 0..self.hops {
                    let mut p = packet_to(
                        self.dst,
                        self.path,
                        FlowId(u32::MAX - 2),
                        self.probe_size,
                        self.trace_seq,
                        PacketKind::Data,
                    );
                    if hop + 1 < self.hops {
                        p.ttl = hop as u8 + 2;
                    } else {
                        p.dst = ctx.self_id();
                    }
                    ctx.send(p);
                    self.trace_seq += 1;
                    self.packets += 1;
                }
                ctx.schedule_in(self.trace_interval, TOKEN_TRACE);
            }
            _ => {}
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: Packet) {
        match packet.kind {
            PacketKind::TtlExceeded {
                router,
                orig_sent_at,
                ..
            } => {
                // expired at router `router` ⇒ crossed the queue of link
                // `router - 1`
                let rtt = ctx.now().since(orig_sent_at).as_secs_f64();
                let link = (router as usize).saturating_sub(1);
                if let Some(bucket) = self.rtt_samples.get_mut(link) {
                    bucket.push(rtt);
                }
            }
            PacketKind::Data => {
                // the self-addressed full-path echo: attribute to the
                // last link
                let owd = ctx.now().since(packet.sent_at).as_secs_f64();
                if let Some(bucket) = self.rtt_samples.last_mut() {
                    bucket.push(owd);
                }
            }
            _ => {}
        }
    }
}

/// The BFind estimator.
#[derive(Debug, Clone)]
pub struct Bfind {
    config: BfindConfig,
}

impl Bfind {
    /// Creates a BFind instance.
    pub fn new(config: BfindConfig) -> Self {
        assert!(config.rate_step_bps > 0.0);
        assert!(config.max_rate_bps > config.start_rate_bps);
        Bfind { config }
    }

    /// Runs BFind against a scenario (it installs its own agent; the
    /// scenario's probing endpoints are not used).
    pub fn run(&self, scenario: &mut Scenario) -> BfindReport {
        let hops = scenario.links.len();
        let path = scenario.probe_path;
        let dst = scenario.receiver;
        let agent = BfindAgent::new(path, hops, dst, &self.config);
        let id = scenario.sim.add_agent(Box::new(agent));
        self.run_with(&mut scenario.sim, id, hops)
    }

    fn run_with(&self, sim: &mut Simulator, agent: AgentId, _hops: usize) -> BfindReport {
        // start the agent's timer loops
        {
            let a = sim.agent_mut::<BfindAgent>(agent);
            a.running = true;
        }
        sim.schedule_timer(agent, sim.now(), TOKEN_LOAD);
        sim.schedule_timer(agent, sim.now(), TOKEN_TRACE);

        // baseline epoch with no load
        sim.run_for(self.config.epoch);
        let baseline: Vec<f64> = sim
            .agent_mut::<BfindAgent>(agent)
            .drain()
            .into_iter()
            .map(|v| median(&v))
            .collect();

        let mut epochs = Vec::new();
        let mut rate = self.config.start_rate_bps;
        let mut result: Option<(f64, usize)> = None;
        while rate <= self.config.max_rate_bps {
            sim.agent_mut::<BfindAgent>(agent).load_rate_bps = rate;
            sim.run_for(self.config.epoch);
            let rtts: Vec<f64> = sim
                .agent_mut::<BfindAgent>(agent)
                .drain()
                .into_iter()
                .map(|v| median(&v))
                .collect();
            epochs.push(BfindEpoch {
                rate_bps: rate,
                hop_rtts: rtts.clone(),
            });
            // a queue at link k inflates the probes of links k, k+1, ...;
            // the tight link is the FIRST link whose probe inflated
            let mut flagged: Option<usize> = None;
            for (hop, (&rtt, &base)) in rtts.iter().zip(&baseline).enumerate() {
                if rtt.is_nan() || base.is_nan() {
                    continue;
                }
                if rtt - base > self.config.rtt_threshold {
                    flagged = Some(hop);
                    break;
                }
            }
            sim.emit(
                "bfind.epoch",
                &[
                    ("iter", (epochs.len() - 1).into()),
                    ("rate_bps", rate.into()),
                    ("flagged_hop", flagged.map_or(-1i64, |h| h as i64).into()),
                ],
            );
            if let Some(hop) = flagged {
                result = Some((rate - self.config.rate_step_bps, hop));
                break;
            }
            rate += self.config.rate_step_bps;
        }

        // stop the agent
        {
            let a = sim.agent_mut::<BfindAgent>(agent);
            a.running = false;
            a.load_rate_bps = 0.0;
        }
        let packets = sim.agent::<BfindAgent>(agent).packets;
        match result {
            Some((avail, hop)) => BfindReport {
                avail_bps: avail.max(self.config.start_rate_bps),
                tight_hop: Some(hop),
                epochs,
                probe_packets: packets,
            },
            None => BfindReport {
                avail_bps: self.config.max_rate_bps,
                tight_hop: None,
                epochs,
                probe_packets: packets,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{CrossKind, HopSpec, Scenario, SingleHopConfig};
    use abw_traffic::SizeDist;

    #[test]
    fn finds_avail_bw_single_hop() {
        let mut s = Scenario::single_hop(&SingleHopConfig {
            cross: CrossKind::Cbr,
            ..SingleHopConfig::default()
        });
        s.warm_up(SimDuration::from_millis(300));
        let report = Bfind::new(BfindConfig::default()).run(&mut s);
        assert!(
            (report.avail_bps - 25e6).abs() <= 6e6,
            "avail {:.1} Mb/s",
            report.avail_bps / 1e6
        );
        assert_eq!(report.tight_hop, Some(0));
        assert!(!report.epochs.is_empty());
    }

    #[test]
    fn locates_the_tight_hop_on_a_multi_hop_path() {
        // hop 1 of 3 is the only tight link (avail 20 Mb/s; others 45)
        let mk = |cross_rate: f64| HopSpec {
            capacity_bps: 50e6,
            cross_rate_bps: cross_rate,
            cross: CrossKind::Cbr,
            cross_sizes: SizeDist::Constant(1500),
            prop_delay: SimDuration::from_millis(1),
            queue_bytes: None,
        };
        let mut s = Scenario::from_hops(vec![mk(5e6), mk(30e6), mk(5e6)], 11);
        s.warm_up(SimDuration::from_millis(300));
        let report = Bfind::new(BfindConfig::default()).run(&mut s);
        assert_eq!(report.tight_hop, Some(1), "wrong hop: {report:?}");
        assert!(
            (report.avail_bps - 20e6).abs() <= 6e6,
            "avail {:.1} Mb/s",
            report.avail_bps / 1e6
        );
    }

    #[test]
    fn idle_path_reports_no_tight_hop() {
        let mut s = Scenario::single_hop(&SingleHopConfig {
            cross_rate_bps: 0.0,
            ..SingleHopConfig::default()
        });
        s.warm_up(SimDuration::from_millis(100));
        let report = Bfind::new(BfindConfig {
            max_rate_bps: 40e6, // stay below capacity: never inflates
            ..BfindConfig::default()
        })
        .run(&mut s);
        assert_eq!(report.tight_hop, None);
        assert_eq!(report.avail_bps, 40e6);
    }
}
