//! BFind (Akella et al.): sender-only avail-bw probing via per-hop RTTs.
//!
//! BFind needs no receiver cooperation: it ramps up a UDP load stream
//! while running traceroute-style TTL-limited probes to every router on
//! the path. When the load rate exceeds the avail-bw of some link, that
//! link's queue grows and the RTT to *that* router inflates — revealing
//! both the avail-bw (the rate at which inflation started) and which hop
//! is the tight link.
//!
//! The load/traceroute machinery lives in the session driver (the
//! [`crate::tools::ProbeSpec::LoadRamp`] probe kind); this module is only
//! the decision logic: hold each rate for an epoch, compare per-hop
//! median RTTs against the no-load baseline, stop at the first inflation.

use abw_netsim::SimDuration;
use abw_stats::trend::median;

use crate::tools::{Action, Estimator, LoadRampSpec, Observation, ProbeSpec, ToolEvent, Verdict};

/// BFind configuration.
#[derive(Debug, Clone)]
pub struct BfindConfig {
    /// First load rate probed, bits/s.
    pub start_rate_bps: f64,
    /// Rate increase per epoch, bits/s.
    pub rate_step_bps: f64,
    /// Give up beyond this rate (paper's BFind also caps its load).
    pub max_rate_bps: f64,
    /// How long each load rate is held.
    pub epoch: SimDuration,
    /// Gap between traceroute rounds within an epoch.
    pub trace_interval: SimDuration,
    /// Load packet size, bytes.
    pub load_packet_size: u32,
    /// Traceroute probe size, bytes.
    pub probe_size: u32,
    /// A hop is flagged when its median RTT exceeds the baseline by this
    /// many seconds.
    pub rtt_threshold_s: f64,
}

impl Default for BfindConfig {
    fn default() -> Self {
        BfindConfig {
            start_rate_bps: 4e6,
            rate_step_bps: 2e6,
            max_rate_bps: 49e6,
            epoch: SimDuration::from_millis(500),
            trace_interval: SimDuration::from_millis(25),
            load_packet_size: 1000,
            probe_size: 60,
            rtt_threshold_s: 2e-3,
        }
    }
}

/// Per-epoch observation.
#[derive(Debug, Clone)]
pub struct BfindEpoch {
    /// Load rate held during the epoch, bits/s.
    pub rate_bps: f64,
    /// Median RTT per hop (seconds); NaN when no reply arrived.
    pub hop_rtts: Vec<f64>,
}

/// BFind's result.
#[derive(Debug, Clone)]
pub struct BfindReport {
    /// Estimated avail-bw: the last load rate that did not inflate any
    /// hop's RTT, bits/s.
    pub avail_bps: f64,
    /// Hop index whose RTT inflated (the located tight link), when found.
    pub tight_hop: Option<usize>,
    /// All epochs, for plotting the ramp.
    pub epochs: Vec<BfindEpoch>,
    /// Load + traceroute packets transmitted.
    pub probe_packets: u64,
}

/// The BFind estimator.
#[derive(Debug, Clone)]
pub struct Bfind {
    config: BfindConfig,
}

impl Bfind {
    /// Creates a BFind instance.
    pub fn new(config: BfindConfig) -> Self {
        assert!(config.rate_step_bps > 0.0);
        assert!(config.max_rate_bps > config.start_rate_bps);
        Bfind { config }
    }

    /// The resumable state machine for one estimation round. Requires a
    /// *routed* session ([`crate::scenario::Scenario::session`]) because
    /// the load ramp installs its own probing agent.
    pub fn estimator(&self) -> BfindEstimator {
        BfindEstimator {
            config: self.config.clone(),
            baseline: None,
            rate_bps: 0.0,
            epochs: Vec::new(),
            packets: 0,
            result: None,
            events: Vec::new(),
        }
    }

    fn ramp(&self, rate_bps: f64) -> ProbeSpec {
        ProbeSpec::LoadRamp(LoadRampSpec {
            rate_bps,
            epoch: self.config.epoch,
            trace_interval: self.config.trace_interval,
            load_packet_size: self.config.load_packet_size,
            probe_size: self.config.probe_size,
        })
    }
}

/// BFind as a decision state machine: a zero-rate baseline epoch, then a
/// linear load ramp until some hop's median RTT inflates past the
/// baseline.
#[derive(Debug, Clone)]
pub struct BfindEstimator {
    config: BfindConfig,
    /// Per-hop median RTTs of the no-load epoch; `None` until observed.
    baseline: Option<Vec<f64>>,
    /// Load rate of the epoch in flight, bits/s.
    rate_bps: f64,
    epochs: Vec<BfindEpoch>,
    packets: u64,
    /// `(avail, tight_hop)` once some hop flagged.
    result: Option<(f64, usize)>,
    events: Vec<ToolEvent>,
}

impl Estimator for BfindEstimator {
    fn next(&mut self, last: Option<&Observation>) -> Action {
        let tool = Bfind {
            config: self.config.clone(),
        };
        let Some(obs) = last else {
            // baseline epoch with no load
            return Action::Send(tool.ramp(0.0));
        };
        // lint: allow(panic_free) -- reply kind matches the request this estimator issued
        let sample = obs.load_ramp().expect("BFind sends load ramps");
        let rtts: Vec<f64> = sample.hop_rtts.iter().map(|v| median(v)).collect();
        self.packets = sample.probe_packets;

        let Some(baseline) = &self.baseline else {
            self.baseline = Some(rtts);
            self.rate_bps = self.config.start_rate_bps;
            return Action::Send(tool.ramp(self.rate_bps));
        };

        self.epochs.push(BfindEpoch {
            rate_bps: self.rate_bps,
            hop_rtts: rtts.clone(),
        });
        // a queue at link k inflates the probes of links k, k+1, ...;
        // the tight link is the FIRST link whose probe inflated
        let mut flagged: Option<usize> = None;
        for (hop, (&rtt, &base)) in rtts.iter().zip(baseline).enumerate() {
            if rtt.is_nan() || base.is_nan() {
                continue;
            }
            if rtt - base > self.config.rtt_threshold_s {
                flagged = Some(hop);
                break;
            }
        }
        self.events.push(ToolEvent::new(
            "bfind.epoch",
            vec![
                ("iter", (self.epochs.len() - 1).into()),
                ("rate_bps", self.rate_bps.into()),
                ("flagged_hop", flagged.map_or(-1i64, |h| h as i64).into()),
            ],
        ));
        if let Some(hop) = flagged {
            self.result = Some((self.rate_bps - self.config.rate_step_bps, hop));
        } else {
            self.rate_bps += self.config.rate_step_bps;
            if self.rate_bps <= self.config.max_rate_bps {
                return Action::Send(tool.ramp(self.rate_bps));
            }
        }

        let report = match self.result {
            Some((avail, hop)) => BfindReport {
                avail_bps: avail.max(self.config.start_rate_bps),
                tight_hop: Some(hop),
                epochs: std::mem::take(&mut self.epochs),
                probe_packets: self.packets,
            },
            None => BfindReport {
                avail_bps: self.config.max_rate_bps,
                tight_hop: None,
                epochs: std::mem::take(&mut self.epochs),
                probe_packets: self.packets,
            },
        };
        Action::Done(Verdict::Bfind(report))
    }

    fn take_events(&mut self) -> Vec<ToolEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{CrossKind, HopSpec, Scenario, SingleHopConfig};
    use abw_traffic::SizeDist;

    #[test]
    fn finds_avail_bw_single_hop() {
        let mut s = Scenario::single_hop(&SingleHopConfig {
            cross: CrossKind::Cbr,
            ..SingleHopConfig::default()
        });
        s.warm_up(SimDuration::from_millis(300));
        let report = Bfind::new(BfindConfig::default()).run(&mut s);
        assert!(
            (report.avail_bps - 25e6).abs() <= 6e6,
            "avail {:.1} Mb/s",
            report.avail_bps / 1e6
        );
        assert_eq!(report.tight_hop, Some(0));
        assert!(!report.epochs.is_empty());
    }

    #[test]
    fn locates_the_tight_hop_on_a_multi_hop_path() {
        // hop 1 of 3 is the only tight link (avail 20 Mb/s; others 45)
        let mk = |cross_rate: f64| HopSpec {
            capacity_bps: 50e6,
            cross_rate_bps: cross_rate,
            cross: CrossKind::Cbr,
            cross_sizes: SizeDist::Constant(1500),
            prop_delay: SimDuration::from_millis(1),
            queue_bytes: None,
            impairment: None,
        };
        let mut s = Scenario::from_hops(vec![mk(5e6), mk(30e6), mk(5e6)], 11);
        s.warm_up(SimDuration::from_millis(300));
        let report = Bfind::new(BfindConfig::default()).run(&mut s);
        assert_eq!(report.tight_hop, Some(1), "wrong hop: {report:?}");
        assert!(
            (report.avail_bps - 20e6).abs() <= 6e6,
            "avail {:.1} Mb/s",
            report.avail_bps / 1e6
        );
    }

    #[test]
    fn idle_path_reports_no_tight_hop() {
        let mut s = Scenario::single_hop(&SingleHopConfig {
            cross_rate_bps: 0.0,
            ..SingleHopConfig::default()
        });
        s.warm_up(SimDuration::from_millis(100));
        let report = Bfind::new(BfindConfig {
            max_rate_bps: 40e6, // stay below capacity: never inflates
            ..BfindConfig::default()
        })
        .run(&mut s);
        assert_eq!(report.tight_hop, None);
        assert_eq!(report.avail_bps, 40e6);
    }
}
