//! Pathload (Jain & Dovrolis): binary-search iterative probing with
//! one-way-delay trend analysis.
//!
//! Pathload differs from the other iterative tools in three ways the
//! paper emphasises:
//!
//! 1. it infers `Ri > A` from the *statistical trend* of the stream's
//!    OWDs (PCT/PDT tests on group medians) rather than from the single
//!    ratio `Ro/Ri` (Fallacy 8);
//! 2. it varies the rate by **binary search** rather than linearly;
//! 3. it reports a **variation range** `(R_L, R_H)` rather than a point
//!    estimate, because the avail-bw process moves while the iteration
//!    runs (Fallacy 9).

use abw_stats::trend::{TrendAnalyzer, TrendVerdict};

use crate::probe::StreamResult;
use crate::stream::StreamSpec;
use crate::tools::{Action, Estimator, Observation, ProbeSpec, RangeEstimate, ToolEvent, Verdict};

/// Pathload configuration.
#[derive(Debug, Clone)]
pub struct PathloadConfig {
    /// Initial lower bound of the search, bits/s.
    pub min_rate_bps: f64,
    /// Initial upper bound of the search, bits/s.
    pub max_rate_bps: f64,
    /// Terminate when `max - min` falls below this resolution (Pathload's
    /// `omega`).
    pub resolution_bps: f64,
    /// Streams per fleet (Pathload sends a fleet at each rate and votes).
    pub streams_per_fleet: u32,
    /// Packets per stream (Pathload's `K`; 100 in the published tool).
    pub packets_per_stream: u32,
    /// Probing packet size, bytes.
    pub packet_size: u32,
    /// Fraction of increasing-trend streams above which the fleet's rate
    /// is declared above the avail-bw.
    pub above_fraction: f64,
    /// Fraction below which the rate is declared below the avail-bw.
    pub below_fraction: f64,
    /// The PCT/PDT analyser.
    pub trend: TrendAnalyzer,
}

impl Default for PathloadConfig {
    fn default() -> Self {
        PathloadConfig {
            min_rate_bps: 1e6,
            max_rate_bps: 49e6,
            resolution_bps: 2e6,
            streams_per_fleet: 12,
            packets_per_stream: 100,
            packet_size: 1500,
            above_fraction: 0.7,
            below_fraction: 0.3,
            trend: TrendAnalyzer::default(),
        }
    }
}

impl PathloadConfig {
    /// A faster configuration for tests and examples: smaller fleets,
    /// coarser resolution.
    pub fn quick() -> Self {
        PathloadConfig {
            streams_per_fleet: 6,
            packets_per_stream: 60,
            resolution_bps: 4e6,
            ..PathloadConfig::default()
        }
    }
}

/// Outcome of one fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetVerdict {
    /// Most streams had increasing OWDs: rate > avail-bw.
    Above,
    /// Few streams had increasing OWDs: rate ≤ avail-bw.
    Below,
    /// Mixed verdicts: the rate sits inside the avail-bw variation range
    /// (Pathload's "grey region").
    Grey,
}

impl FleetVerdict {
    /// Lower-case label, as used in trace events.
    pub fn as_str(self) -> &'static str {
        match self {
            FleetVerdict::Above => "above",
            FleetVerdict::Below => "below",
            FleetVerdict::Grey => "grey",
        }
    }
}

/// Pathload's result: the variation range and the search trace.
#[derive(Debug, Clone)]
pub struct PathloadReport {
    /// The variation range `(R_L, R_H)` in bits/s.
    pub range_bps: (f64, f64),
    /// Every fleet: `(rate, verdict, increasing fraction)`.
    pub fleets: Vec<(f64, FleetVerdict, f64)>,
    /// Probing packets transmitted.
    pub probe_packets: u64,
    /// Simulated seconds the measurement took.
    pub elapsed_secs: f64,
}

impl PathloadReport {
    /// The range as a [`RangeEstimate`].
    pub fn as_range(&self) -> RangeEstimate {
        RangeEstimate::new(
            self.range_bps.0,
            self.range_bps.1,
            self.probe_packets,
            self.elapsed_secs,
        )
    }
}

/// The Pathload estimator.
#[derive(Debug, Clone)]
pub struct Pathload {
    config: PathloadConfig,
}

impl Pathload {
    /// Creates a Pathload instance.
    pub fn new(config: PathloadConfig) -> Self {
        assert!(config.max_rate_bps > config.min_rate_bps);
        assert!(config.resolution_bps > 0.0);
        assert!(config.streams_per_fleet >= 1);
        Pathload { config }
    }

    /// The resumable state machine for one estimation round.
    pub fn estimator(&self) -> PathloadEstimator {
        PathloadEstimator {
            config: self.config.clone(),
            lo_bps: self.config.min_rate_bps,
            hi_bps: self.config.max_rate_bps,
            grey_lo_bps: f64::INFINITY,
            grey_hi_bps: f64::NEG_INFINITY,
            fleets: Vec::new(),
            packets: 0,
            fleet: None,
            events: Vec::new(),
        }
    }
}

/// One fleet of identical-rate streams, as a sub-machine of the binary
/// search: hand out stream specs until the fleet is complete, collect
/// trend votes, then tally the verdict.
#[derive(Debug, Clone)]
struct FleetMachine {
    rate_bps: f64,
    sent: u32,
    observed: u32,
    increasing: u32,
    decided: u32,
    packets: u64,
}

impl FleetMachine {
    fn new(rate_bps: f64) -> Self {
        FleetMachine {
            rate_bps,
            sent: 0,
            observed: 0,
            increasing: 0,
            decided: 0,
            packets: 0,
        }
    }

    /// The next stream to send, or `None` once the whole fleet is out.
    fn next_spec(&mut self, config: &PathloadConfig) -> Option<StreamSpec> {
        if self.sent >= config.streams_per_fleet {
            return None;
        }
        self.sent += 1;
        Some(StreamSpec::Periodic {
            rate_bps: self.rate_bps,
            size: config.packet_size,
            count: config.packets_per_stream,
        })
    }

    fn observe(&mut self, result: &StreamResult, config: &PathloadConfig) {
        self.observed += 1;
        self.packets += result.spec.count() as u64;
        match config.trend.classify(&result.owds()) {
            TrendVerdict::Increasing => {
                self.increasing += 1;
                self.decided += 1;
            }
            TrendVerdict::NoTrend => self.decided += 1,
            TrendVerdict::Ambiguous => {}
        }
    }

    fn tally(&self, config: &PathloadConfig) -> (FleetVerdict, f64, u64) {
        let fraction = if self.decided == 0 {
            0.5
        } else {
            f64::from(self.increasing) / f64::from(self.decided)
        };
        let verdict = if fraction > config.above_fraction {
            FleetVerdict::Above
        } else if fraction < config.below_fraction {
            FleetVerdict::Below
        } else {
            FleetVerdict::Grey
        };
        (verdict, fraction, self.packets)
    }
}

/// Pathload as a decision state machine: a binary search over rates,
/// each probe of the search being a full fleet (run by an internal
/// `FleetMachine`).
#[derive(Debug, Clone)]
pub struct PathloadEstimator {
    config: PathloadConfig,
    lo_bps: f64,
    hi_bps: f64,
    /// Grey-region bounds observed during the search.
    grey_lo_bps: f64,
    grey_hi_bps: f64,
    fleets: Vec<(f64, FleetVerdict, f64)>,
    packets: u64,
    /// The fleet in flight, if any.
    fleet: Option<FleetMachine>,
    events: Vec<ToolEvent>,
}

impl Estimator for PathloadEstimator {
    fn next(&mut self, last: Option<&Observation>) -> Action {
        if let Some(obs) = last {
            // lint: allow(panic_free) -- reply kind matches the request this estimator issued
            let result = obs.stream().expect("Pathload sends streams");
            self.fleet
                .as_mut()
                // lint: allow(panic_free) -- an observation only arrives for a fleet's own Send
                .expect("observation with no fleet in flight")
                .observe(result, &self.config);
        }
        loop {
            match &mut self.fleet {
                Some(fleet) => {
                    if let Some(spec) = fleet.next_spec(&self.config) {
                        return Action::Send(ProbeSpec::stream(spec));
                    }
                    // fleet complete: vote and update the search bracket
                    // lint: allow(panic_free) -- taken inside the Some arm of the match above
                    let fleet = self.fleet.take().expect("fleet present");
                    let rate = fleet.rate_bps;
                    let (verdict, fraction, pkts) = fleet.tally(&self.config);
                    self.packets += pkts;
                    self.fleets.push((rate, verdict, fraction));
                    match verdict {
                        FleetVerdict::Above => self.hi_bps = rate,
                        FleetVerdict::Below => self.lo_bps = rate,
                        FleetVerdict::Grey => {
                            self.grey_lo_bps = self.grey_lo_bps.min(rate);
                            self.grey_hi_bps = self.grey_hi_bps.max(rate);
                            // a grey rate is inside the variation range:
                            // tighten both sides toward it so the search
                            // can terminate
                            let quarter = (self.hi_bps - self.lo_bps) / 4.0;
                            self.lo_bps = (rate - quarter).max(self.lo_bps);
                            self.hi_bps = (rate + quarter).min(self.hi_bps);
                        }
                    }
                    self.events.push(ToolEvent::new(
                        "pathload.fleet",
                        vec![
                            ("iter", (self.fleets.len() - 1).into()),
                            ("rate_bps", rate.into()),
                            ("verdict", verdict.as_str().into()),
                            ("inc_fraction", fraction.into()),
                            ("lo_bps", self.lo_bps.into()),
                            ("hi_bps", self.hi_bps.into()),
                        ],
                    ));
                }
                None => {
                    if self.hi_bps - self.lo_bps > self.config.resolution_bps {
                        self.fleet = Some(FleetMachine::new((self.lo_bps + self.hi_bps) / 2.0));
                        continue;
                    }
                    // widen the final bracket by any grey rates seen
                    // outside it
                    let range_lo = self.lo_bps.min(self.grey_lo_bps);
                    let range_hi = self.hi_bps.max(self.grey_hi_bps);
                    self.events.push(ToolEvent::new(
                        "pathload.result",
                        vec![
                            ("lo_bps", range_lo.into()),
                            ("hi_bps", range_hi.into()),
                            ("fleets", self.fleets.len().into()),
                            ("packets", self.packets.into()),
                        ],
                    ));
                    return Action::Done(Verdict::Pathload(PathloadReport {
                        range_bps: (range_lo, range_hi),
                        fleets: std::mem::take(&mut self.fleets),
                        probe_packets: self.packets,
                        elapsed_secs: 0.0,
                    }));
                }
            }
        }
    }

    fn take_events(&mut self) -> Vec<ToolEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{CrossKind, Scenario, SingleHopConfig};
    use abw_netsim::SimDuration;

    fn scenario(cross: CrossKind) -> Scenario {
        let mut s = Scenario::single_hop(&SingleHopConfig {
            cross,
            ..SingleHopConfig::default()
        });
        s.warm_up(SimDuration::from_millis(500));
        s
    }

    #[test]
    fn brackets_avail_bw_on_cbr() {
        let mut s = scenario(CrossKind::Cbr);
        let report = Pathload::new(PathloadConfig::quick()).run(&mut s);
        let (lo, hi) = report.range_bps;
        assert!(lo <= 25e6 + 3e6, "low bound {:.1} Mb/s", lo / 1e6);
        assert!(hi >= 25e6 - 3e6, "high bound {:.1} Mb/s", hi / 1e6);
        assert!(
            hi - lo <= 10e6,
            "range too wide: {:.1} Mb/s",
            (hi - lo) / 1e6
        );
    }

    #[test]
    fn brackets_avail_bw_on_poisson() {
        let mut s = scenario(CrossKind::Poisson);
        let report = Pathload::new(PathloadConfig::quick()).run(&mut s);
        let (lo, hi) = report.range_bps;
        let mid = (lo + hi) / 2.0;
        assert!(
            (mid - 25e6).abs() / 25e6 < 0.3,
            "midpoint {:.1} Mb/s",
            mid / 1e6
        );
    }

    /// Runs one fleet at `rate_bps` by driving the internal
    /// [`FleetMachine`] directly against the scenario's runner.
    fn run_one_fleet(
        s: &mut Scenario,
        runner: &mut crate::probe::ProbeRunner,
        config: &PathloadConfig,
        rate_bps: f64,
    ) -> (FleetVerdict, f64, u64) {
        let mut fleet = FleetMachine::new(rate_bps);
        while let Some(spec) = fleet.next_spec(config) {
            let result = runner.run_stream(&mut s.sim, &spec);
            fleet.observe(&result, config);
        }
        fleet.tally(config)
    }

    #[test]
    fn fleet_verdicts_flip_across_the_avail_bw() {
        let mut s = scenario(CrossKind::Cbr);
        let config = PathloadConfig::quick();
        let mut runner = s.runner();
        let (below, frac_b, _) = run_one_fleet(&mut s, &mut runner, &config, 15e6);
        let (above, frac_a, _) = run_one_fleet(&mut s, &mut runner, &config, 40e6);
        assert_eq!(below, FleetVerdict::Below, "15 Mb/s fraction {frac_b}");
        assert_eq!(above, FleetVerdict::Above, "40 Mb/s fraction {frac_a}");
    }

    #[test]
    fn report_converts_to_range_estimate() {
        let mut s = scenario(CrossKind::Cbr);
        let report = Pathload::new(PathloadConfig::quick()).run(&mut s);
        let range = report.as_range();
        assert!(range.range_bps.0 <= range.midpoint_bps);
        assert!(range.midpoint_bps <= range.range_bps.1);
        assert_eq!(range.probe_packets, report.probe_packets);
    }
}
