//! Pathload (Jain & Dovrolis): binary-search iterative probing with
//! one-way-delay trend analysis.
//!
//! Pathload differs from the other iterative tools in three ways the
//! paper emphasises:
//!
//! 1. it infers `Ri > A` from the *statistical trend* of the stream's
//!    OWDs (PCT/PDT tests on group medians) rather than from the single
//!    ratio `Ro/Ri` (Fallacy 8);
//! 2. it varies the rate by **binary search** rather than linearly;
//! 3. it reports a **variation range** `(R_L, R_H)` rather than a point
//!    estimate, because the avail-bw process moves while the iteration
//!    runs (Fallacy 9).

use abw_netsim::Simulator;
use abw_stats::trend::{TrendAnalyzer, TrendVerdict};

use crate::probe::ProbeRunner;
use crate::stream::StreamSpec;
use crate::tools::RangeEstimate;

/// Pathload configuration.
#[derive(Debug, Clone)]
pub struct PathloadConfig {
    /// Initial lower bound of the search, bits/s.
    pub min_rate_bps: f64,
    /// Initial upper bound of the search, bits/s.
    pub max_rate_bps: f64,
    /// Terminate when `max - min` falls below this resolution (Pathload's
    /// `omega`).
    pub resolution_bps: f64,
    /// Streams per fleet (Pathload sends a fleet at each rate and votes).
    pub streams_per_fleet: u32,
    /// Packets per stream (Pathload's `K`; 100 in the published tool).
    pub packets_per_stream: u32,
    /// Probing packet size, bytes.
    pub packet_size: u32,
    /// Fraction of increasing-trend streams above which the fleet's rate
    /// is declared above the avail-bw.
    pub above_fraction: f64,
    /// Fraction below which the rate is declared below the avail-bw.
    pub below_fraction: f64,
    /// The PCT/PDT analyser.
    pub trend: TrendAnalyzer,
}

impl Default for PathloadConfig {
    fn default() -> Self {
        PathloadConfig {
            min_rate_bps: 1e6,
            max_rate_bps: 49e6,
            resolution_bps: 2e6,
            streams_per_fleet: 12,
            packets_per_stream: 100,
            packet_size: 1500,
            above_fraction: 0.7,
            below_fraction: 0.3,
            trend: TrendAnalyzer::default(),
        }
    }
}

impl PathloadConfig {
    /// A faster configuration for tests and examples: smaller fleets,
    /// coarser resolution.
    pub fn quick() -> Self {
        PathloadConfig {
            streams_per_fleet: 6,
            packets_per_stream: 60,
            resolution_bps: 4e6,
            ..PathloadConfig::default()
        }
    }
}

/// Outcome of one fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetVerdict {
    /// Most streams had increasing OWDs: rate > avail-bw.
    Above,
    /// Few streams had increasing OWDs: rate ≤ avail-bw.
    Below,
    /// Mixed verdicts: the rate sits inside the avail-bw variation range
    /// (Pathload's "grey region").
    Grey,
}

impl FleetVerdict {
    /// Lower-case label, as used in trace events.
    pub fn as_str(self) -> &'static str {
        match self {
            FleetVerdict::Above => "above",
            FleetVerdict::Below => "below",
            FleetVerdict::Grey => "grey",
        }
    }
}

/// Pathload's result: the variation range and the search trace.
#[derive(Debug, Clone)]
pub struct PathloadReport {
    /// The variation range `(R_L, R_H)` in bits/s.
    pub range_bps: (f64, f64),
    /// Every fleet: `(rate, verdict, increasing fraction)`.
    pub fleets: Vec<(f64, FleetVerdict, f64)>,
    /// Probing packets transmitted.
    pub probe_packets: u64,
    /// Simulated seconds the measurement took.
    pub elapsed_secs: f64,
}

impl PathloadReport {
    /// The range as a [`RangeEstimate`].
    pub fn as_range(&self) -> RangeEstimate {
        RangeEstimate::new(
            self.range_bps.0,
            self.range_bps.1,
            self.probe_packets,
            self.elapsed_secs,
        )
    }
}

/// The Pathload estimator.
#[derive(Debug, Clone)]
pub struct Pathload {
    config: PathloadConfig,
}

impl Pathload {
    /// Creates a Pathload instance.
    pub fn new(config: PathloadConfig) -> Self {
        assert!(config.max_rate_bps > config.min_rate_bps);
        assert!(config.resolution_bps > 0.0);
        assert!(config.streams_per_fleet >= 1);
        Pathload { config }
    }

    /// Sends one fleet at `rate` and votes on the OWD trends.
    pub fn run_fleet(
        &self,
        sim: &mut Simulator,
        runner: &mut ProbeRunner,
        rate_bps: f64,
    ) -> (FleetVerdict, f64, u64) {
        let spec = StreamSpec::Periodic {
            rate_bps,
            size: self.config.packet_size,
            count: self.config.packets_per_stream,
        };
        let mut increasing = 0u32;
        let mut decided = 0u32;
        let mut packets = 0u64;
        for _ in 0..self.config.streams_per_fleet {
            let result = runner.run_stream(sim, &spec);
            packets += spec.count() as u64;
            match self.config.trend.classify(&result.owds()) {
                TrendVerdict::Increasing => {
                    increasing += 1;
                    decided += 1;
                }
                TrendVerdict::NoTrend => decided += 1,
                TrendVerdict::Ambiguous => {}
            }
        }
        let fraction = if decided == 0 {
            0.5
        } else {
            increasing as f64 / decided as f64
        };
        let verdict = if fraction > self.config.above_fraction {
            FleetVerdict::Above
        } else if fraction < self.config.below_fraction {
            FleetVerdict::Below
        } else {
            FleetVerdict::Grey
        };
        (verdict, fraction, packets)
    }

    /// Runs the full binary search and returns the variation range.
    pub fn run(&self, scenario: &mut crate::scenario::Scenario) -> PathloadReport {
        let mut runner = scenario.runner();
        self.run_with(&mut scenario.sim, &mut runner)
    }

    /// Runs against an explicit simulator/runner pair.
    pub fn run_with(&self, sim: &mut Simulator, runner: &mut ProbeRunner) -> PathloadReport {
        let start = sim.now();
        let mut lo = self.config.min_rate_bps;
        let mut hi = self.config.max_rate_bps;
        // grey-region bounds observed during the search
        let mut grey_lo = f64::INFINITY;
        let mut grey_hi = f64::NEG_INFINITY;
        let mut fleets = Vec::new();
        let mut packets = 0u64;

        while hi - lo > self.config.resolution_bps {
            let rate = (lo + hi) / 2.0;
            let (verdict, fraction, pkts) = self.run_fleet(sim, runner, rate);
            packets += pkts;
            fleets.push((rate, verdict, fraction));
            match verdict {
                FleetVerdict::Above => hi = rate,
                FleetVerdict::Below => lo = rate,
                FleetVerdict::Grey => {
                    grey_lo = grey_lo.min(rate);
                    grey_hi = grey_hi.max(rate);
                    // a grey rate is inside the variation range: tighten
                    // both sides toward it so the search can terminate
                    let quarter = (hi - lo) / 4.0;
                    lo = (rate - quarter).max(lo);
                    hi = (rate + quarter).min(hi);
                }
            }
            sim.emit(
                "pathload.fleet",
                &[
                    ("iter", (fleets.len() - 1).into()),
                    ("rate_bps", rate.into()),
                    ("verdict", verdict.as_str().into()),
                    ("inc_fraction", fraction.into()),
                    ("lo_bps", lo.into()),
                    ("hi_bps", hi.into()),
                ],
            );
        }

        // widen the final bracket by any grey rates seen outside it
        let range_lo = lo.min(grey_lo);
        let range_hi = hi.max(grey_hi);
        sim.emit(
            "pathload.result",
            &[
                ("lo_bps", range_lo.into()),
                ("hi_bps", range_hi.into()),
                ("fleets", fleets.len().into()),
                ("packets", packets.into()),
            ],
        );
        PathloadReport {
            range_bps: (range_lo, range_hi),
            fleets,
            probe_packets: packets,
            elapsed_secs: sim.now().since(start).as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{CrossKind, Scenario, SingleHopConfig};
    use abw_netsim::SimDuration;

    fn scenario(cross: CrossKind) -> Scenario {
        let mut s = Scenario::single_hop(&SingleHopConfig {
            cross,
            ..SingleHopConfig::default()
        });
        s.warm_up(SimDuration::from_millis(500));
        s
    }

    #[test]
    fn brackets_avail_bw_on_cbr() {
        let mut s = scenario(CrossKind::Cbr);
        let report = Pathload::new(PathloadConfig::quick()).run(&mut s);
        let (lo, hi) = report.range_bps;
        assert!(lo <= 25e6 + 3e6, "low bound {:.1} Mb/s", lo / 1e6);
        assert!(hi >= 25e6 - 3e6, "high bound {:.1} Mb/s", hi / 1e6);
        assert!(
            hi - lo <= 10e6,
            "range too wide: {:.1} Mb/s",
            (hi - lo) / 1e6
        );
    }

    #[test]
    fn brackets_avail_bw_on_poisson() {
        let mut s = scenario(CrossKind::Poisson);
        let report = Pathload::new(PathloadConfig::quick()).run(&mut s);
        let (lo, hi) = report.range_bps;
        let mid = (lo + hi) / 2.0;
        assert!(
            (mid - 25e6).abs() / 25e6 < 0.3,
            "midpoint {:.1} Mb/s",
            mid / 1e6
        );
    }

    #[test]
    fn fleet_verdicts_flip_across_the_avail_bw() {
        let mut s = scenario(CrossKind::Cbr);
        let pl = Pathload::new(PathloadConfig::quick());
        let mut runner = s.runner();
        let (below, frac_b, _) = pl.run_fleet(&mut s.sim, &mut runner, 15e6);
        let (above, frac_a, _) = pl.run_fleet(&mut s.sim, &mut runner, 40e6);
        assert_eq!(below, FleetVerdict::Below, "15 Mb/s fraction {frac_b}");
        assert_eq!(above, FleetVerdict::Above, "40 Mb/s fraction {frac_a}");
    }

    #[test]
    fn report_converts_to_range_estimate() {
        let mut s = scenario(CrossKind::Cbr);
        let report = Pathload::new(PathloadConfig::quick()).run(&mut s);
        let range = report.as_range();
        assert!(range.range_bps.0 <= range.midpoint_bps);
        assert!(range.midpoint_bps <= range.range_bps.1);
        assert_eq!(range.probe_packets, report.probe_packets);
    }
}
