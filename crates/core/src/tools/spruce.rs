//! Spruce: direct probing with Poisson-spaced packet pairs.
//!
//! Spruce sends pairs whose intra-pair gap equals the tight link's
//! transmission time of one probing packet (`gap_in = L/Ct`, i.e. the
//! pair probes at rate `Ct`), spaced with exponential inter-pair gaps to
//! emulate Poisson sampling. Each pair yields the sample
//! `A = Ct * (1 - (gap_out - gap_in) / gap_in)`; the estimate is the mean
//! of (by default) 100 pairs.
//!
//! Because each sample's averaging window is only one pair wide, Spruce's
//! per-sample quantisation noise is exactly what Fallacy 4 ("packet pairs
//! are as good as packet trains") is about — Table 1 is generated with
//! this sampling structure.

use abw_netsim::SimDuration;
use abw_stats::running::Running;
use abw_stats::sampling::exp_variate;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::probe::StreamResult;
use crate::stream::StreamSpec;
use crate::tools::{Action, Estimate, Estimator, Observation, ProbeSpec, ToolEvent, Verdict};

/// Spruce configuration.
#[derive(Debug, Clone)]
pub struct SpruceConfig {
    /// Tight-link capacity `Ct` (assumed known).
    pub tight_capacity_bps: f64,
    /// Probing packet size in bytes (Spruce uses 1500 B).
    pub packet_size: u32,
    /// Number of pairs averaged per estimate (Spruce uses 100).
    pub pairs: u32,
    /// Mean inter-pair gap; pairs are spaced `Exp(mean)` apart so the
    /// samples Poisson-sample the avail-bw process.
    pub mean_pair_gap: SimDuration,
    /// RNG seed for the exponential spacing.
    pub seed: u64,
}

impl SpruceConfig {
    /// The published defaults against a known `Ct`: 100 pairs of 1500 B,
    /// ~20 ms mean spacing (keeps the probing rate a small fraction of
    /// the path capacity).
    pub fn new(tight_capacity_bps: f64) -> Self {
        SpruceConfig {
            tight_capacity_bps,
            packet_size: 1500,
            pairs: 100,
            mean_pair_gap: SimDuration::from_millis(20),
            seed: 0x5B2C,
        }
    }
}

/// The Spruce estimator.
#[derive(Debug, Clone)]
pub struct Spruce {
    config: SpruceConfig,
}

impl Spruce {
    /// Creates a Spruce instance.
    pub fn new(config: SpruceConfig) -> Self {
        assert!(config.pairs >= 1, "need at least one pair");
        Spruce { config }
    }

    /// The avail-bw sample of one received pair; `None` when either
    /// packet was lost.
    pub fn sample(&self, result: &StreamResult) -> Option<f64> {
        let gaps = result.pair_gaps();
        let &(gap_in, gap_out) = gaps.first()?;
        Some(self.config.tight_capacity_bps * (1.0 - (gap_out - gap_in) / gap_in))
    }

    /// The resumable state machine for one estimation round.
    pub fn estimator(&self) -> SpruceEstimator {
        SpruceEstimator {
            tool: self.clone(),
            rng: StdRng::seed_from_u64(self.config.seed),
            spec: StreamSpec::Pair {
                rate_bps: self.config.tight_capacity_bps,
                size: self.config.packet_size,
            },
            sent: 0,
            samples: Running::new(),
            packets: 0,
            events: Vec::new(),
        }
    }
}

/// Spruce as a decision state machine: each pair is requested with its
/// own exponentially drawn pre-gap (Poisson sampling of the avail-bw
/// process); negative samples are clamped to zero as in the published
/// tool.
#[derive(Debug, Clone)]
pub struct SpruceEstimator {
    tool: Spruce,
    rng: StdRng,
    spec: StreamSpec,
    sent: u32,
    samples: Running,
    packets: u64,
    events: Vec<ToolEvent>,
}

impl Estimator for SpruceEstimator {
    fn next(&mut self, last: Option<&Observation>) -> Action {
        if let Some(obs) = last {
            // lint: allow(panic_free) -- reply kind matches the request this estimator issued
            let result = obs.stream().expect("Spruce sends pairs");
            self.packets += 2;
            if let Some(a) = self.tool.sample(result) {
                self.samples.push(a.max(0.0));
                self.events.push(ToolEvent::new(
                    "spruce.pair",
                    vec![
                        ("iter", (self.samples.count() - 1).into()),
                        ("sample_bps", a.into()),
                        ("running_mean_bps", self.samples.mean().into()),
                    ],
                ));
            }
        }
        if self.sent < self.tool.config.pairs {
            self.sent += 1;
            let gap = SimDuration::from_secs_f64(exp_variate(
                &mut self.rng,
                self.tool.config.mean_pair_gap.as_secs_f64(),
            ));
            Action::Send(ProbeSpec::Stream {
                spec: self.spec.clone(),
                pre_gap: Some(gap),
            })
        } else {
            Action::Done(Verdict::Point(Estimate {
                avail_bps: self.samples.mean(),
                samples: self.samples.summary(),
                probe_packets: self.packets,
                elapsed_secs: 0.0,
            }))
        }
    }

    fn take_events(&mut self) -> Vec<ToolEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{CrossKind, Scenario, SingleHopConfig};
    use abw_traffic::SizeDist;

    fn run_spruce(cross: CrossKind, sizes: SizeDist, pairs: u32) -> Estimate {
        let mut s = Scenario::single_hop(&SingleHopConfig {
            cross,
            cross_sizes: sizes,
            ..SingleHopConfig::default()
        });
        s.warm_up(SimDuration::from_millis(500));
        let mut runner = s.runner();
        let spruce = Spruce::new(SpruceConfig {
            pairs,
            ..SpruceConfig::new(50e6)
        });
        spruce.run(&mut s.sim, &mut runner)
    }

    #[test]
    fn accurate_with_small_cross_packets() {
        // 40 B cross packets ≈ fluid: pairs are accurate (Table 1, row 1)
        let est = run_spruce(CrossKind::Poisson, SizeDist::Constant(40), 100);
        assert!(
            (est.avail_bps - 25e6).abs() / 25e6 < 0.05,
            "estimate {:.2} Mb/s",
            est.avail_bps / 1e6
        );
    }

    #[test]
    fn noisy_with_large_cross_packets() {
        // 1500 B cross packets: per-sample quantisation noise is large
        let est = run_spruce(CrossKind::Poisson, SizeDist::Constant(1500), 100);
        // With Lc = L = 1500 B the per-pair samples quantise to
        // {Ct, 0, negative→0}: clamping biases the mean upward — the
        // packet-pair granularity problem of Fallacy 4 in its starkest
        // form. The estimate is only ballpark-correct.
        assert!(
            (est.avail_bps - 25e6).abs() / 25e6 < 0.5,
            "estimate {:.2} Mb/s",
            est.avail_bps / 1e6
        );
        // ...but per-sample spread is on the order of the capacity
        assert!(
            est.samples.stddev > 5e6,
            "stddev {:.2} Mb/s",
            est.samples.stddev / 1e6
        );
    }

    #[test]
    fn exact_on_idle_link() {
        let mut s = Scenario::single_hop(&SingleHopConfig {
            cross_rate_bps: 0.0,
            ..SingleHopConfig::default()
        });
        s.warm_up(SimDuration::from_millis(100));
        let mut runner = s.runner();
        let spruce = Spruce::new(SpruceConfig {
            pairs: 10,
            ..SpruceConfig::new(50e6)
        });
        let est = spruce.run(&mut s.sim, &mut runner);
        // idle link: gap unchanged → A = Ct
        assert!(
            (est.avail_bps - 50e6).abs() / 50e6 < 0.01,
            "estimate {:.2} Mb/s",
            est.avail_bps / 1e6
        );
    }
}
