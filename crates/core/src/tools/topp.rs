//! TOPP: Trains Of Packet Pairs (Melander et al.).
//!
//! The canonical *iterative* prober: the offered rate increases linearly
//! across probing rounds, and the turning point where the ratio `Ri/Ro`
//! starts growing above 1 marks the avail-bw. Above the turning point
//! the fluid model gives `Ri/Ro = Ri/Ct + (Ct - A)/Ct`, so an OLS fit
//! over the supra-turning segment also recovers the tight-link capacity
//! — TOPP is the one classical tool that estimates both `A` and `Ct`.
//!
//! Each round sends short *trains* at rate `Ri` (the published TOPP
//! sends trains of packet pairs for the same reason): an isolated pair's
//! own first packet inflates the second packet's queueing, so
//! single-pair dispersion reads `Ro < Ri` well below the avail-bw;
//! averaging the `n-1` gaps of a train dilutes that self-induced bias by
//! `1/(n-1)`.

use abw_netsim::SimDuration;
use abw_stats::regression::linear_fit;
use abw_stats::running::Running;

use crate::stream::StreamSpec;
use crate::tools::{Action, Estimator, Observation, ProbeSpec, ToolEvent, Verdict};

/// TOPP configuration.
#[derive(Debug, Clone)]
pub struct ToppConfig {
    /// Lowest offered rate, bits/s.
    pub min_rate_bps: f64,
    /// Highest offered rate, bits/s.
    pub max_rate_bps: f64,
    /// Linear rate increment between successive probing rounds.
    pub step_bps: f64,
    /// Trains sent per rate (their dispersions are averaged).
    pub streams_per_rate: u32,
    /// Packets per train (≥ 2; 2 degenerates to raw pairs).
    pub packets_per_stream: u32,
    /// Probing packet size, bytes.
    pub packet_size: u32,
    /// `Ri/Ro` above `1 + tolerance` counts as expansion.
    pub tolerance: f64,
    /// Inter-stream gap for the sweep's trains; `None` keeps the
    /// session runner's configured gap.
    pub stream_gap: Option<SimDuration>,
}

impl Default for ToppConfig {
    fn default() -> Self {
        ToppConfig {
            min_rate_bps: 5e6,
            max_rate_bps: 48e6,
            step_bps: 1e6,
            streams_per_rate: 6,
            packets_per_stream: 17,
            packet_size: 1500,
            tolerance: 0.05,
            stream_gap: None,
        }
    }
}

/// One probing round of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct ToppPoint {
    /// Offered rate `Ri`, bits/s.
    pub ri_bps: f64,
    /// Mean measured output rate `Ro`, bits/s.
    pub ro_bps: f64,
    /// `Ri / Ro`.
    pub ratio: f64,
}

/// TOPP's result: the avail-bw, the tight-link capacity recovered from
/// the regression, and the raw sweep.
#[derive(Debug, Clone)]
pub struct ToppReport {
    /// Estimated avail-bw, bits/s.
    pub avail_bps: f64,
    /// Estimated tight-link capacity from the supra-turning regression,
    /// bits/s (`None` when too few points lie above the turning point).
    pub tight_capacity_bps: Option<f64>,
    /// First offered rate that showed sustained expansion.
    pub turning_rate_bps: f64,
    /// The full sweep, for plotting.
    pub points: Vec<ToppPoint>,
    /// Probing packets transmitted.
    pub probe_packets: u64,
}

/// The TOPP estimator.
#[derive(Debug, Clone)]
pub struct Topp {
    config: ToppConfig,
}

impl Topp {
    /// Creates a TOPP instance.
    pub fn new(config: ToppConfig) -> Self {
        assert!(config.min_rate_bps > 0.0);
        assert!(config.max_rate_bps > config.min_rate_bps);
        assert!(config.step_bps > 0.0);
        Topp { config }
    }

    /// The resumable state machine for one estimation round.
    pub fn estimator(&self) -> ToppEstimator {
        ToppEstimator {
            tool: self.clone(),
            rate_bps: self.config.min_rate_bps,
            in_round: 0,
            gout: Running::new(),
            points: Vec::new(),
            packets: 0,
            events: Vec::new(),
        }
    }

    /// Turning-point analysis over a completed sweep.
    pub fn analyse(&self, points: Vec<ToppPoint>, probe_packets: u64) -> ToppReport {
        // turning point: first rate from which the ratio stays above
        // 1 + tolerance for the rest of the sweep
        let threshold = 1.0 + self.config.tolerance;
        let mut turning_idx = points.len();
        for start in 0..points.len() {
            if points.iter().skip(start).all(|p| p.ratio > threshold) {
                turning_idx = start;
                break;
            }
        }
        let turning_rate = points
            .get(turning_idx)
            .map_or(self.config.max_rate_bps, |p| p.ri_bps);
        // base estimate: the last non-expanding rate
        let base_avail = match turning_idx.checked_sub(1).and_then(|i| points.get(i)) {
            Some(p) => p.ri_bps,
            None => self.config.min_rate_bps,
        };

        // refinement: fluid model above the turning point is linear in Ri.
        // Pair-probing noise can produce a statistically meaningless fit,
        // so the regression is only accepted when it (a) explains the
        // points (r² ≥ 0.6) and (b) lands near the turning point it is
        // supposed to refine — otherwise the turning point stands.
        let supra: Vec<&ToppPoint> = points.iter().skip(turning_idx).collect();
        let (avail, ct) = if supra.len() >= 3 {
            let xs: Vec<f64> = supra.iter().map(|p| p.ri_bps).collect();
            let ys: Vec<f64> = supra.iter().map(|p| p.ratio).collect();
            match linear_fit(&xs, &ys) {
                Some(fit) if fit.slope > 0.0 && fit.r2 >= 0.6 => {
                    let ct = 1.0 / fit.slope;
                    let a = ct * (1.0 - fit.intercept);
                    let sane =
                        a > 0.0 && a < ct && a >= base_avail * 0.5 && a <= turning_rate * 1.5;
                    if sane {
                        (a, Some(ct))
                    } else {
                        (base_avail, None)
                    }
                }
                _ => (base_avail, None),
            }
        } else {
            (base_avail, None)
        };

        ToppReport {
            avail_bps: avail,
            tight_capacity_bps: ct,
            turning_rate_bps: turning_rate,
            points,
            probe_packets,
        }
    }
}

/// TOPP as a decision state machine: sweep the offered rate linearly,
/// averaging the output dispersion over `streams_per_rate` trains per
/// rate, then run the turning-point analysis.
#[derive(Debug, Clone)]
pub struct ToppEstimator {
    tool: Topp,
    /// Offered rate of the current round.
    rate_bps: f64,
    /// Trains observed so far at the current rate.
    in_round: u32,
    /// Output-gap accumulator of the current round. Averaging the
    /// *dispersion* gaps, then converting to a rate `Ro = L / mean(g_out)`,
    /// avoids the upward Jensen bias of averaging per-gap rates `L/g_out`,
    /// which at low probing rates (long gaps, many interleaved cross
    /// packets) fabricates expansion.
    gout: Running,
    points: Vec<ToppPoint>,
    packets: u64,
    events: Vec<ToolEvent>,
}

impl Estimator for ToppEstimator {
    fn next(&mut self, last: Option<&Observation>) -> Action {
        let config = &self.tool.config;
        if let Some(obs) = last {
            // lint: allow(panic_free) -- reply kind matches the request this estimator issued
            let result = obs.stream().expect("TOPP sends trains");
            self.packets += result.spec.count() as u64;
            for &(_, g_out) in &result.pair_gaps() {
                if g_out > 0.0 {
                    self.gout.push(g_out);
                }
            }
            self.in_round += 1;
            if self.in_round == config.streams_per_rate {
                if self.gout.count() > 0 {
                    let ro_mean = config.packet_size as f64 * 8.0 / self.gout.mean();
                    self.events.push(ToolEvent::new(
                        "topp.round",
                        vec![
                            ("iter", self.points.len().into()),
                            ("ri_bps", self.rate_bps.into()),
                            ("ro_bps", ro_mean.into()),
                            ("ratio", (self.rate_bps / ro_mean).into()),
                        ],
                    ));
                    self.points.push(ToppPoint {
                        ri_bps: self.rate_bps,
                        ro_bps: ro_mean,
                        ratio: self.rate_bps / ro_mean,
                    });
                }
                self.gout = Running::new();
                self.in_round = 0;
                self.rate_bps += config.step_bps;
            }
        }
        if self.rate_bps <= config.max_rate_bps + 1e-9 {
            Action::Send(ProbeSpec::Stream {
                spec: StreamSpec::Periodic {
                    rate_bps: self.rate_bps,
                    size: config.packet_size,
                    count: config.packets_per_stream,
                },
                pre_gap: config.stream_gap,
            })
        } else {
            let report = self
                .tool
                .analyse(std::mem::take(&mut self.points), self.packets);
            self.events.push(ToolEvent::new(
                "topp.result",
                vec![
                    ("avail_bps", report.avail_bps.into()),
                    (
                        "tight_capacity_bps",
                        report.tight_capacity_bps.unwrap_or(f64::NAN).into(),
                    ),
                    ("turning_rate_bps", report.turning_rate_bps.into()),
                    ("rounds", report.points.len().into()),
                ],
            ));
            Action::Done(Verdict::Topp(report))
        }
    }

    fn take_events(&mut self) -> Vec<ToolEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fluid::output_rate;
    use crate::scenario::{CrossKind, Scenario, SingleHopConfig};

    /// Analysis on synthetic fluid-model points must recover A and Ct.
    #[test]
    fn analyse_recovers_fluid_parameters() {
        let topp = Topp::new(ToppConfig::default());
        let points: Vec<ToppPoint> = (5..=48)
            .map(|mbps| {
                let ri = mbps as f64 * 1e6;
                let ro = output_rate(50e6, ri, 25e6);
                ToppPoint {
                    ri_bps: ri,
                    ro_bps: ro,
                    ratio: ri / ro,
                }
            })
            .collect();
        let report = topp.analyse(points, 0);
        assert!(
            (report.avail_bps - 25e6).abs() / 25e6 < 0.02,
            "A = {:.2} Mb/s",
            report.avail_bps / 1e6
        );
        let ct = report.tight_capacity_bps.expect("regression possible");
        assert!((ct - 50e6).abs() / 50e6 < 0.02, "Ct = {:.2} Mb/s", ct / 1e6);
    }

    #[test]
    fn end_to_end_on_cbr() {
        let mut s = Scenario::single_hop(&SingleHopConfig {
            cross: CrossKind::Cbr,
            ..SingleHopConfig::default()
        });
        s.warm_up(SimDuration::from_millis(300));
        let mut runner = s.runner();
        runner.stream_gap = SimDuration::from_millis(5);
        let topp = Topp::new(ToppConfig {
            step_bps: 2e6,
            ..ToppConfig::default()
        });
        let report = topp.run(&mut s.sim, &mut runner);
        assert!(
            (report.avail_bps - 25e6).abs() / 25e6 < 0.25,
            "A = {:.2} Mb/s",
            report.avail_bps / 1e6
        );
        assert!(!report.points.is_empty());
        assert!(report.probe_packets > 0);
    }

    #[test]
    fn turning_rate_bounds_avail() {
        let mut s = Scenario::single_hop(&SingleHopConfig {
            cross: CrossKind::Cbr,
            ..SingleHopConfig::default()
        });
        s.warm_up(SimDuration::from_millis(300));
        let mut runner = s.runner();
        runner.stream_gap = SimDuration::from_millis(5);
        let topp = Topp::new(ToppConfig {
            step_bps: 3e6,
            streams_per_rate: 3,
            ..ToppConfig::default()
        });
        let report = topp.run(&mut s.sim, &mut runner);
        assert!(report.turning_rate_bps >= report.avail_bps * 0.5);
    }
}
