//! The tool registry: every estimation technique constructible by its
//! kebab-case name.
//!
//! Consumers (the shootout, the tracking experiment, bench binaries, the
//! golden equivalence pin) instantiate tools through [`find`]/[`all`]
//! instead of hard-coding each tool's config type, so adding a tool is
//! one entry here plus its module. The *quick* settings are the
//! scaled-down configurations the test suite and golden files use; the
//! full settings are the shootout defaults.

use abw_netsim::SimDuration;
use abw_obs::prof::{self, Cost};

use crate::tools::bfind::{Bfind, BfindConfig};
use crate::tools::capacity::{CapacityConfig, CapacityProber};
use crate::tools::delphi::{Delphi, DelphiConfig};
use crate::tools::direct::{DirectConfig, DirectProber};
use crate::tools::igi::{Igi, IgiConfig};
use crate::tools::pathchirp::{Pathchirp, PathchirpConfig};
use crate::tools::pathload::{Pathload, PathloadConfig};
use crate::tools::schirp::{Schirp, SchirpConfig};
use crate::tools::spruce::{Spruce, SpruceConfig};
use crate::tools::topp::{Topp, ToppConfig};
use crate::tools::Estimator;

/// Knobs shared by every registry constructor.
#[derive(Debug, Clone)]
pub struct ToolConfig {
    /// Tight-link capacity `Ct` handed to the tools that assume it is
    /// known (direct probing, Delphi, Spruce, IGI/PTR).
    pub tight_capacity_bps: f64,
    /// Scaled-down settings for tests and golden pins.
    pub quick: bool,
}

impl Default for ToolConfig {
    fn default() -> Self {
        ToolConfig {
            tight_capacity_bps: 50e6,
            quick: false,
        }
    }
}

impl ToolConfig {
    /// Quick settings against the canonical 50 Mb/s tight link.
    pub fn quick() -> Self {
        ToolConfig {
            quick: true,
            ..ToolConfig::default()
        }
    }
}

/// One registered tool.
pub struct ToolEntry {
    /// Kebab-case registry name (unique).
    pub name: &'static str,
    /// The module under `tools/` implementing it.
    pub module: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// Where the paper discusses the technique.
    pub paper_section: &'static str,
    constructor: fn(&ToolConfig) -> Box<dyn Estimator>,
}

impl ToolEntry {
    /// Builds a fresh single-shot estimator for one measurement round.
    ///
    /// The estimator comes wrapped in a transparent profiling shim:
    /// every `next()` call is tallied as a [`Cost::ToolSteps`] unit and
    /// timed under a span named after the registry entry — so a span
    /// report attributes decision time to `pathload`, `spruce`, … with
    /// no per-tool instrumentation. The shim forwards verbatim and
    /// never perturbs tool behavior.
    pub fn build(&self, config: &ToolConfig) -> Box<dyn Estimator> {
        Box::new(Instrumented {
            name: self.name,
            inner: (self.constructor)(config),
        })
    }
}

/// Transparent per-tool profiling wrapper (see [`ToolEntry::build`]).
struct Instrumented {
    name: &'static str,
    inner: Box<dyn Estimator>,
}

impl Estimator for Instrumented {
    fn next(&mut self, last: Option<&crate::tools::Observation>) -> crate::tools::Action {
        prof::count(Cost::ToolSteps);
        let _span = prof::span(self.name);
        self.inner.next(last)
    }

    fn take_events(&mut self) -> Vec<crate::tools::ToolEvent> {
        self.inner.take_events()
    }
}

impl std::fmt::Debug for ToolEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ToolEntry")
            .field("name", &self.name)
            .field("module", &self.module)
            .finish_non_exhaustive()
    }
}

static TOOLS: [ToolEntry; 11] = [
    ToolEntry {
        name: "direct",
        module: "direct",
        summary: "periodic trains inverted with Equation 9",
        paper_section: "§2.2 (direct probing)",
        constructor: |c| {
            Box::new(
                DirectProber::new(DirectConfig {
                    tight_capacity_bps: c.tight_capacity_bps,
                    streams: if c.quick { 20 } else { 100 },
                    ..DirectConfig::canonical()
                })
                .estimator(),
            )
        },
    },
    ToolEntry {
        name: "delphi",
        module: "delphi",
        summary: "adaptive trains whose input rate tracks the estimate",
        paper_section: "§2.2 (direct probing)",
        constructor: |c| {
            Box::new(
                Delphi::new(DelphiConfig {
                    trains: if c.quick { 15 } else { 40 },
                    ..DelphiConfig::new(c.tight_capacity_bps)
                })
                .estimator(),
            )
        },
    },
    ToolEntry {
        name: "spruce",
        module: "spruce",
        summary: "Poisson-spaced packet pairs at the tight-link rate",
        paper_section: "§2.2 (direct probing)",
        constructor: |c| {
            Box::new(
                Spruce::new(SpruceConfig {
                    pairs: if c.quick { 50 } else { 100 },
                    ..SpruceConfig::new(c.tight_capacity_bps)
                })
                .estimator(),
            )
        },
    },
    ToolEntry {
        name: "topp",
        module: "topp",
        summary: "linear rate sweep with regression on Ri/Ro",
        paper_section: "§2.3 (iterative probing)",
        constructor: |c| {
            Box::new(
                Topp::new(ToppConfig {
                    step_bps: if c.quick { 3e6 } else { 1e6 },
                    streams_per_rate: if c.quick { 3 } else { 6 },
                    stream_gap: Some(SimDuration::from_millis(5)),
                    ..ToppConfig::default()
                })
                .estimator(),
            )
        },
    },
    ToolEntry {
        name: "pathload",
        module: "pathload",
        summary: "binary rate search with PCT/PDT trend tests",
        paper_section: "§2.3 (iterative probing), §3.9 (variation range)",
        constructor: |c| {
            Box::new(
                Pathload::new(if c.quick {
                    PathloadConfig::quick()
                } else {
                    PathloadConfig::default()
                })
                .estimator(),
            )
        },
    },
    ToolEntry {
        name: "pathchirp",
        module: "pathchirp",
        summary: "exponentially spaced chirps with excursion analysis",
        paper_section: "§2.3 (iterative probing)",
        constructor: |c| {
            Box::new(
                Pathchirp::new(PathchirpConfig {
                    chirps: if c.quick { 15 } else { 30 },
                    ..PathchirpConfig::default()
                })
                .estimator(),
            )
        },
    },
    // Sends pathChirp's exact chirp stream (same start rate, gamma,
    // packets per chirp) and differs only in receiver-side smoothing,
    // so its perf-harness cost rows are byte-identical to
    // `pathchirp`'s by construction. Pinned by
    // `shared_engine_tool_pairs_have_identical_probe_cost`.
    ToolEntry {
        name: "schirp",
        module: "schirp",
        summary: "smoothed chirps (Pásztor's S-chirp)",
        paper_section: "§2.3 (iterative probing)",
        constructor: |c| {
            Box::new(
                Schirp::new(SchirpConfig {
                    chirps: if c.quick { 15 } else { 30 },
                    ..SchirpConfig::default()
                })
                .estimator(),
            )
        },
    },
    ToolEntry {
        name: "igi",
        module: "igi",
        summary: "gap-increase trains, IGI formula at the turning point",
        paper_section: "§2.3 (the tool the paper calls hard to classify)",
        constructor: |c| {
            Box::new(
                Igi::new(IgiConfig {
                    tight_capacity_bps: c.tight_capacity_bps,
                    ..IgiConfig::default()
                })
                .estimator(),
            )
        },
    },
    // Shares the Igi probing engine with the entry above — only the
    // estimator differs, so its perf-harness cost rows (probe packets,
    // events) are byte-identical to `igi`'s by construction. Pinned by
    // `shared_engine_tool_pairs_have_identical_probe_cost`.
    ToolEntry {
        name: "ptr",
        module: "igi",
        summary: "gap-increase trains, turning-point train rate",
        paper_section: "§2.3 (iterative probing)",
        constructor: |c| {
            Box::new(
                Igi::new(IgiConfig {
                    tight_capacity_bps: c.tight_capacity_bps,
                    ..IgiConfig::default()
                })
                .ptr_estimator(),
            )
        },
    },
    ToolEntry {
        name: "bfind",
        module: "bfind",
        summary: "sender-only load ramp with per-hop RTT monitoring",
        paper_section: "§2.3 (iterative probing, no receiver needed)",
        constructor: |_| Box::new(Bfind::new(BfindConfig::default()).estimator()),
    },
    ToolEntry {
        name: "capacity",
        module: "capacity",
        summary: "bprobe-style pair dispersion (measures Cn, Pitfall 5)",
        paper_section: "§3.5 (Pitfall 5: narrow vs tight link)",
        constructor: |_| Box::new(CapacityProber::new(CapacityConfig::default()).estimator()),
    },
];

/// Every registered tool, in the canonical (golden CSV) order.
pub fn all() -> &'static [ToolEntry] {
    &TOOLS
}

/// Looks a tool up by its registry name.
pub fn find(name: &str) -> Option<&'static ToolEntry> {
    TOOLS.iter().find(|t| t.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_is_consistent_with_all() {
        for entry in all() {
            assert!(std::ptr::eq(find(entry.name).unwrap(), entry));
        }
        assert!(find("no-such-tool").is_none());
    }

    #[test]
    fn every_entry_builds() {
        for config in [ToolConfig::default(), ToolConfig::quick()] {
            for entry in all() {
                // first decision of a fresh estimator must be a Send
                let mut tool = entry.build(&config);
                assert!(
                    matches!(tool.next(None), crate::tools::Action::Send(_)),
                    "{} must start by probing",
                    entry.name
                );
            }
        }
    }
}
