//! Probing endpoints and per-stream measurements.
//!
//! [`ProbeSender`] transmits one [`StreamSpec`] at a time;
//! [`ProbeReceiver`] records, for every probing packet, when it was sent
//! and when it arrived. A [`StreamResult`] packages one stream's records
//! with the derived quantities all the tools consume: the one-way-delay
//! series (for trend analysis — Fallacy 8 is precisely that OWDs carry
//! more information than the single `Ro/Ri` ratio) and the input/output
//! rates.

use std::collections::BTreeMap;

use abw_netsim::{
    gap_for_rate, packet_to, Agent, AgentId, Ctx, FlowId, Packet, PacketKind, PathId, SimDuration,
    SimTime, Simulator,
};

use crate::stream::StreamSpec;
use crate::tools::{
    Action, Estimator, LoadRampSample, LoadRampSpec, Observation, ProbeSpec, Verdict,
};

/// Token that fires the launch of a pending stream.
const TOKEN_LAUNCH: u64 = u64::MAX;

/// The probing sender agent: idle until a stream is armed, then emits the
/// stream's packets at their exact offsets.
pub struct ProbeSender {
    path: PathId,
    dst: AgentId,
    flow: FlowId,
    /// Stream waiting for the launch timer.
    pending: Option<(StreamSpec, u32)>,
    /// Stream currently on the wire.
    current: Option<(StreamSpec, u32)>,
    /// Total probing packets sent.
    pub sent_packets: u64,
    /// Total probing bytes sent.
    pub sent_bytes: u64,
}

impl ProbeSender {
    /// A sender probing `path` towards the receiver `dst`.
    pub fn new(path: PathId, dst: AgentId, flow: FlowId) -> Self {
        ProbeSender {
            path,
            dst,
            flow,
            pending: None,
            current: None,
            sent_packets: 0,
            sent_bytes: 0,
        }
    }

    /// Arms `spec` as the next stream; it launches when the launch timer
    /// (scheduled by [`ProbeRunner`]) fires.
    ///
    /// Panics if a stream is already armed — streams must not overlap.
    pub fn arm(&mut self, spec: StreamSpec, stream_id: u32) {
        assert!(
            self.pending.is_none(),
            "a stream is already armed; streams must not overlap"
        );
        self.pending = Some((spec, stream_id));
    }
}

impl Agent for ProbeSender {
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TOKEN_LAUNCH {
            let (spec, id) = self.pending.take().expect("launch with no armed stream");
            // schedule one timer per packet at its exact offset
            for (k, off) in spec.offsets().into_iter().enumerate() {
                ctx.schedule_in(off, k as u64);
            }
            self.current = Some((spec, id));
            return;
        }
        // per-packet timer: token is the packet index
        let (spec, id) = self.current.as_ref().expect("packet timer with no stream");
        let size = spec.size();
        let p = packet_to(
            self.dst,
            self.path,
            self.flow,
            size,
            token,
            PacketKind::Probe { stream: *id },
        );
        ctx.send(p);
        self.sent_packets += 1;
        self.sent_bytes += size as u64;
    }
}

/// One probing packet's life: sequence number, send time, arrival time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeRecord {
    /// Sequence number within the stream.
    pub seq: u32,
    /// Send timestamp (stamped by the sender).
    pub sent_at: SimTime,
    /// Arrival timestamp at the receiver.
    pub recv_at: SimTime,
}

/// The probing receiver agent: records every probing packet by stream id.
///
/// Streams live in a `BTreeMap` so traversal order is deterministic by
/// construction (D2), not only after the sort in [`ProbeReceiver::take`].
#[derive(Default)]
pub struct ProbeReceiver {
    streams: BTreeMap<u32, Vec<ProbeRecord>>,
}

impl ProbeReceiver {
    /// Creates an empty receiver.
    pub fn new() -> Self {
        ProbeReceiver::default()
    }

    /// Packets received so far for `stream`.
    pub fn received(&self, stream: u32) -> usize {
        self.streams.get(&stream).map_or(0, Vec::len)
    }

    /// Removes and returns the records of `stream`, sorted by sequence.
    pub fn take(&mut self, stream: u32) -> Vec<ProbeRecord> {
        let mut v = self.streams.remove(&stream).unwrap_or_default();
        v.sort_by_key(|r| r.seq);
        v
    }
}

impl Agent for ProbeReceiver {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: Packet) {
        let PacketKind::Probe { stream } = packet.kind else {
            return;
        };
        self.streams.entry(stream).or_default().push(ProbeRecord {
            seq: packet.seq as u32,
            sent_at: packet.sent_at,
            recv_at: ctx.now(),
        });
    }
}

/// Everything measured about one probing stream.
#[derive(Debug, Clone)]
pub struct StreamResult {
    /// The stream that was sent.
    pub spec: StreamSpec,
    /// Stream id.
    pub stream_id: u32,
    /// Per-packet records, sorted by sequence; lost packets are absent.
    pub records: Vec<ProbeRecord>,
}

impl StreamResult {
    /// Packets received.
    pub fn received(&self) -> usize {
        self.records.len()
    }

    /// Packets lost. Saturating: duplicate records (e.g. from a
    /// misbehaving path) can make `received > sent`, which counts as
    /// zero lost rather than underflowing.
    pub fn lost(&self) -> usize {
        (self.spec.count() as usize).saturating_sub(self.records.len())
    }

    /// Loss fraction in `[0, 1]`; zero for an empty spec (never NaN).
    pub fn loss_fraction(&self) -> f64 {
        let count = self.spec.count();
        if count == 0 {
            return 0.0;
        }
        self.lost() as f64 / count as f64
    }

    /// One-way delays (seconds) of the received packets, in sequence
    /// order. Clock offset does not matter for trend analysis; only
    /// differences are used.
    pub fn owds(&self) -> Vec<f64> {
        self.records
            .iter()
            .map(|r| r.recv_at.since(r.sent_at).as_secs_f64())
            .collect()
    }

    /// OWDs shifted so the minimum is zero — convenient for plotting
    /// (Figure 5 plots "relative OWD").
    pub fn relative_owds(&self) -> Vec<f64> {
        let owds = self.owds();
        let min = owds.iter().cloned().fold(f64::INFINITY, f64::min);
        owds.iter().map(|d| d - min).collect()
    }

    /// The nominal input rate of the stream in bits/s.
    pub fn input_rate_bps(&self) -> f64 {
        self.spec.nominal_rate_bps()
    }

    /// Measured output rate `Ro` in bits/s: `(n-1) * L * 8 / span` over
    /// the received packets. `None` with fewer than 2 arrivals or a
    /// zero-length span.
    ///
    /// The span is the min-to-max arrival time, **not** first-to-last of
    /// the sequence-sorted records: under reordering the last sequence
    /// number can arrive before the first, which would make a
    /// sequence-based span negative and silently discard the stream.
    pub fn output_rate_bps(&self) -> Option<f64> {
        if self.records.len() < 2 {
            return None;
        }
        let first_ns = self.records.iter().map(|r| r.recv_at).min()?;
        let last_ns = self.records.iter().map(|r| r.recv_at).max()?;
        let span = last_ns.since(first_ns).as_secs_f64();
        if span <= 0.0 {
            return None;
        }
        Some((self.records.len() - 1) as f64 * self.spec.size() as f64 * 8.0 / span)
    }

    /// `Ro / Ri`; `None` when the output rate is unmeasurable.
    pub fn rate_ratio(&self) -> Option<f64> {
        Some(self.output_rate_bps()? / self.input_rate_bps())
    }

    /// Gaps of consecutive (by sequence) packet pairs: `(input gap,
    /// output gap)` in seconds. Pairs broken by a loss are skipped, and
    /// so are pairs whose arrival order was inverted by reordering or
    /// jitter — a negative output gap is not a dispersion sample (found
    /// by the scenario fuzzer: the subtraction underflowed and
    /// panicked).
    pub fn pair_gaps(&self) -> Vec<(f64, f64)> {
        self.records
            .windows(2)
            .filter(|w| w[1].seq == w[0].seq + 1 && w[1].recv_at >= w[0].recv_at)
            .map(|w| {
                (
                    w[1].sent_at.since(w[0].sent_at).as_secs_f64(),
                    w[1].recv_at.since(w[0].recv_at).as_secs_f64(),
                )
            })
            .collect()
    }
}

/// Orchestrates probing streams over a simulator: arms the sender, runs
/// the event loop until the stream drains, and collects the result.
///
/// Iterative tools (TOPP, Pathload, pathChirp, IGI) call
/// [`ProbeRunner::run_stream`] in a loop, choosing each next rate from
/// the previous result — exactly the structure of Equation 10.
pub struct ProbeRunner {
    /// The [`ProbeSender`] agent.
    pub sender: AgentId,
    /// The [`ProbeReceiver`] agent.
    pub receiver: AgentId,
    /// Idle gap inserted before each stream (lets queues drain between
    /// streams; the paper's tools space streams for the same reason).
    pub stream_gap: SimDuration,
    /// Extra time to wait for in-flight packets after the last send.
    pub drain_timeout: SimDuration,
    next_stream_id: u32,
}

impl ProbeRunner {
    /// A runner with a 50 ms inter-stream gap and 1 s drain timeout.
    pub fn new(sender: AgentId, receiver: AgentId) -> Self {
        ProbeRunner {
            sender,
            receiver,
            stream_gap: SimDuration::from_millis(50),
            drain_timeout: SimDuration::from_secs(1),
            next_stream_id: 0,
        }
    }

    /// Sends one stream and returns its measurements. The simulation
    /// advances until every packet arrived or the drain timeout expires
    /// (lost packets simply stay absent from the result).
    pub fn run_stream(&mut self, sim: &mut Simulator, spec: &StreamSpec) -> StreamResult {
        let _prof = abw_obs::prof::span("probe.stream");
        let id = self.next_stream_id;
        self.next_stream_id += 1;

        sim.agent_mut::<ProbeSender>(self.sender)
            .arm(spec.clone(), id);
        let launch_at = sim.now() + self.stream_gap;
        sim.schedule_timer(self.sender, launch_at, TOKEN_LAUNCH);

        let expected = spec.count() as usize;
        let deadline = launch_at + spec.duration() + self.drain_timeout;
        // advance in slices so we can stop as soon as the stream is in;
        // the final slice is clamped so a lossy stream costs exactly the
        // drain timeout, never a slice more
        let slice = SimDuration::from_millis(5);
        while sim.now() < deadline {
            let step = slice.min(deadline.since(sim.now()));
            sim.run_for(step);
            if sim.agent::<ProbeReceiver>(self.receiver).received(id) >= expected {
                break;
            }
        }
        let records = sim.agent_mut::<ProbeReceiver>(self.receiver).take(id);
        StreamResult {
            spec: spec.clone(),
            stream_id: id,
            records,
        }
    }
}

/// The probe runner a [`Session`] drives: its own, or one borrowed from
/// the caller (so compatibility wrappers can drive a caller-owned
/// runner without disturbing its stream-id sequence).
enum RunnerSlot<'r> {
    /// The session owns the runner.
    Owned(ProbeRunner),
    /// The session borrows the caller's runner.
    Borrowed(&'r mut ProbeRunner),
}

impl RunnerSlot<'_> {
    fn get(&mut self) -> &mut ProbeRunner {
        match self {
            RunnerSlot::Owned(r) => r,
            RunnerSlot::Borrowed(r) => r,
        }
    }
}

/// Routing facts a session needs for probing primitives that bypass the
/// [`ProbeRunner`] (BFind's load ramp installs its own agent on the
/// probed path).
#[derive(Debug, Clone, Copy)]
pub(crate) struct SessionRoute {
    pub(crate) path: PathId,
    pub(crate) hops: usize,
    pub(crate) dst: AgentId,
}

/// The generic session driver: owns **all** simulator interaction on
/// behalf of an [`Estimator`].
///
/// [`Session::step`] executes exactly one tool action — materialise a
/// probing stream (or load-ramp epoch), advance the simulation until it
/// drains, and feed the [`Observation`] back on the next call — so
/// multiple sessions can interleave in one simulation and a session can
/// keep re-estimating against time-varying cross traffic (the
/// `tracking` experiment). [`Session::drive`] loops `step` to
/// completion, which is what the compatibility `run()` wrappers use.
pub struct Session<'r> {
    runner: RunnerSlot<'r>,
    route: Option<SessionRoute>,
    load_agent: Option<AgentId>,
    /// When the current estimation round started (set lazily by the
    /// first `step`, cleared on `Done` so the next round re-stamps).
    round_start: Option<SimTime>,
    last: Option<Observation>,
}

impl<'r> Session<'r> {
    /// A session borrowing the caller's runner — the compatibility path
    /// for tools that historically took `(&mut Simulator, &mut
    /// ProbeRunner)`.
    pub fn over(runner: &'r mut ProbeRunner) -> Session<'r> {
        Session {
            runner: RunnerSlot::Borrowed(runner),
            route: None,
            load_agent: None,
            round_start: None,
            last: None,
        }
    }

    /// A session owning its runner.
    pub fn new(runner: ProbeRunner) -> Session<'static> {
        Session {
            runner: RunnerSlot::Owned(runner),
            route: None,
            load_agent: None,
            round_start: None,
            last: None,
        }
    }

    /// A routed session: like [`Session::new`] but able to execute
    /// [`ProbeSpec::LoadRamp`] actions on the given path.
    pub(crate) fn with_route(
        runner: ProbeRunner,
        path: PathId,
        hops: usize,
        dst: AgentId,
    ) -> Session<'static> {
        Session {
            runner: RunnerSlot::Owned(runner),
            route: Some(SessionRoute { path, hops, dst }),
            load_agent: None,
            round_start: None,
            last: None,
        }
    }

    /// The session's probe runner (e.g. to adjust `stream_gap`).
    pub fn runner_mut(&mut self) -> &mut ProbeRunner {
        self.runner.get()
    }

    /// Executes one estimator action: asks `tool` for its next move
    /// (feeding back the last observation), emits any trace events the
    /// decision buffered, and either runs the requested probing action
    /// or returns the final verdict (stamped with the round's elapsed
    /// simulated time).
    pub fn step(&mut self, sim: &mut Simulator, tool: &mut dyn Estimator) -> Option<Verdict> {
        let started = *self.round_start.get_or_insert(sim.now());
        let action = tool.next(self.last.take().as_ref());
        for ev in tool.take_events() {
            sim.emit(ev.kind, &ev.fields);
        }
        match action {
            Action::Send(spec) => {
                self.last = Some(self.execute(sim, spec));
                None
            }
            Action::Done(mut verdict) => {
                verdict.set_elapsed(sim.now().since(started).as_secs_f64());
                self.round_start = None;
                self.pause_load(sim);
                Some(verdict)
            }
        }
    }

    /// Drives `tool` to completion and returns its verdict.
    pub fn drive(&mut self, sim: &mut Simulator, tool: &mut dyn Estimator) -> Verdict {
        let _prof = abw_obs::prof::span("session.drive");
        loop {
            if let Some(verdict) = self.step(sim, tool) {
                return verdict;
            }
        }
    }

    /// Drives `tool` until it finishes or the simulated clock reaches
    /// `deadline`, whichever comes first. `None` means the deadline cut
    /// the round short: the estimator is abandoned mid-decision and the
    /// session is reset (round stamp cleared, any load ramp paused) so
    /// the caller can start a fresh round on the same session.
    ///
    /// The check runs between steps — one step materialises a whole
    /// probing stream and drains it — so the clock can overshoot the
    /// deadline by up to one stream's duration, never by more.
    pub fn drive_until(
        &mut self,
        sim: &mut Simulator,
        tool: &mut dyn Estimator,
        deadline: SimTime,
    ) -> Option<Verdict> {
        let _prof = abw_obs::prof::span("session.drive");
        loop {
            if sim.now() >= deadline {
                self.round_start = None;
                self.last = None;
                self.pause_load(sim);
                return None;
            }
            if let Some(verdict) = self.step(sim, tool) {
                return Some(verdict);
            }
        }
    }

    fn execute(&mut self, sim: &mut Simulator, spec: ProbeSpec) -> Observation {
        match spec {
            ProbeSpec::Stream { spec, pre_gap } => {
                let runner = self.runner.get();
                match pre_gap {
                    Some(gap) => {
                        let saved = runner.stream_gap;
                        runner.stream_gap = gap;
                        let r = runner.run_stream(sim, &spec);
                        runner.stream_gap = saved;
                        Observation::Stream(r)
                    }
                    None => Observation::Stream(runner.run_stream(sim, &spec)),
                }
            }
            ProbeSpec::LoadRamp(ramp) => self.execute_load_ramp(sim, &ramp),
        }
    }

    fn execute_load_ramp(&mut self, sim: &mut Simulator, ramp: &LoadRampSpec) -> Observation {
        let route = self
            .route
            .expect("load-ramp probing needs a routed session (Scenario::session)");
        let agent = match self.load_agent {
            Some(id) => {
                let a = sim.agent_mut::<LoadProbeAgent>(id);
                if !a.running {
                    a.running = true;
                    sim.schedule_timer(id, sim.now(), TOKEN_LOAD);
                    sim.schedule_timer(id, sim.now(), TOKEN_TRACE);
                }
                id
            }
            None => {
                // non-rate parameters (packet sizes, trace cadence) are
                // fixed by the first epoch's spec for the agent's lifetime
                let id = sim.add_agent(Box::new(LoadProbeAgent::new(
                    route.path, route.hops, route.dst, ramp,
                )));
                sim.agent_mut::<LoadProbeAgent>(id).running = true;
                sim.schedule_timer(id, sim.now(), TOKEN_LOAD);
                sim.schedule_timer(id, sim.now(), TOKEN_TRACE);
                self.load_agent = Some(id);
                id
            }
        };
        sim.agent_mut::<LoadProbeAgent>(agent).load_rate_bps = ramp.rate_bps;
        sim.run_for(ramp.epoch);
        let a = sim.agent_mut::<LoadProbeAgent>(agent);
        Observation::LoadRamp(LoadRampSample {
            hop_rtts: a.drain(),
            probe_packets: a.packets,
        })
    }

    /// Quiesces the load-ramp agent (if any) so a finished round stops
    /// injecting traffic while the session stays reusable.
    fn pause_load(&mut self, sim: &mut Simulator) {
        if let Some(id) = self.load_agent {
            let a = sim.agent_mut::<LoadProbeAgent>(id);
            a.running = false;
            a.load_rate_bps = 0.0;
        }
    }
}

/// Token for the load-stream timer of [`LoadProbeAgent`].
const TOKEN_LOAD: u64 = 1;
/// Token for the traceroute-round timer of [`LoadProbeAgent`].
const TOKEN_TRACE: u64 = 2;

/// The load-ramp probing agent (BFind's primitive): a rate-adjustable
/// UDP load stream plus periodic TTL-limited traceroute rounds, with
/// per-hop RTT collection.
struct LoadProbeAgent {
    path: PathId,
    hops: usize,
    dst: AgentId,
    load_rate_bps: f64,
    load_size: u32,
    probe_size: u32,
    trace_interval: SimDuration,
    load_seq: u64,
    trace_seq: u64,
    /// RTTs collected since the last drain, per hop.
    rtt_samples: Vec<Vec<f64>>,
    packets: u64,
    running: bool,
}

impl LoadProbeAgent {
    fn new(path: PathId, hops: usize, dst: AgentId, spec: &LoadRampSpec) -> Self {
        LoadProbeAgent {
            path,
            hops,
            dst,
            load_rate_bps: 0.0,
            load_size: spec.load_packet_size,
            probe_size: spec.probe_size,
            trace_interval: spec.trace_interval,
            load_seq: 0,
            trace_seq: 0,
            rtt_samples: vec![Vec::new(); hops],
            packets: 0,
            running: false,
        }
    }

    fn drain(&mut self) -> Vec<Vec<f64>> {
        std::mem::replace(&mut self.rtt_samples, vec![Vec::new(); self.hops])
    }
}

impl Agent for LoadProbeAgent {
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            TOKEN_LOAD => {
                if !self.running {
                    return;
                }
                if self.load_rate_bps > 0.0 {
                    let p = packet_to(
                        self.dst,
                        self.path,
                        FlowId(u32::MAX - 1),
                        self.load_size,
                        self.load_seq,
                        PacketKind::Data,
                    );
                    ctx.send(p);
                    self.load_seq += 1;
                    self.packets += 1;
                    ctx.schedule_in(gap_for_rate(self.load_size, self.load_rate_bps), TOKEN_LOAD);
                } else {
                    // idle baseline: poll for a rate change
                    ctx.schedule_in(SimDuration::from_millis(10), TOKEN_LOAD);
                }
            }
            TOKEN_TRACE => {
                if !self.running {
                    return;
                }
                // One probe per link. A probe measuring link k must cross
                // link k's queue, so it expires at the NEXT router
                // (ttl = k + 2); the reply attributes to link k. The last
                // link has no router behind it, so its probe travels the
                // full path addressed back to this agent (an echo whose
                // one-way delay includes the last queue; the baseline
                // difference cancels the missing reverse delay).
                for hop in 0..self.hops {
                    let mut p = packet_to(
                        self.dst,
                        self.path,
                        FlowId(u32::MAX - 2),
                        self.probe_size,
                        self.trace_seq,
                        PacketKind::Data,
                    );
                    if hop + 1 < self.hops {
                        p.ttl = hop as u8 + 2;
                    } else {
                        p.dst = ctx.self_id();
                    }
                    ctx.send(p);
                    self.trace_seq += 1;
                    self.packets += 1;
                }
                ctx.schedule_in(self.trace_interval, TOKEN_TRACE);
            }
            _ => {}
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: Packet) {
        match packet.kind {
            PacketKind::TtlExceeded {
                router,
                orig_sent_at,
                ..
            } => {
                // expired at router `router` ⇒ crossed the queue of link
                // `router - 1`
                let rtt = ctx.now().since(orig_sent_at).as_secs_f64();
                let link = (router as usize).saturating_sub(1);
                if let Some(bucket) = self.rtt_samples.get_mut(link) {
                    bucket.push(rtt);
                }
            }
            PacketKind::Data => {
                // the self-addressed full-path echo: attribute to the
                // last link
                let owd = ctx.now().since(packet.sent_at).as_secs_f64();
                if let Some(bucket) = self.rtt_samples.last_mut() {
                    bucket.push(owd);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abw_netsim::LinkConfig;

    /// Idle 50 Mb/s link: measurements must match the fluid model with
    /// zero cross traffic (Ro = Ri, flat OWDs).
    fn idle_sim() -> (Simulator, ProbeRunner) {
        let mut sim = Simulator::new();
        let link = sim.add_link(LinkConfig::new(50e6, SimDuration::from_millis(2)));
        let path = sim.add_path(vec![link]);
        let receiver = sim.add_agent(Box::new(ProbeReceiver::new()));
        let sender = sim.add_agent(Box::new(ProbeSender::new(path, receiver, FlowId(0))));
        let runner = ProbeRunner::new(sender, receiver);
        (sim, runner)
    }

    #[test]
    fn idle_link_passes_stream_unchanged() {
        let (mut sim, mut runner) = idle_sim();
        let spec = StreamSpec::Periodic {
            rate_bps: 20e6,
            size: 1500,
            count: 50,
        };
        let r = runner.run_stream(&mut sim, &spec);
        assert_eq!(r.received(), 50);
        assert_eq!(r.lost(), 0);
        let ratio = r.rate_ratio().unwrap();
        assert!((ratio - 1.0).abs() < 1e-6, "Ro/Ri = {ratio}");
        // all OWDs identical: serialisation + propagation
        let owds = r.owds();
        let expected = 1500.0 * 8.0 / 50e6 + 0.002;
        for &d in &owds {
            assert!((d - expected).abs() < 1e-9, "OWD {d}");
        }
    }

    #[test]
    fn overloading_stream_expands() {
        // probing at 80 Mb/s over a 50 Mb/s link: Ro must be ~50 Mb/s
        let (mut sim, mut runner) = idle_sim();
        let spec = StreamSpec::Periodic {
            rate_bps: 80e6,
            size: 1500,
            count: 100,
        };
        let r = runner.run_stream(&mut sim, &spec);
        assert_eq!(r.received(), 100);
        let ro = r.output_rate_bps().unwrap();
        assert!((ro - 50e6).abs() / 50e6 < 0.01, "Ro = {ro}");
        // OWDs must increase monotonically
        let owds = r.owds();
        assert!(owds.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn sequential_streams_do_not_interfere() {
        let (mut sim, mut runner) = idle_sim();
        let spec = StreamSpec::Periodic {
            rate_bps: 80e6,
            size: 1500,
            count: 20,
        };
        let a = runner.run_stream(&mut sim, &spec);
        let b = runner.run_stream(&mut sim, &spec);
        assert_eq!(a.received(), 20);
        assert_eq!(b.received(), 20);
        assert_ne!(a.stream_id, b.stream_id);
        // the second stream starts on an empty queue: same OWD profile
        let (oa, ob) = (a.relative_owds(), b.relative_owds());
        for (x, y) in oa.iter().zip(&ob) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn pair_gaps_expand_at_the_narrow_link() {
        let (mut sim, mut runner) = idle_sim();
        // intra-pair rate 100 Mb/s over a 50 Mb/s link: output gap equals
        // the link serialisation time of 240 us
        let spec = StreamSpec::Pair {
            rate_bps: 100e6,
            size: 1500,
        };
        let r = runner.run_stream(&mut sim, &spec);
        let gaps = r.pair_gaps();
        assert_eq!(gaps.len(), 1);
        let (g_in, g_out) = gaps[0];
        assert!((g_in - 120e-6).abs() < 1e-9);
        assert!((g_out - 240e-6).abs() < 1e-9, "output gap {g_out}");
    }

    fn record(seq: u32, sent_ns: u64, recv_ns: u64) -> ProbeRecord {
        ProbeRecord {
            seq,
            sent_at: SimTime::from_nanos(sent_ns),
            recv_at: SimTime::from_nanos(recv_ns),
        }
    }

    #[test]
    fn lost_saturates_on_duplicate_records() {
        // 3 records against a 2-packet pair spec: a duplicated arrival
        // must read as 0 lost, not underflow
        let r = StreamResult {
            spec: StreamSpec::Pair {
                rate_bps: 10e6,
                size: 1500,
            },
            stream_id: 0,
            records: vec![
                record(0, 0, 1_000),
                record(1, 500, 1_500),
                record(1, 500, 1_500),
            ],
        };
        assert_eq!(r.lost(), 0);
        assert_eq!(r.loss_fraction(), 0.0);
    }

    #[test]
    fn pair_gaps_skip_reorder_inverted_arrivals() {
        // seq 1 overtook seq 0 on the wire (reordering): the (0,1) pair
        // has a negative output gap and must be skipped, not panic; the
        // (1,2) pair is intact and survives
        let r = StreamResult {
            spec: StreamSpec::Periodic {
                rate_bps: 10e6,
                size: 1500,
                count: 3,
            },
            stream_id: 0,
            records: vec![
                record(0, 0, 2_000),
                record(1, 500, 1_500),
                record(2, 1_000, 2_500),
            ],
        };
        let gaps = r.pair_gaps();
        assert_eq!(gaps.len(), 1);
        assert!((gaps[0].0 - 500e-9).abs() < 1e-15);
        assert!((gaps[0].1 - 1_000e-9).abs() < 1e-15);
    }

    #[test]
    fn loss_fraction_of_empty_spec_is_zero_not_nan() {
        let r = StreamResult {
            spec: StreamSpec::Periodic {
                rate_bps: 10e6,
                size: 1500,
                count: 0,
            },
            stream_id: 0,
            records: Vec::new(),
        };
        assert_eq!(r.lost(), 0);
        assert_eq!(r.loss_fraction(), 0.0);
        assert!(!r.loss_fraction().is_nan());
    }

    #[test]
    fn output_rate_survives_reordered_records() {
        // records are sequence-sorted, but seq 0 arrived LAST: the
        // arrival span must come from min/max recv_at, not first/last
        let spec = StreamSpec::Periodic {
            rate_bps: 12e6,
            size: 1500,
            count: 3,
        };
        let reordered = StreamResult {
            spec: spec.clone(),
            stream_id: 0,
            records: vec![
                record(0, 0, 3_000_000),
                record(1, 1_000_000, 2_000_000),
                record(2, 2_000_000, 2_500_000),
            ],
        };
        let ro = reordered
            .output_rate_bps()
            .expect("reordering must not erase the rate");
        // span = 3 ms - 2 ms = 1 ms, 2 gaps of 1500 B => 24 Mb/s
        assert!((ro - 24e6).abs() < 1.0, "Ro = {ro}");
        // and an in-order stream with the same span agrees
        let in_order = StreamResult {
            spec,
            stream_id: 1,
            records: vec![
                record(0, 0, 2_000_000),
                record(1, 1_000_000, 2_500_000),
                record(2, 2_000_000, 3_000_000),
            ],
        };
        assert!((in_order.output_rate_bps().unwrap() - ro).abs() < 1.0);
    }

    #[test]
    fn lossy_stream_drains_for_exactly_the_timeout() {
        // total loss: the runner must give up exactly at
        // launch + stream duration + drain timeout, not a slice later
        let mut sim = Simulator::new();
        let link = sim.add_link(LinkConfig::new(50e6, SimDuration::from_millis(2)));
        sim.impair_link(link, abw_netsim::ImpairmentConfig::iid_loss(1.0), 3);
        let path = sim.add_path(vec![link]);
        let receiver = sim.add_agent(Box::new(ProbeReceiver::new()));
        let sender = sim.add_agent(Box::new(ProbeSender::new(path, receiver, FlowId(0))));
        let mut runner = ProbeRunner::new(sender, receiver);
        let spec = StreamSpec::Periodic {
            rate_bps: 20e6,
            size: 1500,
            count: 10,
        };
        let t0 = sim.now();
        let r = runner.run_stream(&mut sim, &spec);
        assert_eq!(r.received(), 0);
        assert_eq!(r.lost(), 10);
        assert_eq!(r.loss_fraction(), 1.0);
        let deadline = t0 + runner.stream_gap + spec.duration() + runner.drain_timeout;
        assert_eq!(sim.now(), deadline, "run_stream overran its drain deadline");
    }

    #[test]
    fn chirp_arrives_complete() {
        let (mut sim, mut runner) = idle_sim();
        let spec = StreamSpec::Chirp {
            start_rate_bps: 5e6,
            gamma: 1.2,
            size: 1000,
            count: 15,
        };
        let r = runner.run_stream(&mut sim, &spec);
        assert_eq!(r.received(), 15);
        assert_eq!(r.pair_gaps().len(), 14);
    }
}
