//! One module per fallacy/pitfall — the code behind every figure and
//! table in the paper's §3 (see DESIGN.md §5 for the index).
//!
//! Each experiment is a pure function of its configuration (including
//! seeds) returning a typed result table; the `abw-bench` binaries print
//! them, and the integration tests assert their shapes.

pub mod burstiness;
pub mod latency_accuracy;
pub mod loss_sweep;
pub mod multi_bottleneck;
pub mod owd_vs_rate;
pub mod pairs_vs_trains;
pub mod shootout;
pub mod tcp_throughput;
pub mod tight_vs_narrow;
pub mod timescale_knob;
pub mod tracking;
pub mod train_length;
pub mod trend_thresholds;
pub mod variability;
pub mod variation_range;
