//! Ablation: train length under a fixed packet budget (Fallacy 4,
//! continued).
//!
//! Table 1 shows pairs lose to trains when cross packets are large.
//! This sweep makes the trade-off explicit: with a **fixed budget of
//! probing packets**, longer trains mean fewer (but individually less
//! noisy) samples. Against coarse-grained cross traffic, the per-sample
//! quantisation noise falls faster with train length than the sample
//! count shrinks, so trains win overall — which is why IGI/PTR use
//! 60-packet trains and Pathload 100-packet streams, while Spruce's 100
//! pairs need their number.

use abw_exec::Executor;
use abw_netsim::SimDuration;
use abw_stats::running::Running;
use abw_stats::sampling::relative_error;
use abw_traffic::SizeDist;

use crate::fluid::direct_probing_estimate;
use crate::scenario::{CrossKind, Scenario, SingleHopConfig};
use crate::stream::StreamSpec;

/// Configuration of the train-length sweep.
#[derive(Debug, Clone)]
pub struct TrainLengthConfig {
    /// Train lengths (packets per stream) to compare; 2 = packet pair.
    pub train_lengths: Vec<u32>,
    /// Total probing packets spent per estimate, shared by all lengths.
    pub packet_budget: u32,
    /// Repetitions (independent estimates) per length.
    pub repetitions: u32,
    /// Cross-traffic packet size (large = coarse quantisation).
    pub cross_size: u32,
    /// Probing rate, bits/s.
    pub rate_bps: f64,
    /// Scenario seed.
    pub seed: u64,
}

impl Default for TrainLengthConfig {
    fn default() -> Self {
        TrainLengthConfig {
            train_lengths: vec![2, 5, 10, 20, 60],
            packet_budget: 600,
            repetitions: 15,
            cross_size: 1500,
            rate_bps: 40e6,
            seed: 0x7A11,
        }
    }
}

impl TrainLengthConfig {
    /// Scaled-down configuration for tests.
    pub fn quick() -> Self {
        TrainLengthConfig {
            train_lengths: vec![2, 60],
            packet_budget: 360,
            repetitions: 10,
            ..TrainLengthConfig::default()
        }
    }
}

/// One row of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct TrainLengthRow {
    /// Packets per train.
    pub train_length: u32,
    /// Streams (samples) per estimate under the budget.
    pub samples_per_estimate: u32,
    /// Mean |relative error| of the budgeted estimate.
    pub mean_abs_error: f64,
    /// Per-sample standard deviation, Mb/s.
    pub per_sample_sd_mbps: f64,
}

/// The sweep result.
#[derive(Debug, Clone)]
pub struct TrainLengthResult {
    /// One row per train length.
    pub rows: Vec<TrainLengthRow>,
}

/// Runs the sweep with the executor configured from `ABW_JOBS`.
pub fn run(config: &TrainLengthConfig) -> TrainLengthResult {
    run_with(config, &Executor::from_env())
}

/// One `(length, rep)` job: its own scenario from a derived seed,
/// returning the valid per-stream samples in emission order.
fn run_rep(config: &TrainLengthConfig, len: u32, rep: u32) -> Vec<f64> {
    let ct = 50e6;
    let samples_per_estimate = (config.packet_budget / len).max(1);
    let mut s = Scenario::single_hop(&SingleHopConfig {
        cross: CrossKind::Poisson,
        cross_sizes: SizeDist::Constant(config.cross_size),
        seed: config
            .seed
            .wrapping_add((rep as u64) << 24)
            .wrapping_add(len as u64),
        ..SingleHopConfig::default()
    });
    s.warm_up(SimDuration::from_millis(300));
    let mut runner = s.runner();
    runner.stream_gap = SimDuration::from_millis(5);
    let spec = StreamSpec::Periodic {
        rate_bps: config.rate_bps,
        size: 1500,
        count: len,
    };
    let mut samples = Vec::new();
    for _ in 0..samples_per_estimate {
        let r = runner.run_stream(&mut s.sim, &spec);
        if let Some(ro) = r.output_rate_bps() {
            samples.push(direct_probing_estimate(ct, r.input_rate_bps(), ro));
        }
    }
    samples
}

/// Runs the sweep, fanning the independent `(length, rep)` replications
/// across `exec` and folding the samples back in submission order —
/// Running's incremental moments then match the serial loop bit-exactly.
pub fn run_with(config: &TrainLengthConfig, exec: &Executor) -> TrainLengthResult {
    let truth = 25e6;
    let jobs: Vec<_> = config
        .train_lengths
        .iter()
        .flat_map(|&len| (0..config.repetitions).map(move |rep| move || run_rep(config, len, rep)))
        .collect();
    let reps = exec.run(jobs);

    let rows = config
        .train_lengths
        .iter()
        .zip(reps.chunks(config.repetitions as usize))
        .map(|(&len, chunk)| {
            let samples_per_estimate = (config.packet_budget / len).max(1);
            let mut errors = Vec::new();
            let mut per_sample = Running::new();
            for samples in chunk {
                let mut estimate = Running::new();
                for &a in samples {
                    estimate.push(a);
                    per_sample.push(a);
                }
                if estimate.count() > 0 {
                    errors.push(relative_error(estimate.mean(), truth).abs());
                }
            }
            TrainLengthRow {
                train_length: len,
                samples_per_estimate,
                mean_abs_error: errors.iter().sum::<f64>() / errors.len().max(1) as f64,
                per_sample_sd_mbps: per_sample.stddev() / 1e6,
            }
        })
        .collect();
    TrainLengthResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_sample_noise_falls_with_train_length() {
        let r = run(&TrainLengthConfig::quick());
        let pair = &r.rows[0];
        let train = &r.rows[1];
        assert_eq!(pair.train_length, 2);
        assert_eq!(train.train_length, 60);
        assert!(
            train.per_sample_sd_mbps < pair.per_sample_sd_mbps / 2.0,
            "pair sd {:.1} vs train sd {:.1}",
            pair.per_sample_sd_mbps,
            train.per_sample_sd_mbps
        );
    }

    #[test]
    fn trains_beat_pairs_under_a_fixed_budget_on_coarse_traffic() {
        let r = run(&TrainLengthConfig::quick());
        let pair = &r.rows[0];
        let train = &r.rows[1];
        assert!(
            train.mean_abs_error <= pair.mean_abs_error * 1.2,
            "pair err {:.3} vs train err {:.3}",
            pair.mean_abs_error,
            train.mean_abs_error
        );
    }

    #[test]
    fn budget_is_respected() {
        let r = run(&TrainLengthConfig::quick());
        for row in &r.rows {
            assert!(row.train_length * row.samples_per_estimate <= 360);
            assert!(row.samples_per_estimate >= 1);
        }
    }
}
