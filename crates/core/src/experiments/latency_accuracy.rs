//! Fallacy 3: "faster estimation is better".
//!
//! Fewer or shorter streams reduce estimation latency but raise the
//! variance of the estimate: shorter streams shrink the averaging
//! timescale (raising `Var[A_tau]`), and fewer streams raise
//! `Var[m_A(k)] = Var[A_tau]/k`. This experiment sweeps both knobs on the
//! canonical single-hop path and reports the latency-accuracy trade-off
//! that tool comparisons must account for.

use abw_netsim::SimDuration;
use abw_stats::running::Running;
use abw_stats::sampling::relative_error;

use crate::probe::Session;
use crate::scenario::{CrossKind, Scenario, SingleHopConfig};
use crate::tools::direct::{DirectConfig, DirectProber};

/// Configuration of the latency-accuracy sweep.
#[derive(Debug, Clone)]
pub struct LatencyAccuracyConfig {
    /// Stream counts to sweep.
    pub stream_counts: Vec<u32>,
    /// Stream durations (ms) to sweep.
    pub durations_ms: Vec<u64>,
    /// Repetitions per cell (each gives one estimate; their spread is the
    /// accuracy).
    pub repetitions: u32,
    /// Scenario seed.
    pub seed: u64,
}

impl Default for LatencyAccuracyConfig {
    fn default() -> Self {
        LatencyAccuracyConfig {
            stream_counts: vec![5, 20, 60],
            durations_ms: vec![10, 50, 200],
            repetitions: 12,
            seed: 0xFA57,
        }
    }
}

impl LatencyAccuracyConfig {
    /// Scaled-down configuration for tests.
    pub fn quick() -> Self {
        LatencyAccuracyConfig {
            stream_counts: vec![3, 24],
            durations_ms: vec![10, 100],
            repetitions: 8,
            ..LatencyAccuracyConfig::default()
        }
    }
}

/// One cell of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct LatencyAccuracyCell {
    /// Streams per estimate.
    pub streams: u32,
    /// Stream duration, ms.
    pub duration_ms: u64,
    /// Mean measurement latency (simulated seconds per estimate).
    pub latency_secs: f64,
    /// Mean absolute relative error of the estimates vs the true
    /// 25 Mb/s.
    pub mean_abs_error: f64,
    /// Standard deviation of the estimates, Mb/s.
    pub estimate_sd_mbps: f64,
}

/// The sweep result.
#[derive(Debug, Clone)]
pub struct LatencyAccuracyResult {
    /// All cells, row-major over (streams, duration).
    pub cells: Vec<LatencyAccuracyCell>,
}

impl LatencyAccuracyResult {
    /// The cell for a given configuration, if present.
    pub fn cell(&self, streams: u32, duration_ms: u64) -> Option<&LatencyAccuracyCell> {
        self.cells
            .iter()
            .find(|c| c.streams == streams && c.duration_ms == duration_ms)
    }
}

/// Runs the sweep.
pub fn run(config: &LatencyAccuracyConfig) -> LatencyAccuracyResult {
    let truth = 25e6;
    let mut cells = Vec::new();
    for &streams in &config.stream_counts {
        for &duration_ms in &config.durations_ms {
            let mut errors = Vec::new();
            let mut estimates = Running::new();
            let mut latency = Running::new();
            for rep in 0..config.repetitions {
                let mut s = Scenario::single_hop(&SingleHopConfig {
                    cross: CrossKind::Poisson,
                    seed: config
                        .seed
                        .wrapping_add((rep as u64) << 32)
                        .wrapping_add(streams as u64 * 1000 + duration_ms),
                    ..SingleHopConfig::default()
                });
                s.warm_up(SimDuration::from_millis(300));
                let mut runner = s.runner();
                let mut tool = DirectProber::new(DirectConfig {
                    tight_capacity_bps: 50e6,
                    input_rate_bps: 40e6,
                    packet_size: 1500,
                    stream_duration: SimDuration::from_millis(duration_ms),
                    streams,
                })
                .estimator();
                let verdict = Session::over(&mut runner).drive(&mut s.sim, &mut tool);
                errors.push(relative_error(verdict.avail_bps(), truth).abs());
                estimates.push(verdict.avail_bps());
                latency.push(verdict.elapsed_secs());
            }
            cells.push(LatencyAccuracyCell {
                streams,
                duration_ms,
                latency_secs: latency.mean(),
                mean_abs_error: errors.iter().sum::<f64>() / errors.len() as f64,
                estimate_sd_mbps: estimates.stddev() / 1e6,
            });
        }
    }
    LatencyAccuracyResult { cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_streams_cost_latency_but_buy_accuracy() {
        let r = run(&LatencyAccuracyConfig::quick());
        let fast = r.cell(3, 10).expect("cell exists");
        let slow = r.cell(24, 100).expect("cell exists");
        assert!(
            slow.latency_secs > fast.latency_secs * 3.0,
            "latency: fast {:.3}s vs slow {:.3}s",
            fast.latency_secs,
            slow.latency_secs
        );
        assert!(
            slow.estimate_sd_mbps < fast.estimate_sd_mbps,
            "estimate spread should shrink with more/longer streams: \
             fast {:.2} vs slow {:.2} Mb/s",
            fast.estimate_sd_mbps,
            slow.estimate_sd_mbps
        );
    }
}
