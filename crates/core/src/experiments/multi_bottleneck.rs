//! Pitfall 7 / **Figure 4**: ignoring the effects of multiple
//! bottlenecks.
//!
//! On a path with several links of (approximately) equal avail-bw, the
//! probing stream interacts with cross traffic at *every* tight link; the
//! more tight links, the lower `Ro/Ri` at the point `Ri = A` — another
//! source of underestimation. Figure 4 plots the mean `Ro/Ri` against
//! `Ri` for paths of 1, 3 and 5 tight links with one-hop persistent
//! Poisson cross traffic.

use abw_netsim::SimDuration;
use abw_stats::running::Running;

use crate::scenario::{CrossKind, Scenario};
use crate::stream::StreamSpec;

/// Configuration of the Figure 4 experiment.
#[derive(Debug, Clone)]
pub struct MultiBottleneckConfig {
    /// Path lengths (number of tight links) to compare (paper: 1, 3, 5).
    pub tight_link_counts: Vec<usize>,
    /// Input rates to sweep, bits/s.
    pub rates_bps: Vec<f64>,
    /// Streams averaged per point (paper: 500).
    pub streams_per_point: u32,
    /// Packets per probing stream.
    pub packets_per_stream: u32,
    /// Probing packet size, bytes.
    pub packet_size: u32,
    /// Scenario seed.
    pub seed: u64,
}

impl Default for MultiBottleneckConfig {
    fn default() -> Self {
        MultiBottleneckConfig {
            tight_link_counts: vec![1, 3, 5],
            rates_bps: (5..=30).step_by(2).map(|m| m as f64 * 1e6).collect(),
            streams_per_point: 500,
            packets_per_stream: 100,
            packet_size: 1500,
            seed: 0xF164,
        }
    }
}

impl MultiBottleneckConfig {
    /// Scaled-down configuration for tests.
    pub fn quick() -> Self {
        MultiBottleneckConfig {
            tight_link_counts: vec![1, 3],
            rates_bps: vec![15e6, 25e6],
            streams_per_point: 50,
            packets_per_stream: 60,
            ..MultiBottleneckConfig::default()
        }
    }
}

/// One curve of Figure 4.
#[derive(Debug, Clone)]
pub struct MultiBottleneckCurve {
    /// Number of tight links on the path.
    pub tight_links: usize,
    /// `(Ri in Mb/s, mean Ro/Ri)` points.
    pub points: Vec<(f64, f64)>,
}

impl MultiBottleneckCurve {
    /// Mean `Ro/Ri` at the probed rate closest to `ri_mbps`.
    pub fn ratio_at(&self, ri_mbps: f64) -> Option<f64> {
        self.points
            .iter()
            .min_by(|a, b| (a.0 - ri_mbps).abs().total_cmp(&(b.0 - ri_mbps).abs()))
            .map(|&(_, ratio)| ratio)
    }
}

/// The Figure 4 result.
#[derive(Debug, Clone)]
pub struct MultiBottleneckResult {
    /// One curve per path length.
    pub curves: Vec<MultiBottleneckCurve>,
}

/// Runs the Figure 4 experiment.
pub fn run(config: &MultiBottleneckConfig) -> MultiBottleneckResult {
    let curves = config
        .tight_link_counts
        .iter()
        .map(|&n| {
            let mut s =
                Scenario::multi_tight(n, CrossKind::Poisson, config.seed.wrapping_add(n as u64));
            s.warm_up(SimDuration::from_millis(500));
            let mut runner = s.runner();
            runner.stream_gap = SimDuration::from_millis(10);
            let points = config
                .rates_bps
                .iter()
                .map(|&ri| {
                    let spec = StreamSpec::Periodic {
                        rate_bps: ri,
                        size: config.packet_size,
                        count: config.packets_per_stream,
                    };
                    let mut ratios = Running::new();
                    for _ in 0..config.streams_per_point {
                        if let Some(ratio) = runner.run_stream(&mut s.sim, &spec).rate_ratio() {
                            ratios.push(ratio.min(1.0));
                        }
                    }
                    (ri / 1e6, ratios.mean())
                })
                .collect();
            MultiBottleneckCurve {
                tight_links: n,
                points,
            }
        })
        .collect();
    MultiBottleneckResult { curves }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_tight_links_lower_the_ratio_at_the_avail_bw() {
        let r = run(&MultiBottleneckConfig::quick());
        let one = r.curves.iter().find(|c| c.tight_links == 1).unwrap();
        let three = r.curves.iter().find(|c| c.tight_links == 3).unwrap();
        let at_a_one = one.ratio_at(25.0).unwrap();
        let at_a_three = three.ratio_at(25.0).unwrap();
        // Figure 4's main observation
        assert!(
            at_a_three < at_a_one,
            "3 tight links ({at_a_three}) must expand more than 1 ({at_a_one})"
        );
    }

    #[test]
    fn ratio_stays_high_well_below_the_avail_bw() {
        let r = run(&MultiBottleneckConfig::quick());
        for c in &r.curves {
            let at_15 = c.ratio_at(15.0).unwrap();
            assert!(
                at_15 > 0.97,
                "{} links at 15 Mb/s: Ro/Ri = {at_15}",
                c.tight_links
            );
        }
    }
}
