//! Ablation: the PCT/PDT detection operating point.
//!
//! Pathload's trend thresholds (PCT 0.66/0.54, PDT 0.55/0.45) trade
//! detection of `Ri > A` against false positives below `A` and against
//! abstention ("ambiguous" streams cost probing time). This sweep runs
//! the same streams through several threshold settings and reports each
//! one's operating point — the kind of design-choice evidence DESIGN.md
//! §6 calls out.

use abw_exec::Executor;
use abw_netsim::SimDuration;
use abw_stats::trend::{TrendAnalyzer, TrendVerdict};

use crate::scenario::{CrossKind, Scenario, SingleHopConfig};
use crate::stream::StreamSpec;

/// One threshold setting to evaluate.
#[derive(Debug, Clone)]
pub struct ThresholdSetting {
    /// Label for reporting.
    pub name: &'static str,
    /// The analyser under test.
    pub analyzer: TrendAnalyzer,
}

/// Configuration of the sweep.
#[derive(Debug, Clone)]
pub struct TrendThresholdsConfig {
    /// Threshold settings to compare.
    pub settings: Vec<ThresholdSetting>,
    /// Rate below the avail-bw (negatives), bits/s.
    pub rate_below_bps: f64,
    /// Rate above the avail-bw (positives), bits/s.
    pub rate_above_bps: f64,
    /// Streams per rate.
    pub streams: u32,
    /// Packets per stream.
    pub packets_per_stream: u32,
    /// Cross-traffic model.
    pub cross: CrossKind,
    /// Scenario seed.
    pub seed: u64,
}

impl Default for TrendThresholdsConfig {
    fn default() -> Self {
        let mk = |pct_hi: f64, pct_lo: f64, pdt_hi: f64, pdt_lo: f64| TrendAnalyzer {
            pct_increasing: pct_hi,
            pct_no_trend: pct_lo,
            pdt_increasing: pdt_hi,
            pdt_no_trend: pdt_lo,
        };
        TrendThresholdsConfig {
            settings: vec![
                ThresholdSetting {
                    name: "aggressive",
                    analyzer: mk(0.55, 0.45, 0.40, 0.30),
                },
                ThresholdSetting {
                    name: "pathload",
                    analyzer: TrendAnalyzer::default(),
                },
                ThresholdSetting {
                    name: "conservative",
                    analyzer: mk(0.80, 0.60, 0.70, 0.55),
                },
            ],
            rate_below_bps: 20e6,
            rate_above_bps: 30e6,
            streams: 150,
            packets_per_stream: 100,
            cross: CrossKind::ParetoOnOff,
            seed: 0x7EE0,
        }
    }
}

impl TrendThresholdsConfig {
    /// Scaled-down configuration for tests.
    pub fn quick() -> Self {
        TrendThresholdsConfig {
            streams: 50,
            ..TrendThresholdsConfig::default()
        }
    }
}

/// Operating point of one threshold setting.
#[derive(Debug, Clone)]
pub struct OperatingPoint {
    /// Setting label.
    pub name: &'static str,
    /// Detection rate at the above-A rate (`Increasing` verdicts).
    pub detection: f64,
    /// False-positive rate at the below-A rate.
    pub false_positive: f64,
    /// Abstention rate (ambiguous verdicts), pooled over both rates.
    pub ambiguous: f64,
}

/// The sweep result.
#[derive(Debug, Clone)]
pub struct TrendThresholdsResult {
    /// One operating point per setting.
    pub points: Vec<OperatingPoint>,
}

/// Runs the sweep with the executor configured from `ABW_JOBS`.
pub fn run(config: &TrendThresholdsConfig) -> TrendThresholdsResult {
    run_with(config, &Executor::from_env())
}

/// Collects the OWD series of `streams` probes at `rate` against a
/// fresh scenario seeded for this rate only — so the two rates are
/// independent jobs.
fn collect(config: &TrendThresholdsConfig, rate: f64, rate_index: u64) -> Vec<Vec<f64>> {
    let mut s = Scenario::single_hop(&SingleHopConfig {
        cross: config.cross,
        seed: config.seed.wrapping_add(rate_index << 32),
        ..SingleHopConfig::default()
    });
    s.warm_up(SimDuration::from_millis(500));
    let mut runner = s.runner();
    runner.stream_gap = SimDuration::from_millis(20);
    let spec = StreamSpec::Periodic {
        rate_bps: rate,
        size: 1500,
        count: config.packets_per_stream,
    };
    (0..config.streams)
        .map(|_| runner.run_stream(&mut s.sim, &spec).owds())
        .collect()
}

/// Runs the sweep, collecting the two rates as independent `exec` jobs.
/// The streams are collected once and re-analysed under every setting,
/// so the comparison across settings is paired (no sampling noise
/// between settings).
pub fn run_with(config: &TrendThresholdsConfig, exec: &Executor) -> TrendThresholdsResult {
    let rates = [config.rate_below_bps, config.rate_above_bps];
    let jobs: Vec<_> = rates
        .iter()
        .enumerate()
        .map(|(i, &rate)| move || collect(config, rate, i as u64))
        .collect();
    let mut collected = exec.run(jobs);
    let above = collected.pop().expect("two rates submitted");
    let below = collected.pop().expect("two rates submitted");

    let points = config
        .settings
        .iter()
        .map(|setting| {
            let mut detect = 0u32;
            let mut fp = 0u32;
            let mut ambiguous = 0u32;
            for owds in &above {
                match setting.analyzer.classify(owds) {
                    TrendVerdict::Increasing => detect += 1,
                    TrendVerdict::Ambiguous => ambiguous += 1,
                    TrendVerdict::NoTrend => {}
                }
            }
            for owds in &below {
                match setting.analyzer.classify(owds) {
                    TrendVerdict::Increasing => fp += 1,
                    TrendVerdict::Ambiguous => ambiguous += 1,
                    TrendVerdict::NoTrend => {}
                }
            }
            let n = config.streams as f64;
            OperatingPoint {
                name: setting.name,
                detection: detect as f64 / n,
                false_positive: fp as f64 / n,
                ambiguous: ambiguous as f64 / (2.0 * n),
            }
        })
        .collect();
    TrendThresholdsResult { points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_trade_detection_for_false_positives() {
        let r = run(&TrendThresholdsConfig::quick());
        let get = |name: &str| r.points.iter().find(|p| p.name == name).unwrap();
        let aggressive = get("aggressive");
        let conservative = get("conservative");
        // lower thresholds detect at least as often...
        assert!(
            aggressive.detection >= conservative.detection,
            "aggressive {} vs conservative {}",
            aggressive.detection,
            conservative.detection
        );
        // ...and never have fewer false positives
        assert!(aggressive.false_positive >= conservative.false_positive);
    }

    #[test]
    fn pathload_defaults_are_a_reasonable_middle() {
        let r = run(&TrendThresholdsConfig::quick());
        let pathload = r.points.iter().find(|p| p.name == "pathload").unwrap();
        assert!(pathload.detection > 0.5, "detection {}", pathload.detection);
        // bursty cross traffic produces genuine transient OWD trends
        // below A (Pitfall 6 in trend space), so the false-positive rate
        // is non-zero even at the published thresholds
        assert!(
            pathload.false_positive < 0.30,
            "false positives {}",
            pathload.false_positive
        );
    }
}
