//! Tracking a time-varying avail-bw — the measurement problem the paper
//! keeps returning to: `A_tau(t)` is a *process*, so a tool is not a
//! one-shot function but an ongoing dialogue with the path.
//!
//! The experiment steps the canonical single hop's avail-bw
//! 25 → 10 → 40 Mb/s by retuning the CBR cross source **in place**
//! (no simulator rebuild, no new session): each tool keeps
//! re-estimating through one long-lived [`Session`](crate::probe::Session),
//! one fresh
//! single-shot estimator per round, and the result reports how far each
//! estimate lagged the step and how large the tracking error was.
//!
//! This is exactly what the resumable-estimator refactor buys: the old
//! blocking `run()` loops owned the simulator for their whole run and
//! could only ever measure a freshly built, stationary scenario.

use abw_exec::Executor;
use abw_netsim::SimDuration;
use abw_stats::running::Running;

use crate::scenario::{CrossKind, Scenario, SingleHopConfig};
use crate::tools::registry::{self, ToolConfig};

/// Configuration of the tracking experiment.
#[derive(Debug, Clone)]
pub struct TrackingConfig {
    /// Registry names of the tools that track (each gets its own path
    /// replica so probes never interact).
    pub tools: Vec<&'static str>,
    /// The avail-bw steps, bits/s; the cross source is retuned to
    /// `capacity - step` at each phase boundary.
    pub steps_bps: Vec<f64>,
    /// Estimation rounds per phase (fresh estimator per round).
    pub rounds_per_step: u32,
    /// An estimate within this fraction of the phase truth counts as
    /// "in band" for the lag metric.
    pub in_band_fraction: f64,
    /// Scenario seed.
    pub seed: u64,
    /// Use quick tool settings.
    pub quick: bool,
}

impl Default for TrackingConfig {
    fn default() -> Self {
        TrackingConfig {
            tools: vec!["delphi", "ptr"],
            steps_bps: vec![25e6, 10e6, 40e6],
            rounds_per_step: 4,
            in_band_fraction: 0.25,
            seed: 0x77AC,
            quick: false,
        }
    }
}

impl TrackingConfig {
    /// Scaled-down configuration for tests.
    pub fn quick() -> Self {
        TrackingConfig {
            rounds_per_step: 3,
            quick: true,
            ..TrackingConfig::default()
        }
    }
}

/// One estimate produced while tracking.
#[derive(Debug, Clone, Copy)]
pub struct TrackingSample {
    /// Simulated time the estimate concluded, seconds.
    pub t_secs: f64,
    /// The estimate, bits/s.
    pub estimate_bps: f64,
    /// The avail-bw the path actually had during this round, bits/s.
    pub truth_bps: f64,
}

/// How one tool responded to one avail-bw step.
#[derive(Debug, Clone, Copy)]
pub struct StepResponse {
    /// When the cross source was retuned, seconds.
    pub t_secs: f64,
    /// The new avail-bw, bits/s.
    pub truth_bps: f64,
    /// Simulated seconds from the step until the first in-band estimate;
    /// `None` when no estimate of the phase landed in band.
    pub lag_secs: Option<f64>,
}

/// One tool's full tracking record.
#[derive(Debug, Clone)]
pub struct ToolTrack {
    /// Registry name.
    pub tool: &'static str,
    /// Every estimate, in time order.
    pub samples: Vec<TrackingSample>,
    /// Per-step lag.
    pub steps: Vec<StepResponse>,
    /// Mean absolute tracking error across all samples, Mb/s.
    pub mean_abs_error_mbps: f64,
}

/// The tracking result: one track per tool.
#[derive(Debug, Clone)]
pub struct TrackingResult {
    /// One record per configured tool, in configuration order.
    pub tracks: Vec<ToolTrack>,
}

/// Runs the experiment with the executor configured from `ABW_JOBS`.
pub fn run(config: &TrackingConfig) -> TrackingResult {
    run_with(config, &Executor::from_env())
}

/// Runs the experiment, fanning the independent per-tool tracks across
/// `exec` (results are collected in submission order).
pub fn run_with(config: &TrackingConfig, exec: &Executor) -> TrackingResult {
    let jobs: Vec<_> = config
        .tools
        .iter()
        .map(|&name| {
            let config = config.clone();
            move || track_one(name, &config)
        })
        .collect();
    TrackingResult {
        tracks: exec.run(jobs),
    }
}

/// One tool re-estimating across every step on its own path replica.
fn track_one(name: &'static str, config: &TrackingConfig) -> ToolTrack {
    let entry = registry::find(name).unwrap_or_else(|| panic!("`{name}` is not a registered tool"));
    let tool_config = ToolConfig {
        quick: config.quick,
        ..ToolConfig::default()
    };

    let mut s = Scenario::single_hop(&SingleHopConfig {
        cross: CrossKind::Cbr,
        seed: config.seed,
        ..SingleHopConfig::default()
    });
    let capacity = s.hops[0].capacity_bps;
    s.warm_up(SimDuration::from_millis(500));

    // ONE session for the whole track: the simulator, the probing
    // endpoints and the cross source all survive every re-estimation.
    let mut session = s.session();
    let mut samples = Vec::new();
    let mut steps = Vec::new();
    let mut errors = Running::new();

    for &truth in &config.steps_bps {
        let retuned = s.set_cross_rate(0, (capacity - truth).max(0.0));
        assert!(retuned, "hop 0 must carry a retunable cross source");
        let step_at = s.sim.now().as_secs_f64();
        let mut lag = None;

        for _ in 0..config.rounds_per_step {
            // fresh single-shot estimator, same live session
            let mut tool = entry.build(&tool_config);
            let verdict = session.drive(&mut s.sim, tool.as_mut());
            let t = s.sim.now().as_secs_f64();
            let estimate = verdict.avail_bps();
            errors.push((estimate - truth).abs() / 1e6);
            if lag.is_none() && (estimate - truth).abs() <= config.in_band_fraction * truth {
                lag = Some(t - step_at);
            }
            samples.push(TrackingSample {
                t_secs: t,
                estimate_bps: estimate,
                truth_bps: truth,
            });
        }
        steps.push(StepResponse {
            t_secs: step_at,
            truth_bps: truth,
            lag_secs: lag,
        });
    }

    ToolTrack {
        tool: entry.name,
        samples,
        steps,
        mean_abs_error_mbps: errors.mean(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tools_reestimate_across_steps_without_rebuilding() {
        let config = TrackingConfig::quick();
        let r = run(&config);
        assert_eq!(r.tracks.len(), 2);
        for track in &r.tracks {
            assert_eq!(
                track.samples.len(),
                config.steps_bps.len() * config.rounds_per_step as usize,
                "{}: every round must produce an estimate",
                track.tool
            );
            // time strictly advances: all rounds ran in one simulation
            for w in track.samples.windows(2) {
                assert!(w[1].t_secs > w[0].t_secs, "{}: time stalled", track.tool);
            }
            // each phase's final estimate tracks the new truth
            for (i, &truth) in config.steps_bps.iter().enumerate() {
                let last = &track.samples[(i + 1) * config.rounds_per_step as usize - 1];
                assert!(
                    (last.estimate_bps - truth).abs() / truth < 0.5,
                    "{}: phase {i} settled at {:.1} Mb/s vs truth {:.1} Mb/s",
                    track.tool,
                    last.estimate_bps / 1e6,
                    truth / 1e6
                );
            }
        }
    }

    #[test]
    fn lag_is_finite_once_settled() {
        let r = run(&TrackingConfig::quick());
        // at least one tool must land in band on every step
        for (i, _) in TrackingConfig::quick().steps_bps.iter().enumerate() {
            assert!(
                r.tracks.iter().any(|t| t.steps[i].lag_secs.is_some()),
                "no tool ever tracked step {i}"
            );
        }
        for track in &r.tracks {
            assert!(
                track.mean_abs_error_mbps < 15.0,
                "{}: mean error {:.1} Mb/s",
                track.tool,
                track.mean_abs_error_mbps
            );
        }
    }

    #[test]
    fn unknown_tool_panics() {
        let result = std::panic::catch_unwind(|| {
            run(&TrackingConfig {
                tools: vec!["no-such-tool"],
                ..TrackingConfig::quick()
            })
        });
        assert!(result.is_err());
    }
}
