//! The comparison the paper's summary asks for: every tool, identical
//! reproducible conditions, same configuration knobs reported.
//!
//! §4: *"compare and evaluate the existing estimation techniques under
//! reproducible and controllable conditions, and with the same
//! configuration parameters."* Each tool comes from the [`registry`]
//! and runs against its own fresh replica of the same scenario (same
//! seed ⇒ identical cross traffic), over several seeds; the table
//! reports mean estimate, bias, spread, probing overhead and latency.
//!
//! The capacity prober is excluded: it estimates `Cn`, not avail-bw, so
//! a bias column would be meaningless (that contrast is the
//! `tight_vs_narrow` experiment).

use abw_exec::Executor;
use abw_netsim::SimDuration;
use abw_stats::running::Running;

use crate::scenario::{CrossKind, Scenario, SingleHopConfig};
use crate::tools::registry::{self, ToolConfig, ToolEntry};

/// Configuration of the shootout.
#[derive(Debug, Clone)]
pub struct ShootoutConfig {
    /// Cross-traffic model all tools face.
    pub cross: CrossKind,
    /// Independent repetitions (seeds) per tool.
    pub seeds: Vec<u64>,
    /// Use quick tool settings (for tests).
    pub quick: bool,
}

impl Default for ShootoutConfig {
    fn default() -> Self {
        ShootoutConfig {
            cross: CrossKind::Poisson,
            seeds: vec![11, 22, 33, 44, 55],
            quick: false,
        }
    }
}

impl ShootoutConfig {
    /// Scaled-down configuration for tests.
    pub fn quick() -> Self {
        ShootoutConfig {
            seeds: vec![11, 22],
            quick: true,
            ..ShootoutConfig::default()
        }
    }
}

/// Aggregate result of one tool across the seeds.
#[derive(Debug, Clone)]
pub struct ShootoutRow {
    /// Tool name.
    pub tool: &'static str,
    /// Mean estimate across seeds, Mb/s.
    pub mean_mbps: f64,
    /// Signed bias vs the true 25 Mb/s, Mb/s.
    pub bias_mbps: f64,
    /// Across-seed standard deviation, Mb/s.
    pub sd_mbps: f64,
    /// Mean probing packets per estimate.
    pub mean_packets: f64,
    /// Mean simulated latency per estimate, seconds (0 when the tool
    /// does not report it).
    pub mean_latency_secs: f64,
}

/// The shootout result.
#[derive(Debug, Clone)]
pub struct ShootoutResult {
    /// The true avail-bw, Mb/s.
    pub truth_mbps: f64,
    /// One row per tool.
    pub rows: Vec<ShootoutRow>,
}

/// The registry tools the shootout compares (everything that estimates
/// avail-bw; the capacity prober is excluded by design).
pub fn shootout_tools() -> impl Iterator<Item = &'static ToolEntry> {
    registry::all().iter().filter(|t| t.name != "capacity")
}

fn fresh(cross: CrossKind, seed: u64) -> Scenario {
    let mut s = Scenario::single_hop(&SingleHopConfig {
        cross,
        seed,
        ..SingleHopConfig::default()
    });
    s.warm_up(SimDuration::from_millis(500));
    s
}

/// Runs the shootout with the executor configured from `ABW_JOBS`.
pub fn run(config: &ShootoutConfig) -> ShootoutResult {
    run_with(config, &Executor::from_env())
}

/// Runs the shootout, fanning the independent `(tool, seed)` cells
/// across `exec`. Results are aggregated in submission order, so the
/// table is identical for any worker count.
pub fn run_with(config: &ShootoutConfig, exec: &Executor) -> ShootoutResult {
    let tools: Vec<&'static ToolEntry> = shootout_tools().collect();
    let tool_config = ToolConfig {
        quick: config.quick,
        ..ToolConfig::default()
    };

    let truth = 25e6;
    // One job per (tool, seed) cell; each builds its own scenario from
    // the seed, so cells are fully independent.
    let cross = config.cross;
    let jobs: Vec<_> = tools
        .iter()
        .flat_map(|&entry| {
            let tool_config = tool_config.clone();
            config.seeds.iter().map(move |&seed| {
                let tool_config = tool_config.clone();
                move || {
                    let mut s = fresh(cross, seed);
                    let mut tool = entry.build(&tool_config);
                    let mut session = s.session();
                    let verdict = session.drive(&mut s.sim, tool.as_mut());
                    (
                        verdict.avail_bps(),
                        verdict.probe_packets(),
                        verdict.elapsed_secs(),
                    )
                }
            })
        })
        .collect();
    let cells = exec.run(jobs);

    // Fold per-seed cells back into per-tool rows in submission order —
    // Running's incremental moments depend on push order, so this
    // reproduces the serial loop exactly.
    let seeds_per_tool = config.seeds.len();
    let rows = tools
        .iter()
        .zip(cells.chunks(seeds_per_tool))
        .map(|(entry, chunk)| {
            let mut estimates = Running::new();
            let mut packets = Running::new();
            let mut latency = Running::new();
            for &(est, pkts, secs) in chunk {
                estimates.push(est);
                packets.push(pkts as f64);
                latency.push(secs);
            }
            ShootoutRow {
                tool: entry.name,
                mean_mbps: estimates.mean() / 1e6,
                bias_mbps: (estimates.mean() - truth) / 1e6,
                sd_mbps: estimates.stddev() / 1e6,
                mean_packets: packets.mean(),
                mean_latency_secs: latency.mean(),
            }
        })
        .collect();

    ShootoutResult {
        truth_mbps: truth / 1e6,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_tool_lands_in_the_ballpark() {
        let r = run(&ShootoutConfig::quick());
        assert_eq!(r.rows.len(), 10);
        for row in &r.rows {
            // generous band: this is a smoke test that the harness wires
            // every tool correctly, not an accuracy claim
            assert!(
                (row.mean_mbps - r.truth_mbps).abs() < 15.0,
                "{}: mean {:.1} Mb/s",
                row.tool,
                row.mean_mbps
            );
            assert!(row.mean_packets > 0.0, "{}: no packets", row.tool);
        }
    }

    #[test]
    fn overheads_differ_by_orders_of_magnitude() {
        let r = run(&ShootoutConfig::quick());
        let max = r
            .rows
            .iter()
            .map(|x| x.mean_packets)
            .fold(f64::NEG_INFINITY, f64::max);
        let min = r
            .rows
            .iter()
            .map(|x| x.mean_packets)
            .fold(f64::INFINITY, f64::min);
        assert!(
            max / min > 10.0,
            "overhead spread {min}..{max} should span an order of magnitude"
        );
    }
}
