//! The comparison the paper's summary asks for: every tool, identical
//! reproducible conditions, same configuration knobs reported.
//!
//! §4: *"compare and evaluate the existing estimation techniques under
//! reproducible and controllable conditions, and with the same
//! configuration parameters."* Each tool runs against its own fresh
//! replica of the same scenario (same seed ⇒ identical cross traffic),
//! over several seeds; the table reports mean estimate, bias, spread,
//! probing overhead and latency.

use abw_exec::Executor;
use abw_netsim::SimDuration;
use abw_stats::running::Running;

use crate::scenario::{CrossKind, Scenario, SingleHopConfig};
use crate::tools::bfind::{Bfind, BfindConfig};
use crate::tools::delphi::{Delphi, DelphiConfig};
use crate::tools::direct::{DirectConfig, DirectProber};
use crate::tools::igi::{Igi, IgiConfig};
use crate::tools::pathchirp::{Pathchirp, PathchirpConfig};
use crate::tools::pathload::{Pathload, PathloadConfig};
use crate::tools::schirp::{Schirp, SchirpConfig};
use crate::tools::spruce::{Spruce, SpruceConfig};
use crate::tools::topp::{Topp, ToppConfig};

/// Configuration of the shootout.
#[derive(Debug, Clone)]
pub struct ShootoutConfig {
    /// Cross-traffic model all tools face.
    pub cross: CrossKind,
    /// Independent repetitions (seeds) per tool.
    pub seeds: Vec<u64>,
    /// Use quick tool settings (for tests).
    pub quick: bool,
}

impl Default for ShootoutConfig {
    fn default() -> Self {
        ShootoutConfig {
            cross: CrossKind::Poisson,
            seeds: vec![11, 22, 33, 44, 55],
            quick: false,
        }
    }
}

impl ShootoutConfig {
    /// Scaled-down configuration for tests.
    pub fn quick() -> Self {
        ShootoutConfig {
            seeds: vec![11, 22],
            quick: true,
            ..ShootoutConfig::default()
        }
    }
}

/// Aggregate result of one tool across the seeds.
#[derive(Debug, Clone)]
pub struct ShootoutRow {
    /// Tool name.
    pub tool: &'static str,
    /// Mean estimate across seeds, Mb/s.
    pub mean_mbps: f64,
    /// Signed bias vs the true 25 Mb/s, Mb/s.
    pub bias_mbps: f64,
    /// Across-seed standard deviation, Mb/s.
    pub sd_mbps: f64,
    /// Mean probing packets per estimate.
    pub mean_packets: f64,
    /// Mean simulated latency per estimate, seconds (0 when the tool
    /// does not report it).
    pub mean_latency_secs: f64,
}

/// The shootout result.
#[derive(Debug, Clone)]
pub struct ShootoutResult {
    /// The true avail-bw, Mb/s.
    pub truth_mbps: f64,
    /// One row per tool.
    pub rows: Vec<ShootoutRow>,
}

fn fresh(cross: CrossKind, seed: u64) -> Scenario {
    let mut s = Scenario::single_hop(&SingleHopConfig {
        cross,
        seed,
        ..SingleHopConfig::default()
    });
    s.warm_up(SimDuration::from_millis(500));
    s
}

/// Runs the shootout with the executor configured from `ABW_JOBS`.
pub fn run(config: &ShootoutConfig) -> ShootoutResult {
    run_with(config, &Executor::from_env())
}

/// Runs the shootout, fanning the independent `(tool, seed)` cells
/// across `exec`. Results are aggregated in submission order, so the
/// table is identical for any worker count.
pub fn run_with(config: &ShootoutConfig, exec: &Executor) -> ShootoutResult {
    type ToolFn = Box<dyn Fn(&mut Scenario) -> (f64, u64, f64) + Send + Sync>;
    let quick = config.quick;
    let tools: Vec<(&'static str, ToolFn)> = vec![
        (
            "direct",
            Box::new(move |s| {
                let mut r = s.runner();
                let e = DirectProber::new(DirectConfig {
                    streams: if quick { 20 } else { 100 },
                    ..DirectConfig::canonical()
                })
                .run(&mut s.sim, &mut r);
                (e.avail_bps, e.probe_packets, e.elapsed_secs)
            }),
        ),
        (
            "delphi",
            Box::new(move |s| {
                let mut r = s.runner();
                let e = Delphi::new(DelphiConfig {
                    trains: if quick { 15 } else { 40 },
                    ..DelphiConfig::new(50e6)
                })
                .run(&mut s.sim, &mut r);
                (e.avail_bps, e.probe_packets, e.elapsed_secs)
            }),
        ),
        (
            "spruce",
            Box::new(move |s| {
                let mut r = s.runner();
                let e = Spruce::new(SpruceConfig {
                    pairs: if quick { 50 } else { 100 },
                    ..SpruceConfig::new(50e6)
                })
                .run(&mut s.sim, &mut r);
                (e.avail_bps, e.probe_packets, e.elapsed_secs)
            }),
        ),
        (
            "topp",
            Box::new(move |s| {
                let mut r = s.runner();
                r.stream_gap = SimDuration::from_millis(5);
                let rep = Topp::new(ToppConfig {
                    step_bps: if quick { 3e6 } else { 1e6 },
                    streams_per_rate: if quick { 3 } else { 6 },
                    ..ToppConfig::default()
                })
                .run(&mut s.sim, &mut r);
                (rep.avail_bps, rep.probe_packets, 0.0)
            }),
        ),
        (
            "pathload",
            Box::new(move |s| {
                let rep = Pathload::new(if quick {
                    PathloadConfig::quick()
                } else {
                    PathloadConfig::default()
                })
                .run(s);
                (
                    (rep.range_bps.0 + rep.range_bps.1) / 2.0,
                    rep.probe_packets,
                    rep.elapsed_secs,
                )
            }),
        ),
        (
            "pathchirp",
            Box::new(move |s| {
                let mut r = s.runner();
                let e = Pathchirp::new(PathchirpConfig {
                    chirps: if quick { 15 } else { 30 },
                    ..PathchirpConfig::default()
                })
                .run(&mut s.sim, &mut r);
                (e.avail_bps, e.probe_packets, e.elapsed_secs)
            }),
        ),
        (
            "schirp",
            Box::new(move |s| {
                let mut r = s.runner();
                let e = Schirp::new(SchirpConfig {
                    chirps: if quick { 15 } else { 30 },
                    ..SchirpConfig::default()
                })
                .run(&mut s.sim, &mut r);
                (e.avail_bps, e.probe_packets, e.elapsed_secs)
            }),
        ),
        (
            "igi",
            Box::new(move |s| {
                let mut r = s.runner();
                let rep = Igi::new(IgiConfig::default()).run(&mut s.sim, &mut r);
                (rep.igi_bps, rep.probe_packets, 0.0)
            }),
        ),
        (
            "ptr",
            Box::new(move |s| {
                let mut r = s.runner();
                let rep = Igi::new(IgiConfig::default()).run(&mut s.sim, &mut r);
                (rep.ptr_bps, rep.probe_packets, 0.0)
            }),
        ),
        (
            "bfind",
            Box::new(move |s| {
                let rep = Bfind::new(BfindConfig::default()).run(s);
                (rep.avail_bps, rep.probe_packets, 0.0)
            }),
        ),
    ];

    let truth = 25e6;
    // One job per (tool, seed) cell; each builds its own scenario from
    // the seed, so cells are fully independent.
    let cross = config.cross;
    let jobs: Vec<_> = tools
        .iter()
        .flat_map(|(_, f)| {
            config.seeds.iter().map(move |&seed| {
                move || {
                    let mut s = fresh(cross, seed);
                    f(&mut s)
                }
            })
        })
        .collect();
    let cells = exec.run(jobs);

    // Fold per-seed cells back into per-tool rows in submission order —
    // Running's incremental moments depend on push order, so this
    // reproduces the serial loop exactly.
    let seeds_per_tool = config.seeds.len();
    let rows = tools
        .iter()
        .zip(cells.chunks(seeds_per_tool))
        .map(|((name, _), chunk)| {
            let mut estimates = Running::new();
            let mut packets = Running::new();
            let mut latency = Running::new();
            for &(est, pkts, secs) in chunk {
                estimates.push(est);
                packets.push(pkts as f64);
                latency.push(secs);
            }
            ShootoutRow {
                tool: name,
                mean_mbps: estimates.mean() / 1e6,
                bias_mbps: (estimates.mean() - truth) / 1e6,
                sd_mbps: estimates.stddev() / 1e6,
                mean_packets: packets.mean(),
                mean_latency_secs: latency.mean(),
            }
        })
        .collect();

    ShootoutResult {
        truth_mbps: truth / 1e6,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_tool_lands_in_the_ballpark() {
        let r = run(&ShootoutConfig::quick());
        assert_eq!(r.rows.len(), 10);
        for row in &r.rows {
            // generous band: this is a smoke test that the harness wires
            // every tool correctly, not an accuracy claim
            assert!(
                (row.mean_mbps - r.truth_mbps).abs() < 15.0,
                "{}: mean {:.1} Mb/s",
                row.tool,
                row.mean_mbps
            );
            assert!(row.mean_packets > 0.0, "{}: no packets", row.tool);
        }
    }

    #[test]
    fn overheads_differ_by_orders_of_magnitude() {
        let r = run(&ShootoutConfig::quick());
        let max = r
            .rows
            .iter()
            .map(|x| x.mean_packets)
            .fold(f64::NEG_INFINITY, f64::max);
        let min = r
            .rows
            .iter()
            .map(|x| x.mean_packets)
            .fold(f64::INFINITY, f64::min);
        assert!(
            max / min > 10.0,
            "overhead spread {min}..{max} should span an order of magnitude"
        );
    }
}
